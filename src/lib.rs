//! # MLMD — Multiscale Light-Matter Dynamics
//!
//! Facade crate re-exporting the whole MLMD stack: a from-scratch Rust
//! reproduction of "Multiscale light-matter dynamics in quantum materials:
//! from electrons to topological superlattices" (SC 2025).
//!
//! The two modules of the paper's MLMD software:
//!
//! * **DC-MESH** ([`dcmesh`]) — divide-and-conquer
//!   Maxwell–Ehrenfest–surface-hopping quantum molecular dynamics, built on
//!   [`lfd`] (electron dynamics), [`maxwell`] (light), and [`qxmd`] (atoms).
//! * **XS-NNQMD** ([`nnqmd`]) — excited-state neural-network quantum MD
//!   with Allegro-lite equivariant potentials.
//!
//! plus [`topo`] (topological superlattice analysis), [`floquet`]
//! (periodic-drive workloads: CW/chirped/train sources, streaming
//! Floquet spectra, superlattice invariant sweeps), [`exasim`] (the
//! simulated-Aurora performance model behind the scaling figures),
//! [`core`] (the DCR/MSA orchestration pipeline of Fig. 3), and
//! [`service`] (the multi-tenant job service: bounded priority queue,
//! cross-request dedup, cooperative cancellation, streamed progress).
//!
//! ## Quickstart
//!
//! ```no_run
//! use mlmd::core::config::PipelineConfig;
//! use mlmd::core::pipeline::Pipeline;
//!
//! let config = PipelineConfig::small_demo();
//! let mut pipeline = Pipeline::new(config);
//! let outcome = pipeline.run();
//! println!("topological charge: {} -> {}",
//!          outcome.initial_topological_charge,
//!          outcome.final_topological_charge);
//! ```

pub use mlmd_core as core;
pub use mlmd_dcmesh as dcmesh;
pub use mlmd_exasim as exasim;
pub use mlmd_floquet as floquet;
pub use mlmd_lfd as lfd;
pub use mlmd_maxwell as maxwell;
pub use mlmd_nnqmd as nnqmd;
pub use mlmd_numerics as numerics;
pub use mlmd_parallel as parallel;
pub use mlmd_qxmd as qxmd;
pub use mlmd_service as service;
pub use mlmd_topo as topo;
