#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   scripts/tier1.sh
#
# Runs the release build, the full workspace test suite (unit, property,
# integration, and doc tests), and the formatting check. Exits non-zero on
# the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test dc_dist  (multi-rank DC-SCF vs serial oracle)"
cargo test -q --test dc_dist

echo "==> cargo test -q --test mesh_dist  (multi-rank MESH driver vs serial oracle)"
cargo test -q --test mesh_dist

echo "==> cargo test -q --test checkpoint_warm_start  (checkpoint round-trip + warm-start bit-identity)"
cargo test -q --test checkpoint_warm_start

echo "==> cargo bench -p mlmd-bench --bench dc_scaling -- --test  (smoke)"
cargo bench -p mlmd-bench --bench dc_scaling -- --test

echo "==> cargo bench -p mlmd-bench --bench pump_probe -- --test  (smoke)"
cargo bench -p mlmd-bench --bench pump_probe -- --test

echo "==> cargo bench -p mlmd-bench --bench mesh_scaling -- --test  (smoke)"
cargo bench -p mlmd-bench --bench mesh_scaling -- --test

echo "==> cargo bench -p mlmd-bench --bench warm_start -- --test  (smoke)"
cargo bench -p mlmd-bench --bench warm_start -- --test

echo "==> cargo test -q --test service_scheduler  (job service: ordering, dedup, cancellation, backpressure)"
cargo test -q --test service_scheduler

echo "==> cargo bench -p mlmd-bench --bench service_load -- --test  (smoke)"
cargo bench -p mlmd-bench --bench service_load -- --test

echo "==> cargo test -q --test planner  (calibrated cost model: 2x prediction pin + admission gate)"
cargo test -q --test planner

echo "==> cargo bench -p mlmd-bench --bench planner -- --test  (smoke)"
cargo bench -p mlmd-bench --bench planner -- --test

echo "==> cargo test -q --test floquet_sweep  (Floquet workload: transition detection through the planner-gated service)"
cargo test -q --test floquet_sweep

echo "==> cargo bench -p mlmd-bench --bench floquet -- --test  (smoke + <10% observer-overhead assert)"
cargo bench -p mlmd-bench --bench floquet -- --test

echo "==> cargo test -q -p mlmd-numerics --test kernel_oracle  (blocked/strided/parallel GEMM vs naive oracle, bit-for-bit)"
cargo test -q -p mlmd-numerics --test kernel_oracle

echo "==> cargo bench -p mlmd-bench --bench hotspots -- --test  (smoke + blocked>=1.3x naive GEMM gate)"
cargo bench -p mlmd-bench --bench hotspots -- --test

echo "==> cargo bench -p mlmd-bench --bench precision -- --test  (smoke + bf16 accuracy-envelope assert)"
cargo bench -p mlmd-bench --bench precision -- --test

echo "==> cargo doc --no-deps  (warnings as errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> docs link check (README.md, docs/*.md)"
scripts/check_links.sh

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1: OK"
