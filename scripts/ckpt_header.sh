#!/usr/bin/env bash
# Print a ground-state checkpoint's self-describing header: format
# version, config hash, descent metadata, and panel shape. The payload
# digest is verified before anything is printed, so a corrupt file
# fails loudly instead of being summarized.
#
#   scripts/ckpt_header.sh path/to/state.ckpt
#
# Thin wrapper around the `inspect_checkpoint` example; run it with no
# argument for a self-contained save -> inspect -> reload demo.
set -euo pipefail

if [[ $# -ne 1 ]]; then
    echo "usage: $0 <checkpoint-file>" >&2
    exit 2
fi

cd "$(dirname "$0")/.."
exec cargo run --release --quiet --example inspect_checkpoint -- "$1"
