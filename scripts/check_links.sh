#!/usr/bin/env bash
# Docs link check: fail on broken *relative* links in README.md and
# docs/*.md (external http(s)/mailto links and pure #anchors are out of
# scope — the build environment is offline).
#
#   scripts/check_links.sh
#
# A link `[text](target)` is broken when `target` (with any #fragment
# stripped), resolved against the linking file's directory, names a file
# or directory that does not exist.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
  [ -e "$f" ] || continue
  base=$(dirname "$f")
  # Extract every inline markdown link target.
  targets=$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$base/$path" ]; then
      echo "broken link in $f: ($target) -> $base/$path does not exist"
      fail=1
    fi
  done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
  echo "link check: FAILED"
  exit 1
fi
echo "link check: OK"
