//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim implements the subset of proptest the MLMD property suites use:
//! the `proptest!` macro with `#![proptest_config(..)]`, range and tuple
//! strategies, `prop_map` / `prop_filter`, `prop::collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics: deterministic generate-and-check. Each test runs
//! `ProptestConfig::cases` cases seeded from a hash of the test name and
//! the case index, so failures reproduce exactly across runs. On failure
//! the runner shrinks: [`Strategy::shrink`] proposes simpler candidates
//! (halving toward the range start, shortening collections, shrinking
//! tuple components one at a time) and the smallest input that still
//! fails is reported alongside the raw one and the reproducing seed.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- config

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up after this many rejected (filtered / assumed-away) inputs.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

// ---------------------------------------------------------------- errors

#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

// ------------------------------------------------------------------ rng

/// SplitMix64 — small, fast, and plenty for test-input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the test name keeps seeds stable across runs and hosts.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- strategy

/// Panic payload used to abort a case whose generated input was filtered
/// out; [`run_proptest`] catches it and retries with a fresh seed. Keeping
/// [`Strategy::generate`] infallible (rather than `Result`-returning) is
/// what lets untyped literals like `0..1` fall back to `i32` in the
/// strategy tuple the `proptest!` macro assembles.
#[derive(Clone, Debug)]
pub struct RejectCase(pub String);

pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Simpler candidates for a failing value, simplest first. The runner
    /// greedily re-tests them, descending to the first candidate that
    /// still fails; an empty list (the default) means the value is
    /// already minimal for this strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Mapped strategy. Mapping has no inverse, so `Map` cannot shrink: the
/// default empty candidate list applies and the mapped value is reported
/// as-is.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        std::panic::panic_any(RejectCase(format!(
            "prop_filter exhausted retries: {}",
            self.whence
        )))
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        // Shrink through the inner strategy, keeping only candidates the
        // predicate still admits.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Shrink candidates for a failing float, simplest first: the range start,
/// then the geometric ladder `v − (v−lo)/2^k`. Re-shrinking each accepted
/// candidate turns the ladder into a bisection that converges onto the
/// failure boundary.
fn shrink_float(lo_f: f64, v_f: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if v_f == lo_f {
        return out;
    }
    out.push(lo_f);
    let mut delta = (v_f - lo_f) / 2.0;
    for _ in 0..50 {
        let cand = v_f - delta;
        if cand == v_f || !cand.is_finite() {
            break;
        }
        if cand != lo_f {
            out.push(cand);
        }
        delta /= 2.0;
    }
    out
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = (lo + rng.next_f64() * (hi - lo)) as $t;
                // `lo + u*(hi-lo)` can round up to `hi` at large
                // magnitudes; the range is half-open, so clamp below it.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(self.start as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .filter(|c| self.contains(c))
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.next_f64() * (hi - lo)) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*self.start() as f64, *value as f64)
                    .into_iter()
                    .map(|c| c as $t)
                    .filter(|c| self.contains(c))
                    .collect()
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

/// Shrink candidates for a failing integer, simplest first: the range
/// start, then the geometric ladder `v − (v−lo)/2^k` down to `v − 1`.
/// Re-shrinking each accepted candidate bisects onto the exact failure
/// boundary; the dense tail (`…, v−2, v−1`) lets the descent step over
/// values a `prop_filter` rejects.
fn shrink_int(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == lo {
        return out;
    }
    out.push(lo);
    let mut delta = (v - lo) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != lo {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy");
        for _ in 0..64 {
            let v = lo + (rng.below((hi - lo) as u64) as u32);
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
        std::panic::panic_any(RejectCase("char range hit a surrogate gap".into()))
    }
}

/// The empty strategy (zero-argument `proptest!` functions).
impl Strategy for () {
    type Value = ();

    fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
}

macro_rules! tuple_strategy {
    ($(($($s:ident $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, holding the others.
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut t = value.clone();
                        t.$i = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
}

// ----------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            let len = value.len();
            // Length shrinks first (simplest-first): the minimal prefix,
            // the halved prefix, then dropping one element.
            if len > lo {
                let half = lo + (len - lo) / 2;
                for cut in [lo, half, len - 1] {
                    if cut < len && out.last().map(Vec::len) != Some(cut) {
                        out.push(value[..cut].to_vec());
                    }
                }
            }
            // Element shrinks: a couple of candidates per position.
            for (i, v) in value.iter().enumerate() {
                for cand in self.element.shrink(v).into_iter().take(2) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

// --------------------------------------------------------------- runner

/// Cap on candidate evaluations during a shrink pass (keeps pathological
/// strategies from stalling the failure report).
const MAX_SHRINK_EVALS: u32 = 512;

enum CaseOutcome {
    Pass,
    Reject(String),
    Fail(String),
}

/// Run the case body once, classifying panics: `RejectCase` payloads are
/// rejections (filter retries exhausted), anything else is a failure whose
/// message is preserved for the report.
fn run_case<V, F>(case: &F, value: V) -> CaseOutcome
where
    F: Fn(V) -> Result<(), TestCaseError>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(value))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject(why))) => CaseOutcome::Reject(why),
        Ok(Err(TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
        Err(payload) => match payload.downcast::<RejectCase>() {
            Ok(reject) => CaseOutcome::Reject(reject.0),
            Err(payload) => CaseOutcome::Fail(panic_message(&payload)),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Greedy shrink: repeatedly descend to the first candidate that still
/// fails, until no candidate fails or the evaluation budget runs out.
/// Returns the minimal failing input, its failure message, and the number
/// of accepted shrink steps.
fn shrink_failure<S, F>(
    strategy: &S,
    case: &F,
    mut current: S::Value,
    mut msg: String,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    // Candidate bodies that fail by panicking (assert!/unwrap rather than
    // prop_assert) would print one default-hook backtrace per failing
    // candidate — up to MAX_SHRINK_EVALS of them — burying the final
    // report. Silence the hook for the duration of the descent.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut steps = 0u32;
    let mut evals = 0u32;
    'descend: loop {
        for candidate in strategy.shrink(&current) {
            if evals >= MAX_SHRINK_EVALS {
                break 'descend;
            }
            evals += 1;
            if let CaseOutcome::Fail(m) = run_case(case, candidate.clone()) {
                current = candidate;
                msg = m;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    std::panic::set_hook(saved_hook);
    (current, msg, steps)
}

/// Generate-and-check loop: `config.cases` passing cases are required; a
/// failing case is shrunk via [`Strategy::shrink`] before the panic
/// reports the seed, the raw failing input, and the minimized witness.
pub fn run_proptest<S, F>(config: &ProptestConfig, name: &str, strategy: &S, case: F)
where
    S: Strategy,
    S::Value: Clone + std::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    let reject = |rejected: &mut u32, why: String| {
        *rejected += 1;
        if *rejected > config.max_global_rejects {
            panic!(
                "proptest '{name}': too many rejected inputs ({rejected}); last: {why}",
                rejected = *rejected
            );
        }
    };
    while passed < config.cases {
        attempt += 1;
        let seed = base ^ mix(attempt);
        let mut rng = TestRng::new(seed);
        // Generation can reject (a `prop_filter` that exhausts retries
        // panics with `RejectCase`).
        let generated =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| strategy.generate(&mut rng)));
        let value = match generated {
            Ok(v) => v,
            Err(payload) => match payload.downcast::<RejectCase>() {
                Ok(r) => {
                    reject(&mut rejected, r.0);
                    continue;
                }
                Err(payload) => std::panic::resume_unwind(payload),
            },
        };
        match run_case(&case, value.clone()) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject(why) => reject(&mut rejected, why),
            CaseOutcome::Fail(msg) => {
                let (minimal, min_msg, steps) = shrink_failure(strategy, &case, value.clone(), msg);
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s) \
                     [reproduce with seed {seed:#018x}]: {min_msg}\n\
                     raw failing input: {value:?}\n\
                     minimal failing input ({steps} shrink step(s)): {minimal:?}"
                );
            }
        }
    }
}

// --------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategy = ($($strat,)*);
            $crate::run_proptest(&__config, stringify!($name), &__strategy, |($($arg,)*)| {
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first: negating the raw expression trips clippy's
        // neg_cmp_op_on_partial_ord at every float-comparison call site.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.5, n in 1usize..9, s in 0u64..1000) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(s < 1000);
        }

        #[test]
        fn float_range_never_yields_exclusive_bound(
            x in 1.0e16f64..1.0000000000000004e16,
            y in -1.0f32..1.0,
        ) {
            // At this magnitude `lo + u*(hi-lo)` rounds up to `hi` for u
            // near 1; the strategy must clamp below the exclusive bound.
            prop_assert!(x < 1.0000000000000004e16, "x hit the bound: {x}");
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 3..6), w in prop::collection::vec(0u32..9, 4)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn map_and_filter_compose(x in (0.0f64..10.0).prop_filter("positive", |v| *v > 0.1).prop_map(|v| v * 2.0)) {
            prop_assert!(x > 0.2 && x < 20.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(4),
            "always_fails",
            &(0u64..10),
            |_x| Err(TestCaseError::fail("boom")),
        );
    }

    /// Run a failing property and capture its panic message plus the raw
    /// (first) and minimal (last) failing inputs the case observed.
    fn capture_shrink<S, F>(name: &str, strategy: S, fails: F) -> (String, S::Value, S::Value)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(&S::Value) -> bool,
    {
        use std::cell::RefCell;
        let seen: RefCell<Vec<S::Value>> = RefCell::new(Vec::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_proptest(&ProptestConfig::with_cases(16), name, &strategy, |v| {
                if fails(&v) {
                    seen.borrow_mut().push(v);
                    return Err(TestCaseError::fail("witness"));
                }
                Ok(())
            });
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message")
            .clone();
        let seen = seen.into_inner();
        let raw = seen.first().expect("at least one failure").clone();
        let minimal = seen.last().expect("at least one failure").clone();
        (msg, raw, minimal)
    }

    #[test]
    fn shrink_minimizes_integer_witness_to_boundary() {
        // Property: x < 17. The raw witness is whatever the seed produced
        // in [17, 1000); the greedy halving descent must land exactly on
        // the failure boundary.
        let (msg, raw, minimal) = capture_shrink("int_shrink", 0u64..1000, |&x| x >= 17);
        assert_eq!(minimal, 17, "shrink must reach the boundary: {msg}");
        assert!(raw >= 17);
        assert!(
            minimal < raw,
            "regression: reported witness ({minimal}) must be smaller than the raw one ({raw})"
        );
        assert!(msg.contains("raw failing input"));
        assert!(
            msg.contains("minimal failing input") && msg.contains(": 17"),
            "report must carry the minimized witness: {msg}"
        );
        assert!(msg.contains("reproduce with seed"));
    }

    #[test]
    fn shrink_minimizes_vector_length() {
        let (_, raw, minimal) = capture_shrink(
            "vec_shrink",
            crate::collection::vec(0.0f64..1.0, 0..20),
            |v: &Vec<f64>| v.len() >= 3,
        );
        assert_eq!(minimal.len(), 3, "minimal witness has boundary length");
        assert!(minimal.len() <= raw.len());
    }

    #[test]
    fn shrink_descends_tuple_components_independently() {
        // Fails iff both components are large; each must shrink to its
        // own boundary.
        let (_, _, minimal) = capture_shrink("tuple_shrink", (0i64..100, 0i64..100), |&(a, b)| {
            a >= 10 && b >= 20
        });
        assert_eq!(minimal, (10, 20));
    }

    #[test]
    fn shrink_respects_filters() {
        // The filter only admits odd values; the minimal failing input
        // must stay odd (21), not the raw boundary (20).
        let (_, _, minimal) = capture_shrink(
            "filter_shrink",
            (0i64..1000).prop_filter("odd", |x| x % 2 == 1),
            |&x| x >= 20,
        );
        assert_eq!(minimal, 21);
        assert_eq!(minimal % 2, 1, "shrunk witness must satisfy the filter");
    }

    #[test]
    fn float_shrink_converges_toward_range_start() {
        let (_, raw, minimal) = capture_shrink("float_shrink", 0.0f64..100.0, |&x| x >= 12.5);
        assert!(minimal >= 12.5, "witness must still fail");
        assert!(minimal <= raw);
        assert!(
            minimal < 12.5 * (1.0 + 1e-6),
            "halving descent must approach the boundary: {minimal}"
        );
    }

    #[test]
    fn body_panics_are_shrunk_too() {
        // A panic inside the case (not a prop_assert) is treated as a
        // failure and still minimized.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_proptest(
                &ProptestConfig::with_cases(8),
                "panic_shrink",
                &(0u64..1000),
                |x| {
                    assert!(x < 29, "boom at {x}");
                    Ok(())
                },
            );
        }));
        let payload = result.expect_err("must fail");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("minimal failing input") && msg.contains(": 29"),
            "panicking bodies must shrink to the boundary: {msg}"
        );
    }
}
