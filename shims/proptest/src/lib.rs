//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim implements the subset of proptest the MLMD property suites use:
//! the `proptest!` macro with `#![proptest_config(..)]`, range and tuple
//! strategies, `prop_map` / `prop_filter`, `prop::collection::vec`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics: deterministic generate-and-check. Each test runs
//! `ProptestConfig::cases` cases seeded from a hash of the test name and
//! the case index, so failures reproduce exactly across runs. There is no
//! shrinking — the failure message reports the case seed instead.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------- config

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up after this many rejected (filtered / assumed-away) inputs.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

// ---------------------------------------------------------------- errors

#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

// ------------------------------------------------------------------ rng

/// SplitMix64 — small, fast, and plenty for test-input generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the test name keeps seeds stable across runs and hosts.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- strategy

/// Panic payload used to abort a case whose generated input was filtered
/// out; [`run_proptest`] catches it and retries with a fresh seed. Keeping
/// [`Strategy::generate`] infallible (rather than `Result`-returning) is
/// what lets untyped literals like `0..1` fall back to `i32` inside the
/// `proptest!` closure.
#[derive(Clone, Debug)]
pub struct RejectCase(pub String);

pub trait Strategy: Sized {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..64 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        std::panic::panic_any(RejectCase(format!(
            "prop_filter exhausted retries: {}",
            self.whence
        )))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let (lo, hi) = (self.start as f64, self.end as f64);
                let v = (lo + rng.next_f64() * (hi - lo)) as $t;
                // `lo + u*(hi-lo)` can round up to `hi` at large
                // magnitudes; the range is half-open, so clamp below it.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.next_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy");
        for _ in 0..64 {
            let v = lo + (rng.below((hi - lo) as u64) as u32);
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
        std::panic::panic_any(RejectCase("char range hit a surrogate gap".into()))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ----------------------------------------------------------- collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
}

// --------------------------------------------------------------- runner

pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        attempt += 1;
        let seed = base ^ mix(attempt);
        let mut rng = TestRng::new(seed);
        // Strategies reject filtered-out inputs by panicking with
        // `RejectCase`; everything else unwinds through unchanged.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)))
            .unwrap_or_else(|payload| match payload.downcast::<RejectCase>() {
                Ok(reject) => Err(TestCaseError::Reject(reject.0)),
                Err(payload) => std::panic::resume_unwind(payload),
            });
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!("proptest '{name}': too many rejected inputs ({rejected}); last: {why}");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed after {passed} passing case(s) \
                     [reproduce with seed {seed:#018x}]: {msg}"
                );
            }
        }
    }
}

// --------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first: negating the raw expression trips clippy's
        // neg_cmp_op_on_partial_ord at every float-comparison call site.
        let cond: bool = $cond;
        if !cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?} == {:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?} != {:?}`: {}", __a, __b, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.5, n in 1usize..9, s in 0u64..1000) {
            prop_assert!((-3.0..7.5).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(s < 1000);
        }

        #[test]
        fn float_range_never_yields_exclusive_bound(
            x in 1.0e16f64..1.0000000000000004e16,
            y in -1.0f32..1.0,
        ) {
            // At this magnitude `lo + u*(hi-lo)` rounds up to `hi` for u
            // near 1; the strategy must clamp below the exclusive bound.
            prop_assert!(x < 1.0000000000000004e16, "x hit the bound: {x}");
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 3..6), w in prop::collection::vec(0u32..9, 4)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn map_and_filter_compose(x in (0.0f64..10.0).prop_filter("positive", |v| *v > 0.1).prop_map(|v| v * 2.0)) {
            prop_assert!(x > 0.2 && x < 20.0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_seed() {
        crate::run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
