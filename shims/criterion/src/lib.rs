//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim implements the subset of criterion the MLMD benches use:
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement is a simple mean over `sample_size` timed iterations after
//! one warm-up, printed as `group/id: <mean> per iter`. When invoked with
//! `--test` (as `cargo test --benches` does), each benchmark runs exactly
//! once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = self.samples;
    }
}

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs bench binaries with `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(&name, f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size as u64
        };
        let mut bencher = Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            let per_iter = bencher.total / bencher.iters as u32;
            println!("{}/{}: {:?} per iter", self.name, id, per_iter);
        } else {
            println!("{}/{}: no measurement taken", self.name, id);
        }
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("triangular_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("times_two", 21), &21u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(
            BenchmarkId::from_parameter("Baseline").to_string(),
            "Baseline"
        );
    }
}
