//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel::unbounded` MPMC channel used by the simulated-MPI
//! fabric: both [`channel::Sender`] and [`channel::Receiver`] are cloneable
//! handles onto one shared queue, implemented with a `Mutex<VecDeque>` and
//! a `Condvar`. Throughput is far below real crossbeam, but the simulated
//! ranks exchange small typed envelopes, not bulk data.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Queue<T>>,
        ready: Condvar,
    }

    struct Queue<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Mirror of crossbeam's `RecvTimeoutError`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Timeout => write!(f, "timed out waiting on receive operation"),
                Self::Disconnected => write!(f, "channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut q = self.shared.queue.lock().unwrap();
            q.senders -= 1;
            if q.senders == 0 {
                // Wake receivers so they can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            q.items.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message is available or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            q.items.pop_front().ok_or(RecvError)
        }

        /// Non-blocking iterator over the messages currently available —
        /// mirrors crossbeam's `try_iter`: yields until the queue is
        /// empty, never waits for senders.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Blocks until a message is available, every sender is gone, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = q.items.pop_front() {
                    return Ok(item);
                }
                if q.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn try_iter_drains_without_blocking() {
            let (s, r) = unbounded();
            for i in 0..5 {
                s.send(i).unwrap();
            }
            let drained: Vec<i32> = r.try_iter().collect();
            assert_eq!(drained, vec![0, 1, 2, 3, 4]);
            // Empty queue with a live sender: yields nothing, returns.
            assert_eq!(r.try_iter().next(), None);
        }

        #[test]
        fn fifo_order() {
            let (s, r) = unbounded();
            for i in 0..10 {
                s.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(r.recv().unwrap(), i);
            }
        }

        #[test]
        fn cloned_endpoints_share_queue() {
            let (s, r) = unbounded();
            let s2 = s.clone();
            let r2 = r.clone();
            s2.send(41).unwrap();
            assert_eq!(r2.recv().unwrap(), 41);
            s.send(42).unwrap();
            assert_eq!(r.recv().unwrap(), 42);
        }

        #[test]
        fn blocking_recv_across_threads() {
            let (s, r) = unbounded();
            let h = std::thread::spawn(move || r.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            s.send(7u32).unwrap();
            assert_eq!(h.join().unwrap(), 7);
        }

        #[test]
        fn disconnection_observed() {
            let (s, r) = unbounded::<u8>();
            drop(s);
            assert_eq!(r.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (s, r) = unbounded::<u8>();
            let short = std::time::Duration::from_millis(5);
            assert_eq!(r.recv_timeout(short), Err(RecvTimeoutError::Timeout));
            s.send(9).unwrap();
            assert_eq!(r.recv_timeout(short), Ok(9));
            drop(s);
            assert_eq!(r.recv_timeout(short), Err(RecvTimeoutError::Disconnected));
        }
    }
}
