//! The persistent scheduler behind the shim's parallel iterators.
//!
//! A [`Registry`] is a set of long-lived worker threads plus an injector
//! queue. Jobs (one per top-level `for_each`/`map` call) are described by a
//! [`JobCore`]: the item index space is partitioned into one contiguous
//! range per participant, each range held in a packed `(head, tail)`
//! atomic. Participants pop small chunks from the head of their own range
//! and, when it runs dry, steal the upper half of the richest remaining
//! range — so a balanced workload keeps the cache-friendly static
//! partition while a skewed one rebalances automatically.
//!
//! Width propagation: every worker thread stores its registry in the
//! [`CURRENT`] thread-local at spawn, so a nested parallel call issued from
//! inside a job resubmits to the *same* registry and observes the pool
//! width instead of silently fanning out to full hardware width (the bug
//! in the old per-call scoped-thread implementation).

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// The registry this thread submits parallel work to: set permanently
    /// on worker threads at spawn, and temporarily on user threads for the
    /// duration of a [`crate::ThreadPool::install`] call.
    static CURRENT: std::cell::RefCell<Option<Arc<Registry>>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Width of the registry the calling thread would submit to.
pub(crate) fn current_width() -> usize {
    CURRENT
        .with(|c| c.borrow().as_ref().map(|r| r.width))
        .unwrap_or_else(hardware_threads)
}

/// Restores the previous thread-local registry when dropped.
pub(crate) struct ContextGuard {
    prev: Option<Arc<Registry>>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Make `registry` the calling thread's submission target until the
/// returned guard drops.
pub(crate) fn enter(registry: Arc<Registry>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(registry));
    ContextGuard { prev }
}

// ---------------------------------------------------------------------------
// Job state
// ---------------------------------------------------------------------------

/// Pack a half-open index range into one atomic word so pop (head += k)
/// and steal (tail -= k) race safely through CAS.
#[inline]
fn pack(head: usize, tail: usize) -> u64 {
    ((head as u64) << 32) | tail as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

/// Monomorphized entry point: process item `idx` of the job whose typed
/// state lives behind `data`.
type ExecFn = unsafe fn(*const (), usize);

/// Type-erased shared state of one parallel job.
///
/// `data` points at a [`JobData`] on the submitting thread's stack. The
/// ownership protocol that makes the raw pointer sound: an index is
/// dereferenced only by the participant that claimed it through a
/// successful CAS on a slot, each index is claimed at most once, and the
/// submitter does not return until `remaining` hits zero — which happens
/// strictly after the last claimed index has been fully processed. After
/// completion, late participants (workers draining stale injector tickets)
/// touch only the `Arc`-owned fields, never `data`.
pub(crate) struct JobCore {
    /// One packed `(head, tail)` index range per participant.
    slots: Box<[AtomicU64]>,
    /// Items not yet fully processed; the submitter blocks until zero.
    remaining: AtomicUsize,
    panicked: AtomicBool,
    data: *const (),
    exec: ExecFn,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `data` is only dereferenced through `exec` for exclusively
// claimed indices (see the struct docs); the submitting `run_job` enforces
// `I: Send, O: Send, F: Sync` on everything reachable through it.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

enum FoundWork {
    Stolen,
    Empty,
}

impl JobCore {
    /// Pop a chunk from the head of `slot`. Chunks shrink as the range
    /// drains (1/8 of the remainder, at least 1) so early pops are cheap
    /// on CAS traffic while the tail stays fine-grained for balancing.
    fn pop_chunk(&self, slot: usize) -> Option<(usize, usize)> {
        let s = &self.slots[slot];
        let mut v = s.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(v);
            if head >= tail {
                return None;
            }
            let take = ((tail - head) / 8).max(1);
            match s.compare_exchange_weak(
                v,
                pack(head + take, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((head, head + take)),
                Err(now) => v = now,
            }
        }
    }

    /// Steal the upper half of the richest other slot into `my` (which is
    /// empty: only its owner refills it). Returns [`FoundWork::Empty`] when
    /// every slot is drained and participation should end.
    fn steal_into(&self, my: usize) -> FoundWork {
        loop {
            let mut victim = None;
            let mut best = 0usize;
            for (s, slot) in self.slots.iter().enumerate() {
                if s == my {
                    continue;
                }
                let (head, tail) = unpack(slot.load(Ordering::Acquire));
                let n = tail.saturating_sub(head);
                if n > best {
                    best = n;
                    victim = Some(s);
                }
            }
            let Some(vslot) = victim else {
                return FoundWork::Empty;
            };
            let s = &self.slots[vslot];
            let v = s.load(Ordering::Acquire);
            let (head, tail) = unpack(v);
            if head >= tail {
                continue; // drained while we scanned; rescan
            }
            let take = (tail - head).div_ceil(2);
            if s.compare_exchange(
                v,
                pack(head, tail - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
            {
                continue; // lost the race; rescan
            }
            // Single-writer refill: `my` is empty and only its owner (this
            // thread) ever writes an empty slot, so a plain store suffices.
            self.slots[my].store(pack(tail - take, tail), Ordering::Release);
            return FoundWork::Stolen;
        }
    }

    /// Process `[lo, hi)`, trapping panics from the user closure so one
    /// poisoned item cannot kill a persistent worker or strand the
    /// submitter; the panic is re-raised on the submitting thread.
    fn run_range(&self, lo: usize, hi: usize) {
        let r = catch_unwind(AssertUnwindSafe(|| {
            for idx in lo..hi {
                // SAFETY: indices in [lo, hi) were claimed exclusively by a
                // successful CAS, and the submitter keeps `data` alive
                // until `remaining` reaches zero, which we delay below.
                unsafe { (self.exec)(self.data, idx) };
            }
        }));
        if r.is_err() {
            self.panicked.store(true, Ordering::Relaxed);
        }
        if self.remaining.fetch_sub(hi - lo, Ordering::AcqRel) == hi - lo {
            *self.done.lock().unwrap() = true;
            self.done_cv.notify_all();
        }
    }

    /// Work loop of one participant: drain the owned slot, then steal-half
    /// on imbalance; exit (without spinning) once no work is claimable.
    pub(crate) fn participate(&self, my: usize) {
        loop {
            while let Some((lo, hi)) = self.pop_chunk(my) {
                self.run_range(lo, hi);
            }
            match self.steal_into(my) {
                FoundWork::Stolen => continue,
                FoundWork::Empty => return,
            }
        }
    }

    fn wait_done(&self) {
        let mut g = self.done.lock().unwrap();
        while !*g {
            g = self.done_cv.wait(g).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry: persistent workers + injector
// ---------------------------------------------------------------------------

struct Injector {
    queue: VecDeque<Ticket>,
    shutdown: bool,
}

struct Ticket {
    core: Arc<JobCore>,
    slot: usize,
}

/// A persistent pool: `width - 1` worker threads (the submitting thread is
/// the `width`-th participant) sharing an injector queue.
pub(crate) struct Registry {
    pub(crate) width: usize,
    injector: Mutex<Injector>,
    work_ready: Condvar,
}

impl Registry {
    /// Spawn `width - 1` persistent workers. Under the `static-partition`
    /// baseline feature no workers exist: jobs fall back to per-call
    /// scoped threads (the pre-work-stealing behavior kept for A/B
    /// benchmarking).
    pub(crate) fn new(width: usize) -> (Arc<Self>, Vec<JoinHandle<()>>) {
        let registry = Arc::new(Registry {
            width,
            injector: Mutex::new(Injector {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let helpers = if cfg!(feature = "static-partition") {
            0
        } else {
            width.saturating_sub(1)
        };
        let handles = (0..helpers)
            .map(|i| {
                let r = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("mlmd-rayon-{i}"))
                    .spawn(move || worker_loop(r))
                    .expect("failed to spawn rayon shim worker")
            })
            .collect();
        (registry, handles)
    }

    /// Enqueue helper tickets for slots `1..width` of `core`.
    fn inject(&self, core: &Arc<JobCore>, helpers: usize) {
        if helpers == 0 {
            return;
        }
        let mut inj = self.injector.lock().unwrap();
        for slot in 1..=helpers {
            inj.queue.push_back(Ticket {
                core: Arc::clone(core),
                slot,
            });
        }
        drop(inj);
        self.work_ready.notify_all();
    }

    /// Wake every worker so it can observe shutdown; called by
    /// [`crate::ThreadPool::drop`] before joining.
    pub(crate) fn shut_down(&self) {
        self.injector.lock().unwrap().shutdown = true;
        self.work_ready.notify_all();
    }
}

fn worker_loop(registry: Arc<Registry>) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&registry)));
    loop {
        let ticket = {
            let mut inj = registry.injector.lock().unwrap();
            loop {
                if inj.shutdown {
                    return;
                }
                if let Some(t) = inj.queue.pop_front() {
                    break t;
                }
                inj = registry.work_ready.wait(inj).unwrap();
            }
        };
        // A stale ticket (job already finished by other participants)
        // finds every slot empty and returns immediately.
        ticket.core.participate(ticket.slot);
    }
}

/// The default registry used outside any `install` context, sized to the
/// hardware and spawned lazily on first parallel call.
fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        // Workers of the process-wide pool live for the process lifetime;
        // their join handles are intentionally dropped (detached).
        Registry::new(hardware_threads()).0
    })
}

/// The registry the calling thread submits to.
fn current_registry() -> Arc<Registry> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_registry()))
}

// ---------------------------------------------------------------------------
// Job submission
// ---------------------------------------------------------------------------

/// Typed view of one job's buffers; lives on the submitting thread's stack
/// for the duration of [`run_job`].
struct JobData<I, O, F> {
    items: *const I,
    out: *mut O,
    f: *const F,
}

unsafe fn exec_one<I, O, F: Fn(I) -> O>(data: *const (), idx: usize) {
    // SAFETY: caller (JobCore::run_range) holds an exclusive claim on
    // `idx`; `data` points to the live JobData of this job.
    unsafe {
        let d = &*data.cast::<JobData<I, O, F>>();
        let item = std::ptr::read(d.items.add(idx));
        let val = (*d.f)(item);
        std::ptr::write(d.out.add(idx), val);
    }
}

/// Apply `f` to every item on the current registry, preserving item order
/// in the returned vector. Sequential below two effective lanes.
pub(crate) fn run_job<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let len = items.len();
    let width = current_width().min(len);
    if width <= 1 {
        return items.into_iter().map(f).collect();
    }
    assert!(len < u32::MAX as usize, "job too large for packed cursors");
    if cfg!(feature = "static-partition") {
        return static_partition_map(items, f, width);
    }

    let registry = current_registry();
    let mut items = items;
    let mut out: Vec<MaybeUninit<O>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit contents need no initialization.
    unsafe { out.set_len(len) };
    let data = JobData::<I, O, F> {
        items: items.as_ptr(),
        out: out.as_mut_ptr().cast::<O>(),
        f,
    };
    // Contiguous partition: slot i owns [i*len/width, (i+1)*len/width).
    let slots: Box<[AtomicU64]> = (0..width)
        .map(|i| AtomicU64::new(pack(i * len / width, (i + 1) * len / width)))
        .collect();
    let core = Arc::new(JobCore {
        slots,
        remaining: AtomicUsize::new(len),
        panicked: AtomicBool::new(false),
        data: (&data as *const JobData<I, O, F>).cast(),
        exec: exec_one::<I, O, F>,
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    });
    registry.inject(&core, width - 1);
    // The submitter is participant 0 and can finish the whole job alone if
    // every worker is busy — nested jobs therefore never deadlock.
    core.participate(0);
    core.wait_done();

    // Every index was claimed and processed (ptr::read consumed the items),
    // so drop the vector shell without double-dropping its contents. On the
    // panic path some claimed-but-skipped items leak; acceptable for a
    // shim, and the panic is propagated right after.
    unsafe { items.set_len(0) };
    drop(items);
    if core.panicked.load(Ordering::Relaxed) {
        // Dropping a Vec<MaybeUninit<O>> frees the buffer without running
        // any O destructor, so only the resources owned by the initialized
        // (unknowable) subset of outputs leak, not the buffer itself.
        drop(out);
        panic!("rayon shim worker panicked");
    }
    // SAFETY: all `len` outputs were written exactly once.
    unsafe {
        let mut out = std::mem::ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr().cast::<O>(), len, out.capacity())
    }
}

/// The pre-work-stealing execution strategy (PR 1): fresh scoped threads
/// per call, static contiguous buckets, no rebalancing. Kept behind the
/// `static-partition` feature as the A/B baseline for the scaling bench.
fn static_partition_map<I, O, F>(items: Vec<I>, f: &F, width: usize) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let chunk = items.len().div_ceil(width);
    let mut buckets: Vec<Vec<I>> = (0..width).map(|_| Vec::with_capacity(chunk)).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i / chunk].push(item);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| scope.spawn(move || bucket.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}
