//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the slice of rayon's API the MLMD kernels use: parallel
//! mutable slice chunking, `par_iter_mut`, parallel ranges, and sized
//! thread pools. Since PR 2 it is backed by a persistent work-stealing
//! scheduler (the private `registry` module): workers are spawned once per pool (lazily
//! for the implicit global pool), each job's index space is partitioned
//! into per-participant ranges held in atomic cursors, and a participant
//! whose range runs dry steals the upper half of the richest remaining
//! range — so balanced workloads keep contiguous cache-friendly blocks
//! while skewed ones rebalance automatically. `for_each` and `map` run on
//! the pool and `map`/`collect` preserve item order; `sum`, `count`, and
//! `collect` are sequential folds over the already-computed items, so put
//! the expensive work in a preceding `map`.
//!
//! [`ThreadPool::install`] propagates the pool width into submitted jobs:
//! worker threads carry their registry in a thread-local set at spawn, so
//! a nested parallel call inside a worker fans out to the pool width, not
//! to full hardware width (the oversubscription bug of the old per-call
//! scoped-thread implementation, which survives only behind the
//! `static-partition` feature as an A/B benchmarking baseline).

mod registry;

use registry::hardware_threads;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Width parallel iterators fan out to from the calling thread: the
/// innermost installed [`ThreadPool`]'s size, or the hardware parallelism.
pub fn current_num_threads() -> usize {
    registry::current_width()
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// An eagerly materialized list of work items scheduled onto the current
/// pool by the work-stealing registry.
pub struct ParIter<I> {
    items: Vec<I>,
}

pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_items(self) -> Vec<Self::Item>;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        registry::run_job(self.into_items(), &f);
    }

    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        ParIter {
            items: registry::run_job(self.into_items(), &f),
        }
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }

    fn count(self) -> usize {
        self.into_items().len()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }
}

impl<I: Send> ParallelIterator for ParIter<I> {
    type Item = I;

    fn into_items(self) -> Vec<I> {
        self.items
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `par_iter_mut` on collections of `Send` elements.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `into_par_iter` on anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A sized pool with persistent workers. `install` runs the closure on the
/// calling thread but routes every parallel call inside it (the caller's
/// and, transitively, the workers') onto this pool, bounded by its width.
pub struct ThreadPool {
    registry: Arc<registry::Registry>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.registry.width
    }

    /// Run `op` with this pool as the submission target: parallel calls
    /// inside it fan out to at most `self.current_num_threads()` lanes
    /// (the calling thread participates as one of them), and nested
    /// parallel calls issued from worker threads stay on this pool.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = registry::enter(Arc::clone(&self.registry));
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.shut_down();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    width: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a pool of `n` threads. Matching real rayon's documented
    /// contract, `n == 0` means "use the default": the built pool is sized
    /// to the hardware parallelism, exactly as if `num_threads` had never
    /// been called.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.width = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = match self.width {
            Some(0) | None => hardware_threads(),
            Some(n) => n,
        };
        let (registry, workers) = registry::Registry::new(width);
        Ok(ThreadPool { registry, workers })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    #[cfg(not(feature = "static-partition"))]
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_sum() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn chunks_mut_writes_every_element() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * 10 + j;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn map_preserves_order_across_workers() {
        let doubled: Vec<usize> = (0..997usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled.len(), 997);
        for (i, &v) in doubled.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
        let s: usize = (0..100usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 328_350);
    }

    #[test]
    fn install_overrides_width() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn builder_zero_threads_means_default() {
        // Pinned behavior: real rayon documents `num_threads(0)` as "let
        // the builder choose", i.e. identical to not calling it at all.
        let implicit = crate::ThreadPoolBuilder::new().build().unwrap();
        let explicit = crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build()
            .unwrap();
        assert_eq!(
            explicit.current_num_threads(),
            implicit.current_num_threads()
        );
        assert!(explicit.current_num_threads() >= 1);
    }

    /// The nested-fan-out regression (tentpole bug): a parallel call made
    /// *inside* a pool's worker must observe the pool width, not the
    /// hardware width, and concurrent closure executions must never exceed
    /// the installed width.
    #[test]
    #[cfg(not(feature = "static-partition"))]
    fn nested_install_keeps_pool_width() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let widths: Vec<(usize, Vec<usize>)> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|_| {
                    let outer_width = crate::current_num_threads();
                    let inner: Vec<usize> = (0..4usize)
                        .into_par_iter()
                        .map(|_| {
                            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            active.fetch_sub(1, Ordering::SeqCst);
                            crate::current_num_threads()
                        })
                        .collect();
                    (outer_width, inner)
                })
                .collect()
        });
        for (outer, inner) in &widths {
            assert_eq!(*outer, 2, "outer closure saw width {outer}, wanted 2");
            for w in inner {
                assert_eq!(*w, 2, "nested closure saw width {w}, wanted 2");
            }
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "nested fan-out oversubscribed: peak {} live workers in a width-2 pool",
            peak.load(Ordering::SeqCst)
        );
    }

    /// Work stealing must not perturb output order: a heavily skewed
    /// per-item workload (item 0 dwarfs the rest) still collects in item
    /// order.
    #[test]
    fn stealing_preserves_order_under_skew() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let out: Vec<u64> = pool.install(|| {
            (0..257u64)
                .into_par_iter()
                .map(|i| {
                    let spins = if i == 0 { 200_000 } else { 50 };
                    let mut acc = i;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i * 3
                })
                .collect()
        });
        assert_eq!(out.len(), 257);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as u64 * 3, "order violated at index {i}");
        }
    }

    #[test]
    #[cfg(not(feature = "static-partition"))]
    fn panics_propagate_to_the_submitter() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 13 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(r.is_err(), "worker panic must reach the caller");
        // The pool stays usable afterwards.
        let s: usize = pool.install(|| (0..10usize).into_par_iter().sum());
        assert_eq!(s, 45);
    }

    #[test]
    fn pools_drop_cleanly_after_use() {
        for _ in 0..3 {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(3)
                .build()
                .unwrap();
            let v: Vec<u32> = pool.install(|| (0..100u32).into_par_iter().map(|x| x + 1).collect());
            assert_eq!(v[99], 100);
        }
    }
}
