//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim provides the slice of rayon's API the MLMD kernels use: parallel
//! mutable slice chunking, `par_iter_mut`, parallel ranges, and sized
//! thread pools. `for_each` and `map` fan work out over scoped OS threads
//! (static contiguous block partitioning, no work stealing); `sum`,
//! `count`, and `collect` are sequential folds over the already-computed
//! items, so put the expensive work in a preceding `map`.

use std::cell::Cell;

thread_local! {
    static POOL_WIDTH: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Width parallel iterators fan out to on the calling thread: the
/// innermost installed [`ThreadPool`]'s size, or the hardware parallelism.
pub fn current_num_threads() -> usize {
    POOL_WIDTH
        .with(|w| w.get())
        .unwrap_or_else(hardware_threads)
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// An eagerly materialized list of work items processed by a static
/// block partition over scoped threads.
pub struct ParIter<I> {
    items: Vec<I>,
}

pub trait ParallelIterator: Sized {
    type Item: Send;

    fn into_items(self) -> Vec<Self::Item>;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        run_parallel_map(self.into_items(), &f);
    }

    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    fn map<O, F>(self, f: F) -> ParIter<O>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Sync,
    {
        ParIter {
            items: run_parallel_map(self.into_items(), &f),
        }
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.into_items().into_iter().sum()
    }

    fn count(self) -> usize {
        self.into_items().len()
    }

    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }
}

impl<I: Send> ParallelIterator for ParIter<I> {
    type Item = I;

    fn into_items(self) -> Vec<I> {
        self.items
    }
}

/// Apply `f` to every item across scoped threads (contiguous block
/// partition), preserving item order in the returned vector.
fn run_parallel_map<I, O, F>(items: Vec<I>, f: &F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let width = current_num_threads().min(items.len());
    if width <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(width);
    let mut buckets: Vec<Vec<I>> = (0..width).map(|_| Vec::with_capacity(chunk)).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i / chunk].push(item);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| scope.spawn(move || bucket.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `par_iter_mut` on collections of `Send` elements.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `into_par_iter` on anything iterable (ranges, vectors, ...).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C> IntoParallelIterator for C
where
    C: IntoIterator,
    C::Item: Send,
{
    type Item = C::Item;

    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A sized pool. `install` sets the fan-out width seen by
/// [`current_num_threads`] for the duration of the closure; the closure
/// itself runs on the calling thread.
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                POOL_WIDTH.with(|w| w.set(prev));
            }
        }
        let _guard = Restore(POOL_WIDTH.with(|w| w.replace(Some(self.width))));
        op()
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    width: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.width = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = match self.width {
            Some(0) | None => hardware_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { width })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_sum() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn chunks_mut_writes_every_element() {
        let mut v = vec![0usize; 1003];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = i * 10 + j;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn map_preserves_order_across_workers() {
        let doubled: Vec<usize> = (0..997usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(doubled.len(), 997);
        for (i, &v) in doubled.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
        let s: usize = (0..100usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 328_350);
    }

    #[test]
    fn install_overrides_width() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
    }
}
