//! Explore the simulated-Aurora performance model: prints the Table I/II
//! comparisons and the Fig. 4/5 scaling series, then a custom sweep.
//!
//! ```sh
//! cargo run --release --example scaling_explorer
//! ```

use mlmd::exasim::dcmesh_model::{DcMeshModel, GemmPrecision};
use mlmd::exasim::nnqmd_model::NnqmdModel;
use mlmd::exasim::scaling::{self, sweeps};
use mlmd::exasim::sota;

fn main() {
    let dcmesh = DcMeshModel::paper_config();
    let nnqmd = NnqmdModel::paper_config();

    println!("=== Time-to-solution headlines ===");
    let ours = sota::table_i_this_work(&dcmesh);
    println!(
        "DC-MESH : {:.3e} s/(electron·QD step) on {:.2e} electrons ({:.0}x over SOTA)",
        ours.t2s,
        ours.electrons,
        sota::table_i_speedup(&dcmesh)
    );
    let ours2 = sota::table_ii_this_work(&nnqmd);
    println!(
        "XS-NNQMD: {:.3e} s/(atom·weight·step) ({:.0}x over SOTA)",
        ours2.t2s,
        sota::table_ii_speedup(&nnqmd)
    );

    println!("\n=== Precision ladder (Table IV shape) ===");
    for (label, prec) in [
        ("FP64", GemmPrecision::Fp64),
        ("FP32", GemmPrecision::Fp32),
        ("FP32/BF16", GemmPrecision::Fp32Bf16),
    ] {
        let mut m = dcmesh;
        m.precision = prec;
        println!("  {label:<10} QD step: {:.3} s", m.qd_step_time());
    }

    println!("\n=== Fig. 4a: DC-MESH weak scaling (128 e/rank) ===");
    for p in scaling::dcmesh_weak(&dcmesh, 128.0, &sweeps::DCMESH_WEAK) {
        println!(
            "  {:>7} ranks  {:>10.3e} electrons  {:>8.1} s  eff {:.3}",
            p.ranks, p.size, p.time, p.efficiency
        );
    }
    println!("\n=== Fig. 4b: DC-MESH strong scaling (12.58M electrons) ===");
    for p in scaling::dcmesh_strong(&dcmesh, 12_582_912.0, &sweeps::DCMESH_STRONG) {
        println!(
            "  {:>7} ranks  {:>8.1} s  eff {:.3}",
            p.ranks, p.time, p.efficiency
        );
    }
    println!("\n=== Fig. 5a: XS-NNQMD weak scaling (10.24M atoms/rank) ===");
    for p in scaling::nnqmd_weak(&nnqmd, 10_240_000.0, &sweeps::NNQMD_WEAK) {
        println!(
            "  {:>7} ranks  {:>8.1} s  eff {:.3}",
            p.ranks, p.time, p.efficiency
        );
    }
    println!("\n=== Fig. 5b: XS-NNQMD strong scaling (984M atoms) ===");
    for p in scaling::nnqmd_strong(&nnqmd, 984_000_000.0, &sweeps::NNQMD_STRONG) {
        println!(
            "  {:>7} ranks  {:>8.1} s  eff {:.3}",
            p.ranks, p.time, p.efficiency
        );
    }

    println!("\n=== Custom sweep: trillion-atom frontier ===");
    for atoms in [1e11, 1.2288e12, 1e13] {
        let t = nnqmd.md_step_time(120_000, atoms / 120_000.0);
        println!(
            "  {atoms:>10.3e} atoms on 120,000 ranks: {t:>10.1} s/MD step ({:.3e} s/(atom·w·step))",
            nnqmd.t2s(120_000, atoms)
        );
    }
}
