//! The Maxwell–Ehrenfest subproblem: a femtosecond pulse propagating
//! through matter cells coupled to quantum electron dynamics.
//!
//! A 1-D Yee FDTD field carries a Gaussian pulse into a slab of matter
//! cells; each cell's conduction response (computed from a real LFD
//! Ehrenfest run driven by the same field history) feeds a current back
//! into Ampère's law. Prints the per-cell vector potential A(t), the
//! driven current, and the absorbed energy — the observables of
//! Maxwell+TDDFT codes like SALMON (paper refs \[23, 25\]).
//!
//! ```sh
//! cargo run --release --example attosecond_pulse
//! ```

use mlmd::dcmesh::ehrenfest::{pulse_field, run_inner_loop, EhrenfestConfig};
use mlmd::lfd::occupation::Occupations;
use mlmd::lfd::propagator::QdStep;
use mlmd::lfd::wavefunction::WaveFunctions;
use mlmd::maxwell::multiscale::MultiscaleMaxwell;
use mlmd::maxwell::source::GaussianPulse;
use mlmd::numerics::grid::Grid3;
use mlmd::numerics::vec3::Vec3;

fn main() {
    println!("Maxwell–Ehrenfest multiscale run (the ME subproblem of DC-MESH)\n");
    // --- Macroscopic field: pulse into a 4-cell matter slab ---
    let mut field = MultiscaleMaxwell::new(500, 1.0, 0.5, 280, 4, 12);
    let pulse = GaussianPulse::new(0.2, 0.3, 40.0, 12.0);
    let mut currents = vec![0.0; 4];
    println!("step   |   A per matter cell (a.u.)");
    for step in 0..900 {
        let t = field.field.time();
        // Linear conduction response per cell (σE) stands in for the
        // microscopic current during field propagation…
        let response: Vec<f64> = field
            .cells
            .iter()
            .map(|c| {
                let e: f64 = field.field.ex[c.node0..c.node0 + c.width]
                    .iter()
                    .sum::<f64>()
                    / c.width as f64;
                0.05 * e
            })
            .collect();
        currents.copy_from_slice(&response);
        let a = field.step(&currents, Some((40, pulse.field(t) * field.field.dt)));
        if step % 150 == 149 {
            println!(
                "{step:>5}  |  {}",
                a.iter()
                    .map(|x| format!("{x:+.4}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
    }
    // --- Microscopic check: drive a real LFD domain with the same pulse ---
    println!("\nMicroscopic Ehrenfest run in the first matter cell:");
    let grid = Grid3::new(10, 10, 10, 0.5);
    let qd = QdStep::new(grid);
    let mut wf = WaveFunctions::plane_waves(grid, 7);
    let occ = Occupations::uniform(7, 1.0);
    let vloc = vec![0.0; grid.len()];
    let micro_pulse = GaussianPulse::new(0.05, 0.4, 3.0, 1.2);
    let cfg = EhrenfestConfig {
        dt_qd: 0.05,
        n_qd: 200,
        self_consistent: false,
    };
    let res = run_inner_loop(
        &qd,
        &mut wf,
        &occ,
        &vloc,
        Vec3::ZERO,
        pulse_field(micro_pulse, Vec3::EX),
        0.0,
        cfg,
    );
    let peak_j = res
        .current_trace
        .iter()
        .fold(0.0f64, |m, &x| m.max(x.abs()));
    println!("  peak driven current  : {peak_j:.3e} a.u.");
    println!("  final vector potential: {:+.4e} a.u.", res.a_final.x);
    println!("  absorbed energy       : {:+.4e} Ha", res.absorbed_energy);
    println!(
        "  orbital norm error    : {:.2e} (unitarity)",
        wf.norm_error()
    );
}
