//! Simulation as a service: a mixed multi-tenant workload through the
//! job scheduler, with live streamed progress.
//!
//! Three tenants share one service: `spectro` submits four pump–probe
//! sweeps of the *same* material (three coalesce onto one execution via
//! the dedup key), `dynamics` runs a MESH trace and an MD relaxation,
//! and `optics` runs an FDTD pulse at high priority plus one long pulse
//! that gets cancelled mid-run. The example tails the scheduler-wide
//! event stream — queued / deduped / started / progress / cancelled /
//! completed — and closes with the service metrics.
//!
//! ```sh
//! cargo run --release --example serve_jobs
//! ```

use mlmd::core::config::PipelineConfig;
use mlmd::core::engine::SampleStride;
use mlmd::service::{JobEvent, JobResult, JobSpec, Priority, Scheduler, ServiceConfig};

fn main() {
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        progress_stride: SampleStride::new(2),
        dedup: true,
        planner: None,
    });
    let feed = scheduler.subscribe();

    let mut material = PipelineConfig::small_demo();
    material.cells = (4, 4, 1);
    material.prepare_steps = 2;
    material.mesh_steps = 4;
    material.response_steps = 10;

    println!("submitting the mixed workload:\n");
    // Tenant "spectro": four identical sweeps — one runs, three coalesce.
    let sweeps: Vec<_> = (0..4)
        .map(|_| {
            scheduler
                .submit_for(
                    "spectro",
                    Priority::Normal,
                    JobSpec::pump_probe_sweep(material, vec![0.05, 0.1]),
                )
                .expect("admitted")
        })
        .collect();
    // Tenant "dynamics": a MESH trace and an MD relaxation.
    let mesh = scheduler
        .submit_for(
            "dynamics",
            Priority::Normal,
            JobSpec::mesh_run(material, 0.08, 4),
        )
        .expect("admitted");
    let md = scheduler
        .submit_for(
            "dynamics",
            Priority::Low,
            JobSpec::md_run(material, 0.2, 20),
        )
        .expect("admitted");
    // Tenant "optics": a latency-sensitive FDTD pulse, plus a long pulse
    // that will be cancelled mid-run.
    let pulse = scheduler
        .submit_for(
            "optics",
            Priority::High,
            JobSpec::fdtd_pulse(128, 0.2, 0.3, 40),
        )
        .expect("admitted");
    let doomed = scheduler
        .submit_for(
            "optics",
            Priority::Low,
            JobSpec::fdtd_pulse(100_000, 0.2, 0.3, 50_000),
        )
        .expect("admitted");

    // Let the service work; cancel the long pulse once it reports
    // progress (a cooperative stop on a step boundary).
    let mut cancelled_doomed = false;
    loop {
        let event = feed.recv().expect("scheduler alive");
        match event {
            JobEvent::Queued { id } => println!("  {id}: queued"),
            JobEvent::Deduped { id, primary } => {
                println!("  {id}: deduped onto {primary} (identical material + measurement)")
            }
            JobEvent::Started { id } => println!("  {id}: started"),
            JobEvent::Progress {
                id,
                run,
                step,
                of,
                time_fs,
            } => {
                println!("  {id}: run {run} step {step}/{of} (t = {time_fs:.2} fs)");
                if id == doomed.id() && !cancelled_doomed {
                    println!("  {id}: -> cancelling mid-run");
                    doomed.cancel();
                    cancelled_doomed = true;
                }
            }
            JobEvent::Cancelled { id } => println!("  {id}: cancelled"),
            JobEvent::Completed { id, cancelled } => {
                println!("  {id}: completed (cancelled: {cancelled})");
                if id == doomed.id() {
                    break; // the long pulse is the last to resolve
                }
            }
        }
    }

    println!("\nresults:");
    for (i, handle) in sweeps.iter().enumerate() {
        let out = handle.wait();
        let JobResult::PumpProbe(runs) = &out.result else {
            unreachable!()
        };
        println!(
            "  sweep {i} ({}): {} amplitudes, peak n_exc {:.4}{}",
            handle.id(),
            runs.len(),
            runs.last().map(|r| r.n_exc_peak).unwrap_or(0.0),
            if handle.is_deduped() {
                "  [shared execution]"
            } else {
                ""
            },
        );
    }
    let out = mesh.wait();
    if let JobResult::Mesh(trace) = &out.result {
        println!("  mesh ({}): {} records", mesh.id(), trace.len());
    }
    let out = md.wait();
    if let JobResult::Md(trace) = &out.result {
        println!("  md   ({}): {} records", md.id(), trace.len());
    }
    let out = pulse.wait();
    if let JobResult::Fdtd(trace) = &out.result {
        println!("  fdtd ({}): {} records", pulse.id(), trace.len());
    }
    let out = doomed.wait();
    println!(
        "  long pulse ({}): cancelled after {} of 50000 steps (partial trace kept)",
        doomed.id(),
        out.steps_done
    );

    let m = scheduler.metrics();
    println!(
        "\nservice metrics: submitted {}, executed {}, dedup hits {}, cancelled {}, peak queue {}",
        m.submitted, m.executed, m.dedup_hits, m.cancelled, m.peak_queued
    );
    scheduler.shutdown();
}
