//! Distributed global–local SCF: the DC-MESH rank hierarchy in action.
//!
//! Runs the same two-domain Kohn–Sham problem three ways — the serial
//! `DcScf` oracle, then `DistributedDcScf` on 2- and 8-rank simulated-MPI
//! worlds (1 and 4 ranks per domain) — and prints the three band-energy
//! trajectories side by side. They agree to the last bit: the distributed
//! driver shards only column-local work and runs every orbital-coupling
//! step redundantly, so no float sum is ever reordered.
//!
//! ```sh
//! cargo run --release --example distributed_scf
//! ```

use mlmd::dcmesh::dist::run_distributed;
use mlmd::dcmesh::fixture::{small_two_domain, SMALL_ELECTRONS, SMALL_NORB, SMALL_SEED};
use mlmd::dcmesh::scf::DcScf;

fn main() {
    let (dd, atoms) = small_two_domain();
    let (norb, electrons, seed, tol, max_iter) =
        (SMALL_NORB, SMALL_ELECTRONS, SMALL_SEED, 1e-5, 10);

    println!("two-domain DC-MESH SCF, {} orbitals/domain\n", norb);
    let mut serial = DcScf::new(dd.clone(), norb, electrons, atoms.clone(), seed);
    let serial_hist = serial.converge(tol, max_iter);
    let dist1 = run_distributed(&dd, norb, electrons, &atoms, seed, 1, tol, max_iter);
    let dist4 = run_distributed(&dd, norb, electrons, &atoms, seed, 4, tol, max_iter);

    println!("iter   E_band (serial)      E_band (2 ranks)     E_band (8 ranks)");
    for ((s, d1), d4) in serial_hist.iter().zip(&dist1).zip(&dist4) {
        println!(
            "{:3}    {:18.12}   {:18.12}   {:18.12}",
            s.iter, s.band_energy, d1.band_energy, d4.band_energy
        );
        assert_eq!(s.band_energy.to_bits(), d1.band_energy.to_bits());
        assert_eq!(s.band_energy.to_bits(), d4.band_energy.to_bits());
    }
    println!(
        "\nall {} iterations bit-identical across 1 and 4 ranks per domain",
        serial_hist.len()
    );
}
