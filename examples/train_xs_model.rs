//! Train the Allegro-lite XS-NNQMD model stack end to end:
//!
//! 1. generate ground-state and excited-state reference datasets from the
//!    QXMD effective model (the synthetic NAQMD data of DESIGN.md);
//! 2. unify a second "fidelity" with TEA (MSA-2);
//! 3. pretrain the foundation model (SAM/Legato training);
//! 4. fine-tune the XS model from the FM weights;
//! 5. report held-out force errors and the Eq. (4) mixed-force behaviour,
//!    plus the fidelity-scaling exponents of ref \[27\].
//!
//! ```sh
//! cargo run --release --example train_xs_model
//! ```

use mlmd::nnqmd::failure::FidelityScalingModel;
use mlmd::nnqmd::fm::{fine_tune, pretrain};
use mlmd::nnqmd::gen::{generate, GenConfig};
use mlmd::nnqmd::mix::XsGsModel;
use mlmd::nnqmd::model::{AllegroLite, ModelConfig};
use mlmd::nnqmd::tea;
use mlmd::nnqmd::train::{force_rmse, Dataset, Frame};

fn main() {
    let cfg = ModelConfig {
        hidden: 8,
        k_max: 5,
        rcut: 4.5,
    };
    // --- datasets ---
    println!("generating reference data from the QXMD effective model…");
    let gs = generate(GenConfig {
        cells: (2, 2, 2),
        n_frames: 16,
        excitation: 0.0,
        seed: 101,
        ..Default::default()
    });
    let xs = generate(GenConfig {
        cells: (2, 2, 2),
        n_frames: 12,
        excitation: 0.12,
        seed: 102,
        ..Default::default()
    });
    let (xs_train, xs_val) = xs.split(0.75);
    // --- TEA: fold in a shifted-fidelity copy of the GS data ---
    let foreign = Dataset {
        frames: gs
            .frames
            .iter()
            .map(|f| Frame {
                energy: 1.1 * f.energy + 75.0,
                forces: f.forces.iter().map(|v| *v * 1.1).collect(),
                species: f.species.clone(),
                positions: f.positions.clone(),
                box_lengths: f.box_lengths,
            })
            .collect(),
    };
    let overlaps = vec![gs
        .frames
        .iter()
        .map(|f| (1.1 * f.energy + 75.0, f.energy))
        .collect::<Vec<_>>()];
    let unified = tea::unify(&[gs.clone(), foreign], &overlaps);
    println!(
        "TEA unified {} + {} frames onto one energy scale",
        gs.len(),
        unified.len() - gs.len()
    );
    // --- FM pretraining (GS, SAM) ---
    let mut fm = AllegroLite::new(cfg, 7);
    println!(
        "pretraining the foundation model ({} params)…",
        fm.n_params()
    );
    let history = pretrain(&mut fm, &unified, 60, 5e-3);
    println!(
        "  loss {:.4} -> {:.4} over {} epochs",
        history[0],
        history.last().unwrap(),
        history.len()
    );
    println!("  GS force RMSE: {:.4} eV/Å", force_rmse(&fm, &gs));
    // --- XS fine-tune ---
    println!("fine-tuning the XS model from FM weights…");
    let xs_model = fine_tune(&fm, &xs_train, 30, 2e-3);
    println!(
        "  XS force RMSE (held out): {:.4} eV/Å (FM before tuning: {:.4})",
        force_rmse(&xs_model, &xs_val),
        force_rmse(&fm, &xs_val)
    );
    // --- Eq. (4) mixing ---
    let mut mixed = XsGsModel::new(fm, xs_model, 0.05);
    let frame = &xs_val.frames[0];
    for n_exc_per_atom in [0.0, 0.025, 0.05] {
        mixed.set_excitation(
            n_exc_per_atom * frame.positions.len() as f64,
            frame.positions.len(),
        );
        let (e, _) = mixed.evaluate(&frame.species, &frame.positions, frame.box_lengths);
        println!(
            "  w = {:.2}: mixed energy {:+.3} eV (Eq. 4 blend)",
            mixed.weight(),
            e
        );
    }
    // --- fidelity scaling ---
    let sizes: Vec<f64> = (0..5).map(|i| 1e4 * 10f64.powi(i)).collect();
    let ep = FidelityScalingModel::allegro().measured_exponent(&sizes, 2000, 1);
    let el = FidelityScalingModel::allegro_legato().measured_exponent(&sizes, 2000, 2);
    println!("\nfidelity scaling t_failure ∝ N^α:");
    println!("  Allegro        α = {ep:.3}  [paper: -0.29]");
    println!("  Allegro-Legato α = {el:.3}  [paper: -0.14]");
}
