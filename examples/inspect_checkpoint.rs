//! Inspect a ground-state checkpoint file: print its self-describing
//! header (format version, config hash, descent metadata, panel shape)
//! without deserializing the panel itself. The trailing payload digest
//! is still verified first, so a corrupt file is reported as corrupt,
//! never summarized.
//!
//! ```sh
//! cargo run --release --example inspect_checkpoint -- path/to/state.ckpt
//! ```
//!
//! With no argument, the example saves the canonical MESH fixture's
//! ground state to a temporary file and inspects that — a one-command
//! demonstration of the full save → header → load-for-key cycle.
//! `scripts/ckpt_header.sh` wraps the single-file form.

use mlmd::dcmesh::checkpoint::{self, CheckpointError};
use mlmd::dcmesh::fixture::small_mesh_builder;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn inspect(path: &Path) -> Result<(), CheckpointError> {
    let header = checkpoint::read_header(path)?;
    println!("checkpoint   {}", path.display());
    println!("version      {}", header.version);
    println!("config hash  {:#018x}", header.config_hash);
    println!(
        "payload      {} bytes (digest verified)",
        header.payload_len
    );
    println!(
        "descent      eta = {}, steps = {}",
        header.meta.eta, header.meta.steps
    );
    println!(
        "panel        {} orbitals on a {}x{}x{} grid (h = {})",
        header.norb, header.grid.0, header.grid.1, header.grid.2, header.grid_h
    );
    Ok(())
}

fn main() -> ExitCode {
    let path = match std::env::args_os().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => {
            // Demo mode: descend the fixture once, save, inspect.
            let builder = small_mesh_builder(0.05);
            let key = builder.config_key();
            let gs = builder.ground_state();
            let path = std::env::temp_dir().join(format!("mlmd_demo_{}.ckpt", std::process::id()));
            checkpoint::save_checkpoint(&gs, &path).expect("save demo checkpoint");
            println!("no path given; wrote the MESH fixture's ground state\n");
            let r = inspect(&path);
            let loaded = checkpoint::load_for_key(&path, key).expect("reload demo checkpoint");
            println!(
                "\nload_for_key round-trip: panel digest {:#018x}",
                loaded.panel.panel_digest()
            );
            let _ = std::fs::remove_file(&path);
            r.expect("demo header");
            return ExitCode::SUCCESS;
        }
    };
    match inspect(&path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
