//! Floquet superlattice sweep as a service job: scan SSH-dimer
//! geometries under one CW drive and print the paper-style figure table
//! — geometry × band invariant × sideband weights.
//!
//! An 8-configuration dimerization scan (η from deep-trivial to
//! deep-topological) runs as a single `JobSpec::FloquetSweep` through a
//! planner-enabled scheduler: one cancellable `RunPlan` batch on the
//! work-stealing pool, one streaming `FloquetObserver` per geometry, no
//! post-hoc trace storage. The table shows the quantized charge of the
//! dimer Bloch map flipping sign at the η = 1 transition exactly where
//! the edge-state localization score jumps.
//!
//! ```sh
//! cargo run --release --example floquet_sweep
//! ```

use mlmd::core::engine::SampleStride;
use mlmd::exasim::calibrate::{calibrate, CalibrationConfig};
use mlmd::exasim::planner::Planner;
use mlmd::exasim::Machine;
use mlmd::floquet::sweep::{DimerConfig, SuperlatticeSweep, EDGE_SCORE_THRESHOLD};
use mlmd::service::{JobResult, JobSpec, Scheduler, ServiceConfig};

fn main() {
    // A quick real fit of this host, so the admission gate prices the
    // sweep in actual seconds.
    let cal = calibrate(&CalibrationConfig::quick());
    let planner = Planner::new(Machine::from_calibration(&cal), cal);
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        progress_stride: SampleStride::new(400),
        dedup: true,
        planner: Some(planner),
    });

    let etas = [0.3, 0.5, 0.7, 0.9, 1.1, 1.5, 2.0, 3.0];
    let sweep = SuperlatticeSweep::canonical(
        etas.iter()
            .map(|&dimerization| DimerConfig {
                dimerization,
                patch_period: 20,
            })
            .collect(),
    );
    println!(
        "SSH-dimer superlattice sweep: {} geometries x {} steps, drive ω₀ = {}",
        sweep.configs.len(),
        sweep.n_steps,
        sweep.drive.carrier_omega()
    );

    let job = scheduler
        .submit(JobSpec::floquet_sweep(sweep))
        .expect("sweep admitted");
    if let Some(plan) = job.plan() {
        println!(
            "planner: predicted {:.3} s of pool time\n",
            plan.predicted_secs
        );
    }
    let out = job.wait();
    let JobResult::Floquet(points) = &out.result else {
        panic!("floquet result expected");
    };

    println!("      η   charge   resid      edge-score  phase        S₁       S₂       S₃");
    println!("  -----   ------   --------   ----------  -----------  ------   ------   ------");
    for p in points {
        let phase = if p.topological {
            "topological"
        } else {
            "trivial"
        };
        println!(
            "  {:5.2}   {:+6}   {:8.1e}   {:10.4}  {:<11}  {:.4}   {:.4}   {:.4}",
            p.config.dimerization,
            p.charge,
            p.charge_residual,
            p.edge_score,
            phase,
            p.spectrum.sideband_weight(1),
            p.spectrum.sideband_weight(2),
            p.spectrum.sideband_weight(3),
        );
    }
    println!(
        "\nedge-score threshold {EDGE_SCORE_THRESHOLD}: charge flips sign at η = 1, \
         edge states appear on the topological side"
    );
    let m = scheduler.metrics();
    println!(
        "service: {} completed, predicted {:.3} s vs actual {:.3} s",
        m.completed, m.predicted_secs, m.actual_secs
    );
    scheduler.shutdown();
}
