//! Pump–probe amplitude sweep on the engine layer: N lit DC-MESH drivers
//! plus one shared dark reference, executed as a single `RunPlan` batch
//! on the work-stealing pool.
//!
//! The sweep maps the fluence dependence of the electronic excitation —
//! the knob that decides whether the skyrmion superlattice switches
//! (excitation above the critical fraction flattens the double well).
//!
//! ```sh
//! cargo run --release --example pump_probe_sweep
//! ```

use mlmd::core::config::PipelineConfig;
use mlmd::core::msa::XnNnCoupling;
use mlmd::core::pipeline::Pipeline;

fn main() {
    let config = PipelineConfig::small_demo();
    let pipeline = Pipeline::new(config);
    let amplitudes = [0.02, 0.05, 0.08, 0.1, 0.15];
    println!(
        "Pump–probe sweep: {} lit runs + 1 dark reference in one RunPlan batch\n",
        amplitudes.len()
    );
    // The same MSA-3 extrapolation the pipeline applies to its measurement.
    let coupling = XnNnCoupling {
        domain_electrons: 4.0,
        supercell_cells: config.n_cells() as f64,
        gain: config.excitation_gain,
    };
    println!("  E0 (a.u.)   peak n_exc   cell fraction (critical: 0.09)");
    for run in pipeline.pump_probe_sweep(&amplitudes) {
        let fraction = coupling.cell_fraction(run.n_exc_peak);
        println!(
            "  {:>7.3}     {:>8.4}     {:>8.3}   {}",
            run.e0,
            run.n_exc_peak,
            fraction,
            if fraction > 0.09 { "-> switches" } else { "" }
        );
    }
}
