//! Fig. 3 reproduction: photo-switching of a ferroelectric skyrmion
//! *superlattice* in PbTiO3.
//!
//! A 2×2 array of polar skyrmions (|Q| = 4 per layer) is prepared with
//! the ground-state force field, pumped by a femtosecond pulse through
//! DC-MESH, and evolved on the excitation-reshaped (XS) landscape. The
//! run prints the layer-resolved topological charges before and after —
//! the light erases the superlattice, the dark control preserves it.
//!
//! ```sh
//! cargo run --release --example photoswitch_superlattice
//! ```

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;
use mlmd::topo::switching::TextureReport;

fn run_once(pulse_e0: f64) {
    let mut config = PipelineConfig::superlattice_demo();
    config.pulse_e0 = pulse_e0;
    let label = if pulse_e0 > 0.0 {
        "PUMPED"
    } else {
        "DARK CONTROL"
    };
    println!("=== {label}: E0 = {pulse_e0} a.u. ===");
    let mut pipeline = Pipeline::new(config);
    let before = TextureReport::analyze(&pipeline.polarization());
    println!(
        "before: layer charges {:?}  polar order {:.3} Å",
        before
            .layer_charges
            .iter()
            .map(|q| format!("{q:+.2}"))
            .collect::<Vec<_>>(),
        before.polar_order
    );
    let outcome = pipeline.run();
    println!(
        "pulse:  peak excitation {:.4} -> cell fraction {:.3} (critical: 0.09)",
        outcome.n_exc_peak, outcome.excitation_fraction
    );
    println!(
        "after:  layer charges {:?}  polar order {:.3} Å",
        outcome
            .verdict
            .after
            .layer_charges
            .iter()
            .map(|q| format!("{q:+.2}"))
            .collect::<Vec<_>>(),
        outcome.verdict.after.polar_order
    );
    println!(
        "verdict: switched = {}  (order suppression {:.1}%)\n",
        outcome.verdict.topology_switched,
        100.0 * outcome.verdict.order_suppression
    );
}

fn main() {
    println!("Photo-switching of a PbTiO3 skyrmion superlattice (paper Fig. 3)\n");
    run_once(0.1);
    run_once(0.0);
}
