//! Distributed MESH step driver: the Maxwell/Ehrenfest/hopping loop on
//! simulated-MPI ranks.
//!
//! Runs the canonical MESH fixture three ways — the serial `MeshDriver`
//! oracle, `DistributedMeshDriver` on a 4-rank world (band-sharded
//! Ehrenfest propagation within one domain), and a lit/dark pump-probe
//! pair as a two-domain world — and prints the excitation trajectories
//! side by side. Lit runs agree to the last bit: the distributed driver
//! shards only column-local work (propagation, current terms, excitation
//! terms, band energies) and runs every coupling step redundantly, so no
//! float sum is ever reordered.
//!
//! ```sh
//! cargo run --release --example distributed_mesh
//! ```

use mlmd::dcmesh::dist_mesh::run_distributed_mesh;
use mlmd::dcmesh::fixture::{small_mesh_builder, small_mesh_driver};

fn main() {
    let (e0, steps) = (0.05, 4);

    println!("MESH fixture: 8-state panel, 3x3x3 PbTiO3 patch, E0 = {e0}\n");
    let serial = small_mesh_driver(e0).run(steps);
    let dist = run_distributed_mesh(1, 4, steps, |_| small_mesh_builder(e0));
    let pair = run_distributed_mesh(2, 2, steps, |d| {
        small_mesh_builder(if d == 0 { e0 } else { 0.0 })
    });

    println!("step   n_exc (serial)       n_exc (4 ranks)      n_exc (dark domain)");
    for (i, ((s, d), dark)) in serial.iter().zip(&dist[0]).zip(&pair[1]).enumerate() {
        println!(
            "{:3}    {:18.12}   {:18.12}   {:18.12}",
            i, s.n_exc, d.n_exc, dark.n_exc
        );
        assert_eq!(s.n_exc.to_bits(), d.n_exc.to_bits());
        assert_eq!(s.n_exc.to_bits(), pair[0][i].n_exc.to_bits());
    }
    println!(
        "\nlit trajectory bit-identical across 1 and 4 ranks per domain, \
         and inside the two-domain lit/dark world"
    );
    println!(
        "final patch topological charge: {:+.3}",
        serial.last().unwrap().topological_charge
    );
}
