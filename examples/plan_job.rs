//! Calibrate this machine, then let the planner gate service admission.
//!
//! The example fits a [`Calibration`] from short probe workloads (probed
//! collectives + fixture MESH/MD/FDTD runs), prints the fitted
//! constants, and opens a scheduler with the planner wired into
//! admission. It then submits three jobs: a right-sized MESH run (shows
//! the chosen plan and, after execution, the prediction error), a
//! deliberately oversized run (refused with the typed verdict before it
//! can occupy a queue slot), and an MD relaxation predicted long enough
//! to be demoted to the batch band.
//!
//! ```sh
//! cargo run --release --example plan_job
//! ```
//!
//! [`Calibration`]: mlmd::exasim::calibrate::Calibration

use mlmd::core::config::PipelineConfig;
use mlmd::core::engine::SampleStride;
use mlmd::exasim::calibrate::{calibrate, CalibrationConfig, FIXTURE_E0};
use mlmd::exasim::planner::{PlanLimits, Planner};
use mlmd::exasim::Machine;
use mlmd::service::{JobSpec, Scheduler, ServiceConfig, SubmitError};

fn main() {
    println!("calibrating this machine (short probe workloads)...");
    let cal = calibrate(&CalibrationConfig::quick());
    println!("  collective alpha    {:>12.3e} s/op", cal.alpha);
    println!("  collective beta     {:>12.3e} s/B", cal.beta);
    println!("  MESH step (serial)  {:>12.6} s", cal.mesh_step);
    println!("  construction (cold) {:>12.6} s", cal.construct_cold);
    println!("  construction (warm) {:>12.6} s", cal.construct_warm);
    println!(
        "  MESH step at 1/2/4 ranks/domain: {:.6} / {:.6} / {:.6} s",
        cal.dist_step[0], cal.dist_step[1], cal.dist_step[2]
    );
    println!("  MD per atom-step    {:>12.3e} s", cal.md_atom_step);
    println!("  FDTD per cell-step  {:>12.3e} s", cal.fdtd_cell_step);

    // Tight limits so the example's "oversized" job is visibly refused.
    let planner = Planner::new(Machine::from_calibration(&cal), cal).with_limits(PlanLimits {
        max_wall_secs: 30.0,
        max_cost_rank_secs: 120.0,
        batch_threshold_secs: 0.05,
        max_trace_samples: 100_000,
    });
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        progress_stride: SampleStride::new(10),
        dedup: true,
        planner: Some(planner),
    });

    let mut material = PipelineConfig::small_demo();
    material.cells = (4, 4, 1);
    material.prepare_steps = 0;

    // 1. A right-sized job: admitted, annotated, predicted.
    let steps = 16;
    let job = scheduler
        .submit(JobSpec::mesh_run(material, FIXTURE_E0, steps))
        .expect("right-sized job admitted");
    let plan = job.plan().expect("planner annotated the job");
    println!("\nMESH run ({steps} steps) admitted:");
    println!(
        "  plan: ranks/domain {:?}, batch width {}, stride {}",
        plan.ranks_per_domain, plan.batch_width, plan.sample_stride
    );
    println!("  predicted {:.4} s wall-clock", plan.predicted_secs);
    let out = job.wait();
    assert!(!out.cancelled);
    let m = scheduler.metrics();
    println!(
        "  measured  {:.4} s  ({:+.1}% prediction error)",
        m.actual_secs,
        100.0 * (m.actual_secs - m.predicted_secs) / m.predicted_secs
    );

    // 2. An oversized job: refused before it can queue.
    match scheduler.submit(JobSpec::mesh_run(material, FIXTURE_E0, 10_000_000)) {
        Err(SubmitError::PlanRejected(verdict)) => {
            println!("\nMESH run (10M steps) refused at admission:");
            println!("  {verdict}");
        }
        other => panic!("expected a plan rejection, got {other:?}"),
    }

    // 3. A long MD relaxation: admitted but demoted to the batch band.
    let md = scheduler
        .submit(JobSpec::md_run(material, 0.2, 50_000))
        .expect("MD job admitted");
    let md_plan = md.plan().expect("planned");
    md.wait();
    let m = scheduler.metrics();
    println!(
        "\nMD relaxation predicted {:.3} s (> {:.2} s batch threshold): demoted jobs so far: {}",
        md_plan.predicted_secs, 0.05, m.demoted
    );
    println!(
        "\nservice metrics: planned {}, plan-rejected {}, demoted {}, predicted {:.3} s, actual {:.3} s",
        m.planned, m.plan_rejected, m.demoted, m.predicted_secs, m.actual_secs
    );
    scheduler.shutdown();
}
