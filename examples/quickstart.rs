//! Quickstart: the end-to-end MLMD pipeline on a laptop-scale problem.
//!
//! Builds a PbTiO3 supercell holding one polar skyrmion, fires a
//! femtosecond laser pulse at an embedded DC-MESH quantum region, feeds
//! the measured excitation into the excited-state force field, and
//! reports whether the skyrmion survived.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;

fn main() {
    let config = PipelineConfig::small_demo();
    println!(
        "MLMD quickstart: {}x{}x{} PbTiO3 supercell ({} atoms), pulse E0 = {} a.u.",
        config.cells.0,
        config.cells.1,
        config.cells.2,
        config.n_atoms(),
        config.pulse_e0
    );
    let mut pipeline = Pipeline::new(config);
    let outcome = pipeline.run();
    println!("\n--- DC-MESH pulse stage ---");
    for r in outcome.mesh_records.iter() {
        println!(
            "  t = {:5.2} fs   n_exc = {:.4}   |P| = {:.4} Å",
            r.time_fs,
            r.n_exc,
            r.mean_polarization.norm()
        );
    }
    println!(
        "\npump-probe excitation: {:.4} electrons -> per-cell fraction {:.3}",
        outcome.n_exc_peak, outcome.excitation_fraction
    );
    println!("\n--- XS-NNQMD response stage ---");
    for p in outcome.response_trace.iter().step_by(5) {
        println!(
            "  t = {:6.1} fs   polar order = {:.4} Å   Q = {:+.2}",
            p.time_fs, p.polar_order, p.mean_charge
        );
    }
    println!("\n--- verdict ---");
    println!(
        "topological charge: {:+.2} -> {:+.2}",
        outcome.initial_topological_charge, outcome.final_topological_charge
    );
    println!(
        "polar order suppressed by {:.1}%  |  topology switched: {}",
        100.0 * outcome.verdict.order_suppression,
        outcome.verdict.topology_switched
    );
}
