//! Integration: the shadow-dynamics transfer claims (paper Sec. V.A.3)
//! hold through a full MESH loop, measured on the byte ledger.

use mlmd::dcmesh::ehrenfest::EhrenfestConfig;
use mlmd::dcmesh::mesh::{MeshConfig, MeshDriver};
use mlmd::lfd::occupation::Occupations;
use mlmd::lfd::potential::AtomSite;
use mlmd::lfd::wavefunction::WaveFunctions;
use mlmd::maxwell::source::GaussianPulse;
use mlmd::numerics::grid::Grid3;
use mlmd::numerics::vec3::Vec3;
use mlmd::parallel::device::TransferLedger;
use mlmd::qxmd::ferro::{FerroModel, FerroParams};
use mlmd::qxmd::perovskite::PerovskiteLattice;
use std::sync::Arc;

fn driver(ledger: Arc<TransferLedger>) -> MeshDriver {
    let grid = Grid3::new(8, 8, 8, 0.5);
    let wf = WaveFunctions::plane_waves(grid, 8);
    let occ = Occupations::aufbau(8, 4.0);
    let p = FerroParams::pbtio3();
    let u_star = ((3.0 * p.j_nn - p.a2) / (2.0 * p.a4)).sqrt();
    let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
    let ferro = FerroModel::new(&lat, p);
    let pulse = GaussianPulse::new(0.05, 0.8, 4.0, 2.0);
    let site = AtomSite {
        pos: Vec3::new(2.0, 2.0, 2.0),
        z_eff: 1.0,
        sigma: 0.8,
    };
    let cfg = MeshConfig {
        ehrenfest: EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 40,
            self_consistent: false,
        },
        ..Default::default()
    };
    MeshDriver::new(
        cfg,
        wf,
        occ,
        lat.system.clone(),
        ferro,
        pulse,
        vec![(0, site)],
        ledger,
    )
}

#[test]
fn wavefunctions_cross_the_link_exactly_once() {
    let ledger = Arc::new(TransferLedger::new());
    let mut d = driver(Arc::clone(&ledger));
    let psi_bytes = d.shadow.psi_bytes();
    // Initial upload: ψ + v.
    let init_h2d = ledger.h2d_bytes();
    assert!(init_h2d >= psi_bytes);
    d.run(4);
    // After 4 MD steps (160 QD steps), the additional H2D traffic must be
    // per-step Δv/Δf only — far below even one ψ re-upload per MD step.
    let loop_h2d = ledger.h2d_bytes() - init_h2d;
    assert!(
        loop_h2d < 4 * psi_bytes,
        "loop H2D {loop_h2d} must stay below 4x ψ bytes {psi_bytes}"
    );
    // And the naive alternative (ψ down+up per QD step) would be
    // 2 × 160 × ψ — assert we are at least 100× below it.
    let naive = 2 * 160 * psi_bytes;
    assert!(ledger.total_bytes() * 100 < naive);
}

#[test]
fn report_payload_is_occupation_sized() {
    let ledger = Arc::new(TransferLedger::new());
    let mut d = driver(Arc::clone(&ledger));
    ledger.reset();
    let records = d.run(1);
    assert_eq!(records.len(), 1);
    // The D2H payload per step: Δf (norb) + n_exc + J — tens of bytes.
    let d2h = ledger.d2h_bytes();
    assert!(d2h < 1024, "D2H per MD step must be O(Norb): {d2h} bytes");
}
