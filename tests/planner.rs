//! End-to-end pin of the calibrated planner in service admission: a real
//! `calibrate()` fit must predict a real scheduler execution within 2×,
//! and the admission gate must refuse oversized work with the typed
//! verdict — the PR-8 acceptance criteria, asserted against the public
//! API only.

use mlmd_core::config::PipelineConfig;
use mlmd_core::engine::SampleStride;
use mlmd_exasim::calibrate::{calibrate, Calibration, CalibrationConfig, FIXTURE_E0};
use mlmd_exasim::planner::{PlanLimits, Planner};
use mlmd_exasim::Machine;
use mlmd_service::scheduler::{Scheduler, ServiceConfig, SubmitError};
use mlmd_service::{JobSpec, Priority};
use std::time::Duration;

/// The small-fixture material: the pipeline's MESH stage is the same
/// 8³-grid / 8-state / 30-QD-step domain the calibration probes, so the
/// fitted constants transfer to the job without any shape scaling.
fn fixture_material() -> PipelineConfig {
    let mut cfg = PipelineConfig::small_demo();
    cfg.cells = (4, 4, 1);
    cfg.prepare_steps = 0;
    cfg
}

fn planned_scheduler(planner: Planner) -> Scheduler {
    Scheduler::new(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        progress_stride: SampleStride::EVERY,
        dedup: true,
        planner: Some(planner),
    })
}

/// A deterministic synthetic fit for the tests that exercise admission
/// logic rather than prediction accuracy.
fn synthetic_planner() -> Planner {
    let cal = Calibration {
        alpha: 2.0e-6,
        beta: 5.0e-11,
        mesh_step: 0.010,
        n_qd: 30.0,
        construct_cold: 0.008,
        construct_warm: 0.0008,
        dist_step: [0.0; 3],
        dist_fixed: [0.0; 3],
        md_atom_step: 2.0e-7,
        fdtd_cell_step: 4.0e-9,
    };
    Planner::new(Machine::from_calibration(&cal), cal)
}

#[test]
fn calibrated_prediction_matches_measured_wall_clock_within_2x() {
    // A real fit of this host, then a real execution of the same fixture
    // through the service. 12 MD steps amortize per-step noise; the 2×
    // band is the acceptance criterion, not a tight timing assertion.
    let cal = calibrate(&CalibrationConfig::quick());
    assert!(cal.mesh_step > 0.0, "fit measured a positive step time");
    let planner = Planner::new(Machine::from_calibration(&cal), cal).with_limits(PlanLimits {
        max_wall_secs: 600.0,
        max_cost_rank_secs: 2400.0,
        ..PlanLimits::default()
    });
    let s = planned_scheduler(planner);
    let steps = 12;
    let job = s
        .submit(JobSpec::mesh_run(fixture_material(), FIXTURE_E0, steps))
        .expect("small fixture job admitted");
    let plan = job.plan().expect("admitted job carries its plan");
    assert!(plan.predicted_secs > 0.0);
    let out = job.wait();
    assert!(!out.cancelled);
    assert_eq!(out.steps_done, steps);
    let m = s.metrics();
    assert_eq!(m.planned, 1);
    assert!(m.predicted_secs > 0.0 && m.actual_secs > 0.0);
    let ratio = m.actual_secs / m.predicted_secs;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "measured {} s vs predicted {} s: ratio {ratio} outside the 2× band",
        m.actual_secs,
        m.predicted_secs
    );
    s.shutdown();
}

#[test]
fn oversized_job_is_refused_with_the_typed_verdict() {
    let s = planned_scheduler(synthetic_planner());
    // 10 ms/step × 10⁷ steps ≈ 28 hours predicted: far over the 60 s
    // admission limit, refused before it can occupy a queue slot.
    let huge = JobSpec::mesh_run(fixture_material(), 0.05, 10_000_000);
    let err = s.submit(huge).unwrap_err();
    let SubmitError::PlanRejected(verdict) = err else {
        panic!("expected PlanRejected, got {err:?}");
    };
    assert!(!verdict.is_accept());
    let text = format!("{verdict}");
    assert!(text.contains("reject"), "{text}");
    let m = s.metrics();
    assert_eq!(m.plan_rejected, 1);
    assert_eq!(m.admitted, 0, "rejection happened before admission");
    // The same scheduler still serves right-sized work.
    let ok = s.submit(JobSpec::fdtd_pulse(64, 0.2, 0.3, 25)).unwrap();
    assert!(!ok.wait().cancelled);
    s.shutdown();
}

#[test]
fn predicted_long_jobs_queue_behind_interactive_work() {
    let mut planner = synthetic_planner();
    // Everything FDTD-sized is "interactive"; mesh work is "batch".
    planner.limits.batch_threshold_secs = 0.001;
    planner.limits.max_wall_secs = f64::INFINITY;
    planner.limits.max_cost_rank_secs = f64::INFINITY;
    let s = planned_scheduler(planner);
    // Stall the single worker so queue order alone decides execution
    // order (the FDTD blocker itself predicts over the threshold and is
    // demoted — irrelevant, it runs first regardless).
    let blocker = s
        .submit(JobSpec::fdtd_pulse(100_000, 0.2, 0.99, 20_000))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let feed = s.subscribe();
    // Submitted second at Normal, but predicted long → demoted to Low.
    let batch = s
        .submit_for(
            "t",
            Priority::Normal,
            JobSpec::fdtd_pulse(4_096, 0.2, 0.41, 2_000),
        )
        .unwrap();
    // Submitted last at Normal, predicted short → stays Normal, runs first.
    let interactive = s
        .submit_for("t", Priority::Normal, JobSpec::fdtd_pulse(32, 0.2, 0.42, 8))
        .unwrap();
    blocker.cancel();
    interactive.wait();
    batch.wait();
    let started: Vec<_> = feed
        .try_iter()
        .filter_map(|e| match e {
            mlmd_service::JobEvent::Started { id } => Some(id),
            _ => None,
        })
        .collect();
    assert_eq!(
        started,
        vec![interactive.id(), batch.id()],
        "the short job overtook the demoted batch job"
    );
    assert!(s.metrics().demoted >= 2, "blocker and batch were demoted");
    s.shutdown();
}
