//! Integration suite for the job-service layer (PR 7):
//!
//! 1. `RunPlan` batches preserve submission order at pool widths 1, 2,
//!    and 4, and a run cancelled mid-batch reports a partial trace (a
//!    valid prefix) while its batch-mates complete untouched.
//! 2. The scheduler coalesces identical-material sweeps onto one
//!    execution (dedup hit-rate 7/8 on an 8-sweep batch) while the
//!    process-wide ground-state cache keeps the eigenstate descent to at
//!    most one compute.
//! 3. Cancellation is observed for both queued jobs (resolved
//!    `Unstarted`, never started) and running jobs (partial trace), and
//!    the bounded queue pushes back with `QueueFull` instead of growing.

use mlmd::core::config::PipelineConfig;
use mlmd::core::engine::{CancelToken, RunPlan, SampleStride, Stepper, TraceObserver};
use mlmd::dcmesh::checkpoint::GroundStateCache;
use mlmd::service::loadgen;
use mlmd::service::{JobEvent, JobResult, JobSpec, Scheduler, ServiceConfig, SubmitError};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic integration stepper: counts steps and (optionally)
/// fires its own cancel token *during* step `cancel_at`, so the engine
/// observes the cancellation at the next step boundary.
struct CancelAt {
    count: usize,
    cancel_at: usize,
    token: CancelToken,
}

impl CancelAt {
    fn free(tag: usize) -> Self {
        Self {
            count: tag * 1000, // distinct record streams per run
            cancel_at: usize::MAX,
            token: CancelToken::new(),
        }
    }
}

impl Stepper for CancelAt {
    type Record = usize;

    fn step(&mut self) -> usize {
        self.count += 1;
        if self.count % 1000 == self.cancel_at {
            self.token.cancel();
        }
        self.count
    }

    fn time_fs(&self) -> f64 {
        self.count as f64
    }
}

#[test]
fn run_plan_keeps_submission_order_and_partial_traces_at_all_widths() {
    const STEPS: usize = 8;
    const CANCELLED_RUN: usize = 2;
    const CANCEL_AT: usize = 3;
    for width in [1usize, 2, 4] {
        let mut plan = RunPlan::new();
        for run in 0..5 {
            let mut stepper = CancelAt::free(run);
            if run == CANCELLED_RUN {
                stepper.cancel_at = CANCEL_AT;
            }
            let token = stepper.token.clone();
            plan.push_cancellable(stepper, TraceObserver::every(), STEPS, token);
        }
        let done = plan.execute_with_width(width);
        assert_eq!(done.len(), 5, "width {width}: one result per submission");
        for (run, planned) in done.iter().enumerate() {
            let expected_steps = if run == CANCELLED_RUN {
                CANCEL_AT
            } else {
                STEPS
            };
            assert_eq!(
                planned.outcome.cancelled,
                run == CANCELLED_RUN,
                "width {width}: run {run} cancellation flag"
            );
            assert_eq!(
                planned.outcome.steps_done, expected_steps,
                "width {width}: run {run} steps"
            );
            // Submission order survives the pool, and a cancelled run's
            // trace is the exact prefix of an uncancelled one.
            let expected: Vec<usize> = (1..=expected_steps).map(|s| run * 1000 + s).collect();
            assert_eq!(
                planned.observer.trace, expected,
                "width {width}: run {run} trace"
            );
        }
    }
}

fn sweep_service() -> Scheduler {
    Scheduler::new(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        progress_stride: SampleStride::EVERY,
        dedup: true,
        planner: None,
    })
}

#[test]
fn identical_sweeps_share_one_execution_and_one_descent() {
    let scheduler = sweep_service();
    let computes_before = GroundStateCache::global().computes();
    // A long-running job pins one worker; the sweep batch lands while
    // the primary is still in flight, so followers coalesce.
    let blocker = scheduler
        .submit(JobSpec::fdtd_pulse(100_000, 0.2, 0.3, 20_000))
        .expect("admitted");
    let sweep = loadgen::sweep_spec();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            scheduler
                .submit_for(
                    &format!("tenant-{}", i % 4),
                    Default::default(),
                    sweep.clone(),
                )
                .expect("admitted")
        })
        .collect();
    blocker.cancel();
    let outputs: Vec<_> = handles.iter().map(|h| h.wait()).collect();
    assert_eq!(
        scheduler.metrics().dedup_hits,
        7,
        "8 identical sweeps, 7 coalesced (hit-rate 7/8)"
    );
    for out in &outputs {
        assert!(!out.cancelled);
        assert!(Arc::ptr_eq(&outputs[0], out), "one shared result object");
        let JobResult::PumpProbe(runs) = &out.result else {
            panic!("sweep result expected");
        };
        assert_eq!(runs.len(), 2);
    }
    // The whole batch cost at most one eigenstate descent: the primary's
    // three drivers (two lit + dark) share the process-wide cache, and
    // the followers never ran at all. (<= because an earlier test in
    // this process may already have seeded the key.)
    let computes = GroundStateCache::global().computes() - computes_before;
    assert!(
        computes <= 1,
        "one descent for the whole batch, saw {computes}"
    );
    scheduler.shutdown();
}

#[test]
fn queued_and_running_jobs_both_cancel_and_queue_stays_bounded() {
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        progress_stride: SampleStride::new(50),
        dedup: false,
        planner: None,
    });
    // Occupy the single worker with a slow grid.
    let running = scheduler
        .submit(JobSpec::fdtd_pulse(100_000, 0.2, 0.31, 20_000))
        .expect("admitted");
    while !matches!(
        running.events().try_iter().last(),
        Some(JobEvent::Started { .. }) | Some(JobEvent::Progress { .. })
    ) {
        std::thread::sleep(Duration::from_millis(2));
    }
    // Fill the queue, then demonstrate backpressure.
    let queued = scheduler
        .submit(JobSpec::fdtd_pulse(64, 0.2, 0.32, 100))
        .expect("admitted");
    let other = scheduler
        .submit(JobSpec::fdtd_pulse(64, 0.2, 0.33, 100))
        .expect("admitted");
    let err = scheduler
        .submit(JobSpec::fdtd_pulse(64, 0.2, 0.34, 100))
        .expect_err("admission control pushes back at capacity");
    assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
    // Cancel the queued job: resolves Unstarted without ever starting.
    queued.cancel();
    let out = queued.wait();
    assert!(out.cancelled);
    assert!(matches!(out.result, JobResult::Unstarted));
    assert!(
        !queued
            .events()
            .try_iter()
            .any(|e| matches!(e, JobEvent::Started { .. })),
        "queued-cancelled job never started"
    );
    // Cancel the running job: cooperative stop with a partial trace.
    running.cancel();
    let out = running.wait();
    assert!(out.cancelled);
    assert!(out.steps_done < 20_000);
    let JobResult::Fdtd(trace) = &out.result else {
        panic!("fdtd trace expected");
    };
    assert_eq!(
        trace.len(),
        out.steps_done,
        "partial trace is a valid prefix"
    );
    // The untouched job still completes.
    assert!(!other.wait().cancelled);
    let m = scheduler.metrics();
    assert!(m.rejected >= 1);
    assert_eq!(m.cancelled, 2);
    scheduler.shutdown();
}

#[test]
fn mixed_workload_jobs_run_through_one_service() {
    // Every JobSpec variant executes end-to-end through the scheduler.
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        progress_stride: SampleStride::new(5),
        dedup: true,
        planner: None,
    });
    let mut cfg = PipelineConfig::small_demo();
    cfg.cells = (4, 4, 1);
    cfg.prepare_steps = 2;
    cfg.mesh_steps = 3;
    cfg.response_steps = 10;
    let mesh = scheduler.submit(JobSpec::mesh_run(cfg, 0.05, 3)).unwrap();
    let md = scheduler.submit(JobSpec::md_run(cfg, 0.2, 12)).unwrap();
    let fdtd = scheduler
        .submit(JobSpec::fdtd_pulse(64, 0.2, 0.3, 25))
        .unwrap();
    let mesh_out = mesh.wait();
    assert!(matches!(&mesh_out.result, JobResult::Mesh(t) if t.len() == 3));
    let md_out = md.wait();
    assert!(matches!(&md_out.result, JobResult::Md(t) if t.len() == 12));
    let fdtd_out = fdtd.wait();
    assert!(matches!(&fdtd_out.result, JobResult::Fdtd(t) if t.len() == 25));
    assert_eq!(scheduler.metrics().completed, 3);
    scheduler.shutdown();
}
