//! Integration: ground-state checkpointing and the warm-start cache.
//!
//! PR 6's contract, end to end through the facade: a converged MESH
//! ground state can be saved to a versioned checkpoint file, loaded back
//! bit-for-bit, and used to warm-start a driver whose trajectory is then
//! **bit-identical** to a cold (fresh-descent) run — the cached panel
//! *is* the cold panel, so warm starting changes nothing but the work
//! done. Corrupt, truncated, stale-version, or wrong-config checkpoints
//! are hard, diagnosable errors, never silent garbage. The in-memory
//! cache shares one descent across every driver with the same config
//! hash (the pulse amplitude is deliberately not part of the key), and
//! the distributed driver resolves the state on the domain root only,
//! broadcasting the panel to the other ranks.

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;
use mlmd::dcmesh::checkpoint::{
    self, CheckpointError, GroundStateCache, WarmStart, WarmStartPolicy,
};
use mlmd::dcmesh::dist_mesh::DistributedMeshDriver;
use mlmd::dcmesh::fixture::{small_mesh_builder, small_mesh_driver};
use mlmd::dcmesh::mesh::MeshStepRecord;
use mlmd::parallel::comm::World;
use std::path::PathBuf;

const STEPS: usize = 3;

/// Unique temp-file path per test (the suite runs multi-threaded).
fn temp_ckpt(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mlmd_ckpt_{}_{name}.bin", std::process::id()))
}

fn assert_traces_equal(want: &[MeshStepRecord], got: &[MeshStepRecord], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: trajectory length");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            w.time_fs.to_bits(),
            g.time_fs.to_bits(),
            "{label}: step {i}"
        );
        assert_eq!(w.n_exc.to_bits(), g.n_exc.to_bits(), "{label}: step {i}");
        assert_eq!(
            w.absorbed_energy.to_bits(),
            g.absorbed_energy.to_bits(),
            "{label}: step {i}"
        );
        assert_eq!(
            w.atom_potential_energy.to_bits(),
            g.atom_potential_energy.to_bits(),
            "{label}: step {i}"
        );
        assert_eq!(
            w.topological_charge.to_bits(),
            g.topological_charge.to_bits(),
            "{label}: step {i}"
        );
        assert_eq!(w.occupations.len(), g.occupations.len());
        for (a, b) in w.occupations.iter().zip(&g.occupations) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: step {i} occupations");
        }
    }
}

#[test]
fn file_warm_start_trajectory_is_bit_identical_to_fresh() {
    let path = temp_ckpt("roundtrip");
    let builder = small_mesh_builder(0.05);
    let key = builder.config_key();
    let gs = builder.ground_state();
    assert_eq!(gs.key, key, "ground_state must carry the builder's key");
    checkpoint::save_checkpoint(&gs, &path).expect("save");

    // The file round-trips bit-for-bit.
    let loaded = checkpoint::load_for_key(&path, key).expect("load");
    assert_eq!(loaded.panel.panel_digest(), gs.panel.panel_digest());
    assert_eq!(loaded.occupations.len(), gs.occupations.len());
    for (a, b) in loaded.vloc0.iter().zip(&gs.vloc0) {
        assert_eq!(a.to_bits(), b.to_bits(), "vloc0 must round-trip exactly");
    }

    // The self-describing header matches the panel it frames.
    let header = checkpoint::read_header(&path).expect("header");
    assert_eq!(header.version, checkpoint::CHECKPOINT_VERSION);
    assert_eq!(header.config_hash, key);
    assert_eq!(header.norb as usize, gs.panel.norb);
    assert_eq!(header.grid.0 as usize, gs.panel.grid.nx);

    // A warm start from the file reproduces the cold trajectory exactly.
    let want = small_mesh_driver(0.05).run(STEPS);
    let got = small_mesh_builder(0.05)
        .warm_start(WarmStart::File(path.clone()))
        .build()
        .run(STEPS);
    assert_traces_equal(&want, &got, "file warm start");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_rejects_version_key_digest_and_truncation() {
    let path = temp_ckpt("reject");
    let builder = small_mesh_builder(0.05);
    let key = builder.config_key();
    let gs = builder.ground_state();
    let frame = checkpoint::encode_checkpoint(&gs);

    // Wrong config hash: the warm-start loading path refuses it.
    std::fs::write(&path, &frame).expect("write");
    match checkpoint::load_for_key(&path, key ^ 1) {
        Err(CheckpointError::KeyMismatch { found, expected }) => {
            assert_eq!(found, key);
            assert_eq!(expected, key ^ 1);
        }
        other => panic!("expected KeyMismatch, got {other:?}"),
    }

    // Future format version (bytes 8..12): hard, diagnosable error.
    let mut versioned = frame.clone();
    versioned[8] = versioned[8].wrapping_add(1);
    std::fs::write(&path, &versioned).expect("write");
    assert!(matches!(
        checkpoint::load_checkpoint(&path),
        Err(CheckpointError::VersionMismatch { .. })
    ));

    // A flipped payload byte trips the trailing digest before any parse.
    let mut corrupt = frame.clone();
    let mid = frame.len() / 2;
    corrupt[mid] ^= 0x40;
    std::fs::write(&path, &corrupt).expect("write");
    assert!(matches!(
        checkpoint::load_checkpoint(&path),
        Err(CheckpointError::DigestMismatch { .. })
    ));

    // Truncation anywhere — header, payload, digest — is Truncated.
    for cut in [4, 20, frame.len() / 2, frame.len() - 3] {
        std::fs::write(&path, &frame[..cut]).expect("write");
        assert!(
            matches!(
                checkpoint::load_checkpoint(&path),
                Err(CheckpointError::Truncated { .. })
            ),
            "cut at {cut} must report Truncated"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn in_memory_cache_shares_one_descent_across_amplitudes() {
    // The pulse is not part of the ground-state key, so a whole amplitude
    // sweep shares a single descent — and every warm trajectory is still
    // bit-identical to its own cold oracle.
    let cache = GroundStateCache::new();
    for &e0 in &[0.05, 0.0, 0.1] {
        let want = small_mesh_driver(e0).run(STEPS);
        let got = small_mesh_builder(e0)
            .warm_start(WarmStart::InMemory(cache.clone()))
            .build()
            .run(STEPS);
        assert_traces_equal(&want, &got, &format!("warm e0={e0}"));
    }
    assert_eq!(cache.len(), 1, "all amplitudes share one config hash");
    assert_eq!(cache.computes(), 1, "three drivers, one descent");
}

#[test]
fn distributed_warm_start_resolves_on_root_and_stays_bit_identical() {
    // The domain root resolves the ground state (from the shared cache)
    // and broadcasts the panel; non-root ranks never descend. Pinned
    // bit-for-bit against the serial cold oracle at 1, 2, and 4 ranks
    // per domain — and the cache records exactly one descent for the
    // whole ladder.
    let want = small_mesh_driver(0.05).run(STEPS);
    let cache = GroundStateCache::new();
    for ranks_per_domain in [1usize, 2, 4] {
        let out = World::run(ranks_per_domain, |world| {
            let cache = cache.clone();
            let mut drv = DistributedMeshDriver::new(world, 1, move |_| {
                small_mesh_builder(0.05).warm_start(WarmStart::InMemory(cache))
            });
            drv.run(STEPS)
        });
        for (rank, trace) in out.iter().enumerate() {
            assert_traces_equal(
                &want,
                trace,
                &format!("{ranks_per_domain} ranks/domain, rank {rank}"),
            );
        }
    }
    assert_eq!(
        cache.computes(),
        1,
        "one descent must serve the whole 1/2/4-rank ladder"
    );
}

#[test]
fn pump_probe_sweep_warm_start_matches_cold_path() {
    // The process-cache policy must be invisible in the numbers: an
    // N-amplitude sweep warm-started off the shared cache is pinned
    // bit-for-bit against the same sweep with fresh descents.
    let amplitudes = [0.05, 0.1];
    let mut cold_cfg = PipelineConfig::small_demo();
    cold_cfg.mesh_steps = STEPS;
    cold_cfg.mesh_warm_start = WarmStartPolicy::Fresh;
    let mut warm_cfg = cold_cfg;
    warm_cfg.mesh_warm_start = WarmStartPolicy::ProcessCache;

    let cold = Pipeline::new(cold_cfg).pump_probe_sweep(&amplitudes);
    let warm = Pipeline::new(warm_cfg).pump_probe_sweep(&amplitudes);
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.e0.to_bits(), w.e0.to_bits());
        assert_eq!(c.n_exc_peak.to_bits(), w.n_exc_peak.to_bits());
        assert_traces_equal(&c.records, &w.records, &format!("sweep e0={}", c.e0));
    }
}
