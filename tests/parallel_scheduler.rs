//! Scheduler regression suite for the work-stealing rayon shim (PR 2).
//!
//! Pins the two acceptance criteria of the nested-pool oversubscription
//! fix at the kernel level: (1) parallel calls nested inside an installed
//! pool observe the pool width, not the hardware width; (2) the parallel
//! tiers of `gemm_parallel` and `kin_prop` stay *bit-identical* to their
//! serial oracles regardless of pool width — scheduling must never change
//! a single floating-point operation.

use mlmd::lfd::kin_prop::{KinImpl, KinProp};
use mlmd::lfd::wavefunction::WaveFunctions;
use mlmd::numerics::flops::FlopCounter;
use mlmd::numerics::gemm::gemm_parallel;
use mlmd::numerics::grid::Grid3;
use mlmd::numerics::matrix::Matrix;
use mlmd::numerics::rng::{Rng64, SplitMix64};
use mlmd::numerics::vec3::Vec3;
use mlmd::parallel::device::Device;
use rayon::prelude::*;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
}

#[test]
fn device_pool_width_survives_nesting() {
    // A parallel region launched inside a Device kernel (the OpenMP
    // `target`-region analogue) must see the device's width — with the old
    // per-call shim the inner region saw full hardware width instead.
    let gpu = Device::gpu(3);
    let widths: Vec<usize> = gpu.run(|| {
        (0..6usize)
            .into_par_iter()
            .map(|_| {
                let inner: usize = (0..4usize)
                    .into_par_iter()
                    .map(|_| rayon::current_num_threads())
                    .sum();
                assert_eq!(rayon::current_num_threads(), 3);
                inner / 4
            })
            .collect()
    });
    assert_eq!(widths, vec![3; 6]);
}

#[test]
fn gemm_parallel_bit_identical_across_pool_widths() {
    // 64³ > the 32768-element parallel threshold, so the pool really runs.
    let (m, k, n) = (64, 64, 64);
    let a = random_matrix(m, k, 21);
    let b = random_matrix(k, n, 22);
    let c0 = random_matrix(m, n, 23);

    let run_with_width = |threads: usize| -> Matrix<f64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut c = c0.clone();
        pool.install(|| gemm_parallel(1.7, &a, &b, -0.3, &mut c));
        c
    };

    let serial = run_with_width(1);
    for threads in [2, 3, 8] {
        let par = run_with_width(threads);
        assert_eq!(
            serial.as_slice(),
            par.as_slice(),
            "gemm_parallel drifted from its serial oracle at width {threads}"
        );
    }
}

#[test]
fn kin_prop_parallel_bit_identical_to_serial_tiers() {
    let grid = Grid3::new(8, 8, 8, 0.4);
    let kp = KinProp::new(grid);
    let a = Vec3::new(0.2, -0.1, 0.05);
    let run = |imp: KinImpl, threads: usize| -> WaveFunctions {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let mut wf = WaveFunctions::random(grid, 6, 1234);
        pool.install(|| kp.propagate_n(imp, &mut wf, 0.02, a, 4, &FlopCounter::new()));
        wf
    };
    // The bond update is identical per (bond, orbital) in every tier that
    // uses the SoA layout, so Parallel must match Blocked to the last bit,
    // at any pool width.
    let blocked = run(KinImpl::Blocked, 1);
    for threads in [1, 2, 5] {
        let parallel = run(KinImpl::Parallel, threads);
        let diff = parallel.psi.max_abs_diff(&blocked.psi);
        assert_eq!(
            diff, 0.0,
            "kin_prop Parallel deviates from the Blocked oracle by {diff} at width {threads}"
        );
    }
}

#[test]
fn skewed_parallel_map_is_exact_and_ordered() {
    // A deliberately imbalanced workload (first item 1000× heavier) must
    // produce exactly the same vector as the sequential evaluation.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let work = |i: usize| -> f64 {
        let iters = if i == 0 { 20_000 } else { 20 };
        let mut acc = i as f64 + 0.5;
        for _ in 0..iters {
            acc = (acc * 1.000_000_1).sin() + i as f64;
        }
        acc
    };
    let seq: Vec<f64> = (0..128).map(work).collect();
    let par: Vec<f64> = pool.install(|| (0..128).into_par_iter().map(work).collect());
    assert_eq!(seq, par);
}
