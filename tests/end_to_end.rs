//! End-to-end integration: the full MLMD pipeline (Fig. 3 workflow)
//! through the public facade.

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;

#[test]
fn photoswitching_pipeline_erases_skyrmion() {
    let mut pipeline = Pipeline::new(PipelineConfig::small_demo());
    let outcome = pipeline.run();
    assert!(
        outcome.initial_topological_charge.abs() > 0.5,
        "prepared texture must carry charge"
    );
    assert!(outcome.n_exc_peak > 0.05, "pulse must excite");
    assert!(
        outcome.verdict.topology_switched,
        "Q {} -> {}",
        outcome.initial_topological_charge, outcome.final_topological_charge
    );
    assert!(outcome.verdict.order_suppression > 0.3);
}

#[test]
fn dark_control_preserves_skyrmion() {
    let mut config = PipelineConfig::small_demo();
    config.pulse_e0 = 0.0;
    let mut pipeline = Pipeline::new(config);
    let outcome = pipeline.run();
    assert!(!outcome.verdict.topology_switched);
    assert!(
        (outcome.final_topological_charge - outcome.initial_topological_charge).abs() < 0.3,
        "dark charge drift: {} -> {}",
        outcome.initial_topological_charge,
        outcome.final_topological_charge
    );
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        let o = p.run();
        (o.n_exc_peak, o.final_topological_charge)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "n_exc must be bit-reproducible");
    assert_eq!(a.1, b.1, "final charge must be bit-reproducible");
}
