//! Integration: divide-and-conquer SCF across domains, through the facade.

use mlmd::dcmesh::domain::{DomainDecomposition, DomainSpec};
use mlmd::dcmesh::scf::DcScf;
use mlmd::lfd::potential::AtomSite;
use mlmd::numerics::grid::Grid3;
use mlmd::numerics::vec3::Vec3;

#[test]
fn two_domain_scf_converges_and_conserves_electrons() {
    let global = Grid3::new(12, 12, 12, 0.6);
    let dd = DomainDecomposition::new(DomainSpec {
        global,
        n_dom: (2, 1, 1),
        buffer: 3,
    });
    assert_eq!(dd.len(), 2);
    let atoms = vec![
        AtomSite {
            pos: Vec3::new(1.8, 3.6, 3.6),
            z_eff: 3.0,
            sigma: 0.9,
        },
        AtomSite {
            pos: Vec3::new(5.4, 3.6, 3.6),
            z_eff: 3.0,
            sigma: 0.9,
        },
    ];
    let mut scf = DcScf::new(dd, 2, 2.0, atoms, 7);
    let history = scf.converge(1e-4, 60);
    let last = history.last().unwrap();
    assert!(last.delta < 2e-3, "SCF must converge: delta {}", last.delta);
    assert!(
        last.band_energy < history[0].band_energy,
        "band energy must drop"
    );
    let n: f64 = scf.global_density().iter().sum::<f64>() * global.dv();
    assert!((n - 4.0).abs() < 1e-6, "electron count {n}");
}

#[test]
fn eight_domain_decomposition_has_paper_overlap() {
    let dd = DomainDecomposition::new(DomainSpec {
        global: Grid3::new(16, 16, 16, 0.5),
        n_dom: (2, 2, 2),
        buffer: 4,
    });
    // Buffer = core/2 → the paper's (1 + 2·½)³ = 8× overlap factor.
    assert!((dd.overlap_factor() - 8.0).abs() < 1e-12);
}
