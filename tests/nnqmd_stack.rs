//! Integration: the XS-NNQMD training → mixing → MD stack through the
//! facade, plus parallel-force consistency over simulated MPI.

use mlmd::nnqmd::gen::{generate, GenConfig};
use mlmd::nnqmd::md::parallel_forces;
use mlmd::nnqmd::mix::XsGsModel;
use mlmd::nnqmd::model::{AllegroLite, ModelConfig};
use mlmd::nnqmd::train::{force_rmse, SamConfig, Trainer};
use mlmd::numerics::vec3::Vec3;
use mlmd::parallel::comm::World;
use mlmd::qxmd::perovskite::PerovskiteLattice;

fn cfg() -> ModelConfig {
    ModelConfig {
        hidden: 8,
        k_max: 5,
        rcut: 4.0,
    }
}

#[test]
fn trained_model_beats_untrained_on_forces() {
    let data = generate(GenConfig {
        cells: (2, 2, 2),
        n_frames: 8,
        seed: 3,
        ..Default::default()
    });
    let (train, val) = data.split(0.75);
    let mut model = AllegroLite::new(cfg(), 5);
    let before = force_rmse(&model, &val);
    let mut trainer = Trainer::new(&model, 1e-2, Some(SamConfig { rho: 1e-3 }));
    trainer.fit(&mut model, &train, 40);
    let after = force_rmse(&model, &val);
    assert!(after < before, "training must help: {before} -> {after}");
}

#[test]
fn gs_xs_mixing_interpolates_energies() {
    let gs = AllegroLite::new(cfg(), 1);
    let xs = AllegroLite::new(cfg(), 2);
    let lat = PerovskiteLattice::uniform(2, 2, 2, Vec3::new(0.0, 0.0, 0.2));
    let sys = &lat.system;
    let e_gs = gs
        .evaluate(&sys.species, &sys.positions, sys.box_lengths)
        .energy;
    let e_xs = xs
        .evaluate(&sys.species, &sys.positions, sys.box_lengths)
        .energy;
    let mut mixed = XsGsModel::new(gs, xs, 0.05);
    mixed.set_excitation(0.025 * sys.species.len() as f64, sys.species.len());
    let (e_mid, _) = mixed.evaluate(&sys.species, &sys.positions, sys.box_lengths);
    assert!((e_mid - 0.5 * (e_gs + e_xs)).abs() < 1e-9);
}

#[test]
fn parallel_forces_agree_with_serial_across_rank_counts() {
    let model = AllegroLite::new(cfg(), 9);
    let lat = PerovskiteLattice::uniform(2, 2, 2, Vec3::new(0.05, 0.0, 0.15));
    let sys = lat.system;
    let serial = model.evaluate(&sys.species, &sys.positions, sys.box_lengths);
    for ranks in [2usize, 3, 5] {
        let out = World::run(ranks, |comm| parallel_forces(&comm, &model, &sys));
        for (energy, forces) in out {
            assert!((energy - serial.energy).abs() < 1e-8, "{ranks} ranks");
            for (a, b) in forces.iter().zip(&serial.forces) {
                assert!((*a - *b).norm() < 1e-8);
            }
        }
    }
}
