//! End-to-end pin of the Floquet workload class (PR 9): a
//! `JobSpec::FloquetSweep` submitted through a planner-enabled
//! `Scheduler` runs a 4-configuration SSH-dimer sweep and detects the
//! topological transition — the quantized charge of the dimer Bloch map
//! flips sign across η = 1 while edge states appear — and the planner's
//! admission gate costs the new workload class like any other.

use mlmd::exasim::calibrate::Calibration;
use mlmd::exasim::planner::Planner;
use mlmd::exasim::Machine;
use mlmd::floquet::sweep::{DimerConfig, SuperlatticeSweep};
use mlmd::service::{JobResult, JobSpec, Scheduler, ServiceConfig, SubmitError};
use mlmd_core::engine::SampleStride;

/// A deterministic synthetic fit (the planner-suite constants), so the
/// admission decisions under test don't depend on host timing.
fn synthetic_planner() -> Planner {
    let cal = Calibration {
        alpha: 2.0e-6,
        beta: 5.0e-11,
        mesh_step: 0.010,
        n_qd: 30.0,
        construct_cold: 0.008,
        construct_warm: 0.0008,
        dist_step: [0.0; 3],
        dist_fixed: [0.0; 3],
        md_atom_step: 2.0e-7,
        fdtd_cell_step: 4.0e-9,
    };
    Planner::new(Machine::from_calibration(&cal), cal)
}

fn planned_scheduler() -> Scheduler {
    Scheduler::new(ServiceConfig {
        workers: 2,
        queue_capacity: 8,
        progress_stride: SampleStride::new(100),
        dedup: true,
        planner: Some(synthetic_planner()),
    })
}

fn ssh_dimer_sweep() -> SuperlatticeSweep {
    SuperlatticeSweep::canonical(
        [0.4, 0.7, 1.5, 2.5]
            .into_iter()
            .map(|dimerization| DimerConfig {
                dimerization,
                patch_period: 20,
            })
            .collect(),
    )
}

#[test]
fn floquet_sweep_detects_the_topological_transition_through_the_service() {
    let scheduler = planned_scheduler();
    let spec = JobSpec::floquet_sweep(ssh_dimer_sweep());
    let total = spec.total_steps();
    let job = scheduler.submit(spec).expect("sweep admitted");
    // Planner enabled: the admitted job carries its ahead-of-time plan.
    let plan = job.plan().expect("admitted job carries its plan");
    assert!(plan.predicted_secs > 0.0);
    let out = job.wait();
    assert!(!out.cancelled);
    assert_eq!(out.steps_done, total);
    let JobResult::Floquet(points) = &out.result else {
        panic!("floquet result expected, got {:?}", out.result);
    };
    assert_eq!(points.len(), 4);
    // The band invariant flips sign exactly at the dimerization
    // transition: one phase below η = 1, the opposite above.
    let charges: Vec<i64> = points.iter().map(|p| p.charge).collect();
    assert_eq!(charges[0], charges[1], "same phase below the transition");
    assert_eq!(charges[2], charges[3], "same phase above the transition");
    assert_eq!(charges[1], -charges[2], "quantized charge flips at η = 1");
    for p in points {
        assert!(p.charge.abs() == 1, "dimer Bloch map carries unit charge");
        assert!(p.charge_residual < 1e-9, "charge is cleanly quantized");
        assert!(p.spectrum.total_power() > 0.0, "probe saw the drive");
        assert_eq!(p.spectrum.samples, p.outcome.steps_done);
    }
    // Edge states mark the nontrivial side only.
    assert!(!points[0].topological && !points[1].topological);
    assert!(points[2].topological && points[3].topological);
    assert_eq!(scheduler.metrics().completed, 1);
    scheduler.shutdown();
}

#[test]
fn identical_floquet_sweeps_coalesce_and_oversized_ones_are_refused() {
    let scheduler = planned_scheduler();
    // Pin both workers so the dedup followers land while the primary is
    // still in flight.
    let blockers: Vec<_> = (0..2)
        .map(|i| {
            scheduler
                .submit(JobSpec::fdtd_pulse(
                    100_000,
                    0.2,
                    0.3 + i as f64 * 0.01,
                    20_000,
                ))
                .expect("admitted")
        })
        .collect();
    let spec = JobSpec::floquet_sweep(ssh_dimer_sweep());
    let a = scheduler.submit(spec.clone()).expect("admitted");
    let b = scheduler.submit(spec).expect("admitted");
    for blocker in &blockers {
        blocker.cancel();
    }
    let (oa, ob) = (a.wait(), b.wait());
    assert!(!oa.cancelled && !ob.cancelled);
    assert_eq!(
        scheduler.metrics().dedup_hits,
        1,
        "identical sweeps coalesce"
    );
    // Admission control applies to the new workload class: a sweep
    // predicted at ~10⁶ s of pool time is refused before queueing.
    let mut huge = ssh_dimer_sweep();
    huge.n_steps = 1_000_000_000;
    let err = scheduler
        .submit(JobSpec::floquet_sweep(huge))
        .expect_err("oversized sweep refused");
    assert!(matches!(err, SubmitError::PlanRejected(_)));
    scheduler.shutdown();
}
