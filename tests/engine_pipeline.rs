//! Engine-refactor regression suite.
//!
//! 1. The engine-based `Pipeline::run` is pinned **bit-for-bit** against
//!    the pre-refactor trajectory (captured from the seed implementation
//!    at commit `9a9c531`, before the `Stepper`/`Observer`/`RunPlan`
//!    rewrite) for both the lit and dark `small_demo` configurations.
//! 2. `RunPlan` batched execution is pinned identical to sequential runs
//!    at pool widths 1, 2, and 4.

use mlmd::core::config::PipelineConfig;
use mlmd::core::engine::{Engine, RunPlan, TraceObserver};
use mlmd::core::pipeline::{Pipeline, PipelineOutcome};
use mlmd::dcmesh::mesh::MeshStepRecord;

/// FNV-1a over the f64 bit patterns of a (time, a, b) trace — the same
/// digest used to capture the pre-refactor pins.
fn checksum(trace: &[(f64, f64, f64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (a, b, c) in trace {
        for bits in [a.to_bits(), b.to_bits(), c.to_bits()] {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Pins {
    initial_q: u64,
    final_q: u64,
    n_exc_peak: u64,
    exc_frac: u64,
    mesh_len: usize,
    mesh_checksum: u64,
    trace_len: usize,
    trace_checksum: u64,
    first_polar: u64,
    last_polar: u64,
    last_charge: u64,
}

/// Captured from the pre-refactor pipeline (lit small_demo).
const LIT: Pins = Pins {
    initial_q: 0xbff0000000000001,
    final_q: 0x0000000000000000,
    n_exc_peak: 0x3fc7fa55f8aa84b3,
    exc_frac: 0x3fd7fa55f8aa84b3,
    mesh_len: 6,
    mesh_checksum: 0xe7cb5d5c37024ba8,
    trace_len: 201,
    trace_checksum: 0xc347560a2e9c0fdd,
    first_polar: 0x3fd340d88dca6f95,
    last_polar: 0x3f713440696ede94,
    last_charge: 0x0000000000000000,
};

/// Captured from the pre-refactor pipeline (dark small_demo).
const DARK: Pins = Pins {
    initial_q: 0xbff0000000000001,
    final_q: 0xbff0000000000006,
    n_exc_peak: 0x0000000000000000,
    exc_frac: 0x0000000000000000,
    mesh_len: 6,
    mesh_checksum: 0xcc70076f1c82a15a,
    trace_len: 201,
    trace_checksum: 0xb1bab30421b598e2,
    first_polar: 0x3fd34153d1f10b9b,
    last_polar: 0x3fd5cdd5dbf3a87f,
    last_charge: 0xbff0000000000006,
};

fn assert_pinned(out: &PipelineOutcome, pins: &Pins, label: &str) {
    assert_eq!(
        out.initial_topological_charge.to_bits(),
        pins.initial_q,
        "{label}: initial charge drifted from the pre-refactor trajectory"
    );
    assert_eq!(
        out.final_topological_charge.to_bits(),
        pins.final_q,
        "{label}: final charge"
    );
    assert_eq!(
        out.n_exc_peak.to_bits(),
        pins.n_exc_peak,
        "{label}: n_exc_peak"
    );
    assert_eq!(
        out.excitation_fraction.to_bits(),
        pins.exc_frac,
        "{label}: excitation fraction"
    );
    assert_eq!(
        out.mesh_records.len(),
        pins.mesh_len,
        "{label}: mesh trajectory length"
    );
    let mesh: Vec<(f64, f64, f64)> = out
        .mesh_records
        .iter()
        .map(|r| (r.time_fs, r.n_exc, r.atom_potential_energy))
        .collect();
    assert_eq!(
        checksum(&mesh),
        pins.mesh_checksum,
        "{label}: mesh trajectory digest"
    );
    assert_eq!(
        out.response_trace.len(),
        pins.trace_len,
        "{label}: response trace length"
    );
    let trace: Vec<(f64, f64, f64)> = out
        .response_trace
        .iter()
        .map(|r| (r.time_fs, r.polar_order, r.mean_charge))
        .collect();
    assert_eq!(
        checksum(&trace),
        pins.trace_checksum,
        "{label}: response trace digest"
    );
    let first = out.response_trace.first().unwrap();
    let last = out.response_trace.last().unwrap();
    assert_eq!(
        first.polar_order.to_bits(),
        pins.first_polar,
        "{label}: first polar order"
    );
    assert_eq!(
        last.polar_order.to_bits(),
        pins.last_polar,
        "{label}: last polar order"
    );
    assert_eq!(
        last.mean_charge.to_bits(),
        pins.last_charge,
        "{label}: last mean charge"
    );
}

#[test]
fn lit_pipeline_matches_pre_refactor_trajectory_bit_for_bit() {
    let mut p = Pipeline::new(PipelineConfig::small_demo());
    let out = p.run();
    assert_pinned(&out, &LIT, "lit");
}

#[test]
fn dark_pipeline_matches_pre_refactor_trajectory_bit_for_bit() {
    let mut cfg = PipelineConfig::small_demo();
    cfg.pulse_e0 = 0.0;
    let mut p = Pipeline::new(cfg);
    let out = p.run();
    assert_pinned(&out, &DARK, "dark");
}

fn mesh_traces_equal(a: &[MeshStepRecord], b: &[MeshStepRecord], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: trajectory length");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            ra.time_fs.to_bits(),
            rb.time_fs.to_bits(),
            "{label}: step {i} time"
        );
        assert_eq!(
            ra.n_exc.to_bits(),
            rb.n_exc.to_bits(),
            "{label}: step {i} n_exc"
        );
        assert_eq!(
            ra.absorbed_energy.to_bits(),
            rb.absorbed_energy.to_bits(),
            "{label}: step {i} absorbed energy"
        );
        assert_eq!(
            ra.atom_potential_energy.to_bits(),
            rb.atom_potential_energy.to_bits(),
            "{label}: step {i} potential energy"
        );
        for (fa, fb) in ra.occupations.iter().zip(&rb.occupations) {
            assert_eq!(fa.to_bits(), fb.to_bits(), "{label}: step {i} occupations");
        }
    }
}

#[test]
fn run_plan_batched_matches_sequential_at_all_pool_widths() {
    let cfg = PipelineConfig::small_demo();
    let steps = cfg.mesh_steps;
    let pipeline = Pipeline::new(cfg);
    // Sequential oracle: lit and dark drivers stepped one after another.
    let lit_seq = Engine::run_collect(&mut pipeline.mesh_stage(cfg.pulse_e0), steps);
    let dark_seq = Engine::run_collect(&mut pipeline.mesh_stage(0.0), steps);
    for width in [1usize, 2, 4] {
        let mut plan = RunPlan::new();
        plan.push(
            pipeline.mesh_stage(cfg.pulse_e0),
            TraceObserver::every(),
            steps,
        );
        plan.push(pipeline.mesh_stage(0.0), TraceObserver::every(), steps);
        let done = plan.execute_with_width(width);
        assert_eq!(done.len(), 2);
        mesh_traces_equal(
            &lit_seq,
            &done[0].observer.trace,
            &format!("width {width} lit"),
        );
        mesh_traces_equal(
            &dark_seq,
            &done[1].observer.trace,
            &format!("width {width} dark"),
        );
    }
}
