//! Smoke test: the `examples/quickstart.rs` logic driven through the
//! library API — every value the example prints must be available and
//! sane, so the example cannot silently rot.

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;

/// The quickstart configuration with the trajectory lengths trimmed so the
/// smoke test stays fast in the dev profile.
fn smoke_config() -> PipelineConfig {
    let mut config = PipelineConfig::small_demo();
    config.mesh_steps = 4;
    config.response_steps = 300;
    config
}

#[test]
fn quickstart_flow_reports_every_printed_quantity() {
    let config = smoke_config();
    // The banner line of the example.
    assert_eq!(config.cells, (16, 16, 2));
    assert_eq!(config.n_atoms(), 5 * config.n_cells());
    assert!(config.pulse_e0 > 0.0);

    let mut pipeline = Pipeline::new(config);
    let outcome = pipeline.run();

    // DC-MESH stage: one record per MD step, finite and time-ordered.
    assert_eq!(outcome.mesh_records.len(), config.mesh_steps);
    for pair in outcome.mesh_records.windows(2) {
        assert!(pair[0].time_fs < pair[1].time_fs);
    }
    for r in &outcome.mesh_records {
        assert!(r.n_exc.is_finite() && r.n_exc >= 0.0);
        assert!(r.mean_polarization.norm().is_finite());
    }

    // MSA-3 handoff: the pump-probe summary numbers.
    assert!(outcome.n_exc_peak > 0.0, "pulse must excite");
    assert!(
        outcome.excitation_fraction > 0.0 && outcome.excitation_fraction <= 1.0,
        "per-cell fraction out of range: {}",
        outcome.excitation_fraction
    );

    // XS-NNQMD stage: the response trace the example iterates over.
    assert!(!outcome.response_trace.is_empty());
    for p in &outcome.response_trace {
        assert!(p.polar_order.is_finite() && p.polar_order >= 0.0);
        assert!(p.mean_charge.is_finite());
    }

    // Verdict block.
    assert!(
        outcome.initial_topological_charge.abs() > 0.5,
        "prepared superlattice must carry topological charge, got {}",
        outcome.initial_topological_charge
    );
    assert!(outcome.verdict.order_suppression.is_finite());
    assert!(outcome.final_topological_charge.is_finite());
}

#[test]
fn quickstart_smoke_is_deterministic() {
    let run = || {
        let mut pipeline = Pipeline::new(smoke_config());
        let o = pipeline.run();
        (
            o.n_exc_peak,
            o.excitation_fraction,
            o.final_topological_charge,
        )
    };
    assert_eq!(run(), run(), "smoke pipeline must be bit-reproducible");
}
