//! Integration: the distributed MESH step driver against its serial
//! oracle, through the facade.
//!
//! The paper's MESH stage (Maxwell field ↔ Ehrenfest electrons ↔ surface
//! hopping ↔ QXMD atoms) dominates wall-clock at scale, so PR 5 shards it
//! the same way PR 3 sharded the SCF: one communicator per domain, band
//! decomposition inside each group. These tests pin the distributed
//! trajectory — band energies, per-step topological charges, and the
//! mesh-trace FNV digest — to the serial `MeshDriver` **bit-for-bit** at
//! 1, 2, and 4 ranks per domain, and pin the lit/dark pump–probe batch
//! executed *inside* `World::run` to the in-process `RunPlan` batch.
//!
//! No tolerance anywhere: column propagation, current terms, excitation
//! terms, and band energies are sharded column-locally; coupling steps
//! run redundantly on replicated inputs; world-level collectives carry
//! one non-zero contribution per domain.

use mlmd::core::config::PipelineConfig;
use mlmd::core::pipeline::Pipeline;
use mlmd::dcmesh::dist_mesh::{run_distributed_mesh, DistributedMeshDriver};
use mlmd::dcmesh::fixture::{small_mesh_builder, small_mesh_driver};
use mlmd::dcmesh::mesh::MeshStepRecord;
use mlmd::parallel::comm::World;

const STEPS: usize = 3;

/// FNV-1a over the f64 bit patterns of the salient per-step fields — the
/// same digest shape `tests/engine_pipeline.rs` pins the pipeline with.
fn mesh_checksum(records: &[MeshStepRecord]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in records {
        for bits in [
            r.time_fs.to_bits(),
            r.n_exc.to_bits(),
            r.absorbed_energy.to_bits(),
            r.atom_potential_energy.to_bits(),
            r.topological_charge.to_bits(),
        ] {
            h ^= bits;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for f in &r.occupations {
            h ^= f.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn assert_traces_equal(want: &[MeshStepRecord], got: &[MeshStepRecord], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: trajectory length");
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        assert_eq!(
            w.time_fs.to_bits(),
            g.time_fs.to_bits(),
            "{label}: step {i} time"
        );
        assert_eq!(
            w.n_exc.to_bits(),
            g.n_exc.to_bits(),
            "{label}: step {i} n_exc"
        );
        assert_eq!(
            w.absorbed_energy.to_bits(),
            g.absorbed_energy.to_bits(),
            "{label}: step {i} absorbed energy"
        );
        assert_eq!(
            w.atom_potential_energy.to_bits(),
            g.atom_potential_energy.to_bits(),
            "{label}: step {i} potential energy"
        );
        assert_eq!(
            w.topological_charge.to_bits(),
            g.topological_charge.to_bits(),
            "{label}: step {i} topological charge"
        );
        assert_eq!(
            w.mean_polarization.z.to_bits(),
            g.mean_polarization.z.to_bits(),
            "{label}: step {i} polarization"
        );
        assert_eq!(w.occupations.len(), g.occupations.len());
        for (a, b) in w.occupations.iter().zip(&g.occupations) {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: step {i} occupations");
        }
    }
    assert_eq!(
        mesh_checksum(want),
        mesh_checksum(got),
        "{label}: mesh-trace FNV digest"
    );
}

#[test]
fn distributed_mesh_trajectory_is_bit_identical_across_rank_counts() {
    let mut serial = small_mesh_driver(0.05);
    let want = serial.run(STEPS);
    let want_eps: Vec<u64> = serial.band_energies().iter().map(|e| e.to_bits()).collect();
    assert!(!want_eps.is_empty(), "oracle must record band energies");
    // 1, 2, and 4 ranks per domain: with norb = 8, band ranges of width
    // 8, 4, and 2.
    for ranks_per_domain in [1usize, 2, 4] {
        let out = World::run(ranks_per_domain, |world| {
            let mut drv = DistributedMeshDriver::new(world, 1, |_| small_mesh_builder(0.05));
            let trace = drv.run(STEPS);
            let eps: Vec<u64> = drv.band_energies().iter().map(|e| e.to_bits()).collect();
            let q = drv.topological_charge();
            (trace, eps, q)
        });
        for (rank, (trace, eps, q)) in out.iter().enumerate() {
            let label = format!("{ranks_per_domain} ranks/domain, rank {rank}");
            assert_traces_equal(&want, trace, &label);
            assert_eq!(&want_eps, eps, "{label}: band energies");
            assert_eq!(
                serial.topological_charge().to_bits(),
                q.to_bits(),
                "{label}: final topological charge"
            );
        }
    }
}

#[test]
fn lit_and_dark_domains_run_concurrently_and_match_their_oracles() {
    // Two MESH domains (a pump-probe lit/dark pair) on a 2-domain ×
    // 2-ranks world: each domain's trajectory must match its own serial
    // oracle bit-for-bit, and the E/J exchange must see both domains.
    let amp = |d: usize| if d == 0 { 0.05 } else { 0.0 };
    let want_lit = small_mesh_driver(0.05).run(STEPS);
    let want_dark = small_mesh_driver(0.0).run(STEPS);
    let traces = run_distributed_mesh(2, 2, STEPS, |d| small_mesh_builder(amp(d)));
    assert_eq!(traces.len(), 2);
    assert_traces_equal(&want_lit, &traces[0], "lit domain");
    assert_traces_equal(&want_dark, &traces[1], "dark domain");
    // The two domains genuinely diverge (different pulses), so the match
    // above is not vacuous.
    assert_ne!(
        traces[0].last().unwrap().n_exc.to_bits(),
        traces[1].last().unwrap().n_exc.to_bits(),
        "lit and dark trajectories must differ"
    );
}

#[test]
fn exchange_table_is_replicated_and_matches_serial_absorption() {
    let out = World::run(4, |world| {
        let mut drv = DistributedMeshDriver::new(world, 2, |d| {
            small_mesh_builder(if d == 0 { 0.05 } else { 0.0 })
        });
        drv.run(2);
        drv.last_exchange().expect("exchange after steps").clone()
    });
    // Identical table on every rank of the world.
    for ex in &out {
        assert_eq!(ex.domain_current.len(), 2);
        for (a, b) in ex.domain_absorbed.iter().zip(&out[0].domain_absorbed) {
            assert_eq!(a.to_bits(), b.to_bits(), "exchange must replicate");
        }
    }
    // The lit domain's published absorption is the serial driver's.
    let mut serial = small_mesh_driver(0.05);
    serial.run(1);
    let want = serial.run(1)[0].absorbed_energy;
    assert_eq!(out[0].domain_absorbed[0].to_bits(), want.to_bits());
}

#[test]
fn world_executed_pump_probe_batch_matches_in_process_run_plan() {
    // The ROADMAP item: run the lit/dark RunPlan batch inside World::run
    // ranks. Pin the two `mesh_batch` forms bit-identical at 1 and 2
    // ranks per domain, through the public pipeline seam.
    let mut cfg = PipelineConfig::small_demo();
    cfg.mesh_steps = STEPS;
    let amplitudes = [cfg.pulse_e0, 0.0];
    let in_process = Pipeline::new(cfg).mesh_batch(&amplitudes, cfg.mesh_steps);
    for ranks_per_domain in [1usize, 2] {
        let mut world_cfg = cfg;
        world_cfg.mesh_ranks_per_domain = Some(ranks_per_domain);
        let in_world = Pipeline::new(world_cfg).mesh_batch(&amplitudes, cfg.mesh_steps);
        assert_eq!(in_process.len(), in_world.len());
        for (run, (a, b)) in in_process.iter().zip(&in_world).enumerate() {
            assert_traces_equal(a, b, &format!("rpd {ranks_per_domain}, run {run}"));
        }
    }
}

#[test]
fn full_pipeline_is_invariant_under_mesh_world_execution() {
    // End to end: Pipeline::run with the pulse stage executed inside
    // World::run must reproduce the in-process outcome bit-for-bit
    // (mesh trajectory, peak excitation, downstream response and final
    // topology all included).
    let mut cfg = PipelineConfig::small_demo();
    cfg.cells = (4, 4, 1);
    cfg.prepare_steps = 2;
    cfg.mesh_steps = 2;
    cfg.response_steps = 25;
    let base = Pipeline::new(cfg).run();
    let mut world_cfg = cfg;
    world_cfg.mesh_ranks_per_domain = Some(2);
    let dist = Pipeline::new(world_cfg).run();
    assert_eq!(base.n_exc_peak.to_bits(), dist.n_exc_peak.to_bits());
    assert_eq!(
        base.excitation_fraction.to_bits(),
        dist.excitation_fraction.to_bits()
    );
    assert_eq!(
        base.final_topological_charge.to_bits(),
        dist.final_topological_charge.to_bits()
    );
    assert_traces_equal(&base.mesh_records, &dist.mesh_records, "pipeline mesh");
    assert_eq!(base.response_trace.len(), dist.response_trace.len());
    for (a, b) in base.response_trace.iter().zip(&dist.response_trace) {
        assert_eq!(a.polar_order.to_bits(), b.polar_order.to_bits());
        assert_eq!(a.mean_charge.to_bits(), b.mean_charge.to_bits());
    }
}

#[test]
fn fabric_reclaims_channels_across_repeated_distributed_mesh_cycles() {
    // Satellite pin: the new mesh collectives (panel/term/excitation/eps
    // allgathers + the E/J allreduce) must not leak fabric channels when
    // drivers are built and dropped per cycle — the same non-growth
    // invariant `comm.rs` pins for bare split/drop cycles.
    let out = World::run(4, |world| {
        let mut counts = Vec::new();
        for _cycle in 0..3 {
            let mut drv = DistributedMeshDriver::new(world.clone(), 2, |d| {
                small_mesh_builder(if d == 0 { 0.03 } else { 0.0 })
            });
            drv.run(2);
            drop(drv);
            // Every rank drops its hierarchy (and its domain communicator
            // handles) before the barrier, so after it the per-cycle
            // communicators are fully retired.
            world.barrier();
            counts.push((world.fabric_channel_count(), world.fabric_live_comm_count()));
        }
        counts
    });
    for counts in out {
        let (first_channels, first_live) = counts[0];
        assert_eq!(first_live, 1, "only the world comm may stay live");
        for &(channels, live) in &counts {
            assert_eq!(
                channels, first_channels,
                "channel map must not grow across distributed-mesh cycles"
            );
            assert_eq!(live, 1);
        }
    }
}
