//! Integration: the headline numbers of the paper's evaluation, pinned to
//! tolerance bands (see EXPERIMENTS.md for the paper-vs-measured ledger).

use mlmd::exasim::dcmesh_model::DcMeshModel;
use mlmd::exasim::nnqmd_model::NnqmdModel;
use mlmd::exasim::scaling::{self, sweeps};
use mlmd::exasim::sota;

#[test]
fn abstract_headline_claims() {
    // "152- and 3,780-times faster than the state-of-the-art".
    let dcmesh = DcMeshModel::paper_config();
    let nnqmd = NnqmdModel::paper_config();
    let s1 = sota::table_i_speedup(&dcmesh);
    let s2 = sota::table_ii_speedup(&nnqmd);
    assert!((100.0..250.0).contains(&s1), "ME speedup {s1} (paper 152)");
    assert!(
        (3000.0..4500.0).contains(&s2),
        "XS speedup {s2} (paper 3780)"
    );
    // "achieving 1.87 EFLOP/s for the former".
    let flops = dcmesh.sustained_flops(10_000);
    assert!(
        (1.0e18..3.0e18).contains(&flops),
        "{flops:e} (paper 1.873e18)"
    );
}

#[test]
fn performance_attributes_table() {
    // T2S: 1.11e-7 s/(electron·step) and 1.88e-15 s/(atom·weight·step).
    let dcmesh = DcMeshModel::paper_config();
    let t2s_me = dcmesh.t2s(120_000);
    assert!((0.6e-7..2.0e-7).contains(&t2s_me), "{t2s_me:e}");
    let nnqmd = NnqmdModel::paper_config();
    let t2s_xs = nnqmd.t2s(120_000, 1.2288e12);
    assert!((1.5e-15..2.5e-15).contains(&t2s_xs), "{t2s_xs:e}");
    // Weak-scaling efficiencies: ~1.0 (DC-MESH) and 0.997 (XS-NNQMD).
    let w1 = scaling::dcmesh_weak(&dcmesh, 128.0, &sweeps::DCMESH_WEAK)
        .last()
        .unwrap()
        .efficiency;
    assert!(w1 > 0.93, "DC-MESH weak {w1}");
    let w2 = scaling::nnqmd_weak(&nnqmd, 10_240_000.0, &sweeps::NNQMD_WEAK)
        .last()
        .unwrap()
        .efficiency;
    assert!(w2 > 0.99, "XS-NNQMD weak {w2}");
}

#[test]
fn figure_4b_and_5b_strong_scaling() {
    let dcmesh = DcMeshModel::paper_config();
    let eff = scaling::dcmesh_strong(&dcmesh, 12_582_912.0, &sweeps::DCMESH_STRONG)
        .last()
        .unwrap()
        .efficiency;
    assert!((0.75..0.95).contains(&eff), "Fig 4b: {eff} (paper 0.843)");
    let nnqmd = NnqmdModel::paper_config();
    let big = scaling::nnqmd_strong(&nnqmd, 984_000_000.0, &sweeps::NNQMD_STRONG)
        .last()
        .unwrap()
        .efficiency;
    let small = scaling::nnqmd_strong(&nnqmd, 221_400_000.0, &sweeps::NNQMD_STRONG)
        .last()
        .unwrap()
        .efficiency;
    assert!(big > small, "Fig 5b ordering");
}

#[test]
fn table_iii_ladder_shape_on_host() {
    // The measured ladder on this machine: every tier at least as fast as
    // baseline, parallel tier strictly faster.
    use mlmd::numerics::grid::Grid3;
    // Wall-clock comparison: retry a few times so contention from other
    // tests running concurrently cannot fail a correct implementation.
    let mut best_parallel: f64 = 0.0;
    let mut best_reorder: f64 = 0.0;
    for _ in 0..4 {
        let rows = mlmd_bench_ladder(Grid3::new(32, 32, 32, 0.5), 16, 3);
        best_parallel = best_parallel.max(rows[3].1);
        best_reorder = best_reorder.max(rows[1].1);
        if best_parallel > 1.2 && best_reorder > 0.8 {
            break;
        }
    }
    // Wall-clock claims are only meaningful on optimized builds; debug
    // builds still exercise the code path (correctness of all four tiers
    // is asserted separately in mlmd-lfd's unit and property tests).
    if cfg!(debug_assertions) {
        assert!(best_parallel > 0.0);
        return;
    }
    // The >1× parallel speedup is physically impossible on a single-CPU
    // host (the thread pool degenerates to one worker), so the speedup
    // claim is gated on actually having cores; the shape checks above and
    // the reorder bound below stay unconditional.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores > 1 {
        assert!(
            best_parallel > 1.2,
            "parallel must beat baseline on {cores} cores, got {best_parallel}x"
        );
    } else {
        assert!(best_parallel > 0.0, "ladder must still run on 1 core");
    }
    assert!(best_reorder > 0.8, "reordering must not regress badly");
}

// Minimal local re-implementation to avoid a dev-dependency cycle on
// mlmd-bench: measure the kin_prop ladder.
fn mlmd_bench_ladder(
    grid: mlmd::numerics::grid::Grid3,
    norb: usize,
    steps: usize,
) -> Vec<(f64, f64)> {
    use mlmd::lfd::kin_prop::{KinImpl, KinProp};
    use mlmd::lfd::wavefunction::WaveFunctions;
    use mlmd::numerics::flops::FlopCounter;
    use mlmd::numerics::vec3::Vec3;
    let kp = KinProp::new(grid);
    let flops = FlopCounter::new();
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for imp in KinImpl::ALL {
        let mut wf = WaveFunctions::random(grid, norb, 1);
        let start = std::time::Instant::now();
        kp.propagate_n(imp, &mut wf, 0.01, Vec3::ZERO, steps, &flops);
        let secs = start.elapsed().as_secs_f64();
        if imp == KinImpl::Baseline {
            baseline = secs;
        }
        rows.push((secs, baseline / secs));
    }
    rows
}
