//! Integration: the distributed DC-MESH global–local SCF against its
//! serial oracle, through the facade.
//!
//! The paper's headline scale comes from one rank-group per DC domain
//! with band decomposition inside each group (Sec. V.A.1). These tests
//! pin the distributed driver's band-energy trajectory to the serial
//! `DcScf` **bit-for-bit** at 1, 2, and 4 ranks per domain — no
//! tolerance, because the driver never reorders a float sum (column-local
//! work is sharded, orbital-coupling steps run redundantly on replicated
//! inputs, and the collectives left-fold one non-zero contribution per
//! domain in the serial domain order).

use mlmd::dcmesh::dist::{run_distributed, DistributedDcScf};
use mlmd::dcmesh::fixture::{small_two_domain as fixture, SMALL_ELECTRONS, SMALL_NORB, SMALL_SEED};
use mlmd::dcmesh::scf::DcScf;
use mlmd::parallel::comm::World;

const NORB: usize = SMALL_NORB;
const ELECTRONS_PER_DOMAIN: f64 = SMALL_ELECTRONS;
const SEED: u64 = SMALL_SEED;

fn serial_history(max_iter: usize) -> Vec<mlmd::dcmesh::scf::ScfIteration> {
    let (dd, atoms) = fixture();
    let mut scf = DcScf::new(dd, NORB, ELECTRONS_PER_DOMAIN, atoms, SEED);
    scf.converge(1e-5, max_iter)
}

#[test]
fn distributed_trajectory_is_bit_identical_across_rank_counts() {
    let max_iter = 8;
    let want = serial_history(max_iter);
    assert!(want.len() >= 3, "fixture must take several iterations");
    let (dd, atoms) = fixture();
    // 1, 2, and 4 ranks per domain: with norb = 2, the 4-rank case also
    // exercises empty band ranges on the surplus ranks.
    for ranks_per_domain in [1usize, 2, 4] {
        let got = run_distributed(
            &dd,
            NORB,
            ELECTRONS_PER_DOMAIN,
            &atoms,
            SEED,
            ranks_per_domain,
            1e-5,
            max_iter,
        );
        assert_eq!(
            want.len(),
            got.len(),
            "{ranks_per_domain} ranks/domain: history length"
        );
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(
                w.band_energy.to_bits(),
                g.band_energy.to_bits(),
                "{ranks_per_domain} ranks/domain, iter {}: {} vs {}",
                w.iter,
                w.band_energy,
                g.band_energy
            );
            assert_eq!(
                w.delta.to_bits(),
                g.delta.to_bits(),
                "{ranks_per_domain} ranks/domain, iter {} delta",
                w.iter
            );
        }
    }
}

#[test]
fn every_rank_reports_the_same_history() {
    // Rank-count invariance from the inside: all 8 ranks of a
    // 2-domain × 4-ranks world see identical histories, so any rank can
    // drive convergence decisions.
    let (dd, atoms) = fixture();
    let histories = World::run(8, |world| {
        let mut drv = DistributedDcScf::new(
            world,
            dd.clone(),
            NORB,
            ELECTRONS_PER_DOMAIN,
            atoms.clone(),
            SEED,
        );
        drv.converge(1e-5, 5)
    });
    let reference = &histories[0];
    for (rank, h) in histories.iter().enumerate() {
        assert_eq!(h.len(), reference.len(), "rank {rank} history length");
        for (a, b) in h.iter().zip(reference) {
            assert_eq!(a.band_energy.to_bits(), b.band_energy.to_bits());
        }
    }
}

#[test]
fn distributed_density_conserves_electrons_at_four_ranks_per_domain() {
    let (dd, atoms) = fixture();
    let g = dd.spec.global;
    let counts = World::run(8, |world| {
        let mut drv = DistributedDcScf::new(
            world,
            dd.clone(),
            NORB,
            ELECTRONS_PER_DOMAIN,
            atoms.clone(),
            SEED,
        );
        drv.converge(1e-4, 6);
        drv.global_density().iter().sum::<f64>() * g.dv()
    });
    for n in counts {
        // 2 domains × 2 electrons.
        assert!((n - 4.0).abs() < 1e-6, "electron count {n}");
    }
}

#[test]
fn first_iteration_delta_is_finite_in_both_drivers() {
    // Regression for the `delta: INFINITY` poisoning, pinned across both
    // drivers so their histories stay interchangeable.
    let want = serial_history(4);
    assert!(want[0].delta.is_finite());
    assert_eq!(want[0].delta, want[0].band_energy.abs());
    let (dd, atoms) = fixture();
    let got = run_distributed(&dd, NORB, ELECTRONS_PER_DOMAIN, &atoms, SEED, 2, 1e-5, 4);
    assert!(got[0].delta.is_finite());
    assert_eq!(got[0].delta.to_bits(), want[0].delta.to_bits());
}
