//! GEMM kernels: the computational core of "GEMMification" (paper Sec. V.B.5).
//!
//! Three implementation tiers mirror the optimization story of the paper:
//!
//! * [`gemm_naive`] — reference triple loop (correctness oracle).
//! * [`gemm_blocked`] — cache-blocked packed-panel kernel (MC×KC×MR×NR
//!   tiling, the CPU "blocking/tiling" tier, Sec. V.B.3). Panels of `A` and
//!   `B` are packed into contiguous tile-major buffers so the innermost
//!   MR×NR micro-kernel runs over unit-stride data the autovectorizer can
//!   chew on.
//! * [`gemm_parallel`] — the packed kernel fanned out over fixed-width
//!   column strips with rayon (the "hierarchical parallel regions" tier
//!   mapped to the GPU in Sec. V.B.4).
//!
//! plus the mixed-precision split-BF16 modes of Sec. VI.C in [`mixed`].
//!
//! All kernels compute `C = alpha·op(A)·op(B) + beta·C` for column-major
//! matrices; op(A) is expressed through [`MatRef`] strided views (a
//! transpose is a stride swap, a conjugate transpose additionally sets the
//! conj flag applied at pack time), so [`crate::cgemm`] dispatches every
//! op combination here without materializing transposed copies.
//!
//! # Oracle discipline
//!
//! Every tier folds each output element the same way: start from the
//! beta-scaled previous value, then add terms `a[(i,p)] · (alpha·b[(p,j)])`
//! in ascending-`p` order. Because f64 addition and multiplication are
//! bitwise-commutative in their rounding (and Rust never contracts to FMA),
//! this makes naive, blocked (at *any* block-size choice), strided, and
//! parallel (at *any* pool width) produce **bit-identical** results — the
//! invariant the `kernel_oracle` differential harness pins with
//! proptest-generated shapes, strides, and transpose flags. The micro-kernel
//! preserves the fold across KC chunks by loading the C tile into registers,
//! accumulating the chunk's terms, and storing back (never by summing a
//! zero-initialized partial into C, which would regroup the additions).
//!
//! FLOP accounting is *analytic*: each public entry point records
//! `MAC_FLOPS · m·n·k` on the calling thread's tally
//! ([`crate::flops::record_gemm`]) once per call, so naive and blocked
//! report identical counts for the same shape by construction.

use crate::bf16::{split_slice, SplitMode};
use crate::flops;
use crate::matrix::{Matrix, Scalar};
use rayon::prelude::*;

/// FLOP count of a (real or complex) GEMM of shape m×k · k×n.
#[inline]
pub fn gemm_flops<T: Scalar>(m: usize, n: usize, k: usize) -> u64 {
    T::MAC_FLOPS * m as u64 * n as u64 * k as u64
}

/// Hard ceiling on the micro-tile dimensions: the micro-kernel accumulates
/// into a stack buffer of `MR_MAX · NR_MAX` registers.
pub const MR_MAX: usize = 8;
/// See [`MR_MAX`].
pub const NR_MAX: usize = 8;

/// Number of C columns per parallel task in [`gemm_parallel`]. Fixed (not
/// derived from the pool width) so the work decomposition — and therefore
/// the bit pattern of the result — is invariant across pool widths.
const PAR_STRIP_COLS: usize = 8;

/// Below this `m·n·k`, parallel dispatch overhead dominates and
/// [`gemm_parallel`] delegates to the serial packed kernel.
const PAR_THRESHOLD: usize = 32_768;

/// Cache-blocking parameters for the packed kernel.
///
/// `mc`×`kc` is the packed A block kept cache-resident; `mr`×`nr` is the
/// micro-tile accumulated in registers (clamped to [`MR_MAX`]×[`NR_MAX`]).
/// Any choice produces bit-identical results (see module docs); the
/// defaults are tuned for ~L2-sized panels of f64.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    pub mc: usize,
    pub kc: usize,
    pub mr: usize,
    pub nr: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self {
            mc: 128,
            kc: 256,
            mr: 8,
            nr: 8,
        }
    }
}

impl BlockSizes {
    fn sane(self) -> Self {
        Self {
            mc: self.mc.max(1),
            kc: self.kc.max(1),
            mr: self.mr.clamp(1, MR_MAX),
            nr: self.nr.clamp(1, NR_MAX),
        }
    }
}

/// Borrowed strided view of a column-major matrix, with an optional
/// element-wise conjugation applied on read.
///
/// `op(A)` in BLAS terms is a view transformation: a transpose swaps the
/// row/column strides, a conjugate transpose additionally sets `conj`.
/// The packed kernel reads operands exclusively through [`MatRef::at`], so
/// transposed operands cost nothing extra beyond the (already paid) pack.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    rs: usize,
    cs: usize,
    conj: bool,
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// View with explicit strides. `data[i·rs + j·cs]` must be in bounds
    /// for all `i < rows`, `j < cols`.
    pub fn new(data: &'a [T], rows: usize, cols: usize, rs: usize, cs: usize, conj: bool) -> Self {
        if rows > 0 && cols > 0 {
            let max = (rows - 1) * rs + (cols - 1) * cs;
            assert!(max < data.len(), "MatRef strides exceed buffer");
        }
        Self {
            data,
            rows,
            cols,
            rs,
            cs,
            conj,
        }
    }

    /// Plain (untransposed, unconjugated) view of a column-major matrix.
    pub fn from_matrix(m: &'a Matrix<T>) -> Self {
        Self::new(m.as_slice(), m.rows(), m.cols(), 1, m.rows(), false)
    }

    /// Transposed view: `at(i,j) = m[(j,i)]`, no copy.
    pub fn transposed(m: &'a Matrix<T>) -> Self {
        Self::new(m.as_slice(), m.cols(), m.rows(), m.rows(), 1, false)
    }

    /// Conjugate-transposed view: `at(i,j) = conj(m[(j,i)])`, no copy.
    pub fn conj_transposed(m: &'a Matrix<T>) -> Self {
        Self::new(m.as_slice(), m.cols(), m.rows(), m.rows(), 1, true)
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sub-view of `width` columns starting at column `j0`.
    pub fn col_range(&self, j0: usize, width: usize) -> Self {
        assert!(j0 + width <= self.cols, "column range out of bounds");
        Self {
            data: &self.data[j0 * self.cs..],
            rows: self.rows,
            cols: width,
            rs: self.rs,
            cs: self.cs,
            conj: self.conj,
        }
    }

    /// Element read with the view's strides and conjugation applied.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> T {
        let v = self.data[i * self.rs + j * self.cs];
        if self.conj {
            v.conj()
        } else {
            v
        }
    }
}

/// Reference GEMM: `C = alpha·A·B + beta·C`. Triple loop, no blocking.
/// This is the Table III "baseline" tier for dense algebra and the
/// correctness oracle for every other kernel in this module.
///
/// The per-element fold is the canonical one shared by all tiers (see
/// module docs), so the blocked and parallel kernels match it
/// **bit-for-bit**, not merely within tolerance.
pub fn gemm_naive<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let (m, k, n) = check_shapes(a, b, c);
    flops::record_gemm(gemm_flops::<T>(m, n, k));
    let one = T::one();
    for j in 0..n {
        for i in 0..m {
            let mut acc = if beta == one {
                c[(i, j)]
            } else {
                beta * c[(i, j)]
            };
            for p in 0..k {
                acc += a[(i, p)] * (alpha * b[(p, j)]);
            }
            c[(i, j)] = acc;
        }
    }
}

/// Cache-blocked packed-panel GEMM with the default [`BlockSizes`].
/// Bit-identical to [`gemm_naive`] for every shape.
pub fn gemm_blocked<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    gemm_blocked_with(BlockSizes::default(), alpha, a, b, beta, c);
}

/// [`gemm_blocked`] with explicit blocking parameters. Results are
/// bit-identical for every `BlockSizes` choice — the property the
/// `kernel_oracle` harness sweeps.
pub fn gemm_blocked_with<T: Scalar>(
    bs: BlockSizes,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k, n) = check_shapes(a, b, c);
    flops::record_gemm(gemm_flops::<T>(m, n, k));
    let ldc = m;
    gemm_packed(
        bs,
        alpha,
        MatRef::from_matrix(a),
        MatRef::from_matrix(b),
        beta,
        c.as_mut_slice(),
        ldc,
    );
}

/// GEMM over strided (possibly transposed/conjugated) operand views:
/// `C = alpha·view(A)·view(B) + beta·C`. This is the entry point
/// [`crate::cgemm::cgemm`] uses for every op combination other than its
/// two tuned fast paths — the pack stage absorbs arbitrary strides, so no
/// transposed operand is ever materialized.
pub fn gemm_strided<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows(), "GEMM inner dimensions differ");
    assert_eq!(c.rows(), m, "GEMM C row mismatch");
    assert_eq!(c.cols(), n, "GEMM C col mismatch");
    flops::record_gemm(gemm_flops::<T>(m, n, k));
    gemm_packed(
        BlockSizes::default(),
        alpha,
        a,
        b,
        beta,
        c.as_mut_slice(),
        m,
    );
}

/// Parallel GEMM: the packed kernel fanned out over fixed-width column
/// strips with rayon — the data-parallel "SIMT" tier of Sec. V.B.4.
///
/// Each strip of `PAR_STRIP_COLS` C columns runs the full serial packed
/// kernel against a column sub-view of B, so the per-element fold — and
/// therefore the bit pattern — is identical to the serial kernels and
/// invariant across pool widths.
pub fn gemm_parallel<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k, n) = check_shapes(a, b, c);
    flops::record_gemm(gemm_flops::<T>(m, n, k));
    let bs = BlockSizes::default();
    let a_ref = MatRef::from_matrix(a);
    let b_ref = MatRef::from_matrix(b);
    if m * n * k < PAR_THRESHOLD {
        // Parallel dispatch overhead dominates below this size.
        return gemm_packed(bs, alpha, a_ref, b_ref, beta, c.as_mut_slice(), m);
    }
    c.as_mut_slice()
        .par_chunks_mut(m * PAR_STRIP_COLS)
        .enumerate()
        .for_each(|(t, c_strip)| {
            let j0 = t * PAR_STRIP_COLS;
            // m > 0 here: an empty product falls below PAR_THRESHOLD and
            // takes the serial early return above.
            let width = (c_strip.len() / m).min(n - j0);
            gemm_packed(
                bs,
                alpha,
                a_ref,
                b_ref.col_range(j0, width),
                beta,
                c_strip,
                m,
            );
        });
}

/// The packed kernel shared by every non-naive tier.
///
/// Loop structure (outermost to innermost): KC chunks of the inner
/// dimension, ascending, with B packed strip-major (alpha folded in at
/// pack time, one multiply per B element); MC blocks of rows with A packed
/// tile-major (view strides and conjugation applied at pack time); NR
/// column strips × MR row tiles handled by a register-resident micro-kernel
/// that loads the C tile, accumulates the chunk's terms in ascending-`p`
/// order with the operand order `a · (alpha·b)`, and stores back.
fn gemm_packed<T: Scalar>(
    bs: BlockSizes,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let bs = bs.sane();
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    debug_assert_eq!(b.rows(), k);
    if n > 0 {
        assert!(c.len() >= (n - 1) * ldc + m, "C buffer too small");
    }
    if beta != T::one() {
        for col in c.chunks_mut(ldc.max(1)).take(n) {
            for x in &mut col[..m] {
                *x = beta * *x;
            }
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kc_eff = bs.kc.min(k);
    let mc_eff = bs.mc.min(m);
    let mut bpack = vec![T::zero(); kc_eff * n];
    let mut apack = vec![T::zero(); mc_eff * kc_eff];
    let mut acc = [T::zero(); MR_MAX * NR_MAX];

    for pc in (0..k).step_by(bs.kc) {
        let kb = bs.kc.min(k - pc);
        // Pack B panel strip-major: strip at j0 occupies
        // bpack[j0*kb .. (j0+nrw)*kb], element (p, jl) at [p*nrw + jl].
        for j0 in (0..n).step_by(bs.nr) {
            let nrw = bs.nr.min(n - j0);
            let base = j0 * kb;
            for p in 0..kb {
                let dst = &mut bpack[base + p * nrw..base + (p + 1) * nrw];
                for (jl, slot) in dst.iter_mut().enumerate() {
                    *slot = alpha * b.at(pc + p, j0 + jl);
                }
            }
        }
        for i0 in (0..m).step_by(bs.mc) {
            let ib = bs.mc.min(m - i0);
            // Pack A block tile-major: tile at r0 occupies
            // apack[r0*kb .. (r0+mrw)*kb], element (p, r) at [p*mrw + r].
            for r0 in (0..ib).step_by(bs.mr) {
                let mrw = bs.mr.min(ib - r0);
                let base = r0 * kb;
                for p in 0..kb {
                    let dst = &mut apack[base + p * mrw..base + (p + 1) * mrw];
                    for (r, slot) in dst.iter_mut().enumerate() {
                        *slot = a.at(i0 + r0 + r, pc + p);
                    }
                }
            }
            for j0 in (0..n).step_by(bs.nr) {
                let nrw = bs.nr.min(n - j0);
                let b_strip = &bpack[j0 * kb..(j0 + nrw) * kb];
                for r0 in (0..ib).step_by(bs.mr) {
                    let mrw = bs.mr.min(ib - r0);
                    let a_tile = &apack[r0 * kb..(r0 + mrw) * kb];
                    // Load the C micro-tile so the KC chunk's terms extend
                    // the existing per-element fold (see module docs).
                    for jl in 0..nrw {
                        let col = &c[(j0 + jl) * ldc + i0 + r0..][..mrw];
                        acc[jl * mrw..(jl + 1) * mrw].copy_from_slice(col);
                    }
                    for (arow, brow) in a_tile.chunks_exact(mrw).zip(b_strip.chunks_exact(nrw)) {
                        for (jl, &bv) in brow.iter().enumerate() {
                            let accj = &mut acc[jl * mrw..(jl + 1) * mrw];
                            for (cv, &av) in accj.iter_mut().zip(arow) {
                                *cv += av * bv;
                            }
                        }
                    }
                    for jl in 0..nrw {
                        let col = &mut c[(j0 + jl) * ldc + i0 + r0..][..mrw];
                        col.copy_from_slice(&acc[jl * mrw..(jl + 1) * mrw]);
                    }
                }
            }
        }
    }
}

fn check_shapes<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &Matrix<T>) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "GEMM C row mismatch");
    assert_eq!(b.cols(), c.cols(), "GEMM C col mismatch");
    (a.rows(), a.cols(), b.cols())
}

/// Mixed-precision GEMM emulating the XMX/systolic-array compute modes.
pub mod mixed {
    use super::*;

    /// `C = A·B` on f32 inputs where each input is decomposed into BF16
    /// components per `mode`, component products are exact BF16×BF16
    /// multiplies, and accumulation is FP32 — bit-faithful to the MKL
    /// `float_to_BF16*` modes on the PVC systolic arrays (paper Sec. VI.C).
    pub fn gemm_f32_split(mode: SplitMode, a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
        let (m, k, n) = super::check_shapes(a, b, c);
        let ncomp = mode.components();
        let a_planes = split_slice(a.as_slice(), ncomp);
        let b_planes = split_slice(b.as_slice(), ncomp);
        for x in c.as_mut_slice() {
            *x = 0.0;
        }
        for &(ia, ib) in mode.product_pairs() {
            let ap = Matrix::from_vec(m, k, a_planes[ia].clone());
            let bp = Matrix::from_vec(k, n, b_planes[ib].clone());
            let mut partial = Matrix::<f32>::zeros(m, n);
            gemm_blocked(1.0, &ap, &bp, 0.0, &mut partial);
            for (ci, pi) in c.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *ci += pi;
            }
        }
    }

    /// Worst-case relative error of a split-mode GEMM against the f64
    /// reference, used by the accuracy ladder tests and the Table IV
    /// accuracy column.
    pub fn gemm_relative_error(mode: SplitMode, a: &Matrix<f32>, b: &Matrix<f32>) -> f64 {
        let (m, n) = (a.rows(), b.cols());
        let mut c = Matrix::<f32>::zeros(m, n);
        gemm_f32_split(mode, a, b, &mut c);
        // f64 reference
        let a64 = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)] as f64);
        let b64 = Matrix::from_fn(b.rows(), b.cols(), |i, j| b[(i, j)] as f64);
        let mut r = Matrix::<f64>::zeros(m, n);
        gemm_blocked(1.0, &a64, &b64, 0.0, &mut r);
        let scale = r.frobenius_norm().max(f64::MIN_POSITIVE);
        let mut err = 0.0f64;
        for j in 0..n {
            for i in 0..m {
                err = err.max((c[(i, j)] as f64 - r[(i, j)]).abs());
            }
        }
        err * (m as f64 * n as f64).sqrt() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::rng::{Rng64, SplitMix64};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
    }

    fn random_cmatrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        })
    }

    fn assert_bits_eq(a: &Matrix<f64>, b: &Matrix<f64>, ctx: &str) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}");
        }
    }

    #[test]
    fn naive_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 7.0, 6.0, 8.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_naive(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 43.0, 22.0, 50.0]);
    }

    #[test]
    fn blocked_is_bit_identical_to_naive_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 31, 13),
            (130, 64, 70),
            (257, 129, 3),
        ] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let mut c0 = random_matrix(m, n, 3);
            let mut c1 = c0.clone();
            gemm_naive(1.3, &a, &b, 0.4, &mut c0);
            gemm_blocked(1.3, &a, &b, 0.4, &mut c1);
            assert_bits_eq(&c0, &c1, &format!("shape ({m},{k},{n})"));
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_naive() {
        let (m, k, n) = (96, 87, 64);
        let a = random_matrix(m, k, 4);
        let b = random_matrix(k, n, 5);
        let mut c0 = random_matrix(m, n, 6);
        let mut c1 = c0.clone();
        gemm_naive(0.7, &a, &b, -0.2, &mut c0);
        gemm_parallel(0.7, &a, &b, -0.2, &mut c1);
        assert_bits_eq(&c0, &c1, "parallel vs naive");
    }

    #[test]
    fn complex_blocked_is_bit_identical_to_naive() {
        let (m, k, n) = (24, 40, 18);
        let a = random_cmatrix(m, k, 7);
        let b = random_cmatrix(k, n, 8);
        let mut c0 = Matrix::<c64>::zeros(m, n);
        let mut c1 = c0.clone();
        gemm_naive(c64::new(0.5, 0.5), &a, &b, c64::zero(), &mut c0);
        gemm_blocked(c64::new(0.5, 0.5), &a, &b, c64::zero(), &mut c1);
        for (x, y) in c0.as_slice().iter().zip(c1.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn block_sizes_do_not_change_bits() {
        let (m, k, n) = (37, 41, 23);
        let a = random_matrix(m, k, 11);
        let b = random_matrix(k, n, 12);
        let c0 = random_matrix(m, n, 13);
        let mut reference = c0.clone();
        gemm_blocked(0.9, &a, &b, 1.7, &mut reference);
        for bs in [
            BlockSizes {
                mc: 1,
                kc: 1,
                mr: 1,
                nr: 1,
            },
            BlockSizes {
                mc: 7,
                kc: 5,
                mr: 3,
                nr: 2,
            },
            BlockSizes {
                mc: 64,
                kc: 16,
                mr: 4,
                nr: 8,
            },
            BlockSizes {
                mc: 4096,
                kc: 4096,
                mr: 8,
                nr: 8,
            },
        ] {
            let mut c = c0.clone();
            gemm_blocked_with(bs, 0.9, &a, &b, 1.7, &mut c);
            assert_bits_eq(&reference, &c, &format!("{bs:?}"));
        }
    }

    #[test]
    fn strided_transposed_view_matches_materialized() {
        let a = random_matrix(9, 14, 21);
        let b = random_matrix(9, 6, 22);
        // C = A^T · B via the strided view vs. a materialized transpose.
        let mut c_view = Matrix::<f64>::zeros(14, 6);
        gemm_strided(
            1.1,
            MatRef::transposed(&a),
            MatRef::from_matrix(&b),
            0.0,
            &mut c_view,
        );
        let at = a.transpose();
        let mut c_mat = Matrix::<f64>::zeros(14, 6);
        gemm_naive(1.1, &at, &b, 0.0, &mut c_mat);
        assert_bits_eq(&c_view, &c_mat, "transposed view");
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        // beta = 0 must ignore pre-existing NaN-free garbage in C.
        let a = Matrix::<f64>::eye(3);
        let b = random_matrix(3, 3, 9);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1e300);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let b = random_matrix(8, 5, 10);
        let mut c = Matrix::<f64>::zeros(8, 5);
        gemm_parallel(1.0, &Matrix::eye(8), &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(gemm_flops::<f64>(10, 20, 30), 2 * 10 * 20 * 30);
        assert_eq!(gemm_flops::<c64>(10, 20, 30), 8 * 10 * 20 * 30);
    }

    #[test]
    fn naive_and_blocked_record_identical_flop_counts() {
        // Regression for the flops.rs satellite: the tally is analytic, so
        // loop structure (naive vs blocked vs parallel) cannot skew it.
        let (m, k, n) = (13, 29, 7);
        let a = random_matrix(m, k, 31);
        let b = random_matrix(k, n, 32);
        let mut c = Matrix::<f64>::zeros(m, n);
        flops::reset_gemm_tally();
        gemm_naive(1.0, &a, &b, 0.0, &mut c);
        let naive_count = flops::reset_gemm_tally();
        gemm_blocked(1.0, &a, &b, 0.0, &mut c);
        let blocked_count = flops::reset_gemm_tally();
        gemm_parallel(1.0, &a, &b, 0.0, &mut c);
        let parallel_count = flops::reset_gemm_tally();
        assert_eq!(naive_count, gemm_flops::<f64>(m, n, k));
        assert_eq!(naive_count, blocked_count);
        assert_eq!(naive_count, parallel_count);
    }

    #[test]
    fn mixed_precision_accuracy_ladder() {
        let mut rng = SplitMix64::new(42);
        let a = Matrix::from_fn(48, 48, |_, _| (rng.next_f64() as f32 - 0.5) * 2.0);
        let b = Matrix::from_fn(48, 48, |_, _| (rng.next_f64() as f32 - 0.5) * 2.0);
        let e1 = mixed::gemm_relative_error(SplitMode::Bf16, &a, &b);
        let e2 = mixed::gemm_relative_error(SplitMode::Bf16x2, &a, &b);
        let e3 = mixed::gemm_relative_error(SplitMode::Bf16x3, &a, &b);
        assert!(e1 > e2 && e2 > e3, "ladder violated: {e1} {e2} {e3}");
        assert!(e1 < 1e-1, "single BF16 should still be ~2-digit accurate");
        assert!(e3 < 1e-5, "BF16x3 should be f32-comparable, got {e3}");
    }

    #[test]
    fn mixed_mode_bf16x3_close_to_f32() {
        let mut rng = SplitMix64::new(77);
        let a = Matrix::from_fn(32, 32, |_, _| rng.next_f64() as f32 - 0.5);
        let b = Matrix::from_fn(32, 32, |_, _| rng.next_f64() as f32 - 0.5);
        let mut c_split = Matrix::<f32>::zeros(32, 32);
        mixed::gemm_f32_split(SplitMode::Bf16x3, &a, &b, &mut c_split);
        let mut c_f32 = Matrix::<f32>::zeros(32, 32);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c_f32);
        assert!(c_split.max_abs_diff(&c_f32) < 1e-4);
    }
}
