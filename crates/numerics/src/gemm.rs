//! GEMM kernels: the computational core of "GEMMification" (paper Sec. V.B.5).
//!
//! Three implementation tiers mirror the optimization story of the paper:
//!
//! * [`gemm_naive`] — reference triple loop (correctness oracle).
//! * [`gemm_blocked`] — cache-blocked with a column-panel microkernel
//!   (the CPU "blocking/tiling" tier, Sec. V.B.3).
//! * [`gemm_parallel`] — rayon-parallel over column panels (the
//!   "hierarchical parallel regions" tier mapped to the GPU in Sec. V.B.4).
//!
//! plus the mixed-precision split-BF16 modes of Sec. VI.C in [`mixed`].
//!
//! All kernels compute `C = alpha·op(A)·op(B) + beta·C` for column-major
//! matrices; op is identity here (transposed variants live in [`crate::cgemm`]
//! where the physics needs them).

use crate::bf16::{split_slice, SplitMode};
use crate::matrix::{Matrix, Scalar};
use rayon::prelude::*;

/// FLOP count of a (real or complex) GEMM of shape m×k · k×n.
#[inline]
pub fn gemm_flops<T: Scalar>(m: usize, n: usize, k: usize) -> u64 {
    T::MAC_FLOPS * m as u64 * n as u64 * k as u64
}

/// Reference GEMM: `C = alpha·A·B + beta·C`. Triple loop, no blocking.
/// This is the Table III "baseline" tier for dense algebra and the
/// correctness oracle for every other kernel in this module.
pub fn gemm_naive<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let (m, k, n) = check_shapes(a, b, c);
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::zero();
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            let old = c[(i, j)];
            c[(i, j)] = alpha * acc + beta * old;
        }
    }
}

/// Cache-blocked GEMM. Panels of `B` columns are processed against blocks
/// of `A` sized to stay cache-resident; the innermost loop runs down
/// contiguous columns of `A` so LLVM can vectorize it.
pub fn gemm_blocked<T: Scalar>(alpha: T, a: &Matrix<T>, b: &Matrix<T>, beta: T, c: &mut Matrix<T>) {
    let (m, k, n) = check_shapes(a, b, c);
    scale_in_place(c, beta);
    let mc = 128.min(m.max(1));
    let kc = 256.min(k.max(1));
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    for p0 in (0..k).step_by(kc) {
        let pb = kc.min(k - p0);
        for i0 in (0..m).step_by(mc) {
            let ib = mc.min(m - i0);
            for j in 0..n {
                let b_col = &b_s[j * k + p0..j * k + p0 + pb];
                let c_col = &mut c.as_mut_slice()[j * m + i0..j * m + i0 + ib];
                for (p, &bpj) in b_col.iter().enumerate() {
                    let ab = alpha * bpj;
                    let a_col = &a_s[(p0 + p) * m + i0..(p0 + p) * m + i0 + ib];
                    for (ci, &aip) in c_col.iter_mut().zip(a_col) {
                        *ci += aip * ab;
                    }
                }
            }
        }
    }
}

/// Parallel GEMM: the blocked kernel fanned out over column panels with
/// rayon — the data-parallel "SIMT" tier of Sec. V.B.4.
pub fn gemm_parallel<T: Scalar>(
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (m, k, n) = check_shapes(a, b, c);
    if m * n * k < 32_768 {
        // Parallel dispatch overhead dominates below this size.
        return gemm_blocked(alpha, a, b, beta, c);
    }
    let a_s = a.as_slice();
    let b_s = b.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, c_col)| {
            for ci in c_col.iter_mut() {
                *ci = beta * *ci;
            }
            let b_col = &b_s[j * k..(j + 1) * k];
            for (p, &bpj) in b_col.iter().enumerate() {
                let ab = alpha * bpj;
                let a_col = &a_s[p * m..(p + 1) * m];
                for (ci, &aip) in c_col.iter_mut().zip(a_col) {
                    *ci += aip * ab;
                }
            }
        });
}

fn scale_in_place<T: Scalar>(c: &mut Matrix<T>, beta: T) {
    if beta == T::one() {
        return;
    }
    for x in c.as_mut_slice() {
        *x = beta * *x;
    }
}

fn check_shapes<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &Matrix<T>) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "GEMM inner dimensions differ");
    assert_eq!(a.rows(), c.rows(), "GEMM C row mismatch");
    assert_eq!(b.cols(), c.cols(), "GEMM C col mismatch");
    (a.rows(), a.cols(), b.cols())
}

/// Mixed-precision GEMM emulating the XMX/systolic-array compute modes.
pub mod mixed {
    use super::*;

    /// `C = A·B` on f32 inputs where each input is decomposed into BF16
    /// components per `mode`, component products are exact BF16×BF16
    /// multiplies, and accumulation is FP32 — bit-faithful to the MKL
    /// `float_to_BF16*` modes on the PVC systolic arrays (paper Sec. VI.C).
    pub fn gemm_f32_split(mode: SplitMode, a: &Matrix<f32>, b: &Matrix<f32>, c: &mut Matrix<f32>) {
        let (m, k, n) = super::check_shapes(a, b, c);
        let ncomp = mode.components();
        let a_planes = split_slice(a.as_slice(), ncomp);
        let b_planes = split_slice(b.as_slice(), ncomp);
        for x in c.as_mut_slice() {
            *x = 0.0;
        }
        for &(ia, ib) in mode.product_pairs() {
            let ap = Matrix::from_vec(m, k, a_planes[ia].clone());
            let bp = Matrix::from_vec(k, n, b_planes[ib].clone());
            let mut partial = Matrix::<f32>::zeros(m, n);
            gemm_blocked(1.0, &ap, &bp, 0.0, &mut partial);
            for (ci, pi) in c.as_mut_slice().iter_mut().zip(partial.as_slice()) {
                *ci += pi;
            }
        }
    }

    /// Worst-case relative error of a split-mode GEMM against the f64
    /// reference, used by the accuracy ladder tests and the Table IV
    /// accuracy column.
    pub fn gemm_relative_error(mode: SplitMode, a: &Matrix<f32>, b: &Matrix<f32>) -> f64 {
        let (m, n) = (a.rows(), b.cols());
        let mut c = Matrix::<f32>::zeros(m, n);
        gemm_f32_split(mode, a, b, &mut c);
        // f64 reference
        let a64 = Matrix::from_fn(a.rows(), a.cols(), |i, j| a[(i, j)] as f64);
        let b64 = Matrix::from_fn(b.rows(), b.cols(), |i, j| b[(i, j)] as f64);
        let mut r = Matrix::<f64>::zeros(m, n);
        gemm_blocked(1.0, &a64, &b64, 0.0, &mut r);
        let scale = r.frobenius_norm().max(f64::MIN_POSITIVE);
        let mut err = 0.0f64;
        for j in 0..n {
            for i in 0..m {
                err = err.max((c[(i, j)] as f64 - r[(i, j)]).abs());
            }
        }
        err * (m as f64 * n as f64).sqrt() / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::rng::{Rng64, SplitMix64};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
    }

    fn random_cmatrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        })
    }

    #[test]
    fn naive_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 7.0, 6.0, 8.0]);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_naive(1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c.as_slice(), &[19.0, 43.0, 22.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 31, 13),
            (130, 64, 70),
            (257, 129, 3),
        ] {
            let a = random_matrix(m, k, 1);
            let b = random_matrix(k, n, 2);
            let mut c0 = random_matrix(m, n, 3);
            let mut c1 = c0.clone();
            gemm_naive(1.3, &a, &b, 0.4, &mut c0);
            gemm_blocked(1.3, &a, &b, 0.4, &mut c1);
            assert!(c0.max_abs_diff(&c1) < 1e-11, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_matches_naive() {
        let (m, k, n) = (96, 87, 64);
        let a = random_matrix(m, k, 4);
        let b = random_matrix(k, n, 5);
        let mut c0 = random_matrix(m, n, 6);
        let mut c1 = c0.clone();
        gemm_naive(0.7, &a, &b, -0.2, &mut c0);
        gemm_parallel(0.7, &a, &b, -0.2, &mut c1);
        assert!(c0.max_abs_diff(&c1) < 1e-11);
    }

    #[test]
    fn complex_blocked_matches_naive() {
        let (m, k, n) = (24, 40, 18);
        let a = random_cmatrix(m, k, 7);
        let b = random_cmatrix(k, n, 8);
        let mut c0 = Matrix::<c64>::zeros(m, n);
        let mut c1 = c0.clone();
        gemm_naive(c64::new(0.5, 0.5), &a, &b, c64::zero(), &mut c0);
        gemm_blocked(c64::new(0.5, 0.5), &a, &b, c64::zero(), &mut c1);
        assert!(c0.max_abs_diff(&c1) < 1e-12);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        // beta = 0 must ignore pre-existing NaN-free garbage in C.
        let a = Matrix::<f64>::eye(3);
        let b = random_matrix(3, 3, 9);
        let mut c = Matrix::from_fn(3, 3, |_, _| 1e300);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn identity_is_neutral() {
        let b = random_matrix(8, 5, 10);
        let mut c = Matrix::<f64>::zeros(8, 5);
        gemm_parallel(1.0, &Matrix::eye(8), &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    fn flops_accounting() {
        assert_eq!(gemm_flops::<f64>(10, 20, 30), 2 * 10 * 20 * 30);
        assert_eq!(gemm_flops::<c64>(10, 20, 30), 8 * 10 * 20 * 30);
    }

    #[test]
    fn mixed_precision_accuracy_ladder() {
        let mut rng = SplitMix64::new(42);
        let a = Matrix::from_fn(48, 48, |_, _| (rng.next_f64() as f32 - 0.5) * 2.0);
        let b = Matrix::from_fn(48, 48, |_, _| (rng.next_f64() as f32 - 0.5) * 2.0);
        let e1 = mixed::gemm_relative_error(SplitMode::Bf16, &a, &b);
        let e2 = mixed::gemm_relative_error(SplitMode::Bf16x2, &a, &b);
        let e3 = mixed::gemm_relative_error(SplitMode::Bf16x3, &a, &b);
        assert!(e1 > e2 && e2 > e3, "ladder violated: {e1} {e2} {e3}");
        assert!(e1 < 1e-1, "single BF16 should still be ~2-digit accurate");
        assert!(e3 < 1e-5, "BF16x3 should be f32-comparable, got {e3}");
    }

    #[test]
    fn mixed_mode_bf16x3_close_to_f32() {
        let mut rng = SplitMix64::new(77);
        let a = Matrix::from_fn(32, 32, |_, _| rng.next_f64() as f32 - 0.5);
        let b = Matrix::from_fn(32, 32, |_, _| rng.next_f64() as f32 - 0.5);
        let mut c_split = Matrix::<f32>::zeros(32, 32);
        mixed::gemm_f32_split(SplitMode::Bf16x3, &a, &b, &mut c_split);
        let mut c_f32 = Matrix::<f32>::zeros(32, 32);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c_f32);
        assert!(c_split.max_abs_diff(&c_f32) < 1e-4);
    }
}
