//! Deterministic byte-level serialization and FNV-1a hashing.
//!
//! The ground-state checkpoint layer (`mlmd-dcmesh`'s `checkpoint`
//! module) needs a serializer whose output is a pure function of the
//! encoded values — no padding, no platform-dependent layout, no
//! allocator addresses — so that a checkpoint written on one host hashes
//! and round-trips identically on another. This module provides that
//! substrate:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian scalar framing over
//!   a flat byte buffer; the reader returns [`CodecError::Truncated`]
//!   instead of panicking, so corrupted or short payloads surface as
//!   diagnosable errors;
//! * [`Fnv64`] — the streaming 64-bit FNV-1a variant the integration
//!   suites already use for trajectory digests (fold each 8-byte block
//!   as `h ← (h ⊕ block) · prime`), plus the one-shot [`fnv1a_bytes`]
//!   over raw bytes for payload digests.
//!
//! Floats are framed by their IEEE-754 bit patterns ([`f64::to_bits`]),
//! which makes encode → decode the identity on every value including
//! negative zero and NaN payloads — the property the bit-identity pins
//! rely on.

use std::fmt;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Decoding failure: the buffer ended before the requested value, or a
/// framed payload failed its self-identification checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader needed `needed` more bytes but only `remaining` were left.
    Truncated { needed: usize, remaining: usize },
    /// A format magic/version word did not match what the decoder expects.
    BadMagic,
    /// An integrity digest did not match the decoded payload.
    BadDigest,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => write!(
                f,
                "truncated payload: needed {needed} more bytes, {remaining} remaining"
            ),
            CodecError::BadMagic => write!(f, "format magic/version mismatch"),
            CodecError::BadDigest => write!(f, "integrity digest mismatch"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Streaming 64-bit FNV-1a over 8-byte blocks — the digest shape the
/// oracle suites pin trajectories with (`h ← (h ⊕ block) · prime`).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Fold one 64-bit block.
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Fold a float by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot byte-wise FNV-1a (the classic octet-at-a-time variant), used
/// for checkpoint payload digests where the input is an opaque byte run.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Little-endian scalar framing into a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Frame a float by its IEEE-754 bit pattern (lossless for every
    /// value, including −0.0 and NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian scalar reader over a byte slice; every `take_*` returns
/// [`CodecError::Truncated`] instead of panicking on short input.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset from the start of the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip_is_exact() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(1.0 / 3.0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u32().unwrap(), 7);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.take_f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn short_reads_report_truncation() {
        let mut w = ByteWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.take_u64(),
            Err(CodecError::Truncated {
                needed: 8,
                remaining: 4
            })
        );
        // A failed take consumes nothing.
        assert_eq!(r.take_u32().unwrap(), 1);
    }

    #[test]
    fn block_fnv_matches_manual_fold() {
        let mut h = Fnv64::new();
        h.write_f64(1.5);
        h.write_u64(42);
        let mut want = FNV_OFFSET;
        for bits in [1.5f64.to_bits(), 42] {
            want ^= bits;
            want = want.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), want);
    }

    #[test]
    fn byte_fnv_is_order_sensitive() {
        assert_ne!(fnv1a_bytes(b"ab"), fnv1a_bytes(b"ba"));
        assert_ne!(fnv1a_bytes(b""), 0);
    }

    #[test]
    fn encoding_is_byte_deterministic() {
        let encode = || {
            let mut w = ByteWriter::new();
            w.put_u64(3);
            w.put_f64(std::f64::consts::PI);
            w.put_bytes(b"tail");
            w.into_bytes()
        };
        assert_eq!(encode(), encode());
        assert_eq!(fnv1a_bytes(&encode()), fnv1a_bytes(&encode()));
    }
}
