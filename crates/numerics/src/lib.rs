//! # mlmd-numerics
//!
//! Numerical substrate for the MLMD (multiscale light-matter dynamics) stack.
//!
//! This crate is the stand-in for the vendor math libraries the paper builds
//! on (oneMKL BLAS, FFT libraries): everything above it — the LFD quantum
//! propagators, the Maxwell solver, the Allegro-lite network — is expressed
//! in terms of the primitives defined here.
//!
//! Contents:
//!
//! * [`complex`] — `Complex<T>` arithmetic (the `c64`/`c32` of the KS wave
//!   functions).
//! * [`codec`] — deterministic little-endian byte framing + FNV-1a
//!   hashing (the ground-state checkpoint serializer substrate).
//! * [`bf16`] — software brain-float-16 with round-to-nearest-even and the
//!   1/2/3-component split decomposition used by the MKL
//!   `float_to_BF16{,x2,x3}` compute modes (paper Sec. VI.C).
//! * [`matrix`] — dense column-major matrices.
//! * [`gemm`] — real GEMM kernels: naive / blocked / parallel, plus the
//!   mixed-precision split-BF16 modes with FP32 accumulation.
//! * [`cgemm`] — complex GEMM (the `nlp_prop` hotspot of Table V).
//! * [`fft`] — arbitrary-length 1-D/3-D complex FFT (radix-2 + Bluestein).
//! * [`grid`] — 3-D finite-difference grid descriptors.
//! * [`stencil`] — finite-difference operators (Laplacian, gradient).
//! * [`eigen`] — Jacobi eigensolvers (real symmetric, complex Hermitian).
//! * [`ortho`] — Gram–Schmidt / Löwdin orthonormalization.
//! * [`rng`] — deterministic counter-based RNG (SplitMix64, Xoshiro256**).
//! * [`vec3`] — 3-vectors for atomistic modules.
//! * [`stats`] — summary statistics and least-squares fits used by the
//!   benchmark harness (scaling exponents, TEA alignment).
//! * [`flops`] — floating-point-operation accounting (paper Sec. VI.B).

pub mod bf16;
pub mod cgemm;
pub mod codec;
pub mod complex;
pub mod eigen;
pub mod fft;
pub mod flops;
pub mod gemm;
pub mod grid;
pub mod matrix;
pub mod ortho;
pub mod rng;
pub mod stats;
pub mod stencil;
pub mod vec3;

pub use bf16::SplitMode;
pub use complex::{c32, c64, Complex};
pub use grid::Grid3;
pub use matrix::Matrix;
pub use rng::{Rng64, SplitMix64, Xoshiro256};
pub use vec3::Vec3;
