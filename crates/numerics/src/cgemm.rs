//! Complex GEMM with transpose options — the `nlp_prop` hotspot kernels.
//!
//! The nonlocal correction of paper Eq. (5),
//! `Ψ(t) ← Ψ(t) − δ·Ψ(0)·[Ψ(0)†·Ψ(t)]`, needs exactly two CGEMM shapes
//! (paper Table V):
//!
//! 1. **CGEMM(1)** — overlap matrix `S = Ψ(0)† Ψ(t)`: (Norb×Ngrid)·(Ngrid×Norb),
//!    i.e. op(A) = conjugate transpose;
//! 2. **CGEMM(2)** — correction `Ψ(t) −= δ Ψ(0) S`: (Ngrid×Norb)·(Norb×Norb).
//!
//! [`cgemm`] provides the general BLAS-style entry point; [`overlap`] and
//! [`rank_update`] are the tuned fast paths for those two shapes. Mixed
//! precision (split-BF16 with f32 accumulation) is provided by
//! [`cgemm_c32_split`].

use crate::bf16::{split_slice, SplitMode};
use crate::complex::{Complex, Real};
use crate::gemm::{gemm_blocked, gemm_parallel, gemm_strided, MatRef};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Transpose operation applied to a GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// No transpose.
    N,
    /// Transpose (no conjugation).
    T,
    /// Conjugate (Hermitian) transpose.
    H,
}

impl Op {
    fn dims(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::N => (rows, cols),
            Op::T | Op::H => (cols, rows),
        }
    }
}

/// General complex GEMM: `C = alpha·op(A)·op(B) + beta·C`.
///
/// `Op::N/Op::N` dispatches to the blocked kernel and `Op::H/Op::N` to the
/// tuned [`overlap`] fast path (the two shapes `nlp_prop` uses); every
/// other combination goes through [`gemm_strided`] with a [`MatRef`]
/// stride-swap/conjugation view — the pack stage of the blocked kernel
/// absorbs the transpose, so no operand is ever materialized.
pub fn cgemm<T: Real>(
    opa: Op,
    opb: Op,
    alpha: Complex<T>,
    a: &Matrix<Complex<T>>,
    b: &Matrix<Complex<T>>,
    beta: Complex<T>,
    c: &mut Matrix<Complex<T>>,
) {
    let (ma, ka) = opa.dims(a.rows(), a.cols());
    let (kb, nb) = opb.dims(b.rows(), b.cols());
    assert_eq!(ka, kb, "CGEMM inner dimensions differ");
    assert_eq!(c.rows(), ma, "CGEMM C row mismatch");
    assert_eq!(c.cols(), nb, "CGEMM C col mismatch");
    fn view<T: Real>(m: &Matrix<Complex<T>>, op: Op) -> MatRef<'_, Complex<T>> {
        match op {
            Op::N => MatRef::from_matrix(m),
            Op::T => MatRef::transposed(m),
            Op::H => MatRef::conj_transposed(m),
        }
    }
    match (opa, opb) {
        (Op::N, Op::N) => gemm_blocked(alpha, a, b, beta, c),
        (Op::H, Op::N) => overlap(alpha, a, b, beta, c),
        (opa, opb) => gemm_strided(alpha, view(a, opa), view(b, opb), beta, c),
    }
}

/// CGEMM(1) of Table V: `C = alpha·A†·B + beta·C` without materializing A†.
///
/// Since A and B are column-major with long columns (Ngrid entries —
/// orbitals on the grid), `(A†B)[i,j]` is a dot product of two contiguous
/// columns: perfectly streaming access, parallelized over output columns.
pub fn overlap<T: Real>(
    alpha: Complex<T>,
    a: &Matrix<Complex<T>>,
    b: &Matrix<Complex<T>>,
    beta: Complex<T>,
    c: &mut Matrix<Complex<T>>,
) {
    assert_eq!(a.rows(), b.rows(), "overlap: grid dimensions differ");
    let (ma, nb) = (a.cols(), b.cols());
    assert_eq!(c.rows(), ma);
    assert_eq!(c.cols(), nb);
    crate::flops::record_gemm(cgemm_flops(ma, nb, a.rows()));
    let a_ref = a;
    let b_ref = b;
    c.as_mut_slice()
        .par_chunks_mut(ma)
        .enumerate()
        .for_each(|(j, c_col)| {
            let b_col = b_ref.col(j);
            for (i, cij) in c_col.iter_mut().enumerate() {
                let a_col = a_ref.col(i);
                let mut acc = Complex::<T>::zero();
                for (&ap, &bp) in a_col.iter().zip(b_col) {
                    acc = acc.mul_acc(ap.conj(), bp);
                }
                *cij = alpha * acc + beta * *cij;
            }
        });
}

/// CGEMM(2) of Table V: `C += alpha·A·S` where S is small (Norb×Norb).
/// This is the rank-Norb update writing back into the wave-function panel.
pub fn rank_update<T: Real>(
    alpha: Complex<T>,
    a: &Matrix<Complex<T>>,
    s: &Matrix<Complex<T>>,
    c: &mut Matrix<Complex<T>>,
) {
    gemm_parallel(alpha, a, s, Complex::one(), c);
}

/// Mixed-precision complex GEMM (`C = A·B`, f32 complex inputs) using the
/// split-BF16 modes: each of the four real sub-products
/// (`ReRe, ImIm, ReIm, ImRe`) is computed with the component-split kernel
/// and accumulated in f32 — mirroring how the PVC systolic array is fed by
/// oneMKL for complex workloads.
pub fn cgemm_c32_split(
    mode: SplitMode,
    a: &Matrix<Complex<f32>>,
    b: &Matrix<Complex<f32>>,
    c: &mut Matrix<Complex<f32>>,
) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k);
    assert_eq!(c.rows(), m);
    assert_eq!(c.cols(), n);
    let plane = |mat: &Matrix<Complex<f32>>, im: bool| -> Vec<f32> {
        mat.as_slice()
            .iter()
            .map(|z| if im { z.im } else { z.re })
            .collect()
    };
    let (ar, ai) = (plane(a, false), plane(a, true));
    let (br, bi) = (plane(b, false), plane(b, true));
    let mul = |x: &[f32], y: &[f32], xr: usize, xc: usize, yc: usize| -> Vec<f32> {
        let ncomp = mode.components();
        let xp = split_slice(x, ncomp);
        let yp = split_slice(y, ncomp);
        let mut out = vec![0.0f32; xr * yc];
        for &(ix, iy) in mode.product_pairs() {
            let xm = Matrix::from_vec(xr, xc, xp[ix].clone());
            let ym = Matrix::from_vec(xc, yc, yp[iy].clone());
            let mut partial = Matrix::<f32>::zeros(xr, yc);
            gemm_blocked(1.0, &xm, &ym, 0.0, &mut partial);
            for (o, p) in out.iter_mut().zip(partial.as_slice()) {
                *o += p;
            }
        }
        out
    };
    let rr = mul(&ar, &br, m, k, n);
    let ii = mul(&ai, &bi, m, k, n);
    let ri = mul(&ar, &bi, m, k, n);
    let ir = mul(&ai, &br, m, k, n);
    for (idx, cz) in c.as_mut_slice().iter_mut().enumerate() {
        *cz = Complex::new(rr[idx] - ii[idx], ri[idx] + ir[idx]);
    }
}

/// FLOP count of one complex GEMM (8 flops per complex MAC).
#[inline]
pub fn cgemm_flops(m: usize, n: usize, k: usize) -> u64 {
    crate::gemm::gemm_flops::<Complex<f64>>(m, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c32, c64};
    use crate::rng::{Rng64, SplitMix64};

    fn random_c64(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        })
    }

    fn reference(
        opa: Op,
        opb: Op,
        alpha: c64,
        a: &Matrix<c64>,
        b: &Matrix<c64>,
        beta: c64,
        c: &Matrix<c64>,
    ) -> Matrix<c64> {
        let at = match opa {
            Op::N => a.clone(),
            Op::T => a.transpose(),
            Op::H => a.conj_transpose(),
        };
        let bt = match opb {
            Op::N => b.clone(),
            Op::T => b.transpose(),
            Op::H => b.conj_transpose(),
        };
        let mut out = c.clone();
        crate::gemm::gemm_naive(alpha, &at, &bt, beta, &mut out);
        out
    }

    #[test]
    fn all_op_combinations_match_reference() {
        let a = random_c64(12, 9, 1);
        let b = random_c64(9, 7, 2);
        for (opa, opb, ad, bd) in [
            (Op::N, Op::N, (12, 9), (9, 7)),
            (Op::H, Op::N, (9, 12), (9, 7)),
            (Op::T, Op::N, (9, 12), (9, 7)),
            (Op::N, Op::H, (12, 9), (7, 9)),
            (Op::N, Op::T, (12, 9), (7, 9)),
            (Op::H, Op::H, (9, 12), (7, 9)),
        ] {
            let a = random_c64(ad.0, ad.1, 3);
            let b = random_c64(bd.0, bd.1, 4);
            let c0 = random_c64(12, 7, 5);
            let mut c = c0.clone();
            let alpha = c64::new(0.3, -0.8);
            let beta = c64::new(0.1, 0.2);
            cgemm(opa, opb, alpha, &a, &b, beta, &mut c);
            let r = reference(opa, opb, alpha, &a, &b, beta, &c0);
            assert!(c.max_abs_diff(&r) < 1e-12, "ops {opa:?},{opb:?}");
            let _ = a;
            let _ = b;
        }
        let _ = (a, b);
    }

    #[test]
    fn overlap_is_hermitian_for_self_overlap() {
        let a = random_c64(64, 6, 11);
        let mut s = Matrix::<c64>::zeros(6, 6);
        overlap(c64::one(), &a, &a, c64::zero(), &mut s);
        for i in 0..6 {
            for j in 0..6 {
                let d = s[(i, j)] - s[(j, i)].conj();
                assert!(d.abs() < 1e-12, "S must be Hermitian");
            }
            assert!(s[(i, i)].im.abs() < 1e-12, "diagonal must be real");
            assert!(s[(i, i)].re > 0.0, "diagonal must be positive");
        }
    }

    #[test]
    fn rank_update_accumulates() {
        let a = random_c64(40, 5, 21);
        let s = random_c64(5, 5, 22);
        let mut c = random_c64(40, 5, 23);
        let expected = {
            let mut e = c.clone();
            crate::gemm::gemm_naive(c64::new(-0.05, 0.0), &a, &s, c64::one(), &mut e);
            e
        };
        rank_update(c64::new(-0.05, 0.0), &a, &s, &mut c);
        assert!(c.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn eq5_nonlocal_correction_shape() {
        // Full Eq. (5): Psi(t) -= delta * Psi0 * (Psi0^H Psi(t)).
        let ngrid = 100;
        let norb = 8;
        let psi0 = random_c64(ngrid, norb, 31);
        let mut psi_t = random_c64(ngrid, norb, 32);
        let orig = psi_t.clone();
        let delta = c64::new(0.0, -0.01);
        let mut s = Matrix::<c64>::zeros(norb, norb);
        overlap(c64::one(), &psi0, &psi_t, c64::zero(), &mut s);
        rank_update(-delta, &psi0, &s, &mut psi_t);
        // Reference: dense computation.
        let sh = {
            let p0h = psi0.conj_transpose();
            let mut sh = Matrix::<c64>::zeros(norb, norb);
            crate::gemm::gemm_naive(c64::one(), &p0h, &orig, c64::zero(), &mut sh);
            sh
        };
        let mut expected = orig.clone();
        crate::gemm::gemm_naive(-delta, &psi0, &sh, c64::one(), &mut expected);
        assert!(psi_t.max_abs_diff(&expected) < 1e-11);
    }

    #[test]
    fn split_complex_matches_f32_for_x3() {
        let mut rng = SplitMix64::new(9);
        let a = Matrix::from_fn(24, 24, |_, _| {
            c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5)
        });
        let b = Matrix::from_fn(24, 24, |_, _| {
            c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5)
        });
        let mut c_split = Matrix::<c32>::zeros(24, 24);
        cgemm_c32_split(SplitMode::Bf16x3, &a, &b, &mut c_split);
        let mut c_f32 = Matrix::<c32>::zeros(24, 24);
        gemm_blocked(c32::one(), &a, &b, c32::zero(), &mut c_f32);
        assert!(c_split.max_abs_diff(&c_f32) < 5e-4);
    }

    #[test]
    fn split_complex_accuracy_ladder() {
        let mut rng = SplitMix64::new(10);
        let a = Matrix::from_fn(32, 32, |_, _| {
            c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5)
        });
        let b = Matrix::from_fn(32, 32, |_, _| {
            c32::new(rng.next_f64() as f32 - 0.5, rng.next_f64() as f32 - 0.5)
        });
        let mut reference = Matrix::<c32>::zeros(32, 32);
        gemm_blocked(c32::one(), &a, &b, c32::zero(), &mut reference);
        let err = |mode| {
            let mut c = Matrix::<c32>::zeros(32, 32);
            cgemm_c32_split(mode, &a, &b, &mut c);
            c.max_abs_diff(&reference)
        };
        let (e1, e2, e3) = (
            err(SplitMode::Bf16),
            err(SplitMode::Bf16x2),
            err(SplitMode::Bf16x3),
        );
        assert!(e1 > e2 && e2 > e3, "ladder violated: {e1} {e2} {e3}");
    }

    #[test]
    fn flops() {
        assert_eq!(cgemm_flops(2, 3, 4), 8 * 24);
    }
}
