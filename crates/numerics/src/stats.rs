//! Summary statistics and least-squares fits.
//!
//! Used by the benchmark harness (scaling-exponent fits like the
//! `t_failure ∝ N^{-0.14}` law of paper Sec. A.6), by TEA dataset alignment
//! (affine least squares, Sec. A.7), and by tests that need robust
//! means/variances of simulation observables.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root-mean-square error between two slices.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Ordinary least squares `y ≈ slope·x + intercept`.
/// Returns `(slope, intercept, r²)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "need at least two points to fit a line");
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
        syy += (yi - my) * (yi - my);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy > 0.0 {
        sxy * sxy / (sxx * syy)
    } else {
        1.0
    };
    (slope, intercept, r2)
}

/// Fit a power law `y = c·x^p` by linear regression in log–log space.
/// Returns `(exponent p, prefactor c, r²)`. All inputs must be positive.
pub fn power_law_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert!(x.iter().all(|&v| v > 0.0), "power-law fit needs positive x");
    assert!(y.iter().all(|&v| v > 0.0), "power-law fit needs positive y");
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let (slope, intercept, r2) = linear_fit(&lx, &ly);
    (slope, intercept.exp(), r2)
}

/// Affine alignment `y ≈ a·x + b` minimizing squared error — the Total
/// Energy Alignment (TEA) primitive of paper Sec. A.7 (MSA type 2): a
/// shift-and-scale transformation in metamodel space that maps one
/// dataset's energy scale onto another's.
pub fn affine_align(x: &[f64], y: &[f64]) -> (f64, f64) {
    let (a, b, _) = linear_fit(x, y);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-14);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn exact_line_recovered() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let (s, b, r2) = linear_fit(&x, &y);
        assert!((s - 3.0).abs() < 1e-12);
        assert!((b + 7.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovered() {
        let x: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v.powf(-0.29)).collect();
        let (p, c, r2) = power_law_fit(&x, &y);
        assert!((p + 0.29).abs() < 1e-10, "exponent {p}");
        assert!((c - 2.5).abs() < 1e-9, "prefactor {c}");
        assert!(r2 > 0.999999);
    }

    #[test]
    fn affine_alignment_maps_scales() {
        // Dataset B = 0.9·A − 13.2 (different xc functional offsets).
        let a: Vec<f64> = (0..50).map(|i| -120.0 + 0.37 * i as f64).collect();
        let b: Vec<f64> = a.iter().map(|e| 0.9 * e - 13.2).collect();
        let (scale, shift) = affine_align(&a, &b);
        assert!((scale - 0.9).abs() < 1e-12);
        assert!((shift + 13.2).abs() < 1e-9);
    }

    #[test]
    fn rmse_mae_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 5.0];
        assert!((mae(&a, &b) - 2.0 / 3.0).abs() < 1e-14);
        assert!((rmse(&a, &b) - (4.0f64 / 3.0).sqrt()).abs() < 1e-14);
    }
}
