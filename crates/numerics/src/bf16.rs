//! Software brain-float-16 and the split-component decomposition behind the
//! MKL `float_to_BF16{,x2,x3}` compute modes (paper Secs. V.B.7 and VI.C).
//!
//! BF16 keeps the f32 exponent (8 bits) and truncates the mantissa to 7
//! bits. The "split" trick writes an f32 `x` as a sum of BF16 components
//! `x ≈ x₁ + x₂ + x₃` (each component capturing the residual of the previous
//! ones); products of BF16 values are exact in f32, so a GEMM over the
//! components with f32 accumulation recovers accuracy as more components are
//! kept: `BF16 < BF16x2 < BF16x3 ≈ FP32`. This module provides the scalar
//! type and split machinery; `gemm::mixed` builds the matrix kernels on top.

/// A 16-bit brain float stored as its raw bit pattern.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct bf16(pub u16);

impl bf16 {
    pub const ZERO: bf16 = bf16(0);
    pub const ONE: bf16 = bf16(0x3F80);

    /// Convert from f32 with round-to-nearest-even (the hardware behaviour
    /// of XMX/AMX units, not plain truncation).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet NaN, preserving the sign.
            return bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(round_bit - 1 + lsb);
        bf16((rounded >> 16) as u16)
    }

    /// Widen back to f32 (exact: BF16 ⊂ F32).
    #[inline(always)]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Round-trip an f32 through BF16 (the "quantize" operation).
    #[inline(always)]
    pub fn quantize(x: f32) -> f32 {
        Self::from_f32(x).to_f32()
    }
}

impl From<f32> for bf16 {
    fn from(x: f32) -> Self {
        bf16::from_f32(x)
    }
}

impl From<bf16> for f32 {
    fn from(x: bf16) -> Self {
        x.to_f32()
    }
}

/// Number of BF16 components used to represent each f32 input of a GEMM.
///
/// Mirrors the oneMKL BLAS compute modes described in paper Sec. VI.C: the
/// library "internally converts single-precision input data to sums of 1, 2,
/// or 3 BF16 values" and multiplies the component matrices on the systolic
/// array with FP32 accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SplitMode {
    /// `float_to_BF16`: one component; fastest, least accurate.
    Bf16,
    /// `float_to_BF16x2`: two components, three component products.
    Bf16x2,
    /// `float_to_BF16x3`: three components, six component products;
    /// accuracy comparable to FP32.
    Bf16x3,
}

impl SplitMode {
    /// Number of split components per input value.
    #[inline]
    pub fn components(self) -> usize {
        match self {
            SplitMode::Bf16 => 1,
            SplitMode::Bf16x2 => 2,
            SplitMode::Bf16x3 => 3,
        }
    }

    /// Component-product pairs `(i, j)` retained: all with `i + j ≤ k + 1`
    /// (1-based), dropping the negligible high-order cross terms exactly as
    /// the MKL emulation does (1, 3, and 6 products respectively).
    pub fn product_pairs(self) -> &'static [(usize, usize)] {
        match self {
            SplitMode::Bf16 => &[(0, 0)],
            SplitMode::Bf16x2 => &[(0, 0), (0, 1), (1, 0)],
            SplitMode::Bf16x3 => &[(0, 0), (0, 1), (1, 0), (0, 2), (1, 1), (2, 0)],
        }
    }

    /// Relative FLOP cost versus a plain FP32 GEMM (number of component
    /// products). Used by the exasim roofline projection.
    #[inline]
    pub fn product_count(self) -> usize {
        self.product_pairs().len()
    }
}

/// Decompose `x` into `n` BF16 components such that
/// `x ≈ Σ components[k]` with strictly decreasing magnitude.
#[inline]
pub fn split_f32(x: f32, n: usize) -> [f32; 3] {
    let mut out = [0.0f32; 3];
    let mut residual = x;
    for slot in out.iter_mut().take(n.min(3)) {
        let c = bf16::quantize(residual);
        *slot = c;
        residual -= c;
    }
    out
}

/// Split an entire slice into `n` component planes (structure-of-arrays:
/// `planes[k][i]` is the k-th component of `x[i]`). The planes hold the
/// BF16 values widened to f32, ready for exact f32 products.
pub fn split_slice(x: &[f32], n: usize) -> Vec<Vec<f32>> {
    let mut planes = vec![vec![0.0f32; x.len()]; n];
    for (i, &v) in x.iter().enumerate() {
        let c = split_f32(v, n);
        for (k, plane) in planes.iter_mut().enumerate() {
            plane[i] = c[k];
        }
    }
    planes
}

/// Max relative reconstruction error of the split representation over a
/// slice; used in tests and the accuracy column of the Table IV harness.
pub fn reconstruction_error(x: &[f32], n: usize) -> f64 {
    let mut worst = 0.0f64;
    for &v in x {
        let c = split_f32(v, n);
        let rec: f32 = c.iter().take(n).sum();
        let denom = v.abs().max(f32::MIN_POSITIVE) as f64;
        worst = worst.max(((v - rec).abs() as f64) / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, -0.25, 128.0] {
            assert_eq!(bf16::quantize(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn one_is_one() {
        assert_eq!(bf16::ONE.to_f32(), 1.0);
        assert_eq!(bf16::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value; RNE keeps the even mantissa (1.0).
        let halfway = 1.0f32 + 2.0f32.powi(-8);
        assert_eq!(bf16::quantize(halfway), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0f32 + 2.0f32.powi(-8) + 2.0f32.powi(-12);
        assert!(bf16::quantize(above) > 1.0);
    }

    #[test]
    fn relative_error_bounded() {
        // BF16 has 8 mantissa bits (incl. implicit) → rel. error ≤ 2^-8.
        let mut x = 0.917_f32;
        for _ in 0..100 {
            let q = bf16::quantize(x);
            assert!(((q - x) / x).abs() <= 2.0f32.powi(-8), "x={x} q={q}");
            x *= 1.093;
        }
    }

    #[test]
    fn nan_and_inf() {
        assert!(bf16::quantize(f32::NAN).is_nan());
        assert_eq!(bf16::quantize(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16::quantize(f32::NEG_INFINITY), f32::NEG_INFINITY);
    }

    #[test]
    fn split_components_shrink() {
        let c = split_f32(0.333_333_34, 3);
        assert!(c[0].abs() > c[1].abs());
        assert!(c[1].abs() > c[2].abs() || c[2] == 0.0);
    }

    #[test]
    fn split_accuracy_ladder() {
        let xs: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.7193).sin() * 3.7).collect();
        let e1 = reconstruction_error(&xs, 1);
        let e2 = reconstruction_error(&xs, 2);
        let e3 = reconstruction_error(&xs, 3);
        assert!(e1 > e2, "x2 must beat x1: {e1} vs {e2}");
        assert!(e2 > e3, "x3 must beat x2: {e2} vs {e3}");
        // Three components capture ≥ 24 mantissa bits → f32-like accuracy.
        assert!(e3 < 1e-6, "x3 should be f32-accurate, got {e3}");
    }

    #[test]
    fn split_slice_layout() {
        let xs = [1.5f32, -2.25, 0.1];
        let planes = split_slice(&xs, 2);
        assert_eq!(planes.len(), 2);
        assert_eq!(planes[0].len(), 3);
        for i in 0..3 {
            let rec = planes[0][i] + planes[1][i];
            assert!(((xs[i] - rec) / xs[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn quantize_is_monotone() {
        // Round-to-nearest-even is order-preserving: x ≤ y ⇒ q(x) ≤ q(y).
        let mut xs: Vec<f32> = vec![
            f32::NEG_INFINITY,
            -3.4e38,
            -1.0,
            -1e-3,
            -1e-40,
            -0.0,
            0.0,
            1e-45,
            1e-40,
            f32::MIN_POSITIVE,
            1e-3,
            0.1,
            1.0,
            1.5,
            3.4e38,
            f32::INFINITY,
        ];
        for i in 0..1000 {
            xs.push((i as f32 - 500.0) * 0.037);
        }
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in xs.windows(2) {
            let (qa, qb) = (bf16::quantize(w[0]), bf16::quantize(w[1]));
            assert!(
                qa <= qb,
                "monotonicity violated: q({}) = {qa} > q({}) = {qb}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn nan_round_trip_is_quiet_and_sign_preserving() {
        let q = bf16::from_f32(f32::NAN);
        assert!(q.to_f32().is_nan());
        assert_ne!(q.0 & 0x0040, 0, "quiet bit must be set");
        let neg = bf16::from_f32(f32::from_bits(0xFFC0_0000));
        assert!(neg.to_f32().is_nan());
        assert!(neg.to_f32().is_sign_negative());
    }

    #[test]
    fn subnormals_round_trip_or_flush_to_signed_zero() {
        // A bf16-representable f32 subnormal survives the round trip exactly.
        let s = f32::from_bits(0x0001_0000);
        assert!(s.is_subnormal());
        assert_eq!(bf16::quantize(s).to_bits(), s.to_bits());
        // Subnormals below bf16 resolution flush to zero, keeping the sign.
        assert_eq!(
            bf16::quantize(f32::from_bits(1)).to_bits(),
            0.0f32.to_bits()
        );
        assert_eq!(
            bf16::quantize(f32::from_bits(0x8000_0001)).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn product_pair_counts_match_mkl() {
        assert_eq!(SplitMode::Bf16.product_count(), 1);
        assert_eq!(SplitMode::Bf16x2.product_count(), 3);
        assert_eq!(SplitMode::Bf16x3.product_count(), 6);
    }
}
