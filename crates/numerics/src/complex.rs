//! Complex arithmetic for KS wave functions and spectral methods.
//!
//! A minimal, `#[repr(C)]`, `Copy` complex type generic over `f32`/`f64`.
//! Layout matches the interleaved (re, im) convention of BLAS `c`/`z`
//! routines so slices of `Complex<T>` can be reinterpreted as `[T]` pairs.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar abstraction (`f32` or `f64`).
pub trait Real:
    Copy
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Send
    + Sync
    + std::fmt::Debug
    + std::fmt::Display
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const PI: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    fn sqrt(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn exp(self) -> Self;
    fn hypot(self, other: Self) -> Self;
    fn atan2(self, other: Self) -> Self;
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $pi:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const PI: Self = $pi;
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn sin(self) -> Self {
                <$t>::sin(self)
            }
            #[inline(always)]
            fn cos(self) -> Self {
                <$t>::cos(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline(always)]
            fn atan2(self, other: Self) -> Self {
                <$t>::atan2(self, other)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, std::f32::consts::PI);
impl_real!(f64, std::f64::consts::PI);

/// A complex number `re + i·im`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

/// Double-precision complex (BLAS `z`).
#[allow(non_camel_case_types)]
pub type c64 = Complex<f64>;
/// Single-precision complex (BLAS `c`).
#[allow(non_camel_case_types)]
pub type c32 = Complex<f32>;

impl<T: Real> Complex<T> {
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    #[inline(always)]
    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO)
    }

    /// The multiplicative identity.
    #[inline(always)]
    pub fn one() -> Self {
        Self::new(T::ONE, T::ZERO)
    }

    /// The imaginary unit `i`.
    #[inline(always)]
    pub fn i() -> Self {
        Self::new(T::ZERO, T::ONE)
    }

    /// A purely real complex number.
    #[inline(always)]
    pub fn real(re: T) -> Self {
        Self::new(re, T::ZERO)
    }

    /// `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: T, theta: T) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — the phase factors of split-operator propagation.
    #[inline]
    pub fn cis(theta: T) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²` (no square root; the density kernel).
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> T {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle).
    #[inline]
    pub fn arg(self) -> T {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Multiply by `i` without a full complex multiply.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self::new(-self.im, self.re)
    }

    /// Fused multiply-add: `self + a*b`, keeping intermediate products in
    /// the scalar's native precision.
    #[inline(always)]
    pub fn mul_acc(self, a: Self, b: Self) -> Self {
        Self::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Lossless-ish cast between precisions via f64.
    #[inline]
    pub fn cast<U: Real>(self) -> Complex<U> {
        Complex::new(U::from_f64(self.re.to_f64()), U::from_f64(self.im.to_f64()))
    }
}

impl<T: Real> Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Real> Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T: Real> Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Real> Div for Complex<T> {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z · w⁻¹ is the definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl<T: Real> Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl<T: Real> AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Real> SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Real> MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Real> DivAssign for Complex<T> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<T: Real> Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Real> Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<T: Real> From<T> for Complex<T> {
    #[inline]
    fn from(re: T) -> Self {
        Self::real(re)
    }
}

impl<T: Real + std::fmt::Display> std::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im < T::ZERO {
            write!(f, "{}-{}i", self.re, self.im.abs())
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: c64, b: c64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64::new(3.0, -4.0);
        assert_eq!(z + c64::zero(), z);
        assert_eq!(z * c64::one(), z);
        assert!(close(z * z.inv(), c64::one(), 1e-14));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = c64::new(1.5, 2.5);
        assert!(close(z * z.conj(), c64::real(z.norm_sqr()), 1e-14));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn euler_identity() {
        let z = c64::cis(std::f64::consts::PI);
        assert!(close(z, c64::real(-1.0), 1e-15));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..100 {
            let theta = 0.0628 * k as f64;
            assert!((c64::cis(theta).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let z = c64::new(2.0, 7.0);
        assert_eq!(z.mul_i(), z * c64::i());
    }

    #[test]
    fn from_polar_round_trip() {
        let z = c64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn exp_of_sum_is_product() {
        let a = c64::new(0.3, 1.2);
        let b = c64::new(-0.1, 0.4);
        assert!(close((a + b).exp(), a.exp() * b.exp(), 1e-12));
    }

    #[test]
    fn mul_acc_matches_expanded() {
        let c = c64::new(1.0, 1.0);
        let a = c64::new(0.5, -0.25);
        let b = c64::new(2.0, 3.0);
        assert!(close(c.mul_acc(a, b), c + a * b, 1e-15));
    }

    #[test]
    fn division() {
        let a = c64::new(4.0, 2.0);
        let b = c64::new(1.0, -1.0);
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn precision_cast() {
        let z = c64::new(0.1, 0.2);
        let w: c32 = z.cast();
        assert!((w.re - 0.1f32).abs() < 1e-7);
        let back: c64 = w.cast();
        assert!((back.re - 0.1).abs() < 1e-7);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64::new(1.0, 2.0); 10];
        let s: c64 = v.into_iter().sum();
        assert_eq!(s, c64::new(10.0, 20.0));
    }
}
