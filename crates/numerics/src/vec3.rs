//! 3-vectors for the atomistic modules (positions, velocities, forces,
//! polarizations, electromagnetic field components).

use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component f64 vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const EX: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    pub const EY: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    pub const EZ: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    #[inline(always)]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self::new(v, v, v)
    }

    #[inline(always)]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline(always)]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    #[inline(always)]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Unit vector; zero vector maps to zero (callers guard physics).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n > 0.0 {
            self / n
        } else {
            Vec3::ZERO
        }
    }

    /// Component-wise minimum-image wrap into a periodic box of lengths `l`.
    #[inline]
    pub fn min_image(self, l: Vec3) -> Vec3 {
        Vec3::new(
            self.x - l.x * (self.x / l.x).round(),
            self.y - l.y * (self.y / l.y).round(),
            self.z - l.z * (self.z / l.z).round(),
        )
    }

    /// Wrap a position into [0, L) per component.
    #[inline]
    pub fn wrap_into(self, l: Vec3) -> Vec3 {
        let w = |x: f64, l: f64| x - l * (x / l).floor();
        Vec3::new(w(self.x, l.x), w(self.y, l.y), w(self.z, l.z))
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline(always)]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline(always)]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline(always)]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl SubAssign for Vec3 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline(always)]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline(always)]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::EX.dot(Vec3::EY), 0.0);
        assert_eq!(Vec3::EX.cross(Vec3::EY), Vec3::EZ);
        assert_eq!(Vec3::EY.cross(Vec3::EZ), Vec3::EX);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-0.5, 4.0, 1.5);
        assert_eq!(a.cross(b), -(b.cross(a)));
        assert!(a.cross(b).dot(a).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.normalized().norm(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn min_image_wraps() {
        let l = Vec3::splat(10.0);
        let d = Vec3::new(9.0, -9.0, 4.0).min_image(l);
        assert!((d.x + 1.0).abs() < 1e-12);
        assert!((d.y - 1.0).abs() < 1e-12);
        assert!((d.z - 4.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_into_box() {
        let l = Vec3::splat(5.0);
        let p = Vec3::new(-0.5, 5.5, 2.0).wrap_into(l);
        assert!((p.x - 4.5).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
        assert!((p.z - 2.0).abs() < 1e-12);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[2] = 7.0;
        assert_eq!(v[0] + v[1] + v[2], 10.0);
    }

    #[test]
    fn sum_iterator() {
        let total: Vec3 = (0..4).map(|i| Vec3::splat(i as f64)).sum();
        assert_eq!(total, Vec3::splat(6.0));
    }
}
