//! Orthonormalization of orbital panels.
//!
//! The self-consistent, time-reversible propagation of DC-MESH (paper
//! Sec. A.5, ref \[43\]) keeps the KS orbitals orthonormal; modified
//! Gram–Schmidt is the workhorse, Löwdin (symmetric) orthonormalization is
//! used where basis democracy matters (it perturbs all orbitals equally,
//! preserving subspace character between QD steps).

use crate::cgemm::overlap;
use crate::complex::{c64, Complex};
use crate::eigen::eigh_hermitian;
use crate::matrix::Matrix;

/// In-place modified Gram–Schmidt over the columns of `psi`.
/// Returns the diagonal norms prior to normalization (useful to detect
/// near-linear-dependence).
pub fn gram_schmidt(psi: &mut Matrix<c64>) -> Vec<f64> {
    let (m, n) = (psi.rows(), psi.cols());
    let mut norms = Vec::with_capacity(n);
    for j in 0..n {
        // Orthogonalize against previous columns (modified GS: re-read the
        // updated column each time for numerical stability).
        for p in 0..j {
            let mut dot = c64::zero();
            {
                let (cp, cj) = columns_pair(psi, p, j, m);
                for (a, b) in cp.iter().zip(cj.iter()) {
                    dot = dot.mul_acc(a.conj(), *b);
                }
            }
            let (cp, cj) = columns_pair_mut(psi, p, j, m);
            for (a, b) in cp.iter().zip(cj.iter_mut()) {
                *b -= *a * dot;
            }
        }
        let norm: f64 = psi.col(j).iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        norms.push(norm);
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for z in psi.col_mut(j) {
            *z = z.scale(inv);
        }
    }
    norms
}

fn columns_pair(psi: &Matrix<c64>, p: usize, j: usize, m: usize) -> (&[c64], &[c64]) {
    debug_assert!(p < j);
    let s = psi.as_slice();
    (&s[p * m..(p + 1) * m], &s[j * m..(j + 1) * m])
}

fn columns_pair_mut(psi: &mut Matrix<c64>, p: usize, j: usize, m: usize) -> (&[c64], &mut [c64]) {
    debug_assert!(p < j);
    let s = psi.as_mut_slice();
    let (head, tail) = s.split_at_mut(j * m);
    (&head[p * m..(p + 1) * m], &mut tail[..m])
}

/// Löwdin orthonormalization: `Ψ ← Ψ S^{-1/2}` with `S = Ψ†Ψ`.
pub fn lowdin(psi: &mut Matrix<c64>) {
    let n = psi.cols();
    let mut s = Matrix::<c64>::zeros(n, n);
    overlap(c64::one(), psi, psi, c64::zero(), &mut s);
    let e = eigh_hermitian(&s);
    // S^{-1/2} = V diag(λ^{-1/2}) V†
    let mut s_inv_half = Matrix::<c64>::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            let mut acc = c64::zero();
            for k in 0..n {
                let lam = e.values[k].max(1e-300);
                acc +=
                    e.vectors[(i, k)] * e.vectors[(j, k)].conj() * Complex::real(1.0 / lam.sqrt());
            }
            s_inv_half[(i, j)] = acc;
        }
    }
    let psi_old = psi.clone();
    crate::gemm::gemm_blocked(c64::one(), &psi_old, &s_inv_half, c64::zero(), psi);
}

/// Max deviation of `Ψ†Ψ` from identity; testing/diagnostic helper.
pub fn orthonormality_error(psi: &Matrix<c64>) -> f64 {
    let n = psi.cols();
    let mut s = Matrix::<c64>::zeros(n, n);
    overlap(c64::one(), psi, psi, c64::zero(), &mut s);
    let mut worst = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let expect = if i == j { c64::one() } else { c64::zero() };
            worst = worst.max((s[(i, j)] - expect).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, SplitMix64};

    fn random_panel(m: usize, n: usize, seed: u64) -> Matrix<c64> {
        let mut rng = SplitMix64::new(seed);
        Matrix::from_fn(m, n, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        })
    }

    #[test]
    fn gram_schmidt_orthonormalizes() {
        let mut psi = random_panel(50, 8, 1);
        gram_schmidt(&mut psi);
        assert!(orthonormality_error(&psi) < 1e-12);
    }

    #[test]
    fn gram_schmidt_preserves_first_direction() {
        let mut psi = random_panel(30, 4, 2);
        let first: Vec<c64> = psi.col(0).to_vec();
        gram_schmidt(&mut psi);
        // Column 0 only gets normalized, so it stays parallel.
        let norm: f64 = first.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        for (a, b) in psi.col(0).iter().zip(&first) {
            assert!((*a - b.scale(1.0 / norm)).abs() < 1e-12);
        }
    }

    #[test]
    fn lowdin_orthonormalizes() {
        let mut psi = random_panel(60, 6, 3);
        lowdin(&mut psi);
        assert!(orthonormality_error(&psi) < 1e-9);
    }

    #[test]
    fn lowdin_is_gentle_on_nearly_orthonormal_input() {
        // For an already-orthonormal panel, Löwdin is the identity.
        let mut psi = random_panel(40, 5, 4);
        gram_schmidt(&mut psi);
        let before = psi.clone();
        lowdin(&mut psi);
        assert!(psi.max_abs_diff(&before) < 1e-9);
    }

    #[test]
    fn near_dependent_columns_detected() {
        let mut psi = random_panel(20, 3, 5);
        // Make column 2 almost a copy of column 0.
        let c0: Vec<c64> = psi.col(0).to_vec();
        for (dst, src) in psi.col_mut(2).iter_mut().zip(&c0) {
            *dst = *src + dst.scale(1e-10);
        }
        let norms = gram_schmidt(&mut psi);
        assert!(norms[2] < 1e-8, "dependence must show as a tiny norm");
    }
}
