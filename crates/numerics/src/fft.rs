//! Complex FFT for arbitrary lengths: iterative radix-2 Cooley–Tukey with a
//! Bluestein (chirp-z) fallback for non-power-of-two sizes.
//!
//! The LFD subprogram represents local KS wave functions and solves the
//! Hartree problem spectrally (paper Sec. V.A.2: "FFT to represent local KS
//! wave functions"); DC domain meshes like 70×70×72 are not powers of two,
//! so arbitrary-length transforms are required.

use crate::complex::c64;

/// A planned 1-D FFT of fixed length (twiddles precomputed).
#[derive(Clone, Debug)]
pub struct Fft1d {
    n: usize,
    plan: Plan,
}

#[derive(Clone, Debug)]
enum Plan {
    /// n is a power of two: iterative in-place radix-2.
    Radix2 { twiddles: Vec<c64> },
    /// Arbitrary n: Bluestein's chirp-z via a padded radix-2 convolution.
    Bluestein {
        m: usize,
        chirp: Vec<c64>,
        /// FFT (length m) of the conjugate chirp filter, precomputed.
        filter_hat: Vec<c64>,
        inner: Box<Fft1d>,
    },
}

impl Fft1d {
    /// Plan a transform of length `n` (n ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "FFT length must be positive");
        if n.is_power_of_two() {
            let mut twiddles = Vec::with_capacity(n / 2);
            for k in 0..n / 2 {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                twiddles.push(c64::cis(theta));
            }
            Self {
                n,
                plan: Plan::Radix2 { twiddles },
            }
        } else {
            // Bluestein: x_k chirped, convolved with conjugate chirp.
            let m = (2 * n - 1).next_power_of_two();
            let mut chirp = Vec::with_capacity(n);
            for k in 0..n {
                // w_k = e^{-i π k² / n}; compute k² mod 2n to avoid
                // catastrophic phase error at large k.
                let k2 = (k * k) % (2 * n);
                let theta = -std::f64::consts::PI * k2 as f64 / n as f64;
                chirp.push(c64::cis(theta));
            }
            let inner = Fft1d::new(m);
            let mut filter = vec![c64::zero(); m];
            filter[0] = chirp[0].conj();
            for k in 1..n {
                filter[k] = chirp[k].conj();
                filter[m - k] = chirp[k].conj();
            }
            inner.forward_pow2(&mut filter);
            Self {
                n,
                plan: Plan::Bluestein {
                    m,
                    chirp,
                    filter_hat: filter,
                    inner: Box::new(inner),
                },
            }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = Σ_j x[j] e^{-2πi jk/n}`.
    pub fn forward(&self, x: &mut [c64]) {
        assert_eq!(x.len(), self.n);
        match &self.plan {
            Plan::Radix2 { .. } => self.forward_pow2(x),
            Plan::Bluestein {
                m,
                chirp,
                filter_hat,
                inner,
            } => {
                let n = self.n;
                let mut work = vec![c64::zero(); *m];
                for k in 0..n {
                    work[k] = x[k] * chirp[k];
                }
                inner.forward_pow2(&mut work);
                for (w, f) in work.iter_mut().zip(filter_hat) {
                    *w *= *f;
                }
                inner.inverse_pow2(&mut work);
                for k in 0..n {
                    x[k] = work[k] * chirp[k];
                }
            }
        }
    }

    /// In-place inverse DFT (normalized by 1/n): `x[j] = (1/n) Σ X[k] e^{+2πi jk/n}`.
    pub fn inverse(&self, x: &mut [c64]) {
        assert_eq!(x.len(), self.n);
        // inverse(x) = conj(forward(conj(x))) / n
        for v in x.iter_mut() {
            *v = v.conj();
        }
        self.forward(x);
        let scale = 1.0 / self.n as f64;
        for v in x.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }

    /// Radix-2 forward transform (n must be a power of two).
    fn forward_pow2(&self, x: &mut [c64]) {
        let n = x.len();
        debug_assert!(n.is_power_of_two());
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        let shift = n.leading_zeros() + 1;
        for i in 0..n {
            let j = (i as u64).reverse_bits() >> shift;
            let j = j as usize;
            if i < j {
                x.swap(i, j);
            }
        }
        // Butterflies. Twiddles: reuse the planned table when lengths match
        // (the plan's table is for self.n; inner Bluestein calls pass other
        // lengths, recompute per stage there).
        let planned = match &self.plan {
            Plan::Radix2 { twiddles } if self.n == n => Some(twiddles),
            _ => None,
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let w = match planned {
                        Some(tw) => tw[k * step],
                        None => {
                            let theta = -2.0 * std::f64::consts::PI * (k * step) as f64 / n as f64;
                            c64::cis(theta)
                        }
                    };
                    let u = x[start + k];
                    let v = x[start + k + half] * w;
                    x[start + k] = u + v;
                    x[start + k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }

    fn inverse_pow2(&self, x: &mut [c64]) {
        let n = x.len();
        for v in x.iter_mut() {
            *v = v.conj();
        }
        self.forward_pow2(x);
        let scale = 1.0 / n as f64;
        for v in x.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }
}

/// 3-D FFT over a contiguous x-fastest (`i + nx*(j + ny*k)`) array.
#[derive(Clone, Debug)]
pub struct Fft3d {
    nx: usize,
    ny: usize,
    nz: usize,
    fx: Fft1d,
    fy: Fft1d,
    fz: Fft1d,
}

impl Fft3d {
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            nx,
            ny,
            nz,
            fx: Fft1d::new(nx),
            fy: Fft1d::new(ny),
            fz: Fft1d::new(nz),
        }
    }

    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forward 3-D transform, in place.
    pub fn forward(&self, data: &mut [c64]) {
        self.apply(data, true);
    }

    /// Inverse 3-D transform (normalized), in place.
    pub fn inverse(&self, data: &mut [c64]) {
        self.apply(data, false);
    }

    fn apply(&self, data: &mut [c64], fwd: bool) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        assert_eq!(data.len(), nx * ny * nz);
        let mut line = vec![c64::zero(); nx.max(ny).max(nz)];
        // x lines (contiguous).
        for c in 0..ny * nz {
            let base = c * nx;
            let seg = &mut data[base..base + nx];
            if fwd {
                self.fx.forward(seg);
            } else {
                self.fx.inverse(seg);
            }
        }
        // y lines (stride nx).
        for k in 0..nz {
            for i in 0..nx {
                let base = i + k * nx * ny;
                for j in 0..ny {
                    line[j] = data[base + j * nx];
                }
                let seg = &mut line[..ny];
                if fwd {
                    self.fy.forward(seg);
                } else {
                    self.fy.inverse(seg);
                }
                for j in 0..ny {
                    data[base + j * nx] = line[j];
                }
            }
        }
        // z lines (stride nx*ny).
        let sxy = nx * ny;
        for j in 0..ny {
            for i in 0..nx {
                let base = i + j * nx;
                for k in 0..nz {
                    line[k] = data[base + k * sxy];
                }
                let seg = &mut line[..nz];
                if fwd {
                    self.fz.forward(seg);
                } else {
                    self.fz.inverse(seg);
                }
                for k in 0..nz {
                    data[base + k * sxy] = line[k];
                }
            }
        }
    }
}

/// Naive O(n²) DFT used as the correctness oracle in tests.
pub fn dft_reference(x: &[c64]) -> Vec<c64> {
    let n = x.len();
    let mut out = vec![c64::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &v) in x.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
            *o += v * c64::cis(theta);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, SplitMix64};

    fn random_signal(n: usize, seed: u64) -> Vec<c64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn max_diff(a: &[c64], b: &[c64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_pow2() {
        for n in [1usize, 2, 4, 8, 16, 64, 128] {
            let x = random_signal(n, n as u64);
            let mut y = x.clone();
            Fft1d::new(n).forward(&mut y);
            assert!(max_diff(&y, &dft_reference(&x)) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn matches_reference_arbitrary() {
        for n in [3usize, 5, 6, 7, 9, 12, 35, 70, 72, 100] {
            let x = random_signal(n, 1000 + n as u64);
            let mut y = x.clone();
            Fft1d::new(n).forward(&mut y);
            assert!(max_diff(&y, &dft_reference(&x)) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn round_trip() {
        for n in [4usize, 7, 64, 70, 81] {
            let x = random_signal(n, 7 * n as u64);
            let fft = Fft1d::new(n);
            let mut y = x.clone();
            fft.forward(&mut y);
            fft.inverse(&mut y);
            assert!(max_diff(&x, &y) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval() {
        let n = 70;
        let x = random_signal(n, 3);
        let mut y = x.clone();
        Fft1d::new(n).forward(&mut y);
        let t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let f: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((t - f).abs() < 1e-9 * t.max(1.0));
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let n = 35;
        let mut x = vec![c64::zero(); n];
        x[0] = c64::one();
        Fft1d::new(n).forward(&mut x);
        for v in x {
            assert!((v - c64::one()).abs() < 1e-10);
        }
    }

    #[test]
    fn single_mode_peaks_at_its_frequency() {
        let n = 64;
        let k0 = 5;
        let mut x: Vec<c64> = (0..n)
            .map(|j| c64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        Fft1d::new(n).forward(&mut x);
        for (k, v) in x.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-8);
            } else {
                assert!(v.abs() < 1e-8, "leak at {k}");
            }
        }
    }

    #[test]
    fn fft3d_round_trip_mixed_sizes() {
        // Includes the paper's 70×70×72 LFD mesh (scaled down to keep the
        // test fast while retaining non-pow2 behaviour).
        let (nx, ny, nz) = (10, 7, 8);
        let x = random_signal(nx * ny * nz, 77);
        let fft = Fft3d::new(nx, ny, nz);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        assert!(max_diff(&x, &y) < 1e-9);
    }

    #[test]
    fn fft3d_separability() {
        // A product signal f(i)g(j)h(k) transforms to F(a)G(b)H(c).
        let (nx, ny, nz) = (4usize, 3, 5);
        let f = random_signal(nx, 1);
        let g = random_signal(ny, 2);
        let h = random_signal(nz, 3);
        let mut data = vec![c64::zero(); nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    data[i + nx * (j + ny * k)] = f[i] * g[j] * h[k];
                }
            }
        }
        Fft3d::new(nx, ny, nz).forward(&mut data);
        let fh = dft_reference(&f);
        let gh = dft_reference(&g);
        let hh = dft_reference(&h);
        for c in 0..nz {
            for b in 0..ny {
                for a in 0..nx {
                    let expect = fh[a] * gh[b] * hh[c];
                    let got = data[a + nx * (b + ny * c)];
                    assert!((expect - got).abs() < 1e-8);
                }
            }
        }
    }
}
