//! Deterministic pseudo-random number generation.
//!
//! HPC reproducibility requires bit-identical streams independent of thread
//! scheduling, so the simulation crates use explicit, seedable generators
//! (SplitMix64 for seeding/light use, Xoshiro256** for long streams) rather
//! than global state. `jump()` provides independent per-rank substreams.

/// Common interface for the 64-bit generators.
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in [lo, hi).
    #[inline]
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in [0, n). `n` must be positive.
    ///
    /// Draws directly from the integer stream (`next_u64() % n`) instead of
    /// double-rounding through `next_f64`: the old float path lost the low
    /// bits to the 53-bit mantissa and silently mapped `n == 0` to 0. The
    /// modulo bias is ≤ n/2⁶⁴, far below anything these simulations resolve.
    #[inline]
    fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "next_below requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    #[inline]
    fn next_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    #[inline]
    fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.next_normal()
    }
}

/// SplitMix64: tiny, fast, passes BigCrush; the canonical seeder.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the workhorse generator for long simulation streams.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 (never produces the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Jump ahead 2^128 steps: gives independent substreams for parallel
    /// ranks (call `jump()` rank-times, or use [`Self::for_rank`]).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (ti, si) in t.iter_mut().zip(self.s) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }

    /// Independent substream for a given parallel rank.
    pub fn for_rank(seed: u64, rank: usize) -> Self {
        let mut rng = Self::new(seed);
        for _ in 0..rank {
            rng.jump();
        }
        rng
    }
}

impl Rng64 for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 (published reference sequence).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn determinism() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 1/2");
    }

    #[test]
    fn jump_produces_disjoint_streams() {
        let mut a = Xoshiro256::for_rank(99, 0);
        let mut b = Xoshiro256::for_rank(99, 1);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Xoshiro256::new(31);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn next_below_in_bounds_and_covers_all_residues() {
        let mut r = Xoshiro256::new(11);
        for n in [1usize, 2, 3, 17, 1000] {
            let mut seen = vec![false; n.min(64)];
            for _ in 0..4096 {
                let x = r.next_below(n);
                assert!(x < n, "next_below({n}) returned {x}");
                if x < seen.len() {
                    seen[x] = true;
                }
            }
            if n <= 64 {
                assert!(seen.iter().all(|&s| s), "residues missing for n = {n}");
            }
        }
    }

    #[test]
    fn next_below_uses_integer_stream() {
        // Regression: the draw must be next_u64() % n, not a double-rounded
        // float path (which dropped the low 11 bits of the generator).
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for n in [7usize, 255, 1 << 20] {
            assert_eq!(a.next_below(n) as u64, b.next_u64() % n as u64);
        }
    }

    #[test]
    #[should_panic(expected = "next_below requires n > 0")]
    #[cfg(debug_assertions)]
    fn next_below_zero_is_rejected() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn range_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.range(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }
}
