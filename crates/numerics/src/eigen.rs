//! Jacobi eigensolvers for real symmetric and complex Hermitian matrices.
//!
//! DC-MESH needs small dense diagonalizations in the KS-orbital subspace
//! (Norb ≤ ~1k per domain): adiabatic states for surface hopping, Löwdin
//! orthonormalization, and subspace rotations in the SCF. Cyclic Jacobi is
//! simple, unconditionally stable, and embarrassingly accurate for these
//! sizes.

use crate::complex::c64;
use crate::matrix::Matrix;

/// Eigendecomposition result: `a = V · diag(λ) · V†`, eigenvalues ascending.
#[derive(Clone, Debug)]
pub struct Eigen<T> {
    pub values: Vec<f64>,
    /// Columns are eigenvectors.
    pub vectors: Matrix<T>,
}

/// Eigendecomposition of a real symmetric matrix by cyclic Jacobi.
pub fn eigh_real(a: &Matrix<f64>) -> Eigen<f64> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "matrix must be square");
    let mut m = a.clone();
    let mut v = Matrix::<f64>::eye(n);
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.frobenius_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let (app, aqq) = (m[(p, p)], m[(q, q)]);
                // Jacobi angle zeroing a_pq: tan(2φ) = 2a_pq / (a_qq − a_pp)
                // for the A ← Gᵀ A G convention used by `rotate_real`.
                let phi = 0.5 * (2.0 * apq).atan2(aqq - app);
                let (c, s) = (phi.cos(), phi.sin());
                rotate_real(&mut m, p, q, c, s);
                rotate_cols_real(&mut v, p, q, c, s);
            }
        }
    }
    sort_eigen_real(m, v)
}

fn rotate_real(m: &mut Matrix<f64>, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    // A ← Jᵀ A J with J the Givens rotation in the (p,q) plane.
    for i in 0..n {
        let (aip, aiq) = (m[(i, p)], m[(i, q)]);
        m[(i, p)] = c * aip - s * aiq;
        m[(i, q)] = s * aip + c * aiq;
    }
    for j in 0..n {
        let (apj, aqj) = (m[(p, j)], m[(q, j)]);
        m[(p, j)] = c * apj - s * aqj;
        m[(q, j)] = s * apj + c * aqj;
    }
}

fn rotate_cols_real(v: &mut Matrix<f64>, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for i in 0..n {
        let (vip, viq) = (v[(i, p)], v[(i, q)]);
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

fn sort_eigen_real(m: Matrix<f64>, v: Matrix<f64>) -> Eigen<f64> {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let vals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
    let values = order.iter().map(|&i| vals[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Eigen { values, vectors }
}

/// Eigendecomposition of a complex Hermitian matrix by embedding into a
/// real symmetric problem of twice the size:
/// `H = A + iB  →  [[A, −B], [B, A]]` whose eigenpairs come in duplicated
/// pairs `(λ, [x; y])` with complex eigenvector `x + iy`.
pub fn eigh_hermitian(h: &Matrix<c64>) -> Eigen<c64> {
    let n = h.rows();
    assert_eq!(n, h.cols(), "matrix must be square");
    let mut big = Matrix::<f64>::zeros(2 * n, 2 * n);
    for j in 0..n {
        for i in 0..n {
            let z = h[(i, j)];
            big[(i, j)] = z.re;
            big[(i + n, j + n)] = z.re;
            big[(i + n, j)] = z.im;
            big[(i, j + n)] = -z.im;
        }
    }
    let e = eigh_real(&big);
    // Eigenvalues are doubled; take every other one and build complex
    // vectors, re-orthonormalizing degenerate duplicates away by selecting
    // vectors with maximal residual norm against already-chosen ones.
    let mut values = Vec::with_capacity(n);
    let mut chosen: Vec<Vec<c64>> = Vec::with_capacity(n);
    for idx in 0..2 * n {
        if values.len() == n {
            break;
        }
        let lam = e.values[idx];
        let mut vec: Vec<c64> = (0..n)
            .map(|i| c64::new(e.vectors[(i, idx)], e.vectors[(i + n, idx)]))
            .collect();
        // Project out already-accepted eigenvectors (handles the pair
        // degeneracy: [x; y] and [−y; x] map to x+iy and i(x+iy)).
        for c in &chosen {
            let dot: c64 = c
                .iter()
                .zip(&vec)
                .map(|(&a, &b)| a.conj() * b)
                .fold(c64::zero(), |s, t| s + t);
            for (vi, ci) in vec.iter_mut().zip(c) {
                *vi -= *ci * dot;
            }
        }
        let norm: f64 = vec.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-8 {
            let inv = 1.0 / norm;
            for vi in &mut vec {
                *vi = vi.scale(inv);
            }
            values.push(lam);
            chosen.push(vec);
        }
    }
    assert_eq!(values.len(), n, "failed to extract all complex eigenpairs");
    let vectors = Matrix::from_fn(n, n, |i, j| chosen[j][i]);
    Eigen { values, vectors }
}

/// Largest |A·v − λ·v| residual over all eigenpairs; testing helper.
pub fn residual_hermitian(h: &Matrix<c64>, e: &Eigen<c64>) -> f64 {
    let n = h.rows();
    let mut worst = 0.0f64;
    for j in 0..n {
        for i in 0..n {
            let mut hv = c64::zero();
            for k in 0..n {
                hv += h[(i, k)] * e.vectors[(k, j)];
            }
            let r = hv - e.vectors[(i, j)].scale(e.values[j]);
            worst = worst.max(r.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, SplitMix64};

    fn random_symmetric(n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::from_fn(n, n, |_, _| rng.next_f64() - 0.5);
        Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
    }

    fn random_hermitian(n: usize, seed: u64) -> Matrix<c64> {
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::from_fn(n, n, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        });
        Matrix::from_fn(n, n, |i, j| (a[(i, j)] + a[(j, i)].conj()).scale(0.5))
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let mut d = Matrix::<f64>::zeros(3, 3);
        d[(0, 0)] = 3.0;
        d[(1, 1)] = -1.0;
        d[(2, 2)] = 2.0;
        let e = eigh_real(&d);
        assert_eq!(e.values, vec![-1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigh_real(&m);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn real_reconstruction() {
        for n in [2usize, 5, 12] {
            let a = random_symmetric(n, n as u64);
            let e = eigh_real(&a);
            // A ≈ V Λ Vᵀ
            let mut rec = Matrix::<f64>::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    let mut s = 0.0;
                    for k in 0..n {
                        s += e.vectors[(i, k)] * e.values[k] * e.vectors[(j, k)];
                    }
                    rec[(i, j)] = s;
                }
            }
            assert!(a.max_abs_diff(&rec) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn real_eigenvectors_orthonormal() {
        let a = random_symmetric(8, 3);
        let e = eigh_real(&a);
        for i in 0..8 {
            for j in 0..8 {
                let dot: f64 = (0..8).map(|k| e.vectors[(k, i)] * e.vectors[(k, j)]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn hermitian_eigenpairs() {
        for n in [2usize, 3, 6, 10] {
            let h = random_hermitian(n, 100 + n as u64);
            let e = eigh_hermitian(&h);
            assert!(residual_hermitian(&h, &e) < 1e-9, "n={n}");
            // eigenvalues real and ascending
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn hermitian_orthonormal_vectors() {
        let h = random_hermitian(7, 42);
        let e = eigh_hermitian(&h);
        for i in 0..7 {
            for j in 0..7 {
                let dot: c64 = (0..7)
                    .map(|k| e.vectors[(k, i)].conj() * e.vectors[(k, j)])
                    .fold(c64::zero(), |s, t| s + t);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - c64::real(expect)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hermitian_trace_preserved() {
        let h = random_hermitian(9, 8);
        let e = eigh_hermitian(&h);
        let tr: f64 = (0..9).map(|i| h[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((tr - sum).abs() < 1e-9);
    }
}
