//! Floating-point-operation accounting.
//!
//! The paper measures FLOP/s by counting operations (Intel SDE) and timing
//! kernels (unitrace), then dividing (Sec. VI.B). This module is the Rust
//! analogue: kernels increment a [`FlopCounter`] as they run, and
//! [`FlopReport`] turns (count, wall-time) pairs into the GFLOP/s and
//! percent-of-peak columns of Tables IV–V.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Thread-safe FLOP accumulator shared by the kernels of one module.
#[derive(Debug, Default)]
pub struct FlopCounter {
    count: AtomicU64,
}

impl FlopCounter {
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
        }
    }

    /// Record `n` floating-point operations.
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total recorded so far.
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous total.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

impl Clone for FlopCounter {
    fn clone(&self) -> Self {
        Self {
            count: AtomicU64::new(self.total()),
        }
    }
}

thread_local! {
    static GEMM_TALLY: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Record `n` FLOPs on the calling thread's GEMM tally.
///
/// The GEMM entry points in [`crate::gemm`] and [`crate::cgemm`] call this
/// once per kernel invocation with the *analytic* count of the problem
/// shape (`MAC_FLOPS · m·n·k`), not a count derived from the loop
/// structure — so the naive oracle and the blocked kernel record identical
/// totals for the same shape by construction (the invariant the `hotspots`
/// bench and the flops regression test pin). The tally is thread-local and
/// charged on the thread that *enters* the kernel (parallel kernels charge
/// the caller, not the pool workers), which keeps readings deterministic
/// under a multi-threaded test runner.
#[inline]
pub fn record_gemm(n: u64) {
    GEMM_TALLY.with(|t| t.set(t.get() + n));
}

/// Total GEMM FLOPs recorded on this thread since the last
/// [`reset_gemm_tally`].
pub fn gemm_tally() -> u64 {
    GEMM_TALLY.with(|t| t.get())
}

/// Zero this thread's GEMM tally, returning the previous total.
pub fn reset_gemm_tally() -> u64 {
    GEMM_TALLY.with(|t| t.replace(0))
}

/// A measured kernel: FLOPs and wall-clock time.
#[derive(Clone, Copy, Debug)]
pub struct FlopReport {
    pub flops: u64,
    pub elapsed: Duration,
}

impl FlopReport {
    pub fn new(flops: u64, elapsed: Duration) -> Self {
        Self { flops, elapsed }
    }

    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / secs / 1e9
    }

    /// Achieved TFLOP/s (the paper's unit).
    pub fn tflops(&self) -> f64 {
        self.gflops() / 1e3
    }

    /// Percent of a given peak rate (peak in GFLOP/s).
    pub fn percent_of_peak(&self, peak_gflops: f64) -> f64 {
        if peak_gflops <= 0.0 {
            return 0.0;
        }
        100.0 * self.gflops() / peak_gflops
    }
}

/// Run a closure and produce a [`FlopReport`] from a counter delta.
pub fn measure<F: FnOnce()>(counter: &FlopCounter, f: F) -> FlopReport {
    let before = counter.total();
    let start = std::time::Instant::now();
    f();
    let elapsed = start.elapsed();
    FlopReport::new(counter.total() - before, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = FlopCounter::new();
        c.add(10);
        c.add(32);
        assert_eq!(c.total(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = FlopCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.total(), 8000);
    }

    #[test]
    fn gflops_math() {
        let r = FlopReport::new(2_000_000_000, Duration::from_secs(1));
        assert!((r.gflops() - 2.0).abs() < 1e-12);
        assert!((r.tflops() - 0.002).abs() < 1e-12);
        assert!((r.percent_of_peak(4.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_is_safe() {
        let r = FlopReport::new(100, Duration::ZERO);
        assert_eq!(r.gflops(), 0.0);
    }

    #[test]
    fn measure_wraps_closure() {
        let c = FlopCounter::new();
        let r = measure(&c, || c.add(1234));
        assert_eq!(r.flops, 1234);
    }
}
