//! 3-D finite-difference grid descriptors.
//!
//! A [`Grid3`] is the index geometry shared by the LFD wave-function arrays,
//! densities, and potentials: `nx × ny × nz` points with uniform spacing
//! `h`, x-fastest storage (`idx = i + nx*(j + ny*k)`), periodic wrapping.

/// Regular 3-D grid with uniform spacing (atomic units in LFD).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Grid spacing (bohr in LFD, arbitrary elsewhere).
    pub h: f64,
}

impl Grid3 {
    pub fn new(nx: usize, ny: usize, nz: usize, h: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        assert!(h > 0.0, "grid spacing must be positive");
        Self { nx, ny, nz, h }
    }

    /// Cubic grid.
    pub fn cubic(n: usize, h: f64) -> Self {
        Self::new(n, n, n, h)
    }

    /// Total number of points.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Volume element dV = h³.
    #[inline(always)]
    pub fn dv(&self) -> f64 {
        self.h * self.h * self.h
    }

    /// Box lengths (Lx, Ly, Lz).
    pub fn lengths(&self) -> (f64, f64, f64) {
        (
            self.nx as f64 * self.h,
            self.ny as f64 * self.h,
            self.nz as f64 * self.h,
        )
    }

    /// Linear index of (i, j, k); x fastest.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Inverse of [`Self::idx`].
    #[inline(always)]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let i = idx % self.nx;
        let j = (idx / self.nx) % self.ny;
        let k = idx / (self.nx * self.ny);
        (i, j, k)
    }

    /// Periodic neighbor in +x/-x etc. expressed as index math.
    #[inline(always)]
    pub fn wrap(&self, i: isize, n: usize) -> usize {
        i.rem_euclid(n as isize) as usize
    }

    /// Periodic index of (i+di, j+dj, k+dk).
    #[inline]
    pub fn idx_offset(
        &self,
        i: usize,
        j: usize,
        k: usize,
        di: isize,
        dj: isize,
        dk: isize,
    ) -> usize {
        let ii = self.wrap(i as isize + di, self.nx);
        let jj = self.wrap(j as isize + dj, self.ny);
        let kk = self.wrap(k as isize + dk, self.nz);
        self.idx(ii, jj, kk)
    }

    /// Physical position of point (i, j, k).
    #[inline]
    pub fn position(&self, i: usize, j: usize, k: usize) -> (f64, f64, f64) {
        (i as f64 * self.h, j as f64 * self.h, k as f64 * self.h)
    }

    /// Minimum-image displacement from `a` to `b` under periodic wrap.
    pub fn min_image(&self, a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        let (lx, ly, lz) = self.lengths();
        let wrap1 = |d: f64, l: f64| d - l * (d / l).round();
        (
            wrap1(b.0 - a.0, lx),
            wrap1(b.1 - a.1, ly),
            wrap1(b.2 - a.2, lz),
        )
    }

    /// Reciprocal-space squared wave vector |G|² for FFT index (a, b, c)
    /// with standard wrap-to-negative convention. Used by spectral Poisson.
    pub fn g_squared(&self, a: usize, b: usize, c: usize) -> f64 {
        let comp = |idx: usize, n: usize, l: f64| -> f64 {
            let m = if idx <= n / 2 {
                idx as f64
            } else {
                idx as f64 - n as f64
            };
            2.0 * std::f64::consts::PI * m / l
        };
        let (lx, ly, lz) = self.lengths();
        let gx = comp(a, self.nx, lx);
        let gy = comp(b, self.ny, ly);
        let gz = comp(c, self.nz, lz);
        gx * gx + gy * gy + gz * gz
    }

    /// A coarser grid for multigrid hierarchies (dims halved, rounded up,
    /// spacing doubled).
    pub fn coarsen(&self) -> Grid3 {
        Grid3 {
            nx: (self.nx / 2).max(1),
            ny: (self.ny / 2).max(1),
            nz: (self.nz / 2).max(1),
            h: self.h * 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let g = Grid3::new(5, 7, 3, 0.5);
        for k in 0..3 {
            for j in 0..7 {
                for i in 0..5 {
                    assert_eq!(g.coords(g.idx(i, j, k)), (i, j, k));
                }
            }
        }
    }

    #[test]
    fn x_is_fastest() {
        let g = Grid3::new(4, 4, 4, 1.0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 16);
    }

    #[test]
    fn periodic_wrap() {
        let g = Grid3::new(4, 4, 4, 1.0);
        assert_eq!(g.idx_offset(0, 0, 0, -1, 0, 0), g.idx(3, 0, 0));
        assert_eq!(g.idx_offset(3, 3, 3, 1, 1, 1), g.idx(0, 0, 0));
    }

    #[test]
    fn volume_element() {
        let g = Grid3::cubic(10, 0.2);
        assert!((g.dv() - 0.008).abs() < 1e-15);
        assert_eq!(g.len(), 1000);
    }

    #[test]
    fn min_image_shorter_than_half_box() {
        let g = Grid3::cubic(10, 1.0);
        let d = g.min_image((0.5, 0.5, 0.5), (9.5, 0.5, 0.5));
        assert!((d.0 + 1.0).abs() < 1e-12, "wraps to -1, got {}", d.0);
    }

    #[test]
    fn g_squared_symmetry() {
        let g = Grid3::cubic(8, 0.7);
        // G²(k) == G²(n-k) for the real-signal symmetry points.
        for a in 1..4 {
            assert!((g.g_squared(a, 0, 0) - g.g_squared(8 - a, 0, 0)).abs() < 1e-12);
        }
        assert_eq!(g.g_squared(0, 0, 0), 0.0);
    }

    #[test]
    fn coarsen_halves() {
        let g = Grid3::new(8, 6, 4, 0.25);
        let c = g.coarsen();
        assert_eq!((c.nx, c.ny, c.nz), (4, 3, 2));
        assert!((c.h - 0.5).abs() < 1e-15);
    }
}
