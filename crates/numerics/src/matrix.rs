//! Dense column-major matrices.
//!
//! Column-major layout matches BLAS conventions and — more importantly for
//! this codebase — the wave-function matrix Ψ of paper Sec. V.B.5, whose
//! columns are KS orbitals on `Ngrid` grid points. `nlp_prop` GEMMs then map
//! directly onto contiguous column panels.

use crate::complex::{Complex, Real};

/// Element types a dense matrix / GEMM kernel can hold: real or complex.
pub trait Scalar:
    Copy
    + PartialEq
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + Send
    + Sync
    + std::fmt::Debug
    + 'static
{
    fn zero() -> Self;
    fn one() -> Self;
    /// Complex conjugate (identity for real scalars).
    fn conj(self) -> Self;
    /// Squared modulus as f64 (for norms and error measures).
    fn abs_sqr(self) -> f64;
    /// FLOPs of one multiply-accumulate of this type (2 real, 8 complex).
    const MAC_FLOPS: u64;
}

impl Scalar for f32 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn abs_sqr(self) -> f64 {
        (self * self) as f64
    }
    const MAC_FLOPS: u64 = 2;
}

impl Scalar for f64 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn abs_sqr(self) -> f64 {
        self * self
    }
    const MAC_FLOPS: u64 = 2;
}

impl<T: Real> Scalar for Complex<T> {
    #[inline(always)]
    fn zero() -> Self {
        Complex::zero()
    }
    #[inline(always)]
    fn one() -> Self {
        Complex::one()
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Complex::conj(self)
    }
    #[inline(always)]
    fn abs_sqr(self) -> f64 {
        self.norm_sqr().to_f64()
    }
    const MAC_FLOPS: u64 = 8;
}

/// Dense column-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![T::zero(); rows * cols],
            rows,
            cols,
        }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { data, rows, cols }
    }

    /// Wrap an existing column-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { data, rows, cols }
    }

    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice (an orbital, for Ψ matrices).
    #[inline(always)]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    #[inline(always)]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Plain transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Hermitian (conjugate) transpose.
    pub fn conj_transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x.abs_sqr()).sum::<f64>().sqrt()
    }

    /// Max |a_ij − b_ij| (as modulus), for kernel-vs-reference testing.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs_sqr().sqrt())
            .fold(0.0, f64::max)
    }

    /// In-place scaled accumulate: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: T, other: &Self)
    where
        T: std::ops::Mul<Output = T>,
    {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Matrix-vector product `y = A x` (reference implementation).
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![T::zero(); self.rows];
        for (j, &xj) in x.iter().enumerate() {
            let col = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        y
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[j * self.rows + i]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[j * self.rows + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn shape_and_indexing() {
        let mut m = Matrix::<f64>::zeros(3, 2);
        m[(2, 1)] = 5.0;
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 5.0);
        assert_eq!(m.as_slice()[5], 5.0); // col-major: last element
    }

    #[test]
    fn eye_matvec_is_identity() {
        let m = Matrix::<f64>::eye(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn from_fn_column_major_layout() {
        let m = Matrix::from_fn(2, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn conj_transpose_conjugates() {
        let m = Matrix::from_fn(2, 2, |i, j| c64::new(i as f64, j as f64));
        let h = m.conj_transpose();
        assert_eq!(h[(1, 0)], c64::new(0.0, -1.0));
        assert_eq!(h[(0, 1)], c64::new(1.0, 0.0));
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_vec(2, 1, vec![3.0f64, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(2, 1, vec![1.0f64, 2.0]);
        let b = Matrix::from_vec(2, 1, vec![10.0f64, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn columns_are_contiguous() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0]);
    }
}
