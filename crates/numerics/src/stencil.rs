//! Finite-difference stencil operators on [`Grid3`] fields.
//!
//! Second-order 7-point and fourth-order 13-point Laplacians with periodic
//! boundaries, plus central-difference gradients. These are the "sparse
//! stencil operations with strided data access" of paper Sec. V.B.2 and the
//! building blocks of the multigrid/DSA Hartree solvers; the ~3%-of-peak
//! arithmetic intensity the paper quotes for 7-point stencils (ref \[59\]) is
//! what the Table V kin_prop/CGEMM contrast illustrates.

use crate::grid::Grid3;

/// Stencil order selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// 7-point, O(h²).
    Second,
    /// 13-point, O(h⁴).
    Fourth,
}

/// `out = ∇² f` with periodic boundaries.
pub fn laplacian(grid: &Grid3, f: &[f64], out: &mut [f64], order: Order) {
    assert_eq!(f.len(), grid.len());
    assert_eq!(out.len(), grid.len());
    match order {
        Order::Second => laplacian2(grid, f, out),
        Order::Fourth => laplacian4(grid, f, out),
    }
}

fn laplacian2(grid: &Grid3, f: &[f64], out: &mut [f64]) {
    let inv_h2 = 1.0 / (grid.h * grid.h);
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    for k in 0..nz {
        let kp = (k + 1) % nz;
        let km = (k + nz - 1) % nz;
        for j in 0..ny {
            let jp = (j + 1) % ny;
            let jm = (j + ny - 1) % ny;
            for i in 0..nx {
                let ip = (i + 1) % nx;
                let im = (i + nx - 1) % nx;
                let c = f[grid.idx(i, j, k)];
                let sum = f[grid.idx(ip, j, k)]
                    + f[grid.idx(im, j, k)]
                    + f[grid.idx(i, jp, k)]
                    + f[grid.idx(i, jm, k)]
                    + f[grid.idx(i, j, kp)]
                    + f[grid.idx(i, j, km)];
                out[grid.idx(i, j, k)] = (sum - 6.0 * c) * inv_h2;
            }
        }
    }
}

fn laplacian4(grid: &Grid3, f: &[f64], out: &mut [f64]) {
    // 1-D 4th-order coefficients: (-1/12, 16/12, -30/12, 16/12, -1/12)/h².
    let inv_h2 = 1.0 / (grid.h * grid.h);
    let (c0, c1, c2) = (-30.0 / 12.0, 16.0 / 12.0, -1.0 / 12.0);
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    let at = |i: isize, j: isize, k: isize| -> f64 {
        f[grid.idx(grid.wrap(i, nx), grid.wrap(j, ny), grid.wrap(k, nz))]
    };
    for k in 0..nz as isize {
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                let c = at(i, j, k);
                let axis = |d: usize| -> f64 {
                    let (di, dj, dk) = match d {
                        0 => (1isize, 0isize, 0isize),
                        1 => (0, 1, 0),
                        _ => (0, 0, 1),
                    };
                    c0 * c
                        + c1 * (at(i + di, j + dj, k + dk) + at(i - di, j - dj, k - dk))
                        + c2 * (at(i + 2 * di, j + 2 * dj, k + 2 * dk)
                            + at(i - 2 * di, j - 2 * dj, k - 2 * dk))
                };
                out[grid.idx(i as usize, j as usize, k as usize)] =
                    (axis(0) + axis(1) + axis(2)) * inv_h2;
            }
        }
    }
}

/// Central-difference gradient: `(∂f/∂x, ∂f/∂y, ∂f/∂z)` at every point.
pub fn gradient(grid: &Grid3, f: &[f64], gx: &mut [f64], gy: &mut [f64], gz: &mut [f64]) {
    let inv_2h = 0.5 / grid.h;
    let (nx, ny, nz) = (grid.nx, grid.ny, grid.nz);
    for k in 0..nz {
        let kp = (k + 1) % nz;
        let km = (k + nz - 1) % nz;
        for j in 0..ny {
            let jp = (j + 1) % ny;
            let jm = (j + ny - 1) % ny;
            for i in 0..nx {
                let ip = (i + 1) % nx;
                let im = (i + nx - 1) % nx;
                let idx = grid.idx(i, j, k);
                gx[idx] = (f[grid.idx(ip, j, k)] - f[grid.idx(im, j, k)]) * inv_2h;
                gy[idx] = (f[grid.idx(i, jp, k)] - f[grid.idx(i, jm, k)]) * inv_2h;
                gz[idx] = (f[grid.idx(i, j, kp)] - f[grid.idx(i, j, km)]) * inv_2h;
            }
        }
    }
}

/// FLOPs of one Laplacian application (for roofline accounting).
pub fn laplacian_flops(grid: &Grid3, order: Order) -> u64 {
    let per_point = match order {
        Order::Second => 8,  // 6 adds + 1 mul-sub + 1 scale
        Order::Fourth => 21, // 3 axes × (2 adds + 4 mul) + combine
    };
    per_point * grid.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Periodic plane wave: ∇² e^{i·0}→ use cos product; eigval −(kx²+ky²+kz²).
    fn cos_field(grid: &Grid3, mx: usize, my: usize, mz: usize) -> (Vec<f64>, f64) {
        let (lx, ly, lz) = grid.lengths();
        let kx = 2.0 * std::f64::consts::PI * mx as f64 / lx;
        let ky = 2.0 * std::f64::consts::PI * my as f64 / ly;
        let kz = 2.0 * std::f64::consts::PI * mz as f64 / lz;
        let mut f = vec![0.0; grid.len()];
        for k in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, y, z) = grid.position(i, j, k);
                    f[grid.idx(i, j, k)] = (kx * x).cos() * (ky * y).cos() * (kz * z).cos();
                }
            }
        }
        (f, -(kx * kx + ky * ky + kz * kz))
    }

    #[test]
    fn laplacian2_eigenfunction() {
        let grid = Grid3::cubic(32, 0.25);
        let (f, lam) = cos_field(&grid, 1, 1, 0);
        let mut out = vec![0.0; grid.len()];
        laplacian(&grid, &f, &mut out, Order::Second);
        // Compare at points where |f| is large to avoid 0/0.
        let mut checked = 0;
        for idx in 0..grid.len() {
            if f[idx].abs() > 0.5 {
                let ratio = out[idx] / f[idx];
                assert!(
                    (ratio - lam).abs() / lam.abs() < 0.02,
                    "ratio {ratio} lam {lam}"
                );
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn fourth_order_more_accurate_than_second() {
        let grid = Grid3::cubic(16, 0.5);
        let (f, lam) = cos_field(&grid, 2, 0, 0);
        let mut o2 = vec![0.0; grid.len()];
        let mut o4 = vec![0.0; grid.len()];
        laplacian(&grid, &f, &mut o2, Order::Second);
        laplacian(&grid, &f, &mut o4, Order::Fourth);
        let err = |o: &[f64]| -> f64 {
            f.iter()
                .zip(o)
                .filter(|(fi, _)| fi.abs() > 0.5)
                .map(|(fi, oi)| (oi / fi - lam).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&o4) < err(&o2), "4th order must beat 2nd order");
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let grid = Grid3::new(6, 5, 4, 0.3);
        let f = vec![2.5; grid.len()];
        let mut out = vec![1.0; grid.len()];
        laplacian(&grid, &f, &mut out, Order::Second);
        assert!(out.iter().all(|&v| v.abs() < 1e-11));
        laplacian(&grid, &f, &mut out, Order::Fourth);
        assert!(out.iter().all(|&v| v.abs() < 1e-11));
    }

    #[test]
    fn gradient_of_linear_in_periodic_mode() {
        // For a sine wave, gradient is analytic.
        let grid = Grid3::cubic(64, 0.125);
        let (lx, _, _) = grid.lengths();
        let kx = 2.0 * std::f64::consts::PI / lx;
        let mut f = vec![0.0; grid.len()];
        for k in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, _, _) = grid.position(i, j, k);
                    f[grid.idx(i, j, k)] = (kx * x).sin();
                }
            }
        }
        let mut gx = vec![0.0; grid.len()];
        let mut gy = vec![0.0; grid.len()];
        let mut gz = vec![0.0; grid.len()];
        gradient(&grid, &f, &mut gx, &mut gy, &mut gz);
        for k in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, _, _) = grid.position(i, j, k);
                    let expect = kx * (kx * x).cos();
                    assert!((gx[grid.idx(i, j, k)] - expect).abs() < 2e-3);
                    assert!(gy[grid.idx(i, j, k)].abs() < 1e-12);
                    assert!(gz[grid.idx(i, j, k)].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn flop_accounting_positive() {
        let grid = Grid3::cubic(8, 1.0);
        assert!(laplacian_flops(&grid, Order::Second) > 0);
        assert!(laplacian_flops(&grid, Order::Fourth) > laplacian_flops(&grid, Order::Second));
    }
}
