//! Property-based tests (proptest) for the numerical substrate: the
//! invariants every kernel above this crate silently assumes.

use mlmd_numerics::bf16::{split_f32, SplitMode};
use mlmd_numerics::cgemm::{cgemm, Op};
use mlmd_numerics::complex::c64;
use mlmd_numerics::eigen::{eigh_hermitian, residual_hermitian};
use mlmd_numerics::fft::{dft_reference, Fft1d};
use mlmd_numerics::gemm::{gemm_blocked, gemm_naive, gemm_parallel};
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::ortho::{gram_schmidt, orthonormality_error};
use mlmd_numerics::vec3::Vec3;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-10.0f64..10.0).prop_filter("finite", |x| x.is_finite())
}

fn complex_vec(max_len: usize) -> impl Strategy<Value = Vec<c64>> {
    prop::collection::vec(
        (small_f64(), small_f64()).prop_map(|(r, i)| c64::new(r, i)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---- FFT ----

    #[test]
    fn fft_round_trip_any_length(x in complex_vec(48)) {
        let fft = Fft1d::new(x.len());
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_matches_naive_dft(x in complex_vec(24)) {
        let fft = Fft1d::new(x.len());
        let mut y = x.clone();
        fft.forward(&mut y);
        let reference = dft_reference(&x);
        for (a, b) in y.iter().zip(&reference) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_is_linear(x in complex_vec(24), s in small_f64()) {
        let fft = Fft1d::new(x.len());
        let mut fx = x.clone();
        fft.forward(&mut fx);
        let scaled: Vec<c64> = x.iter().map(|z| z.scale(s)).collect();
        let mut fsx = scaled;
        fft.forward(&mut fsx);
        for (a, b) in fx.iter().zip(&fsx) {
            prop_assert!((a.scale(s) - *b).abs() < 1e-7 * (1.0 + s.abs()));
        }
    }

    #[test]
    fn parseval_holds(x in complex_vec(40)) {
        let n = x.len();
        let fft = Fft1d::new(n);
        let mut y = x.clone();
        fft.forward(&mut y);
        let t: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let f: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((t - f).abs() < 1e-6 * (1.0 + t));
    }

    // ---- GEMM ----

    #[test]
    fn blocked_and_parallel_match_naive(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        use mlmd_numerics::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.next_f64() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.next_f64() - 0.5);
        let mut c0 = Matrix::<f64>::zeros(m, n);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm_naive(1.0, &a, &b, 0.0, &mut c0);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c1);
        gemm_parallel(1.0, &a, &b, 0.0, &mut c2);
        prop_assert!(c0.max_abs_diff(&c1) < 1e-10);
        prop_assert!(c0.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn cgemm_hermitian_transpose_identity(m in 2usize..10, n in 2usize..10, seed in 0u64..500) {
        // (A† A) must be Hermitian positive semidefinite for any A.
        use mlmd_numerics::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let a = Matrix::from_fn(m, n, |_, _| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5));
        let mut s = Matrix::<c64>::zeros(n, n);
        cgemm(Op::H, Op::N, c64::one(), &a, &a, c64::zero(), &mut s);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((s[(i, j)] - s[(j, i)].conj()).abs() < 1e-10);
            }
            prop_assert!(s[(i, i)].re > -1e-12);
        }
    }

    // ---- BF16 split ----

    #[test]
    fn bf16_split_reconstruction_ladder(x in -1e4f32..1e4) {
        prop_assume!(x.abs() > 1e-6);
        let err = |n: usize| {
            let c = split_f32(x, n);
            let rec: f32 = c.iter().take(n).sum();
            ((x - rec) / x).abs()
        };
        // Monotone non-increasing reconstruction error.
        prop_assert!(err(1) >= err(2) - 1e-12);
        prop_assert!(err(2) >= err(3) - 1e-12);
        prop_assert!(err(3) < 1e-5);
    }

    #[test]
    fn split_mode_product_counts(_x in 0..1) {
        prop_assert_eq!(SplitMode::Bf16.product_count(), 1);
        prop_assert_eq!(SplitMode::Bf16x2.product_count(), 3);
        prop_assert_eq!(SplitMode::Bf16x3.product_count(), 6);
    }

    // ---- Eigen / ortho ----

    #[test]
    fn hermitian_eigendecomposition_reconstructs(n in 2usize..7, seed in 0u64..200) {
        use mlmd_numerics::rng::{Rng64, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let raw = Matrix::from_fn(n, n, |_, _| c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5));
        let h = Matrix::from_fn(n, n, |i, j| (raw[(i, j)] + raw[(j, i)].conj()).scale(0.5));
        let e = eigh_hermitian(&h);
        prop_assert!(residual_hermitian(&h, &e) < 1e-8);
        // Trace preserved.
        let tr: f64 = (0..n).map(|i| h[(i, i)].re).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-8);
    }

    #[test]
    fn gram_schmidt_always_orthonormalizes(m in 4usize..30, n in 1usize..4, seed in 0u64..200) {
        use mlmd_numerics::rng::{Rng64, SplitMix64};
        prop_assume!(m > n);
        let mut rng = SplitMix64::new(seed);
        let mut psi = Matrix::from_fn(m, n, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        });
        gram_schmidt(&mut psi);
        prop_assert!(orthonormality_error(&psi) < 1e-9);
    }

    // ---- Vec3 ----

    #[test]
    fn cross_product_orthogonality(
        ax in small_f64(), ay in small_f64(), az in small_f64(),
        bx in small_f64(), by in small_f64(), bz in small_f64()
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-8 * (1.0 + a.norm() * b.norm() * a.norm()));
        prop_assert!(c.dot(b).abs() < 1e-8 * (1.0 + a.norm() * b.norm() * b.norm()));
    }

    #[test]
    fn min_image_within_half_box(
        x in -50.0f64..50.0, y in -50.0f64..50.0, z in -50.0f64..50.0,
        l in 1.0f64..20.0
    ) {
        let d = Vec3::new(x, y, z).min_image(Vec3::splat(l));
        prop_assert!(d.x.abs() <= l / 2.0 + 1e-9);
        prop_assert!(d.y.abs() <= l / 2.0 + 1e-9);
        prop_assert!(d.z.abs() <= l / 2.0 + 1e-9);
    }
}
