//! Differential kernel-oracle harness (PR 10).
//!
//! The blocked/packed GEMM tiers promise more than tolerance-level
//! agreement: every tier folds each output element identically (beta-scaled
//! start, ascending-`p` terms `a·(alpha·b)`), so naive, blocked at *any*
//! block-size choice, strided views at any transpose/conjugation flag, and
//! the parallel kernel at *any* pool width must produce **bit-identical**
//! results. This harness pins that contract with proptest-generated shapes,
//! scalars, strides, and op flags — a regression here means someone
//! reassociated a floating-point fold, which would silently break every
//! trajectory pin upstream.
//!
//! The one deliberate exception is [`overlap`] (CGEMM(1), `A†B`): its tuned
//! fold accumulates from zero (`acc = Σ conj(a)·b`, then `alpha·acc +
//! beta·c`), which is *not* the canonical fold. It is pinned separately:
//! tolerance-level agreement with the materialized oracle, and bit-level
//! determinism across pool widths.

use mlmd_numerics::cgemm::{cgemm, overlap, Op};
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops;
use mlmd_numerics::gemm::{
    gemm_blocked, gemm_blocked_with, gemm_flops, gemm_naive, gemm_parallel, gemm_strided,
    BlockSizes, MatRef,
};
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::rng::{Rng64, SplitMix64};
use proptest::prelude::*;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
}

fn random_cmatrix(rows: usize, cols: usize, seed: u64) -> Matrix<c64> {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
    })
}

/// First bit-level mismatch between two f64 matrices, if any.
fn bit_mismatch(a: &Matrix<f64>, b: &Matrix<f64>) -> Option<String> {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .enumerate()
        .find(|(_, (x, y))| x.to_bits() != y.to_bits())
        .map(|(idx, (x, y))| format!("index {idx}: {x:e} vs {y:e}"))
}

/// First bit-level mismatch between two complex matrices, if any.
fn bit_mismatch_c(a: &Matrix<c64>, b: &Matrix<c64>) -> Option<String> {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .enumerate()
        .find(|(_, (x, y))| x.re.to_bits() != y.re.to_bits() || x.im.to_bits() != y.im.to_bits())
        .map(|(idx, (x, y))| format!("index {idx}: {x:?} vs {y:?}"))
}

fn op_from(i: usize) -> Op {
    [Op::N, Op::T, Op::H][i % 3]
}

fn materialize(m: &Matrix<c64>, op: Op) -> Matrix<c64> {
    match op {
        Op::N => m.clone(),
        Op::T => m.transpose(),
        Op::H => m.conj_transpose(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked == naive, bit for bit, across shapes and alpha/beta.
    #[test]
    fn blocked_is_bit_identical_to_naive(
        m in 1usize..34, k in 1usize..34, n in 1usize..34,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in 0u64..1000
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        let mut c0 = random_matrix(m, n, seed.wrapping_add(2));
        let mut c1 = c0.clone();
        gemm_naive(alpha, &a, &b, beta, &mut c0);
        gemm_blocked(alpha, &a, &b, beta, &mut c1);
        let diff = bit_mismatch(&c0, &c1);
        prop_assert!(diff.is_none(), "shape ({m},{k},{n}): {diff:?}");
    }

    /// Block-size sweep: every MC/KC/MR/NR choice produces the same bits.
    #[test]
    fn block_sizes_are_bit_invariant(
        m in 1usize..40, k in 1usize..40, n in 1usize..40,
        mc in 1usize..48, kc in 1usize..48, mr in 1usize..10, nr in 1usize..10,
        seed in 0u64..1000
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed.wrapping_add(1));
        let c0 = random_matrix(m, n, seed.wrapping_add(2));
        let mut reference = c0.clone();
        gemm_blocked(1.3, &a, &b, -0.7, &mut reference);
        let bs = BlockSizes { mc, kc, mr, nr };
        let mut c = c0.clone();
        gemm_blocked_with(bs, 1.3, &a, &b, -0.7, &mut c);
        let diff = bit_mismatch(&reference, &c);
        prop_assert!(diff.is_none(), "({m},{k},{n}) {bs:?}: {diff:?}");
    }

    /// Complex blocked == complex naive, bit for bit.
    #[test]
    fn complex_blocked_is_bit_identical_to_naive(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        let a = random_cmatrix(m, k, seed);
        let b = random_cmatrix(k, n, seed.wrapping_add(1));
        let mut c0 = random_cmatrix(m, n, seed.wrapping_add(2));
        let mut c1 = c0.clone();
        let alpha = c64::new(0.8, -0.3);
        let beta = c64::new(-0.2, 0.5);
        gemm_naive(alpha, &a, &b, beta, &mut c0);
        gemm_blocked(alpha, &a, &b, beta, &mut c1);
        let diff = bit_mismatch_c(&c0, &c1);
        prop_assert!(diff.is_none(), "shape ({m},{k},{n}): {diff:?}");
    }

    /// Strided/transposed views feed the packed kernel the same values a
    /// materialized transpose would — bit-identical output.
    #[test]
    fn strided_views_bit_match_materialized(
        m in 1usize..16, k in 1usize..16, n in 1usize..16,
        ta_bit in 0usize..2, tb_bit in 0usize..2,
        seed in 0u64..1000
    ) {
        let (ta, tb) = (ta_bit == 1, tb_bit == 1);
        // Operands stored transposed when the flag is set, viewed back.
        let a_store = if ta { random_matrix(k, m, seed) } else { random_matrix(m, k, seed) };
        let b_store = if tb { random_matrix(n, k, seed + 1) } else { random_matrix(k, n, seed + 1) };
        let a_view = if ta { MatRef::transposed(&a_store) } else { MatRef::from_matrix(&a_store) };
        let b_view = if tb { MatRef::transposed(&b_store) } else { MatRef::from_matrix(&b_store) };
        let c0 = random_matrix(m, n, seed + 2);
        let mut c_view = c0.clone();
        gemm_strided(1.1, a_view, b_view, 0.6, &mut c_view);
        let a_mat = if ta { a_store.transpose() } else { a_store.clone() };
        let b_mat = if tb { b_store.transpose() } else { b_store.clone() };
        let mut c_mat = c0.clone();
        gemm_naive(1.1, &a_mat, &b_mat, 0.6, &mut c_mat);
        let diff = bit_mismatch(&c_view, &c_mat);
        prop_assert!(diff.is_none(), "({m},{k},{n}) ta={ta} tb={tb}: {diff:?}");
    }

    /// A non-contiguous column-strided view (every other column of a wider
    /// buffer) matches the materialized submatrix.
    #[test]
    fn sub_strided_view_bit_matches(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000
    ) {
        let a = random_matrix(m, k, seed);
        let wide = random_matrix(k, 2 * n, seed + 1);
        // Odd columns of `wide` as a strided view: rs=1, cs=2k, offset k.
        let b_view = MatRef::new(&wide.as_slice()[k..], k, n, 1, 2 * k, false);
        let b_mat = Matrix::from_fn(k, n, |i, j| wide[(i, 2 * j + 1)]);
        let mut c_view = Matrix::<f64>::zeros(m, n);
        gemm_strided(1.0, MatRef::from_matrix(&a), b_view, 0.0, &mut c_view);
        let mut c_mat = Matrix::<f64>::zeros(m, n);
        gemm_naive(1.0, &a, &b_mat, 0.0, &mut c_mat);
        let diff = bit_mismatch(&c_view, &c_mat);
        prop_assert!(diff.is_none(), "({m},{k},{n}): {diff:?}");
    }

    /// Every cgemm op combination matches the materialize-then-naive
    /// oracle — bit-identical except the tuned H·N fast path ([`overlap`]),
    /// whose distinct (pinned) fold gets tolerance-level agreement plus its
    /// own determinism test below.
    #[test]
    fn cgemm_ops_match_materialized_oracle(
        m in 1usize..12, k in 1usize..12, n in 1usize..12,
        ia in 0usize..3, ib in 0usize..3, seed in 0u64..1000
    ) {
        let (opa, opb) = (op_from(ia), op_from(ib));
        let a_dims = match opa { Op::N => (m, k), _ => (k, m) };
        let b_dims = match opb { Op::N => (k, n), _ => (n, k) };
        let a = random_cmatrix(a_dims.0, a_dims.1, seed);
        let b = random_cmatrix(b_dims.0, b_dims.1, seed + 1);
        let c0 = random_cmatrix(m, n, seed + 2);
        let alpha = c64::new(0.4, -0.6);
        let beta = c64::new(0.3, 0.1);
        let mut c = c0.clone();
        cgemm(opa, opb, alpha, &a, &b, beta, &mut c);
        let (am, bm) = (materialize(&a, opa), materialize(&b, opb));
        let mut r = c0.clone();
        gemm_naive(alpha, &am, &bm, beta, &mut r);
        if opa == Op::H && opb == Op::N {
            prop_assert!(c.max_abs_diff(&r) < 1e-12 * (k as f64 + 1.0), "overlap fast path");
        } else {
            let diff = bit_mismatch_c(&c, &r);
            prop_assert!(diff.is_none(), "ops {opa:?},{opb:?} ({m},{k},{n}): {diff:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pool-width invariance: the parallel kernel decomposes work into
    /// fixed-width column strips, so widths 1/2/4 all reproduce the serial
    /// bits. Shapes are chosen above the serial-delegation threshold so the
    /// parallel branch actually runs.
    #[test]
    fn parallel_is_pool_width_invariant(
        m in 48usize..72, k in 48usize..72, n in 16usize..28, seed in 0u64..1000
    ) {
        let a = random_matrix(m, k, seed);
        let b = random_matrix(k, n, seed + 1);
        let c0 = random_matrix(m, n, seed + 2);
        let mut serial = c0.clone();
        gemm_blocked(0.9, &a, &b, 0.4, &mut serial);
        for width in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool");
            let mut c = c0.clone();
            pool.install(|| gemm_parallel(0.9, &a, &b, 0.4, &mut c));
            let diff = bit_mismatch(&serial, &c);
            prop_assert!(diff.is_none(), "width {width}: {diff:?}");
        }
    }

    /// The overlap fast path is deterministic across pool widths even
    /// though its fold differs from the canonical one.
    #[test]
    fn overlap_is_pool_width_invariant(
        ngrid in 32usize..64, norb in 2usize..8, seed in 0u64..1000
    ) {
        let a = random_cmatrix(ngrid, norb, seed);
        let b = random_cmatrix(ngrid, norb, seed + 1);
        let s0 = random_cmatrix(norb, norb, seed + 2);
        let alpha = c64::new(1.0, -0.1);
        let beta = c64::new(0.2, 0.0);
        let mut reference: Option<Matrix<c64>> = None;
        for width in [1usize, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(width)
                .build()
                .expect("pool");
            let mut s = s0.clone();
            pool.install(|| overlap(alpha, &a, &b, beta, &mut s));
            match &reference {
                None => reference = Some(s),
                Some(r) => {
                    let diff = bit_mismatch_c(r, &s);
                    prop_assert!(diff.is_none(), "width {width}: {diff:?}");
                }
            }
        }
    }
}

/// Analytic FLOP accounting: every tier records the same count for the
/// same shape — the loop structure cannot skew the tally.
#[test]
fn all_tiers_record_identical_flop_counts() {
    let (m, k, n) = (19, 23, 11);
    let a = random_matrix(m, k, 101);
    let b = random_matrix(k, n, 102);
    let expected = gemm_flops::<f64>(m, n, k);
    let mut counts = Vec::new();
    let mut c = Matrix::<f64>::zeros(m, n);
    flops::reset_gemm_tally();
    gemm_naive(1.0, &a, &b, 0.0, &mut c);
    counts.push(flops::reset_gemm_tally());
    gemm_blocked(1.0, &a, &b, 0.0, &mut c);
    counts.push(flops::reset_gemm_tally());
    gemm_blocked_with(
        BlockSizes {
            mc: 5,
            kc: 3,
            mr: 2,
            nr: 2,
        },
        1.0,
        &a,
        &b,
        0.0,
        &mut c,
    );
    counts.push(flops::reset_gemm_tally());
    gemm_parallel(1.0, &a, &b, 0.0, &mut c);
    counts.push(flops::reset_gemm_tally());
    for (i, &got) in counts.iter().enumerate() {
        assert_eq!(got, expected, "tier {i} recorded a different FLOP count");
    }
}
