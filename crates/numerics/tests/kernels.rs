//! Known-value and round-trip identities for the hot kernels every upper
//! layer leans on: GEMM, FFT, stencils, and the eigensolver. Unlike the
//! `properties.rs` suite these use hand-checkable inputs, so a failure
//! points at the kernel, not at the harness.

use mlmd_numerics::complex::c64;
use mlmd_numerics::eigen::{eigh_hermitian, eigh_real, residual_hermitian};
use mlmd_numerics::fft::{Fft1d, Fft3d};
use mlmd_numerics::gemm::{gemm_blocked, gemm_naive, gemm_parallel};
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::stencil::{gradient, laplacian, Order};

const TOL: f64 = 1e-12;

// ---------------------------------------------------------------- gemm

#[test]
fn gemm_identity_is_a_no_op() {
    let a = Matrix::from_fn(4, 4, |i, j| (3 * i + j) as f64);
    let eye = Matrix::<f64>::eye(4);
    let mut c = Matrix::<f64>::zeros(4, 4);
    gemm_naive(1.0, &a, &eye, 0.0, &mut c);
    assert!(c.max_abs_diff(&a) < TOL);
    gemm_naive(1.0, &eye, &a, 0.0, &mut c);
    assert!(c.max_abs_diff(&a) < TOL);
}

#[test]
fn gemm_known_2x2_product() {
    // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50], column-major storage.
    let a = Matrix::from_vec(2, 2, vec![1.0, 3.0, 2.0, 4.0]);
    let b = Matrix::from_vec(2, 2, vec![5.0, 7.0, 6.0, 8.0]);
    let expect = Matrix::from_vec(2, 2, vec![19.0, 43.0, 22.0, 50.0]);
    for gemm in [gemm_naive::<f64>, gemm_blocked::<f64>, gemm_parallel::<f64>] {
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm(1.0, &a, &b, 0.0, &mut c);
        assert!(c.max_abs_diff(&expect) < TOL);
    }
}

#[test]
fn gemm_alpha_beta_accumulate() {
    // C = alpha*A*B + beta*C with A = B = I: C = alpha*I + beta*C.
    let eye = Matrix::<f64>::eye(3);
    let mut c = Matrix::from_fn(3, 3, |i, j| if i == j { 10.0 } else { 1.0 });
    gemm_naive(2.0, &eye, &eye, 0.5, &mut c);
    let expect = Matrix::from_fn(3, 3, |i, j| if i == j { 7.0 } else { 0.5 });
    assert!(c.max_abs_diff(&expect) < TOL);
}

#[test]
fn gemm_tiers_agree_on_non_square_shapes() {
    // Shapes straddling the blocked kernel's tile edges.
    for &(m, k, n) in &[(1usize, 5usize, 3usize), (7, 2, 9), (33, 17, 65)] {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        let mut c0 = Matrix::<f64>::zeros(m, n);
        let mut c1 = c0.clone();
        let mut c2 = c0.clone();
        gemm_naive(1.5, &a, &b, 0.0, &mut c0);
        gemm_blocked(1.5, &a, &b, 0.0, &mut c1);
        gemm_parallel(1.5, &a, &b, 0.0, &mut c2);
        assert!(
            c0.max_abs_diff(&c1) < 1e-10,
            "blocked differs at {m}x{k}x{n}"
        );
        assert!(
            c0.max_abs_diff(&c2) < 1e-10,
            "parallel differs at {m}x{k}x{n}"
        );
    }
}

// ----------------------------------------------------------------- fft

#[test]
fn fft_of_unit_impulse_is_flat() {
    let n = 16;
    let fft = Fft1d::new(n);
    let mut x = vec![c64::zero(); n];
    x[0] = c64::one();
    fft.forward(&mut x);
    for z in &x {
        assert!((z.re - 1.0).abs() < TOL && z.im.abs() < TOL);
    }
}

#[test]
fn fft_of_constant_is_dc_spike() {
    let n = 12; // non-power-of-two exercises the Bluestein/mixed path
    let fft = Fft1d::new(n);
    let mut x = vec![c64::new(2.5, 0.0); n];
    fft.forward(&mut x);
    assert!((x[0].re - 2.5 * n as f64).abs() < 1e-9);
    for z in &x[1..] {
        assert!(z.abs() < 1e-9, "non-DC bin must vanish, got {}", z.abs());
    }
}

#[test]
fn fft_single_mode_lands_in_single_bin() {
    let n = 32;
    let fft = Fft1d::new(n);
    let k = 5;
    let mut x: Vec<c64> = (0..n)
        .map(|j| c64::cis(2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64))
        .collect();
    fft.forward(&mut x);
    for (bin, z) in x.iter().enumerate() {
        let expect = if bin == k { n as f64 } else { 0.0 };
        assert!(
            (z.abs() - expect).abs() < 1e-8,
            "bin {bin}: |X| = {} expected {expect}",
            z.abs()
        );
    }
}

#[test]
fn fft3d_round_trip() {
    let (nx, ny, nz) = (4, 6, 5);
    let fft = Fft3d::new(nx, ny, nz);
    let x: Vec<c64> = (0..nx * ny * nz)
        .map(|i| c64::new(((i * 29) % 17) as f64 - 8.0, ((i * 13) % 7) as f64))
        .collect();
    let mut y = x.clone();
    fft.forward(&mut y);
    fft.inverse(&mut y);
    for (a, b) in x.iter().zip(&y) {
        assert!((*a - *b).abs() < 1e-9);
    }
}

// ------------------------------------------------------------- stencil

#[test]
fn laplacian_of_constant_vanishes() {
    let grid = Grid3::new(6, 5, 4, 0.7);
    let f = vec![3.25; grid.len()];
    for order in [Order::Second, Order::Fourth] {
        let mut out = vec![f64::NAN; grid.len()];
        laplacian(&grid, &f, &mut out, order);
        for v in &out {
            assert!(v.abs() < TOL, "{order:?}: got {v}");
        }
    }
}

#[test]
fn laplacian_eigenfunction_converges_with_order() {
    // f = cos(2*pi*x/L) is a periodic Laplacian eigenfunction with
    // eigenvalue -k^2; the 4th-order stencil must beat the 2nd-order one.
    let n = 24;
    let h = 0.5;
    let grid = Grid3::new(n, 4, 4, h);
    let length = n as f64 * h;
    let k = 2.0 * std::f64::consts::PI / length;
    let mut f = vec![0.0; grid.len()];
    for i in 0..n {
        for j in 0..4 {
            for l in 0..4 {
                f[grid.idx(i, j, l)] = (k * i as f64 * h).cos();
            }
        }
    }
    let max_err = |order| {
        let mut out = vec![0.0; grid.len()];
        laplacian(&grid, &f, &mut out, order);
        out.iter()
            .zip(&f)
            .map(|(lap, val)| (lap + k * k * val).abs())
            .fold(0.0f64, f64::max)
    };
    let e2 = max_err(Order::Second);
    let e4 = max_err(Order::Fourth);
    assert!(e2 < 2e-2, "2nd-order error too large: {e2}");
    assert!(e4 < e2 / 10.0, "4th order must be far closer: {e4} vs {e2}");
}

#[test]
fn gradient_of_linear_phase_is_uniform() {
    // f = sin(k x): df/dx = k cos(k x), df/dy = df/dz = 0.
    let n = 32;
    let h = 0.4;
    let grid = Grid3::new(n, 3, 3, h);
    let length = n as f64 * h;
    let k = 2.0 * std::f64::consts::PI / length;
    let mut f = vec![0.0; grid.len()];
    for i in 0..n {
        for j in 0..3 {
            for l in 0..3 {
                f[grid.idx(i, j, l)] = (k * i as f64 * h).sin();
            }
        }
    }
    let mut gx = vec![0.0; grid.len()];
    let mut gy = vec![0.0; grid.len()];
    let mut gz = vec![0.0; grid.len()];
    gradient(&grid, &f, &mut gx, &mut gy, &mut gz);
    for i in 0..n {
        let expect = k * (k * i as f64 * h).cos();
        let got = gx[grid.idx(i, 1, 1)];
        assert!(
            (got - expect).abs() < 3e-2,
            "gx[{i}] = {got} expected {expect}"
        );
    }
    for (y, z) in gy.iter().zip(&gz) {
        assert!(y.abs() < TOL && z.abs() < TOL);
    }
}

// --------------------------------------------------------------- eigen

#[test]
fn eigh_real_known_2x2() {
    // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
    let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
    let e = eigh_real(&a);
    assert!((e.values[0] - 1.0).abs() < 1e-10);
    assert!((e.values[1] - 3.0).abs() < 1e-10);
    // Eigenvectors are (1,-1)/sqrt(2) and (1,1)/sqrt(2) up to sign.
    let v0 = e.vectors.col(0);
    assert!((v0[0] + v0[1]).abs() < 1e-10, "ground vector must be odd");
}

#[test]
fn eigh_hermitian_diagonal_passthrough() {
    let d = [3.0, -1.0, 0.5, 7.0];
    let h = Matrix::from_fn(4, 4, |i, j| {
        if i == j {
            c64::new(d[i], 0.0)
        } else {
            c64::zero()
        }
    });
    let e = eigh_hermitian(&h);
    let mut sorted = d;
    sorted.sort_by(f64::total_cmp);
    for (got, want) in e.values.iter().zip(&sorted) {
        assert!((got - want).abs() < 1e-12);
    }
    assert!(residual_hermitian(&h, &e) < 1e-12);
}

#[test]
fn eigh_hermitian_pauli_y_is_unit_pair() {
    // sigma_y = [[0, -i], [i, 0]] has eigenvalues -1 and +1 — a genuinely
    // complex Hermitian case (zero real part off-diagonal).
    let mut h = Matrix::<c64>::zeros(2, 2);
    h[(0, 1)] = c64::new(0.0, -1.0);
    h[(1, 0)] = c64::new(0.0, 1.0);
    let e = eigh_hermitian(&h);
    assert!((e.values[0] + 1.0).abs() < 1e-10);
    assert!((e.values[1] - 1.0).abs() < 1e-10);
    assert!(residual_hermitian(&h, &e) < 1e-10);
}
