//! Property tests for the cost-model/planner layer: scaling-curve
//! invariants over arbitrary sweeps, planner optimality against the
//! serial baseline over random calibrations and job shapes, and
//! calibration codec round-trips.

use mlmd_exasim::calibrate::{Calibration, FIXTURE_NGRID, FIXTURE_NORB, FIXTURE_N_QD};
use mlmd_exasim::planner::{PlanJob, Planner};
use mlmd_exasim::scaling::{dcmesh_strong, dcmesh_weak, nnqmd_strong, nnqmd_weak};
use mlmd_exasim::{dcmesh_model::DcMeshModel, nnqmd_model::NnqmdModel, Machine};
use proptest::prelude::*;

/// An arbitrary-but-valid calibration from raw positive constants.
fn calibration(
    mesh_step: f64,
    construct_cold: f64,
    warm_frac: f64,
    dist1: f64,
    md_atom_step: f64,
    fdtd_cell_step: f64,
) -> Calibration {
    Calibration {
        alpha: 2.0e-6,
        beta: 5.0e-11,
        mesh_step,
        n_qd: FIXTURE_N_QD as f64,
        construct_cold,
        construct_warm: construct_cold * warm_frac,
        // A plausible ladder: each doubling of ranks-per-domain costs
        // more wall on a time-sliced host.
        dist_step: [dist1, dist1 * 1.7, dist1 * 3.1],
        dist_fixed: [0.002, 0.004, 0.008],
        md_atom_step,
        fdtd_cell_step,
    }
}

/// A strictly increasing rank sweep from arbitrary positive increments.
fn rank_sweep(increments: &[usize]) -> Vec<usize> {
    let mut p = 0usize;
    increments
        .iter()
        .map(|&d| {
            p += d.max(1);
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn strong_scaling_time_monotone_non_increasing(
        total in 1.0e5f64..1.0e8,
        increments in prop::collection::vec(1usize..5000, 2..6),
    ) {
        // More ranks on a fixed problem can never predict a slower step:
        // per-rank work shrinks and the overhead terms grow slower than
        // the work term falls over these sweeps.
        let sweep = rank_sweep(&increments);
        let dc = dcmesh_strong(&DcMeshModel::paper_config(), total * 100.0, &sweep);
        for w in dc.windows(2) {
            prop_assert!(
                w[1].time <= w[0].time * (1.0 + 1e-9),
                "DC-MESH strong time rose: {} ranks {} s -> {} ranks {} s",
                w[0].ranks, w[0].time, w[1].ranks, w[1].time
            );
        }
        let nn = nnqmd_strong(&NnqmdModel::paper_config(), total * 1.0e3, &sweep);
        for w in nn.windows(2) {
            prop_assert!(w[1].time <= w[0].time * (1.0 + 1e-9));
        }
    }

    #[test]
    fn efficiency_always_in_unit_interval(
        granularity in 16.0f64..512.0,
        atoms_per_rank in 1.0e4f64..1.0e7,
        increments in prop::collection::vec(1usize..5000, 2..6),
    ) {
        // The ScalePoint clamp: no sweep, however ordered, reports an
        // efficiency outside [0, 1].
        let mut sweep = rank_sweep(&increments);
        sweep.reverse(); // worst case: t0 is the most-loaded point
        for pt in dcmesh_weak(&DcMeshModel::paper_config(), granularity, &sweep) {
            prop_assert!((0.0..=1.0).contains(&pt.efficiency), "{}", pt.efficiency);
        }
        for pt in nnqmd_weak(&NnqmdModel::paper_config(), atoms_per_rank, &sweep) {
            prop_assert!((0.0..=1.0).contains(&pt.efficiency), "{}", pt.efficiency);
        }
        sweep.reverse();
        for pt in dcmesh_strong(&DcMeshModel::paper_config(), 1.0e7, &sweep) {
            prop_assert!((0.0..=1.0).contains(&pt.efficiency), "{}", pt.efficiency);
        }
    }

    #[test]
    fn planner_never_beats_itself_with_serial(
        mesh_step in 1.0e-4f64..0.5,
        construct_cold in 1.0e-4f64..0.5,
        dist1 in 1.0e-4f64..0.5,
        pool_width in 1usize..9,
        runs in 1usize..6,
        steps in 1usize..200,
    ) {
        // The serial baseline is always among the enumerated candidates,
        // so the chosen plan can never predict worse than it — whatever
        // the fitted constants say about this host. (warm_shared toggles
        // with the run count to cover both construction models.)
        let cal = calibration(mesh_step, construct_cold, 0.1, dist1, 2.0e-7, 4.0e-9);
        let mut planner = Planner::new(Machine::from_calibration(&cal), cal);
        planner.pool_width = pool_width;
        let job = PlanJob::MeshBatch {
            runs,
            steps,
            ngrid: FIXTURE_NGRID,
            norb: FIXTURE_NORB,
            n_qd: FIXTURE_N_QD,
            stride: 1,
            warm_shared: runs % 2 == 1,
        };
        let (plan, _) = planner.plan(&job);
        prop_assert!(
            plan.predicted_secs <= planner.predict_serial(&job) + 1e-9,
            "chosen {} s vs serial {} s",
            plan.predicted_secs,
            planner.predict_serial(&job)
        );
    }

    #[test]
    fn calibration_codec_round_trips_bit_exact(
        mesh_step in 1.0e-6f64..10.0,
        construct_cold in 1.0e-6f64..10.0,
        warm_frac in 0.001f64..1.0,
        dist1 in 1.0e-6f64..10.0,
        md_atom_step in 1.0e-12f64..1.0e-3,
        fdtd_cell_step in 1.0e-12f64..1.0e-3,
    ) {
        // encode → decode → encode must be the identity on bytes: the
        // persisted calibration is deterministic however noisy the
        // wall-clock that produced it was.
        let cal = calibration(mesh_step, construct_cold, warm_frac, dist1, md_atom_step, fdtd_cell_step);
        let bytes = cal.encode();
        let back = Calibration::decode(&bytes).expect("round-trip decodes");
        prop_assert_eq!(back, cal);
        prop_assert_eq!(back.encode(), bytes);
    }
}
