//! Machine descriptions.
//!
//! Aurora numbers follow paper Sec. VI.B: 10,624 nodes, 6 × PVC GPUs
//! (2 tiles each) per node, 2×52-core Xeon Max, Slingshot-11 dragonfly.
//! Per-tile FP64 peak is 23 TFLOP/s nominal (Table IV header) with
//! power-throttling to ~11 TFLOP/s sustained; FP32 is dual-issued at the
//! same nominal peak; the XMX systolic arrays give BF16 a large
//! multiplier.

/// One machine model.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    pub name: &'static str,
    pub nodes: usize,
    /// GPU tiles (≡ MPI ranks for MLMD) per node.
    pub tiles_per_node: usize,
    /// Nominal per-tile peaks, FLOP/s.
    pub tile_fp64: f64,
    pub tile_fp32: f64,
    pub tile_bf16: f64,
    /// Sustained fraction of nominal FP64 under power constraints.
    pub power_derate: f64,
    /// HBM bandwidth per tile, B/s.
    pub hbm_bw: f64,
    /// Host↔device link bandwidth per tile, B/s.
    pub pcie_bw: f64,
    /// Network: per-message latency (s) and per-byte time (s/B) per rank.
    pub net_alpha: f64,
    pub net_beta: f64,
    /// Dragonfly congestion exponent: effective α grows ∝ log₂(P)^cong.
    pub congestion: f64,
}

impl Machine {
    /// Aurora (ALCF), as used for every headline number in the paper.
    pub fn aurora() -> Self {
        Machine {
            name: "Aurora",
            nodes: 10_624,
            tiles_per_node: 12,
            tile_fp64: 23.0e12,
            tile_fp32: 23.0e12,
            tile_bf16: 180.0e12,
            power_derate: 11.0 / 23.0,
            hbm_bw: 1.6e12,
            pcie_bw: 32.0e9,
            net_alpha: 2.0e-6,
            net_beta: 1.0 / 25.0e9,
            congestion: 1.0,
        }
    }

    /// The machine this process is running on, profiled from a measured
    /// [`crate::calibrate::Calibration`]: a single-node, single-tile
    /// description whose effective tile rate comes from the fixture's
    /// measured QD-step time and whose α/β come from the probed
    /// collective counters. The analytic *shape* (tree collectives,
    /// halo model) is unchanged — only the constants are fitted, which
    /// is exactly the `Machine`-vs-`Calibration` split.
    pub fn from_calibration(cal: &crate::calibrate::Calibration) -> Self {
        use crate::calibrate::{qd_work, FIXTURE_NGRID, FIXTURE_NORB};
        let qd_secs = cal.qd_step().max(1e-12);
        let tile = qd_work(FIXTURE_NGRID, FIXTURE_NORB) / qd_secs;
        Machine {
            name: "container",
            nodes: 1,
            tiles_per_node: 1,
            tile_fp64: tile,
            tile_fp32: tile,
            tile_bf16: tile,
            power_derate: 1.0,
            // Commodity-DRAM order of magnitude; the fitted per-step
            // kernel time already contains the real memory behavior, so
            // these only matter for the analytic roofline views.
            hbm_bw: 2.0e10,
            pcie_bw: 1.0e10,
            net_alpha: cal.alpha,
            net_beta: cal.beta,
            // Threads through one shared memory: no dragonfly growth.
            congestion: 1.0,
        }
    }

    /// Total ranks when using `nodes` nodes.
    pub fn ranks(&self, nodes: usize) -> usize {
        nodes * self.tiles_per_node
    }

    /// Machine-wide nominal FP64 peak on `nodes` nodes, FLOP/s.
    pub fn peak_fp64(&self, nodes: usize) -> f64 {
        self.ranks(nodes) as f64 * self.tile_fp64
    }

    /// Effective α for a collective over `p` ranks (latency × log-depth ×
    /// congestion).
    pub fn collective_alpha(&self, p: usize) -> f64 {
        let depth = (p.max(2) as f64).log2();
        self.net_alpha * depth.powf(self.congestion)
    }

    /// Time to allreduce `bytes` over `p` ranks (tree α–β model).
    pub fn allreduce_time(&self, p: usize, bytes: f64) -> f64 {
        let depth = (p.max(2) as f64).log2();
        self.collective_alpha(p) + depth * bytes * self.net_beta
    }

    /// Time for a nearest-neighbour halo exchange of `bytes` per face,
    /// 6 faces, overlappable pairs.
    pub fn halo_time(&self, bytes_per_face: f64) -> f64 {
        3.0 * (self.net_alpha + bytes_per_face * self.net_beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aurora_shape_matches_paper() {
        let m = Machine::aurora();
        // 10,000 nodes × 12 ranks = 120,000 ranks — the paper's largest run.
        assert_eq!(m.ranks(10_000), 120_000);
        // Full machine ≈ 2 EFLOP/s nominal FP64 at the derated 11 TF/tile:
        // the paper quotes "~2 EFLOP/s for FP64" for 10,624 nodes.
        let sustained = m.peak_fp64(10_624) * m.power_derate;
        assert!(
            (sustained - 1.4e18).abs() < 0.4e18,
            "sustained fleet FP64 ≈ 1.4 EF, got {sustained:e}"
        );
        let nominal = m.peak_fp64(10_624);
        assert!(nominal > 2.5e18, "nominal {nominal:e}");
    }

    #[test]
    fn collectives_grow_with_rank_count() {
        let m = Machine::aurora();
        assert!(m.allreduce_time(120_000, 8.0) > m.allreduce_time(6_144, 8.0));
        assert!(m.allreduce_time(1024, 1e6) > m.allreduce_time(1024, 8.0));
    }

    #[test]
    fn halo_time_linear_in_bytes() {
        let m = Machine::aurora();
        let t1 = m.halo_time(1e6);
        let t2 = m.halo_time(2e6);
        assert!(t2 > t1);
        assert!((t2 - t1 - 3.0 * 1e6 * m.net_beta).abs() < 1e-12);
    }

    #[test]
    fn bf16_is_the_fast_path() {
        let m = Machine::aurora();
        assert!(m.tile_bf16 > 5.0 * m.tile_fp32);
    }
}
