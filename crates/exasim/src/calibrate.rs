//! Measured calibration of the cost model: the loop-closing half of the
//! ROADMAP item "calibrate exasim from measured numbers".
//!
//! [`Machine`](crate::Machine) stays the *analytic shape* of a machine (rooflines, α–β
//! network, congestion exponent); [`Calibration`] is the *fitted* side —
//! numbers measured on the host this process runs on, by driving the
//! same fixture workloads the oracle suites pin:
//!
//! * α/β from [`mlmd_parallel::comm::World::run_probed`] counters over
//!   `allreduce_sum_vec` probes at two payload sizes;
//! * the serial MESH per-MD-step kernel time from a
//!   [`mlmd_core::probe::CostProbe`] over the canonical
//!   [`mlmd_dcmesh::fixture::small_mesh_builder`] driver (the same
//!   8³-grid / 8-state problem `Pipeline::mesh_stage_builder` builds, so
//!   the fit transfers to service mesh jobs);
//! * cold vs warm-start construction from timing the ground-state
//!   descent against a [`GroundStateCache`] hit;
//! * the distributed per-step and fixed-envelope terms per
//!   ranks-per-domain rung from two `run_distributed_mesh` runs of
//!   different lengths (the difference quotient cancels construction);
//! * per-atom MD and per-cell FDTD step costs from short engine runs.
//!
//! A `Calibration` is plain `Copy` data with a deterministic, versioned
//! byte codec ([`Calibration::encode`]/[`Calibration::decode`]) so a fit
//! can be persisted and round-trips bit-for-bit.

use mlmd_core::config::PipelineConfig;
use mlmd_core::engine::{Engine, NullObserver};
use mlmd_core::pipeline::Pipeline;
use mlmd_core::probe::{time_secs, CostProbe};
use mlmd_dcmesh::checkpoint::{GroundStateCache, WarmStart};
use mlmd_dcmesh::dist_mesh::run_distributed_mesh;
use mlmd_dcmesh::fixture::small_mesh_builder;
use mlmd_maxwell::driver::PulsedYee;
use mlmd_maxwell::source::GaussianPulse;
use mlmd_maxwell::yee1d::Yee1d;
use mlmd_numerics::codec::{ByteReader, ByteWriter, CodecError, Fnv64};
use mlmd_parallel::comm::{CollectiveOp, World};

/// Grid points of the canonical MESH fixture (8³).
pub const FIXTURE_NGRID: usize = 512;
/// Orbital states of the canonical MESH fixture.
pub const FIXTURE_NORB: usize = 8;
/// QD steps per MD step in the canonical MESH fixture.
pub const FIXTURE_N_QD: usize = 30;
/// Pulse amplitude the probe workloads run at.
pub const FIXTURE_E0: f64 = 0.05;

/// The ranks-per-domain rungs the distributed fit measures — the same
/// 1/2/4 ladder every oracle suite pins bit-identity on.
pub const RPD_LADDER: [usize; 3] = [1, 2, 4];

/// Relative QD-step work of an (ngrid, norb) MESH domain, in the same
/// kernel decomposition `DcMeshModel::qd_step_flops` uses (kin + five
/// GEMM pairs + streaming local passes). Only ratios of this quantity
/// are meaningful — it scales a measured fixture step time to another
/// problem shape.
pub fn qd_work(ngrid: usize, norb: usize) -> f64 {
    let (g, o) = (ngrid as f64, norb as f64);
    6.0 * g * o * 28.0 + 80.0 * g * o * o + 40.0 * g * o
}

/// Fitted cost terms, measured on the machine this process runs on.
/// All fields are seconds (or s/B for `beta`); see [`calibrate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Per-collective latency: mean wall of a 1-element
    /// `allreduce_sum_vec` on the probe world (s/op).
    pub alpha: f64,
    /// Marginal per-byte collective cost (s/B), clamped at 0.
    pub beta: f64,
    /// Serial MESH per-MD-step time on the canonical fixture (s).
    pub mesh_step: f64,
    /// QD steps per MD step the fixture ran with (`mesh_step`'s divisor).
    pub n_qd: f64,
    /// Cold driver construction: ground-state descent + assembly (s).
    pub construct_cold: f64,
    /// Warm-start construction: cache hit + assembly (s).
    pub construct_warm: f64,
    /// Distributed per-MD-step time at 1/2/4 ranks per domain
    /// ([`RPD_LADDER`] order), fitted by a two-run difference quotient.
    pub dist_step: [f64; 3],
    /// Fixed per-run envelope (world spawn + in-world construction) at
    /// 1/2/4 ranks per domain, from the same fit.
    pub dist_fixed: [f64; 3],
    /// Supercell MD cost per atom per step (s).
    pub md_atom_step: f64,
    /// FDTD cost per Yee cell per step (s).
    pub fdtd_cell_step: f64,
}

impl Calibration {
    /// Serial per-QD-step time on the fixture.
    pub fn qd_step(&self) -> f64 {
        self.mesh_step / self.n_qd
    }

    /// Fitted per-MD-step time for ranks-per-domain `rpd`, if `rpd` is
    /// on the measured [`RPD_LADDER`].
    pub fn dist_step_for(&self, rpd: usize) -> Option<f64> {
        RPD_LADDER
            .iter()
            .position(|&r| r == rpd)
            .map(|i| self.dist_step[i])
    }

    /// Fixed per-run envelope for ranks-per-domain `rpd`, if measured.
    pub fn dist_fixed_for(&self, rpd: usize) -> Option<f64> {
        RPD_LADDER
            .iter()
            .position(|&r| r == rpd)
            .map(|i| self.dist_fixed[i])
    }

    /// Scale the measured fixture MD-step time to another MESH problem
    /// shape: kernel work scales by the [`qd_work`] ratio, the inner
    /// loop by the QD-step count ratio.
    pub fn mesh_step_scaled(&self, ngrid: usize, norb: usize, n_qd: usize) -> f64 {
        let work_ratio = qd_work(ngrid, norb) / qd_work(FIXTURE_NGRID, FIXTURE_NORB);
        self.mesh_step * work_ratio * (n_qd as f64 / self.n_qd)
    }

    fn fields(&self) -> [f64; 14] {
        [
            self.alpha,
            self.beta,
            self.mesh_step,
            self.n_qd,
            self.construct_cold,
            self.construct_warm,
            self.dist_step[0],
            self.dist_step[1],
            self.dist_step[2],
            self.dist_fixed[0],
            self.dist_fixed[1],
            self.dist_fixed[2],
            self.md_atom_step,
            self.fdtd_cell_step,
        ]
    }

    /// Versioned, digest-checked byte encoding. Deterministic: the same
    /// calibration always produces the same bytes, and
    /// [`Self::decode`] restores every field bit-for-bit.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(CAL_MAGIC);
        let fields = self.fields();
        w.put_u32(fields.len() as u32);
        let mut digest = Fnv64::new();
        for v in fields {
            w.put_f64(v);
            digest.write_f64(v);
        }
        w.put_u64(digest.finish());
        w.into_bytes()
    }

    /// Decode [`Self::encode`] bytes; rejects a wrong magic, field
    /// count, or digest rather than silently mis-reading.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_u64()?;
        if magic != CAL_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let n = r.take_u32()? as usize;
        if n != 14 {
            return Err(CodecError::BadMagic);
        }
        let mut fields = [0.0f64; 14];
        let mut digest = Fnv64::new();
        for f in fields.iter_mut() {
            *f = r.take_f64()?;
            digest.write_f64(*f);
        }
        let want = r.take_u64()?;
        if want != digest.finish() {
            return Err(CodecError::BadDigest);
        }
        Ok(Self {
            alpha: fields[0],
            beta: fields[1],
            mesh_step: fields[2],
            n_qd: fields[3],
            construct_cold: fields[4],
            construct_warm: fields[5],
            dist_step: [fields[6], fields[7], fields[8]],
            dist_fixed: [fields[9], fields[10], fields[11]],
            md_atom_step: fields[12],
            fdtd_cell_step: fields[13],
        })
    }
}

/// `b"MLMDCAL1"` as a big-endian u64: format magic + version.
const CAL_MAGIC: u64 = u64::from_be_bytes(*b"MLMDCAL1");

/// Probe workload sizes for [`calibrate`]. The defaults fit a full
/// profile in a couple of seconds on the 1-CPU CI container;
/// [`CalibrationConfig::quick`] trades fidelity for speed in tests.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationConfig {
    /// Ranks of the collective probe world.
    pub probe_ranks: usize,
    /// `allreduce_sum_vec` repetitions per payload size.
    pub collective_rounds: usize,
    /// Elements (f64) of the large collective payload.
    pub payload_len: usize,
    /// Serial MESH MD steps to average the per-step time over.
    pub mesh_steps: usize,
    /// Base MD-step count of the distributed fit (runs `s` and `2s`).
    pub dist_steps: usize,
    /// Supercell MD probe steps.
    pub md_steps: usize,
    /// FDTD probe cells and steps.
    pub fdtd_cells: usize,
    pub fdtd_steps: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            probe_ranks: 2,
            collective_rounds: 64,
            payload_len: 4096,
            mesh_steps: 4,
            dist_steps: 2,
            md_steps: 50,
            fdtd_cells: 256,
            fdtd_steps: 200,
        }
    }
}

impl CalibrationConfig {
    /// A cheaper profile for tests and bench smokes: fewer rounds and
    /// steps, same structure.
    pub fn quick() -> Self {
        Self {
            collective_rounds: 16,
            payload_len: 1024,
            mesh_steps: 2,
            dist_steps: 1,
            md_steps: 20,
            fdtd_steps: 100,
            ..Self::default()
        }
    }
}

/// Mean per-op wall of the `AllreduceSumVec` row on world comm 0.
fn probed_allreduce_mean(ranks: usize, rounds: usize, len: usize) -> f64 {
    let (_, rows) = World::run_probed(ranks, |c| {
        for _ in 0..rounds {
            c.allreduce_sum_vec(vec![1.0; len]);
        }
    });
    rows.iter()
        .find(|r| r.comm == 0 && r.op == CollectiveOp::AllreduceSumVec)
        .map(|r| r.stats.mean_wall_secs())
        .unwrap_or(0.0)
}

/// Run the probe workloads and fit a [`Calibration`].
///
/// Everything measured here drives the *same* fixture problem the
/// bit-for-bit oracle suites pin, so the planner's predictions are about
/// execution forms that are already known to agree on results.
pub fn calibrate(cfg: &CalibrationConfig) -> Calibration {
    // --- α/β: collective latency and marginal bandwidth ----------------
    let small = probed_allreduce_mean(cfg.probe_ranks, cfg.collective_rounds, 1);
    let large = probed_allreduce_mean(cfg.probe_ranks, cfg.collective_rounds, cfg.payload_len);
    let alpha = small.max(0.0);
    let payload_bytes = (cfg.payload_len.saturating_sub(1) * 8) as f64;
    let beta = ((large - small) / payload_bytes).max(0.0);

    // --- serial MESH: construction (cold/warm) + per-step kernel -------
    let cache = GroundStateCache::new();
    let warmed = |e0: f64| small_mesh_builder(e0).warm_start(WarmStart::InMemory(cache.clone()));
    let (driver, construct_cold) = time_secs(|| warmed(FIXTURE_E0).build());
    drop(driver);
    let (mut driver, construct_warm) = time_secs(|| warmed(FIXTURE_E0).build());
    let mut probe = CostProbe::new(NullObserver);
    Engine::run(&mut driver, cfg.mesh_steps, &mut probe);
    let mesh_step = probe.report("serial_mesh").step_secs_mean;

    // --- distributed MESH: per-step + fixed envelope per rpd rung ------
    // Two runs of s and 2s steps: the difference quotient cancels the
    // world-spawn + construction envelope, which the short run then
    // isolates. Warm starts keep the envelope about assembly, not descent.
    let s = cfg.dist_steps.max(1);
    let mut dist_step = [0.0; 3];
    let mut dist_fixed = [0.0; 3];
    for (i, &rpd) in RPD_LADDER.iter().enumerate() {
        let (_, t1) = time_secs(|| run_distributed_mesh(1, rpd, s, |_| warmed(FIXTURE_E0)));
        let (_, t2) = time_secs(|| run_distributed_mesh(1, rpd, 2 * s, |_| warmed(FIXTURE_E0)));
        let step = ((t2 - t1) / s as f64).max(0.0);
        dist_step[i] = step;
        dist_fixed[i] = (t1 - s as f64 * step).max(0.0);
    }

    // --- supercell MD: per-atom per-step cost --------------------------
    let mut md_config = PipelineConfig::small_demo();
    md_config.cells = (4, 4, 1);
    md_config.prepare_steps = 0;
    let atoms = md_config.n_atoms() as f64;
    let pipeline = Pipeline::new(md_config);
    let mut stage = pipeline.supercell_md_stage(0.0);
    let mut probe = CostProbe::new(NullObserver);
    Engine::run(&mut stage, cfg.md_steps, &mut probe);
    let md_atom_step = probe.report("supercell_md").step_secs_mean / atoms;

    // --- FDTD: per-cell per-step cost ----------------------------------
    let field = Yee1d::new(cfg.fdtd_cells, 0.02, 0.009);
    let mut yee = PulsedYee::new(
        field,
        GaussianPulse::new(0.1, 0.8, 4.0, 2.0),
        cfg.fdtd_cells / 2,
    );
    let mut probe = CostProbe::new(NullObserver);
    Engine::run(&mut yee, cfg.fdtd_steps, &mut probe);
    let fdtd_cell_step = probe.report("fdtd").step_secs_mean / cfg.fdtd_cells as f64;

    Calibration {
        alpha,
        beta,
        mesh_step,
        n_qd: FIXTURE_N_QD as f64,
        construct_cold,
        construct_warm,
        dist_step,
        dist_fixed,
        md_atom_step,
        fdtd_cell_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_sane() {
        let cal = calibrate(&CalibrationConfig::quick());
        assert!(cal.alpha >= 0.0 && cal.alpha.is_finite());
        assert!(cal.beta >= 0.0 && cal.beta.is_finite());
        assert!(cal.mesh_step > 0.0, "fixture steps take real time");
        assert!(cal.construct_cold > 0.0);
        assert!(
            cal.construct_warm <= cal.construct_cold * 2.0,
            "warm start ({}) must not dwarf the cold descent ({})",
            cal.construct_warm,
            cal.construct_cold
        );
        for (step, fixed) in cal.dist_step.iter().zip(&cal.dist_fixed) {
            assert!(step.is_finite() && *step >= 0.0);
            assert!(fixed.is_finite() && *fixed >= 0.0);
        }
        assert!(cal.md_atom_step > 0.0);
        assert!(cal.fdtd_cell_step > 0.0);
    }

    #[test]
    fn codec_roundtrip_is_bit_exact() {
        let cal = Calibration {
            alpha: 3.5e-6,
            beta: 4.1e-11,
            mesh_step: 0.0123,
            n_qd: 30.0,
            construct_cold: 0.004,
            construct_warm: 0.0007,
            dist_step: [0.013, 0.021, 0.038],
            dist_fixed: [0.002, 0.003, 0.006],
            md_atom_step: 2.0e-7,
            fdtd_cell_step: 3.0e-9,
        };
        let bytes = cal.encode();
        let back = Calibration::decode(&bytes).unwrap();
        for (a, b) in cal.fields().iter().zip(back.fields()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(bytes, back.encode(), "encoding is deterministic");
    }

    #[test]
    fn decode_rejects_corruption() {
        let cal = Calibration {
            alpha: 1e-6,
            beta: 1e-11,
            mesh_step: 0.01,
            n_qd: 30.0,
            construct_cold: 0.004,
            construct_warm: 0.001,
            dist_step: [0.01, 0.02, 0.04],
            dist_fixed: [0.0; 3],
            md_atom_step: 1e-7,
            fdtd_cell_step: 1e-9,
        };
        let mut bytes = cal.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(Calibration::decode(&bytes).is_err());
        assert!(Calibration::decode(&bytes[..10]).is_err());
        assert!(Calibration::decode(b"junk").is_err());
    }

    #[test]
    fn mesh_step_scaling_is_work_proportional() {
        let cal = Calibration {
            alpha: 0.0,
            beta: 0.0,
            mesh_step: 1.0,
            n_qd: FIXTURE_N_QD as f64,
            construct_cold: 0.0,
            construct_warm: 0.0,
            dist_step: [0.0; 3],
            dist_fixed: [0.0; 3],
            md_atom_step: 0.0,
            fdtd_cell_step: 0.0,
        };
        // Same shape, same n_qd → identity.
        let same = cal.mesh_step_scaled(FIXTURE_NGRID, FIXTURE_NORB, FIXTURE_N_QD);
        assert!((same - 1.0).abs() < 1e-12);
        // Double the QD loop → double the step.
        let deeper = cal.mesh_step_scaled(FIXTURE_NGRID, FIXTURE_NORB, 2 * FIXTURE_N_QD);
        assert!((deeper - 2.0).abs() < 1e-12);
        // More grid points → more work, superlinear in orbitals.
        assert!(cal.mesh_step_scaled(2 * FIXTURE_NGRID, FIXTURE_NORB, FIXTURE_N_QD) > 1.9);
        assert!(cal.mesh_step_scaled(FIXTURE_NGRID, 2 * FIXTURE_NORB, FIXTURE_N_QD) > 2.0);
    }

    #[test]
    fn ladder_lookups() {
        let mut cal = Calibration {
            alpha: 0.0,
            beta: 0.0,
            mesh_step: 0.3,
            n_qd: 30.0,
            construct_cold: 0.0,
            construct_warm: 0.0,
            dist_step: [1.0, 2.0, 3.0],
            dist_fixed: [0.1, 0.2, 0.3],
            md_atom_step: 0.0,
            fdtd_cell_step: 0.0,
        };
        assert_eq!(cal.dist_step_for(2), Some(2.0));
        assert_eq!(cal.dist_fixed_for(4), Some(0.3));
        assert_eq!(cal.dist_step_for(3), None);
        cal.n_qd = 30.0;
        assert!((cal.qd_step() - 0.01).abs() < 1e-12);
    }
}
