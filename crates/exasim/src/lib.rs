//! # mlmd-exasim — the simulated exascale substrate
//!
//! The paper's scaling experiments ran on 10,000 Aurora nodes (120,000
//! PVC tiles). This crate is the documented substitution (DESIGN.md): a
//! deterministic analytic cost model of the MLMD workloads on an
//! Aurora-like machine, built from
//!
//! * a machine description ([`machine`]): per-tile rooflines for
//!   FP64/FP32/BF16-systolic, HBM and PCIe bandwidths, and a Slingshot-
//!   style α–β network with a dragonfly congestion factor;
//! * workload decompositions that mirror the real code: the DC-MESH step
//!   cost ([`dcmesh_model`]) counts the same kin_prop/nlp_prop/vloc FLOPs
//!   the `mlmd-lfd` kernels count, plus SCF-tree, halo, and
//!   excitation-gather communication; the XS-NNQMD step cost
//!   ([`nnqmd_model`]) counts per-atom×weight inference work plus
//!   surface-halo exchange;
//! * experiment drivers ([`scaling`]) reproducing the weak/strong sweeps
//!   of Figs. 4 and 5, and the time-to-solution comparisons of
//!   Tables I and II ([`sota`]).
//!
//! Everything is pure arithmetic: no randomness, no wall clock — the same
//! inputs always print the same tables.

pub mod dcmesh_model;
pub mod machine;
pub mod network;
pub mod nnqmd_model;
pub mod scaling;
pub mod sota;

pub use machine::Machine;
