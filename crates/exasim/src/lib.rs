//! # mlmd-exasim — the simulated exascale substrate
//!
//! The paper's scaling experiments ran on 10,000 Aurora nodes (120,000
//! PVC tiles). This crate is the documented substitution (DESIGN.md): a
//! deterministic analytic cost model of the MLMD workloads on an
//! Aurora-like machine, built from
//!
//! * a machine description ([`machine`]): per-tile rooflines for
//!   FP64/FP32/BF16-systolic, HBM and PCIe bandwidths, and a Slingshot-
//!   style α–β network with a dragonfly congestion factor;
//! * workload decompositions that mirror the real code: the DC-MESH step
//!   cost ([`dcmesh_model`]) counts the same kin_prop/nlp_prop/vloc FLOPs
//!   the `mlmd-lfd` kernels count, plus SCF-tree, halo, and
//!   excitation-gather communication; the XS-NNQMD step cost
//!   ([`nnqmd_model`]) counts per-atom×weight inference work plus
//!   surface-halo exchange;
//! * experiment drivers ([`scaling`]) reproducing the weak/strong sweeps
//!   of Figs. 4 and 5, and the time-to-solution comparisons of
//!   Tables I and II ([`sota`]).
//!
//! Everything is pure arithmetic: no randomness, no wall clock — the same
//! inputs always print the same tables.
//!
//! # Where the model's inputs come from
//!
//! The FLOP counts mirror the instrumented kernels (`mlmd-numerics`
//! `FlopCounter` totals through the LFD propagators), and the
//! communication terms are shaped after the *measured* collective
//! patterns of the distributed drivers: the `dc_scaling` and
//! `mesh_scaling` bench groups time the real per-iteration allgathers,
//! allreduces, and split/retire cycles of `DistributedDcScf` and
//! `DistributedMeshDriver` on simulated-MPI worlds (see
//! `docs/BENCHMARKS.md` — on the 1-CPU CI container those numbers are
//! pure communication overhead, exactly the quantity an α–β network
//! term needs). Feeding those measured costs into this model, in place
//! of its analytic estimates, is the standing ROADMAP item for closing
//! the loop between the simulated and extrapolated machines.

pub mod dcmesh_model;
pub mod machine;
pub mod network;
pub mod nnqmd_model;
pub mod scaling;
pub mod sota;

pub use machine::Machine;
