//! # mlmd-exasim — the simulated exascale substrate
//!
//! The paper's scaling experiments ran on 10,000 Aurora nodes (120,000
//! PVC tiles). This crate is the documented substitution (DESIGN.md): a
//! deterministic analytic cost model of the MLMD workloads on an
//! Aurora-like machine, built from
//!
//! * a machine description ([`machine`]): per-tile rooflines for
//!   FP64/FP32/BF16-systolic, HBM and PCIe bandwidths, and a Slingshot-
//!   style α–β network with a dragonfly congestion factor;
//! * workload decompositions that mirror the real code: the DC-MESH step
//!   cost ([`dcmesh_model`]) counts the same kin_prop/nlp_prop/vloc FLOPs
//!   the `mlmd-lfd` kernels count, plus SCF-tree, halo, and
//!   excitation-gather communication; the XS-NNQMD step cost
//!   ([`nnqmd_model`]) counts per-atom×weight inference work plus
//!   surface-halo exchange;
//! * experiment drivers ([`scaling`]) reproducing the weak/strong sweeps
//!   of Figs. 4 and 5, and the time-to-solution comparisons of
//!   Tables I and II ([`sota`]).
//!
//! The analytic side ([`machine`], [`dcmesh_model`], [`nnqmd_model`],
//! [`scaling`], [`sota`]) is pure arithmetic: no randomness, no wall
//! clock — the same inputs always print the same tables.
//!
//! # The measured side: calibration and planning
//!
//! The FLOP counts mirror the instrumented kernels (`mlmd-numerics`
//! `FlopCounter` totals through the LFD propagators), and the
//! communication terms are shaped after the *measured* collective
//! patterns of the distributed drivers. Since PR 8 the loop is closed in
//! code, not only in shape:
//!
//! * [`calibrate()`](calibrate::calibrate) runs short probe workloads on the canonical fixture
//!   (via `mlmd_parallel::comm::World::run_probed` collective counters
//!   and `mlmd_core::probe::CostProbe` step timings) and fits a
//!   [`calibrate::Calibration`]: α/β, serial and distributed per-step
//!   times, cold/warm construction, per-atom MD and per-cell FDTD costs.
//!   [`Machine::from_calibration`] turns a fit into a container machine
//!   profile alongside the analytic [`Machine::aurora`].
//! * [`planner`] inverts the calibrated model: given a job's workload
//!   shape, [`planner::Planner::plan`] enumerates feasible
//!   (ranks-per-domain, batch width, sampling stride) choices, predicts
//!   wall-clock and queue cost, and returns a [`planner::RunPlan`] plus
//!   a [`planner::PlanVerdict`] — what `mlmd-service` consults at
//!   admission.

pub mod calibrate;
pub mod dcmesh_model;
pub mod machine;
pub mod network;
pub mod nnqmd_model;
pub mod planner;
pub mod scaling;
pub mod sota;

pub use calibrate::{calibrate, Calibration, CalibrationConfig};
pub use machine::Machine;
pub use planner::{PlanJob, PlanLimits, PlanVerdict, Planner, RejectReason, RunPlan};
