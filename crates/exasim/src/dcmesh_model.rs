//! DC-MESH cost model on the simulated machine.
//!
//! The per-QD-step kernel decomposition mirrors `mlmd-lfd` exactly —
//! kin_prop (bond updates), nlp_prop (two CGEMMs of Eq. (5)),
//! orthonormalization (same GEMM shapes), local-phase and field kernels —
//! with achieved rates taken from the paper's single-tile measurements
//! (Table V: kin_prop at 15.26% of peak, nlp_prop at 69.65%, CGEMMs at
//! 81–94%; Table IV: 17.95 TF/s in FP32/BF16 mode). Per-MD-step costs add
//! the global SCF tree, the `n_exc` gather, and the shadow Δv PCIe hop.

use crate::machine::Machine;
use crate::network;

/// Precision configuration of the nonlocal/GEMM tier (Table IV rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPrecision {
    Fp64,
    Fp32,
    Fp32Bf16,
}

/// The workload of one DC domain (≡ one MPI rank ≡ one PVC tile).
#[derive(Clone, Copy, Debug)]
pub struct DcMeshModel {
    pub machine: Machine,
    /// KS orbitals per domain (paper: up to 1,024).
    pub norb: usize,
    /// FD grid points per domain (paper benchmark mesh: 70×70×72).
    pub ngrid: usize,
    /// QD steps per MD step (paper: 1,000).
    pub n_qd: usize,
    pub precision: GemmPrecision,
    /// Unique (core) electrons per domain = norb / overlap factor 8.
    pub overlap: f64,
    /// Non-amortized per-rank cost per MD step (s), independent of how
    /// many domains the rank hosts: full-scale synchronization,
    /// communication contention, and jitter. Calibrated so the strong-
    /// scaling efficiency reproduces the measured 0.843 at 4× ranks
    /// (Fig. 4b); in weak scaling it is identical on every rank and
    /// cancels, matching the paper's flat weak curves.
    pub md_fixed_per_rank: f64,
}

impl DcMeshModel {
    /// The paper's production configuration.
    pub fn paper_config() -> Self {
        Self {
            machine: Machine::aurora(),
            norb: 1024,
            ngrid: 70 * 70 * 72,
            n_qd: 1000,
            precision: GemmPrecision::Fp32Bf16,
            overlap: 8.0,
            md_fixed_per_rank: 450.0,
        }
    }

    /// The laptop fixture's domain shape on `machine` — what a
    /// [`crate::calibrate::Calibration`]-profiled container actually
    /// runs, so model predictions and measured fixture times are about
    /// the same problem.
    pub fn fixture_config(machine: Machine) -> Self {
        Self {
            machine,
            norb: crate::calibrate::FIXTURE_NORB,
            ngrid: crate::calibrate::FIXTURE_NGRID,
            n_qd: crate::calibrate::FIXTURE_N_QD,
            precision: GemmPrecision::Fp64,
            overlap: 1.0,
            md_fixed_per_rank: 0.0,
        }
    }

    /// Unique electrons represented per rank.
    pub fn electrons_per_rank(&self) -> f64 {
        self.norb as f64 / self.overlap
    }

    /// Achieved nlp_prop rate for the configured precision (FLOP/s),
    /// from the paper's single-tile measurements.
    fn nlp_rate(&self) -> f64 {
        match self.precision {
            GemmPrecision::Fp64 => 7.69e12,
            GemmPrecision::Fp32 => 16.02e12,
            GemmPrecision::Fp32Bf16 => 17.95e12,
        }
    }

    /// Achieved kin_prop (stencil) rate: 15.26% of FP32 peak.
    fn kin_rate(&self) -> f64 {
        0.1526 * self.machine.tile_fp32
    }

    /// FLOPs of one QD step, decomposed as in `mlmd-lfd` and Sec. V.B.5:
    /// GEMMification covers the time-propagation correction, the nonlocal
    /// parts of energy *and* current (TDCDFT), and the two-pass
    /// orthonormalization — five GEMM pairs of the Table V shapes total.
    pub fn qd_step_flops(&self) -> QdStepFlops {
        let (g, o) = (self.ngrid as f64, self.norb as f64);
        QdStepFlops {
            kin: 6.0 * g * o * 28.0,
            nlp: 16.0 * g * o * o,
            // Nonlocal corrections to energy and current (Sec. V.B.5).
            obs: 32.0 * g * o * o,
            // Löwdin/Gram–Schmidt every QD step: overlap + panel update,
            // applied twice per time-reversible step.
            ortho: 32.0 * g * o * o,
            // Local phases, density, current stencils, Hartree-DSA
            // refresh: streaming passes over grid × orbitals.
            local: 40.0 * g * o,
        }
    }

    /// Wall-clock of one QD step on one tile (the Table I "per QD step").
    pub fn qd_step_time(&self) -> f64 {
        let f = self.qd_step_flops();
        // Streaming kernels are HBM-bound: bytes ≈ 16 B per complex value
        // touched ~6 times per step.
        let stream_bytes = 6.0 * 16.0 * self.ngrid as f64 * self.norb as f64;
        f.kin / self.kin_rate()
            + (f.nlp + f.obs + f.ortho) / self.nlp_rate()
            + (f.local / (0.05 * self.machine.tile_fp32)).max(stream_bytes / self.machine.hbm_bw)
    }

    /// Per-MD-step overhead that does not scale with rank count's share
    /// of work: global SCF tree, surface hopping, shadow Δv over PCIe.
    pub fn md_overhead(&self, ranks: usize) -> f64 {
        let m = &self.machine;
        // Global multigrid potential: a tree of halo+restrict stages.
        let scf = 10.0 * m.allreduce_time(ranks, 8.0 * self.ngrid as f64 / 64.0);
        // n_exc gather (one scalar per domain) + w broadcast back.
        let gather = network::gather_small(m, ranks, 8.0) + network::bcast(m, ranks, 8.0);
        // Shadow handshake over PCIe: Δv down (Ngrid f64), Δf up (Norb).
        let pcie = (8.0 * self.ngrid as f64 + 8.0 * self.norb as f64) / m.pcie_bw;
        // Surface hopping + subspace diagonalization on the CPU: Norb³.
        let sh = (self.norb as f64).powi(3) * 2.0 / 1.0e11;
        scf + gather + pcie + sh
    }

    /// Wall-clock per MD step with `domains_per_rank` domains on each of
    /// `ranks` ranks.
    pub fn md_step_time(&self, ranks: usize, domains_per_rank: f64) -> f64 {
        domains_per_rank * self.n_qd as f64 * self.qd_step_time()
            + self.md_fixed_per_rank
            + self.md_overhead(ranks)
    }

    /// Time-to-solution in the paper's Table I metric:
    /// wall-clock per QD step ÷ total electrons.
    pub fn t2s(&self, ranks: usize) -> f64 {
        let electrons = self.electrons_per_rank() * ranks as f64;
        self.qd_step_time() / electrons
    }

    /// Aggregate FLOP/s of the whole application on `nodes` nodes
    /// (the Sec. VII.B accounting: single-domain FLOPs × domains ÷ time).
    pub fn sustained_flops(&self, nodes: usize) -> f64 {
        let ranks = self.machine.ranks(nodes);
        let f = self.qd_step_flops();
        let per_domain = f.kin + f.nlp + f.obs + f.ortho + f.local;
        per_domain * ranks as f64 / self.qd_step_time()
    }
}

/// FLOP decomposition of one QD step.
#[derive(Clone, Copy, Debug)]
pub struct QdStepFlops {
    pub kin: f64,
    pub nlp: f64,
    pub obs: f64,
    pub ortho: f64,
    pub local: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_qd_step_time_matches_measurement() {
        // Paper Sec. VII.C.1: 1.705 s per QD step for the 1,024-orbital
        // production domain.
        let m = DcMeshModel::paper_config();
        let t = m.qd_step_time();
        assert!(
            (1.2..2.2).contains(&t),
            "QD step time {t} s should be ≈1.7 s"
        );
    }

    #[test]
    fn t2s_matches_table_i() {
        // 1.11e-7 s per electron per QD step on 120,000 ranks.
        let m = DcMeshModel::paper_config();
        let t2s = m.t2s(120_000);
        assert!(
            (0.6e-7..2.0e-7).contains(&t2s),
            "T2S {t2s:e} should be ≈1.1e-7"
        );
    }

    #[test]
    fn nlp_dominates_kin() {
        // Table V: the GEMM tier is the hotspot, the stencil is cheap.
        let m = DcMeshModel::paper_config();
        let f = m.qd_step_flops();
        assert!(f.nlp > 10.0 * f.kin);
    }

    #[test]
    fn precision_ladder_speeds_up() {
        let mut m = DcMeshModel::paper_config();
        m.precision = GemmPrecision::Fp64;
        let t64 = m.qd_step_time();
        m.precision = GemmPrecision::Fp32;
        let t32 = m.qd_step_time();
        m.precision = GemmPrecision::Fp32Bf16;
        let tbf = m.qd_step_time();
        assert!(t64 > t32 && t32 > tbf, "{t64} > {t32} > {tbf}");
        // Table IV: FP32 ≈ 2× FP64 on the GEMM tier.
        assert!((t64 / t32) > 1.5);
    }

    #[test]
    fn sustained_performance_near_exaflop() {
        // Paper: 1.873 EFLOP/s on 10,000 nodes.
        let m = DcMeshModel::paper_config();
        let flops = m.sustained_flops(10_000);
        assert!(
            (1.0e18..3.0e18).contains(&flops),
            "sustained {flops:e} should be ≈1.9e18"
        );
    }

    #[test]
    fn md_overhead_grows_slowly_with_ranks() {
        let m = DcMeshModel::paper_config();
        let o1 = m.md_overhead(6_144);
        let o2 = m.md_overhead(120_000);
        assert!(o2 > o1);
        // …but stays far below the QD-loop time (weak scalability).
        assert!(o2 < 0.2 * m.n_qd as f64 * m.qd_step_time());
    }
}
