//! Network primitives shared by the cost models.
//!
//! An α–β (latency–bandwidth) model with tree collectives and a dragonfly
//! congestion exponent (paper Sec. VI.B: Slingshot 11, 64-port switches,
//! dragonfly topology with adaptive routing).

use crate::machine::Machine;

/// Cost of a gather of one small record (≤ `bytes` each) from `p` ranks
/// to a root — the end-of-MD-step `n_exc` gather of paper Sec. V.A.8.
pub fn gather_small(machine: &Machine, p: usize, bytes: f64) -> f64 {
    // Tree gather: log₂(p) stages; payload grows toward the root but
    // stays tiny — latency dominated.
    let depth = (p.max(2) as f64).log2();
    machine.collective_alpha(p) + depth * bytes * machine.net_beta
}

/// Cost of a broadcast of `bytes` to `p` ranks.
pub fn bcast(machine: &Machine, p: usize, bytes: f64) -> f64 {
    machine.allreduce_time(p, bytes)
}

/// Pairwise band-exchange inside a domain communicator of `p` ranks:
/// each rank exchanges `bytes` with every other (orbital redistribution
/// during hybrid band-space decomposition).
pub fn band_exchange(machine: &Machine, p: usize, bytes: f64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p - 1) as f64 * (machine.net_alpha + bytes * machine.net_beta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_latency_dominated_for_tiny_payload() {
        let m = Machine::aurora();
        let t_small = gather_small(&m, 120_000, 8.0);
        let t_big = gather_small(&m, 120_000, 1e6);
        assert!(t_small < t_big);
        // Tiny-payload gather is within 2x of pure latency.
        assert!(t_small < 2.0 * m.collective_alpha(120_000) + 1e-3);
    }

    #[test]
    fn band_exchange_scales_with_group() {
        let m = Machine::aurora();
        assert_eq!(band_exchange(&m, 1, 1e6), 0.0);
        assert!(band_exchange(&m, 8, 1e6) > band_exchange(&m, 2, 1e6));
    }
}
