//! The ahead-of-time run planner: the calibrated cost model *inverted*.
//!
//! `DcMeshModel`/`NnqmdModel` predict wall-clock from a chosen execution
//! shape; [`Planner::plan`] goes the other way — given a job's workload
//! shape ([`PlanJob`]) and a measured [`Calibration`], it enumerates the
//! feasible execution choices (ranks-per-domain rung, batch width,
//! sampling stride), predicts wall-clock and queue cost for each, and
//! returns the cheapest [`RunPlan`] plus a [`PlanVerdict`] against the
//! admission limits. The service scheduler calls this before admitting a
//! job: the verdict gates admission, the predicted cost annotates the
//! job and drives band placement.
//!
//! Every enumerated choice is an execution form the oracle suites
//! already pin bit-identical (serial runs, in-process `RunPlan` batches,
//! `World` runs at the 1/2/4 ranks-per-domain ladder), so planning picks
//! *how fast* a job runs, never *what* it computes.

use crate::calibrate::{Calibration, RPD_LADDER};
use crate::machine::Machine;

/// A job's workload shape, as data the planner can cost. The service
/// layer maps each `JobSpec` variant onto one of these.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanJob {
    /// `runs` independent MESH trajectories (a pump–probe sweep counts
    /// its shared dark reference), each `steps` MD steps of an
    /// (`ngrid` points, `norb` states, `n_qd` QD-steps/MD-step) domain.
    /// `stride` is the requested trace-sampling stride; `warm_shared`
    /// says whether the runs share one ground-state descent.
    MeshBatch {
        runs: usize,
        steps: usize,
        ngrid: usize,
        norb: usize,
        n_qd: usize,
        stride: usize,
        warm_shared: bool,
    },
    /// Supercell MD: `steps` velocity-Verlet steps over `atoms` atoms.
    Md { steps: usize, atoms: usize },
    /// 1-D FDTD: `steps` Yee updates over `cells` cells.
    Fdtd { steps: usize, cells: usize },
    /// A Floquet superlattice sweep: `runs` independent driven FDTD
    /// configurations of `steps` Yee updates over `cells` cells each,
    /// batched on the work-stealing pool. Costed from the measured
    /// `fdtd_cell_step` (the streaming spectral observer rides inside
    /// the pinned <10% overhead margin); the per-configuration
    /// invariant extraction is O(grid²) closed-form work, charged as
    /// free against FDTD stepping.
    FloquetSweep {
        runs: usize,
        steps: usize,
        cells: usize,
    },
}

/// One chosen execution configuration with its predictions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunPlan {
    /// `None`: in-process batch on the work-stealing pool. `Some(r)`:
    /// a simulated-MPI `World` with `r` ranks per domain.
    pub ranks_per_domain: Option<usize>,
    /// Concurrent runs per batch wave.
    pub batch_width: usize,
    /// Trace-sampling stride (the requested stride, coarsened if the
    /// trace would exceed [`PlanLimits::max_trace_samples`]).
    pub sample_stride: usize,
    /// Predicted wall-clock (s).
    pub predicted_secs: f64,
    /// Predicted queue cost: rank-seconds of capacity occupied.
    pub predicted_cost: f64,
}

/// Why a job was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Even the best execution choice exceeds the wall-clock limit.
    WallClock,
    /// The job would occupy more rank-seconds than the queue allows.
    QueueCost,
}

/// The planner's answer about one job, checked against [`PlanLimits`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlanVerdict {
    Accept {
        predicted_secs: f64,
    },
    Reject {
        reason: RejectReason,
        predicted: f64,
        limit: f64,
    },
}

impl PlanVerdict {
    /// Whether this verdict admits the job.
    pub fn is_accept(&self) -> bool {
        matches!(self, PlanVerdict::Accept { .. })
    }
}

impl std::fmt::Display for PlanVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanVerdict::Accept { predicted_secs } => {
                write!(f, "accept (predicted {predicted_secs:.3} s)")
            }
            PlanVerdict::Reject {
                reason,
                predicted,
                limit,
            } => {
                let what = match reason {
                    RejectReason::WallClock => "wall-clock",
                    RejectReason::QueueCost => "queue cost",
                };
                write!(
                    f,
                    "reject: predicted {what} {predicted:.3} exceeds limit {limit:.3}"
                )
            }
        }
    }
}

/// Admission limits the verdict is checked against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanLimits {
    /// Hardest acceptable predicted wall-clock for one job (s).
    pub max_wall_secs: f64,
    /// Largest acceptable predicted queue cost (rank-seconds).
    pub max_cost_rank_secs: f64,
    /// Jobs predicted longer than this are demoted one priority band by
    /// the scheduler (interactive work stays responsive).
    pub batch_threshold_secs: f64,
    /// Largest trace the planner will let a job record; the sampling
    /// stride is coarsened to fit.
    pub max_trace_samples: usize,
}

impl Default for PlanLimits {
    fn default() -> Self {
        Self {
            max_wall_secs: 60.0,
            max_cost_rank_secs: 240.0,
            batch_threshold_secs: 1.0,
            max_trace_samples: 100_000,
        }
    }
}

/// The ahead-of-time planner: analytic machine shape + measured
/// calibration + admission limits.
#[derive(Clone, Copy, Debug)]
pub struct Planner {
    pub machine: Machine,
    pub calibration: Calibration,
    pub limits: PlanLimits,
    /// Width of the work-stealing pool in-process batches share.
    pub pool_width: usize,
}

impl Planner {
    /// A planner for the machine this process runs on.
    pub fn new(machine: Machine, calibration: Calibration) -> Self {
        let pool_width = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            machine,
            calibration,
            limits: PlanLimits::default(),
            pool_width,
        }
    }

    /// Replace the admission limits.
    pub fn with_limits(mut self, limits: PlanLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enumerate the feasible execution choices for `job`, predict each,
    /// and return the cheapest plan plus its admission verdict. The
    /// serial (width-1, in-process) form is always among the candidates,
    /// so the chosen plan never predicts worse than the serial baseline.
    pub fn plan(&self, job: &PlanJob) -> (RunPlan, PlanVerdict) {
        let mut best: Option<RunPlan> = None;
        for cand in self.candidates(job) {
            let better = match &best {
                None => true,
                Some(b) => cand.predicted_secs < b.predicted_secs,
            };
            if better {
                best = Some(cand);
            }
        }
        let plan = best.expect("at least the serial candidate exists");
        let verdict = self.verdict_for(&plan);
        (plan, verdict)
    }

    /// Predicted wall-clock of the serial baseline (in-process, one run
    /// at a time) — the yardstick the property suite holds `plan`
    /// against.
    pub fn predict_serial(&self, job: &PlanJob) -> f64 {
        self.in_process_candidate(job, 1).predicted_secs
    }

    fn verdict_for(&self, plan: &RunPlan) -> PlanVerdict {
        if plan.predicted_secs > self.limits.max_wall_secs {
            return PlanVerdict::Reject {
                reason: RejectReason::WallClock,
                predicted: plan.predicted_secs,
                limit: self.limits.max_wall_secs,
            };
        }
        if plan.predicted_cost > self.limits.max_cost_rank_secs {
            return PlanVerdict::Reject {
                reason: RejectReason::QueueCost,
                predicted: plan.predicted_cost,
                limit: self.limits.max_cost_rank_secs,
            };
        }
        PlanVerdict::Accept {
            predicted_secs: plan.predicted_secs,
        }
    }

    fn candidates(&self, job: &PlanJob) -> Vec<RunPlan> {
        match *job {
            PlanJob::MeshBatch { runs, .. } => {
                let mut out = Vec::new();
                // In-process batch: full pool width first (preferred on
                // ties), then the serial baseline.
                let wide = self.pool_width.min(runs.max(1)).max(1);
                out.push(self.in_process_candidate(job, wide));
                if wide != 1 {
                    out.push(self.in_process_candidate(job, 1));
                }
                // World forms at the measured ranks-per-domain rungs.
                for &rpd in &RPD_LADDER {
                    if let Some(c) = self.world_candidate(job, rpd) {
                        out.push(c);
                    }
                }
                out
            }
            PlanJob::Md { steps, atoms } => {
                let secs = steps as f64 * atoms as f64 * self.calibration.md_atom_step;
                vec![RunPlan {
                    ranks_per_domain: None,
                    batch_width: 1,
                    sample_stride: 1,
                    predicted_secs: secs,
                    predicted_cost: secs,
                }]
            }
            PlanJob::Fdtd { steps, cells } => {
                let secs = steps as f64 * cells as f64 * self.calibration.fdtd_cell_step;
                vec![RunPlan {
                    ranks_per_domain: None,
                    batch_width: 1,
                    sample_stride: 1,
                    predicted_secs: secs,
                    predicted_cost: secs,
                }]
            }
            PlanJob::FloquetSweep { runs, steps, cells } => {
                let per_run = steps as f64 * cells as f64 * self.calibration.fdtd_cell_step;
                let candidate = |width: usize| {
                    let parallel = width as f64;
                    let secs = runs as f64 * per_run / parallel;
                    RunPlan {
                        ranks_per_domain: None,
                        batch_width: width,
                        sample_stride: 1,
                        predicted_secs: secs,
                        predicted_cost: secs * parallel,
                    }
                };
                // Pool-wide batch preferred on ties, serial baseline kept.
                let wide = self.pool_width.min(runs.max(1)).max(1);
                let mut out = vec![candidate(wide)];
                if wide != 1 {
                    out.push(candidate(1));
                }
                out
            }
        }
    }

    /// Coarsen the requested stride until `runs × steps / stride` fits
    /// the trace budget.
    fn fit_stride(&self, runs: usize, steps: usize, requested: usize) -> usize {
        let stride = requested.max(1);
        let budget = self.limits.max_trace_samples.max(1);
        let total = runs.saturating_mul(steps);
        stride.max(total.div_ceil(budget))
    }

    fn mesh_shape(job: &PlanJob) -> (usize, usize, usize, usize, usize, bool) {
        match *job {
            PlanJob::MeshBatch {
                runs,
                steps,
                ngrid,
                norb,
                n_qd,
                warm_shared,
                ..
            } => (runs, steps, ngrid, norb, n_qd, warm_shared),
            _ => unreachable!("mesh candidates are only built for MeshBatch"),
        }
    }

    fn mesh_construction(&self, runs: usize, warm_shared: bool) -> f64 {
        let cal = &self.calibration;
        if warm_shared {
            cal.construct_cold + (runs.saturating_sub(1)) as f64 * cal.construct_warm
        } else {
            runs as f64 * cal.construct_cold
        }
    }

    fn in_process_candidate(&self, job: &PlanJob, width: usize) -> RunPlan {
        let (runs, steps, ngrid, norb, n_qd, warm_shared) = Self::mesh_shape(job);
        let stride = match *job {
            PlanJob::MeshBatch { stride, .. } => stride,
            _ => 1,
        };
        let cal = &self.calibration;
        let step = cal.mesh_step_scaled(ngrid, norb, n_qd);
        let parallel = width.min(self.pool_width).min(runs.max(1)).max(1) as f64;
        let secs = self.mesh_construction(runs, warm_shared)
            + runs as f64 * steps as f64 * step / parallel;
        RunPlan {
            ranks_per_domain: None,
            batch_width: width,
            sample_stride: self.fit_stride(runs, steps, stride),
            predicted_secs: secs,
            predicted_cost: secs * parallel,
        }
    }

    fn world_candidate(&self, job: &PlanJob, rpd: usize) -> Option<RunPlan> {
        let (runs, steps, ngrid, norb, n_qd, warm_shared) = Self::mesh_shape(job);
        let stride = match *job {
            PlanJob::MeshBatch { stride, .. } => stride,
            _ => 1,
        };
        let cal = &self.calibration;
        let fitted = cal.dist_step_for(rpd)?;
        if fitted <= 0.0 {
            // The rung was not measured (zeroed fit) — don't plan on it.
            return None;
        }
        // The fitted per-step time is for one fixture domain with `rpd`
        // ranks time-slicing this host; scale to the job's shape, then
        // let domains parallelize across the pool. Construction is
        // charged exactly as for the in-process form: the distributed
        // fit runs off a pre-warmed cache, so `dist_fixed` is the world
        // form's *extra* envelope (spawn + plumbing), not the descent.
        let work_ratio = cal.mesh_step_scaled(ngrid, norb, n_qd) / cal.mesh_step.max(1e-12);
        let step = fitted * work_ratio;
        let parallel = self.pool_width.min(runs.max(1)).max(1) as f64;
        let (runs_f, steps_f) = (runs as f64, steps as f64);
        let secs = self.mesh_construction(runs, warm_shared)
            + cal.dist_fixed_for(rpd)?
            + runs_f * steps_f * step / parallel;
        let ranks = (runs * rpd) as f64;
        Some(RunPlan {
            ranks_per_domain: Some(rpd),
            batch_width: runs.max(1),
            sample_stride: self.fit_stride(runs, steps, stride),
            predicted_secs: secs,
            predicted_cost: secs * ranks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::{FIXTURE_NGRID, FIXTURE_NORB, FIXTURE_N_QD};

    /// A deterministic synthetic fit: serial step 10 ms, distributed
    /// rungs slower (the 1-CPU container truth), warm construction 10×
    /// cheaper than cold.
    fn fake_calibration() -> Calibration {
        Calibration {
            alpha: 2.0e-6,
            beta: 5.0e-11,
            mesh_step: 0.010,
            n_qd: FIXTURE_N_QD as f64,
            construct_cold: 0.008,
            construct_warm: 0.0008,
            dist_step: [0.012, 0.020, 0.036],
            dist_fixed: [0.002, 0.004, 0.008],
            md_atom_step: 2.0e-7,
            fdtd_cell_step: 4.0e-9,
        }
    }

    fn fixture_job(runs: usize, steps: usize) -> PlanJob {
        PlanJob::MeshBatch {
            runs,
            steps,
            ngrid: FIXTURE_NGRID,
            norb: FIXTURE_NORB,
            n_qd: FIXTURE_N_QD,
            stride: 1,
            warm_shared: true,
        }
    }

    fn planner() -> Planner {
        let cal = fake_calibration();
        let mut p = Planner::new(Machine::from_calibration(&cal), cal);
        p.pool_width = 1; // the CI container
        p
    }

    #[test]
    fn small_job_accepted_with_serial_plan_on_one_cpu() {
        let p = planner();
        let (plan, verdict) = p.plan(&fixture_job(2, 3));
        assert!(verdict.is_accept(), "{verdict}");
        // On a 1-wide pool with slower distributed rungs, the in-process
        // form must win.
        assert_eq!(plan.ranks_per_domain, None);
        // cold + warm + 2 runs × 3 steps × 10 ms.
        let want = 0.008 + 0.0008 + 6.0 * 0.010;
        assert!((plan.predicted_secs - want).abs() < 1e-9);
        assert!(plan.predicted_secs <= p.predict_serial(&fixture_job(2, 3)) + 1e-12);
    }

    #[test]
    fn wide_pool_prefers_parallel_batch() {
        let mut p = planner();
        p.pool_width = 8;
        let (plan, _) = p.plan(&fixture_job(4, 10));
        assert_eq!(plan.ranks_per_domain, None);
        assert_eq!(plan.batch_width, 4);
        assert!(plan.predicted_secs < p.predict_serial(&fixture_job(4, 10)));
    }

    #[test]
    fn oversized_wall_clock_is_rejected_with_limit_named() {
        let p = planner();
        let (_, verdict) = p.plan(&fixture_job(1, 1_000_000));
        match verdict {
            PlanVerdict::Reject {
                reason,
                predicted,
                limit,
            } => {
                assert_eq!(reason, RejectReason::WallClock);
                assert!(predicted > limit);
                assert_eq!(limit, p.limits.max_wall_secs);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn queue_cost_limit_rejects_independently() {
        let mut p = planner();
        p.limits.max_wall_secs = f64::INFINITY;
        p.limits.max_cost_rank_secs = 0.001;
        let (_, verdict) = p.plan(&fixture_job(2, 50));
        assert!(
            matches!(
                verdict,
                PlanVerdict::Reject {
                    reason: RejectReason::QueueCost,
                    ..
                }
            ),
            "{verdict}"
        );
    }

    #[test]
    fn stride_coarsens_to_fit_trace_budget() {
        let mut p = planner();
        p.limits.max_trace_samples = 10;
        let (plan, _) = p.plan(&fixture_job(2, 100));
        // 200 samples into a budget of 10 → stride 20.
        assert_eq!(plan.sample_stride, 20);
        p.limits.max_trace_samples = 100_000;
        let (plan, _) = p.plan(&fixture_job(2, 100));
        assert_eq!(plan.sample_stride, 1, "requested stride kept when it fits");
    }

    #[test]
    fn md_and_fdtd_predictions_scale_linearly() {
        let p = planner();
        let t1 = p
            .plan(&PlanJob::Md {
                steps: 100,
                atoms: 80,
            })
            .0
            .predicted_secs;
        let t2 = p
            .plan(&PlanJob::Md {
                steps: 200,
                atoms: 80,
            })
            .0
            .predicted_secs;
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
        let f1 = p
            .plan(&PlanJob::Fdtd {
                steps: 64,
                cells: 128,
            })
            .0
            .predicted_secs;
        let f2 = p
            .plan(&PlanJob::Fdtd {
                steps: 64,
                cells: 256,
            })
            .0
            .predicted_secs;
        assert!((f2 - 2.0 * f1).abs() < 1e-12);
    }

    #[test]
    fn floquet_sweep_batches_across_the_pool() {
        let mut p = planner();
        let job = PlanJob::FloquetSweep {
            runs: 4,
            steps: 1200,
            cells: 320,
        };
        // 1-wide pool: serial, cost = 4 × steps × cells × per-cell.
        let (plan, verdict) = p.plan(&job);
        assert!(verdict.is_accept(), "{verdict}");
        assert_eq!(plan.batch_width, 1);
        let want = 4.0 * 1200.0 * 320.0 * 4.0e-9;
        assert!((plan.predicted_secs - want).abs() < 1e-12);
        // A wide pool splits wall-clock across the batch but occupies
        // the same rank-seconds.
        p.pool_width = 4;
        let (wide, _) = p.plan(&job);
        assert_eq!(wide.batch_width, 4);
        assert!((wide.predicted_secs - want / 4.0).abs() < 1e-12);
        assert!((wide.predicted_cost - plan.predicted_cost).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_rungs_are_skipped() {
        let mut cal = fake_calibration();
        cal.dist_step = [0.0; 3];
        let mut p = Planner::new(Machine::from_calibration(&cal), cal);
        p.pool_width = 1;
        let (plan, _) = p.plan(&fixture_job(1, 2));
        assert_eq!(plan.ranks_per_domain, None);
    }

    #[test]
    fn verdict_display_is_informative() {
        let p = planner();
        let (_, verdict) = p.plan(&fixture_job(1, 1_000_000));
        let text = format!("{verdict}");
        assert!(text.contains("reject"), "{text}");
        assert!(text.contains("wall-clock"), "{text}");
    }
}
