//! State-of-the-art comparison data (paper Tables I and II).
//!
//! The competitor rows are quoted from the paper (which quotes the
//! original publications); the "This work" rows are produced by the cost
//! models in this crate. The table printers in `mlmd-bench` render both.

use crate::dcmesh_model::DcMeshModel;
use crate::nnqmd_model::NnqmdModel;

/// One row of Table I (Maxwell–Ehrenfest SOTA).
#[derive(Clone, Copy, Debug)]
pub struct MeSotaRow {
    pub work: &'static str,
    pub system: &'static str,
    pub machine: &'static str,
    pub electrons: f64,
    /// Time-to-solution, s per (electron · QD step).
    pub t2s: f64,
    /// Sustained PFLOP/s (if reported).
    pub pflops: Option<f64>,
    /// Percent of FP64 peak (if reported).
    pub peak_pct: Option<f64>,
}

/// Quoted competitor rows of Table I.
pub fn table_i_sota() -> Vec<MeSotaRow> {
    vec![
        MeSotaRow {
            work: "Qb@ll (2016)",
            system: "Aluminum",
            machine: "IBM BlueGene/Q",
            electrons: 59_400.0,
            t2s: 8.96e-4,
            pflops: Some(8.75),
            peak_pct: Some(43.5),
        },
        MeSotaRow {
            work: "PWDFT (2020)",
            system: "Silicon",
            machine: "Summit",
            electrons: 3_072.0,
            t2s: 8.49e-4,
            pflops: Some(0.12),
            peak_pct: Some(2.0),
        },
        MeSotaRow {
            work: "SALMON (2022)",
            system: "Silica",
            machine: "Fugaku",
            electrons: 71_040.0,
            t2s: 1.69e-5,
            pflops: Some(2.69),
            peak_pct: Some(3.17),
        },
    ]
}

/// "This work" row of Table I from the DC-MESH model on 10,000 nodes.
pub fn table_i_this_work(model: &DcMeshModel) -> MeSotaRow {
    let nodes = 10_000;
    let ranks = model.machine.ranks(nodes);
    let electrons = model.electrons_per_rank() * ranks as f64;
    let flops = model.sustained_flops(nodes);
    let peak = model.machine.peak_fp64(nodes) * model.machine.power_derate;
    MeSotaRow {
        work: "This work (model)",
        system: "PbTiO3",
        machine: "Aurora (simulated)",
        electrons,
        t2s: model.t2s(ranks),
        pflops: Some(flops / 1e15),
        peak_pct: Some(100.0 * flops / peak),
    }
}

/// Speedup of this work's T2S over the best prior row (paper: 152×).
pub fn table_i_speedup(model: &DcMeshModel) -> f64 {
    let best = table_i_sota()
        .iter()
        .map(|r| r.t2s)
        .fold(f64::INFINITY, f64::min);
    best / table_i_this_work(model).t2s
}

/// One row of Table II (XS-NNQMD SOTA).
#[derive(Clone, Copy, Debug)]
pub struct XsSotaRow {
    pub work: &'static str,
    pub machine: &'static str,
    /// Time-to-solution, s per (atom · weight · MD step).
    pub t2s: f64,
}

/// Quoted competitor row of Table II:
/// 3,142.66 s / (1.00727e12 atoms × 440 weights) = 7.091e-12.
pub fn table_ii_sota() -> Vec<XsSotaRow> {
    vec![XsSotaRow {
        work: "Linker et al. (2022)",
        machine: "Theta",
        t2s: 7.091e-12,
    }]
}

/// "This work" row of Table II: 1.2288 trillion atoms on 120,000 ranks.
pub fn table_ii_this_work(model: &NnqmdModel) -> XsSotaRow {
    XsSotaRow {
        work: "This work (model)",
        machine: "Aurora (simulated)",
        t2s: model.t2s(120_000, 1.2288e12),
    }
}

/// Speedup over the SOTA row (paper: 3,780×).
pub fn table_ii_speedup(model: &NnqmdModel) -> f64 {
    table_ii_sota()[0].t2s / table_ii_this_work(model).t2s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_speedup_band() {
        // Paper: 152× over SALMON.
        let model = DcMeshModel::paper_config();
        let s = table_i_speedup(&model);
        assert!(
            (80.0..260.0).contains(&s),
            "Table I speedup {s} should be ≈152×"
        );
    }

    #[test]
    fn table_ii_speedup_band() {
        // Paper: 3,780×.
        let model = NnqmdModel::paper_config();
        let s = table_ii_speedup(&model);
        assert!(
            (3000.0..4500.0).contains(&s),
            "Table II speedup {s} should be ≈3780×"
        );
    }

    #[test]
    fn this_work_t2s_beats_every_competitor() {
        let model = DcMeshModel::paper_config();
        let ours = table_i_this_work(&model);
        for row in table_i_sota() {
            assert!(ours.t2s < row.t2s, "{} must lose", row.work);
        }
        assert!(ours.electrons > 15e6, "15.36M-electron headline run");
    }

    #[test]
    fn sustained_fraction_near_peak() {
        // Paper: 100.2% of (power-derated) FP64 peak.
        let model = DcMeshModel::paper_config();
        let row = table_i_this_work(&model);
        let pct = row.peak_pct.unwrap();
        assert!(
            (60.0..170.0).contains(&pct),
            "percent of derated FP64 peak {pct} should be ≈100"
        );
    }
}
