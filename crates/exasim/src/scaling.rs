//! The scaling experiments of Figs. 4 and 5, reproduced on the cost model.
//!
//! Each driver returns the (ranks, wall-clock, efficiency) series the
//! paper plots; the `fig4`/`fig5` benchmark binaries print them.

use crate::dcmesh_model::DcMeshModel;
use crate::nnqmd_model::NnqmdModel;

/// One point of a scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    pub ranks: usize,
    /// Wall-clock per MD step (s).
    pub time: f64,
    /// Parallel efficiency relative to the first point, clamped to
    /// [0, 1]: an isogranular (weak) run can at best match the first
    /// point's speed, and a strong-scaling run can at best speed up
    /// linearly — any excess is measurement noise, not super-linear
    /// scaling, and must not be reported as efficiency > 1.
    pub efficiency: f64,
    /// Problem size at this point (electrons or atoms).
    pub size: f64,
}

/// Clamp a raw efficiency ratio into the reportable [0, 1] band.
fn clamp_efficiency(raw: f64) -> f64 {
    raw.clamp(0.0, 1.0)
}

/// Strong-scaling sweeps divide by the first entry (`p0`): a zero would
/// silently turn every efficiency into NaN/∞, so fail loudly instead.
fn check_strong_sweep(rank_sweep: &[usize]) {
    assert!(!rank_sweep.is_empty());
    assert!(
        rank_sweep[0] > 0,
        "strong-scaling rank sweep must start at a non-zero rank count \
         (p0 is the efficiency baseline divisor), got {rank_sweep:?}"
    );
}

/// Weak scaling of DC-MESH (Fig. 4a): fixed electrons/rank, P sweeps.
/// `granularity` = unique electrons per rank (paper: 32 and 128).
///
/// Isogranular efficiency: with per-rank work held constant, the speed
/// per unit size is ∝ 1/time, so efficiency at P ranks is t(P₀)/t(P) —
/// 1.0 means the step time did not grow at all. Values above 1.0 can
/// only come from noise in a measured t₀ and are clamped.
pub fn dcmesh_weak(model: &DcMeshModel, granularity: f64, rank_sweep: &[usize]) -> Vec<ScalePoint> {
    assert!(!rank_sweep.is_empty());
    // Granularity below the full domain size means fewer orbitals per
    // rank: scale the per-rank work accordingly.
    let domains_per_rank = granularity / model.electrons_per_rank();
    let mut out = Vec::with_capacity(rank_sweep.len());
    let mut t0 = 0.0;
    for (i, &p) in rank_sweep.iter().enumerate() {
        let t = model.md_step_time(p, domains_per_rank);
        if i == 0 {
            t0 = t;
        }
        // Weak scaling: speed = size·steps/time; isogranular speedup
        // reduces to t0/t.
        out.push(ScalePoint {
            ranks: p,
            time: t,
            efficiency: clamp_efficiency(t0 / t),
            size: granularity * p as f64,
        });
    }
    out
}

/// Strong scaling of DC-MESH (Fig. 4b): fixed total electrons.
pub fn dcmesh_strong(
    model: &DcMeshModel,
    total_electrons: f64,
    rank_sweep: &[usize],
) -> Vec<ScalePoint> {
    check_strong_sweep(rank_sweep);
    let mut out = Vec::with_capacity(rank_sweep.len());
    let (mut t0, mut p0) = (0.0, 0usize);
    for (i, &p) in rank_sweep.iter().enumerate() {
        let per_rank = total_electrons / p as f64;
        let domains_per_rank = per_rank / model.electrons_per_rank();
        let t = model.md_step_time(p, domains_per_rank);
        if i == 0 {
            t0 = t;
            p0 = p;
        }
        let speedup = t0 / t;
        out.push(ScalePoint {
            ranks: p,
            time: t,
            efficiency: clamp_efficiency(speedup / (p as f64 / p0 as f64)),
            size: total_electrons,
        });
    }
    out
}

/// Weak scaling of XS-NNQMD (Fig. 5a): fixed atoms/rank.
/// Isogranular efficiency, clamped to [0, 1] exactly as
/// [`dcmesh_weak`]'s — noise cannot report super-unit efficiency.
pub fn nnqmd_weak(
    model: &NnqmdModel,
    atoms_per_rank: f64,
    rank_sweep: &[usize],
) -> Vec<ScalePoint> {
    assert!(!rank_sweep.is_empty());
    let mut out = Vec::with_capacity(rank_sweep.len());
    let mut t0 = 0.0;
    for (i, &p) in rank_sweep.iter().enumerate() {
        let t = model.md_step_time(p, atoms_per_rank);
        if i == 0 {
            t0 = t;
        }
        out.push(ScalePoint {
            ranks: p,
            time: t,
            efficiency: clamp_efficiency(t0 / t),
            size: atoms_per_rank * p as f64,
        });
    }
    out
}

/// Strong scaling of XS-NNQMD (Fig. 5b): fixed total atoms.
pub fn nnqmd_strong(model: &NnqmdModel, total_atoms: f64, rank_sweep: &[usize]) -> Vec<ScalePoint> {
    check_strong_sweep(rank_sweep);
    let mut out = Vec::with_capacity(rank_sweep.len());
    let (mut t0, mut p0) = (0.0, 0usize);
    for (i, &p) in rank_sweep.iter().enumerate() {
        let t = model.md_step_time(p, total_atoms / p as f64);
        if i == 0 {
            t0 = t;
            p0 = p;
        }
        out.push(ScalePoint {
            ranks: p,
            time: t,
            efficiency: clamp_efficiency((t0 / t) / (p as f64 / p0 as f64)),
            size: total_atoms,
        });
    }
    out
}

/// The paper's rank sweeps.
pub mod sweeps {
    /// Fig. 4a: P = 6,144 … 120,000.
    pub const DCMESH_WEAK: [usize; 5] = [6_144, 12_288, 24_576, 49_152, 120_000];
    /// Fig. 4b: P = 24,576 … 98,304.
    pub const DCMESH_STRONG: [usize; 3] = [24_576, 49_152, 98_304];
    /// Fig. 5a: up to 120,000 ranks.
    pub const NNQMD_WEAK: [usize; 5] = [240, 1_920, 15_360, 61_440, 120_000];
    /// Fig. 5b: up to 73,800 ranks on 6,150 nodes.
    pub const NNQMD_STRONG: [usize; 4] = [9_225, 18_450, 36_900, 73_800];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_efficiency_never_exceeds_one() {
        // Regression: a sweep whose *first* point is the slowest (here:
        // forced by reversing the rank order, so t₀ carries the largest
        // collective overhead) used to report efficiency > 1 at every
        // later point. Clamped, it saturates at exactly 1.0.
        let m = DcMeshModel::paper_config();
        let mut reversed: Vec<usize> = sweeps::DCMESH_WEAK.to_vec();
        reversed.reverse();
        for pt in dcmesh_weak(&m, 128.0, &reversed) {
            assert!(
                pt.efficiency <= 1.0,
                "weak efficiency must be clamped, got {} at P={}",
                pt.efficiency,
                pt.ranks
            );
        }
        let n = NnqmdModel::paper_config();
        let mut nn_rev: Vec<usize> = sweeps::NNQMD_WEAK.to_vec();
        nn_rev.reverse();
        for pt in nnqmd_weak(&n, 160_000.0, &nn_rev) {
            assert!(pt.efficiency <= 1.0, "got {}", pt.efficiency);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero rank count")]
    fn dcmesh_strong_rejects_zero_p0() {
        let m = DcMeshModel::paper_config();
        dcmesh_strong(&m, 1.0e6, &[0, 100, 200]);
    }

    #[test]
    #[should_panic(expected = "non-zero rank count")]
    fn nnqmd_strong_rejects_zero_p0() {
        let m = NnqmdModel::paper_config();
        nnqmd_strong(&m, 1.0e6, &[0, 100]);
    }

    #[test]
    fn dcmesh_weak_efficiency_near_one() {
        // Paper: "perfect 1.0 within measurement fluctuation" at 128 e/rank.
        let m = DcMeshModel::paper_config();
        let pts = dcmesh_weak(&m, 128.0, &sweeps::DCMESH_WEAK);
        let last = pts.last().unwrap();
        assert!(
            last.efficiency > 0.93,
            "weak efficiency {} must stay ≈1",
            last.efficiency
        );
        assert!(
            (last.size - 15_360_000.0).abs() < 1.0,
            "largest run = 15.36M electrons"
        );
    }

    #[test]
    fn dcmesh_weak_smaller_granularity_lower_efficiency() {
        let m = DcMeshModel::paper_config();
        let e32 = dcmesh_weak(&m, 32.0, &sweeps::DCMESH_WEAK)
            .last()
            .unwrap()
            .efficiency;
        let e128 = dcmesh_weak(&m, 128.0, &sweeps::DCMESH_WEAK)
            .last()
            .unwrap()
            .efficiency;
        assert!(e32 <= e128 + 1e-12, "32 e/rank can't beat 128 e/rank");
    }

    #[test]
    fn dcmesh_strong_efficiency_band() {
        // Paper: 0.843 at 98,304 ranks for 12.58M electrons.
        let m = DcMeshModel::paper_config();
        let pts = dcmesh_strong(&m, 12_582_912.0, &sweeps::DCMESH_STRONG);
        let eff = pts.last().unwrap().efficiency;
        assert!(
            (0.70..0.97).contains(&eff),
            "strong efficiency {eff} should be ≈0.84"
        );
        // Time must keep dropping with more ranks.
        for w in pts.windows(2) {
            assert!(w[1].time < w[0].time);
        }
    }

    #[test]
    fn nnqmd_weak_efficiency_bands() {
        // Paper: 0.957 / 0.964 / 0.997 for 160k / 640k / 10.24M atoms/rank.
        let m = NnqmdModel::paper_config();
        let effs: Vec<f64> = [160_000.0, 640_000.0, 10_240_000.0]
            .iter()
            .map(|&g| {
                nnqmd_weak(&m, g, &sweeps::NNQMD_WEAK)
                    .last()
                    .unwrap()
                    .efficiency
            })
            .collect();
        assert!(effs[0] > 0.90, "160k: {}", effs[0]);
        assert!(effs[1] > 0.95, "640k: {}", effs[1]);
        assert!(effs[2] > 0.99, "10.24M: {}", effs[2]);
        assert!(effs[2] > effs[0], "bigger granularity scales better");
    }

    #[test]
    fn nnqmd_strong_bigger_problem_scales_better() {
        // Paper: 0.773 for 984M atoms vs 0.440 for 221.4M.
        let m = NnqmdModel::paper_config();
        let big = nnqmd_strong(&m, 984_000_000.0, &sweeps::NNQMD_STRONG)
            .last()
            .unwrap()
            .efficiency;
        let small = nnqmd_strong(&m, 221_400_000.0, &sweeps::NNQMD_STRONG)
            .last()
            .unwrap()
            .efficiency;
        assert!(big > small, "984M ({big}) must beat 221.4M ({small})");
        assert!((0.55..0.95).contains(&big), "big-problem eff {big} ≈ 0.773");
        assert!(
            (0.25..0.65).contains(&small),
            "small-problem eff {small} ≈ 0.440"
        );
    }

    #[test]
    fn weak_series_times_nearly_flat() {
        let m = NnqmdModel::paper_config();
        let pts = nnqmd_weak(&m, 10_240_000.0, &sweeps::NNQMD_WEAK);
        let t0 = pts[0].time;
        for p in &pts {
            assert!((p.time - t0).abs() / t0 < 0.05, "weak curve must be flat");
        }
    }
}
