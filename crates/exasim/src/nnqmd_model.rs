//! XS-NNQMD cost model on the simulated machine.
//!
//! Per MD step, each rank runs block inference over its atoms
//! (compute ∝ atoms × weights, calibrated against the paper's measured
//! 1,590.31 s for 1.2288×10¹² atoms × 690,000 weights on 120,000 ranks),
//! exchanges surface halos with neighbours (∝ (atoms/rank)^{2/3}), and
//! participates in per-step collectives (energy reduction, excitation
//! broadcast) whose latency grows with log₂(P) — the communication-to-
//! computation ratio that shapes Fig. 5.

use crate::machine::Machine;

/// The XS-NNQMD workload model.
#[derive(Clone, Copy, Debug)]
pub struct NnqmdModel {
    pub machine: Machine,
    /// Neural-network weights (paper: 690,000 for the production model).
    pub weights: f64,
    /// Seconds per (atom × weight) of inference on one tile, calibrated
    /// to the paper's measured throughput.
    pub kappa: f64,
    /// Per-step aggregated collective + imbalance cost coefficient
    /// (seconds per log₂(P) unit).
    pub alpha_step: f64,
    /// Halo-exchange coefficient: seconds per (atoms/rank)^{2/3}.
    pub halo_coeff: f64,
}

impl NnqmdModel {
    /// Production configuration calibrated to Sec. VII.C.2:
    /// 1,590.31 s = (1.2288e12/120000) atoms × 690,000 weights × κ.
    pub fn paper_config() -> Self {
        let atoms_per_rank = 1.2288e12 / 120_000.0;
        let kappa = 1590.31 / (atoms_per_rank * 690_000.0);
        Self {
            machine: Machine::aurora(),
            weights: 690_000.0,
            kappa,
            alpha_step: 0.046,
            halo_coeff: 2.0e-4,
        }
    }

    /// Compute time per MD step for `atoms_per_rank`.
    pub fn compute_time(&self, atoms_per_rank: f64) -> f64 {
        atoms_per_rank * self.weights * self.kappa
    }

    /// Communication time per MD step.
    pub fn comm_time(&self, ranks: usize, atoms_per_rank: f64) -> f64 {
        let logp = (ranks.max(2) as f64).log2();
        self.alpha_step * logp + self.halo_coeff * atoms_per_rank.powf(2.0 / 3.0)
    }

    /// Wall-clock per MD step.
    pub fn md_step_time(&self, ranks: usize, atoms_per_rank: f64) -> f64 {
        self.compute_time(atoms_per_rank) + self.comm_time(ranks, atoms_per_rank)
    }

    /// Paper Table II metric: seconds per (atom × weight × step).
    pub fn t2s(&self, ranks: usize, total_atoms: f64) -> f64 {
        let per_rank = total_atoms / ranks as f64;
        self.md_step_time(ranks, per_rank) / (total_atoms * self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_paper_wallclock() {
        let m = NnqmdModel::paper_config();
        let t = m.md_step_time(120_000, 1.2288e12 / 120_000.0);
        assert!(
            (t - 1590.31).abs() / 1590.31 < 0.01,
            "MD step {t} s vs paper 1590.31 s"
        );
    }

    #[test]
    fn t2s_matches_table_ii() {
        // 1590.31 s / (1.2288e12 atoms × 690,000 weights) = 1.876e-15
        // s/(atom·weight·step); consistency check: ÷ the SOTA 7.091e-12
        // gives the paper's 3,780× speedup.
        let m = NnqmdModel::paper_config();
        let t2s = m.t2s(120_000, 1.2288e12);
        assert!(
            (1.5e-15..2.5e-15).contains(&t2s),
            "T2S {t2s:e} vs paper 1.876e-15"
        );
    }

    #[test]
    fn comm_fraction_grows_as_granularity_shrinks() {
        let m = NnqmdModel::paper_config();
        let frac = |g: f64| m.comm_time(120_000, g) / m.md_step_time(120_000, g);
        assert!(frac(160_000.0) > frac(640_000.0));
        assert!(frac(640_000.0) > frac(10_240_000.0));
    }

    #[test]
    fn compute_scales_linearly_with_atoms() {
        let m = NnqmdModel::paper_config();
        let t1 = m.compute_time(1e6);
        let t2 = m.compute_time(2e6);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }
}
