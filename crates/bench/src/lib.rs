//! # mlmd-bench — the measurement harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (see DESIGN.md §3 for the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — Maxwell–Ehrenfest time-to-solution vs SOTA |
//! | `table2` | Table II — XS-NNQMD time-to-solution vs SOTA |
//! | `table3` | Table III — kin_prop optimization ladder (measured on this host) |
//! | `table4` | Table IV — DC-MESH FLOP/s vs problem size and precision |
//! | `table5` | Table V — hotspot-kernel FLOP/s |
//! | `fig4` | Fig. 4 — DC-MESH weak/strong scaling |
//! | `fig5` | Fig. 5 — XS-NNQMD weak/strong scaling |
//! | `fidelity` | ref \[27\] — t_failure ∝ N^(−0.14/−0.29) fidelity scaling |
//!
//! Host-measured numbers (Tables III–V) report this machine's wall-clock
//! and GFLOP/s — the paper's *shape* (who wins, by what factor) is the
//! reproduction target, not Aurora's absolute TFLOP/s. Model-projected
//! numbers (Tables I–II, Figs. 4–5) come from `mlmd-exasim` and are
//! deterministic.

pub mod hostinfo;
pub mod tables;

pub use tables::*;
