//! Host peak-rate probe: a reference point for "% of peak" columns.
//!
//! The paper normalizes kernel rates against the PVC tile's FP64 peak;
//! on an arbitrary host we normalize against the measured rate of a
//! well-blocked double-precision GEMM (the practical peak of this code
//! base on this machine).

use mlmd_numerics::gemm::{gemm_flops, gemm_parallel};
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::rng::{Rng64, SplitMix64};
use std::time::Instant;

/// Measured host reference rates (GFLOP/s).
#[derive(Clone, Copy, Debug)]
pub struct HostPeaks {
    pub dgemm_gflops: f64,
    pub sgemm_gflops: f64,
}

/// Probe the host with an n×n×n GEMM (run once, cache the result).
pub fn probe(n: usize) -> HostPeaks {
    let mut rng = SplitMix64::new(7);
    let a64 = Matrix::from_fn(n, n, |_, _| rng.next_f64() - 0.5);
    let b64 = Matrix::from_fn(n, n, |_, _| rng.next_f64() - 0.5);
    let mut c64m = Matrix::<f64>::zeros(n, n);
    // Warm-up.
    gemm_parallel(1.0, &a64, &b64, 0.0, &mut c64m);
    let start = Instant::now();
    let reps = 3;
    for _ in 0..reps {
        gemm_parallel(1.0, &a64, &b64, 0.0, &mut c64m);
    }
    let dgemm =
        reps as f64 * gemm_flops::<f64>(n, n, n) as f64 / start.elapsed().as_secs_f64() / 1e9;
    let a32 = Matrix::from_fn(n, n, |i, j| a64[(i, j)] as f32);
    let b32 = Matrix::from_fn(n, n, |i, j| b64[(i, j)] as f32);
    let mut c32m = Matrix::<f32>::zeros(n, n);
    gemm_parallel(1.0f32, &a32, &b32, 0.0, &mut c32m);
    let start = Instant::now();
    for _ in 0..reps {
        gemm_parallel(1.0f32, &a32, &b32, 0.0, &mut c32m);
    }
    let sgemm =
        reps as f64 * gemm_flops::<f32>(n, n, n) as f64 / start.elapsed().as_secs_f64() / 1e9;
    HostPeaks {
        dgemm_gflops: dgemm,
        sgemm_gflops: sgemm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_returns_positive_rates() {
        let p = probe(96);
        assert!(p.dgemm_gflops > 0.01);
        assert!(p.sgemm_gflops > 0.01);
    }
}
