//! Prints the paper's table3 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::table3());
}
