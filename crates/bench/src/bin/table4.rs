//! Prints the paper's table4 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::table4());
}
