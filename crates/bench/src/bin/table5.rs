//! Prints the paper's table5 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::table5());
}
