//! Prints the paper's fidelity reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::fidelity());
}
