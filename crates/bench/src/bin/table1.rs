//! Prints the paper's table1 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::table1());
}
