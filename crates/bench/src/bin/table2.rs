//! Prints the paper's table2 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::table2());
}
