//! Prints the paper's fig4 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::fig4());
}
