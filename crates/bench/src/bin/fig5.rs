//! Prints the paper's fig5 reproduction (see mlmd-bench docs).
fn main() {
    print!("{}", mlmd_bench::fig5());
}
