//! Table/figure generators. Each function returns the formatted text the
//! corresponding binary prints, so tests can validate content.

use crate::hostinfo;
use mlmd_exasim::dcmesh_model::{DcMeshModel, GemmPrecision};
use mlmd_exasim::nnqmd_model::NnqmdModel;
use mlmd_exasim::scaling::{self, sweeps};
use mlmd_exasim::sota;
use mlmd_lfd::kin_prop::{KinImpl, KinProp};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_nnqmd::failure::FidelityScalingModel;
use mlmd_numerics::cgemm::{cgemm_flops, overlap, rank_update};
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::vec3::Vec3;
use std::fmt::Write as _;
use std::time::Instant;

fn full_mode() -> bool {
    std::env::var("MLMD_FULL").is_ok()
}

// ---------------------------------------------------------------- Table I

/// Table I: Maxwell–Ehrenfest time-to-solution vs the published SOTA.
pub fn table1() -> String {
    let model = DcMeshModel::paper_config();
    let mut s = String::new();
    let _ = writeln!(s, "Table I: State-of-the-art Maxwell-Ehrenfest simulations");
    let _ = writeln!(
        s,
        "{:<22} {:<12} {:<20} {:>12} {:>12} {:>16}",
        "Work", "System", "Machine", "Electrons", "T2S [s]", "PFLOP/s (%peak)"
    );
    for r in sota::table_i_sota() {
        let _ = writeln!(
            s,
            "{:<22} {:<12} {:<20} {:>12.0} {:>12.3e} {:>9.2} ({:.1})",
            r.work,
            r.system,
            r.machine,
            r.electrons,
            r.t2s,
            r.pflops.unwrap_or(0.0),
            r.peak_pct.unwrap_or(0.0)
        );
    }
    let ours = sota::table_i_this_work(&model);
    let _ = writeln!(
        s,
        "{:<22} {:<12} {:<20} {:>12.0} {:>12.3e} {:>9.2} ({:.1})",
        ours.work,
        ours.system,
        ours.machine,
        ours.electrons,
        ours.t2s,
        ours.pflops.unwrap_or(0.0),
        ours.peak_pct.unwrap_or(0.0)
    );
    let _ = writeln!(
        s,
        "\nSpeedup over best SOTA (SALMON): {:.0}x   [paper: 152x]",
        sota::table_i_speedup(&model)
    );
    let _ = writeln!(
        s,
        "Paper reference row: PbTiO3, 15,360,000 electrons, 1.11e-7 s, 1873 PFLOP/s (100.2%)"
    );
    s
}

// --------------------------------------------------------------- Table II

/// Table II: XS-NNQMD time-to-solution vs SOTA.
pub fn table2() -> String {
    let model = NnqmdModel::paper_config();
    let mut s = String::new();
    let _ = writeln!(s, "Table II: State-of-the-art XS-NNQMD simulations");
    let _ = writeln!(
        s,
        "{:<24} {:<22} {:>16}",
        "Work", "Machine", "T2S [s/(atom·w·step)]"
    );
    for r in sota::table_ii_sota() {
        let _ = writeln!(s, "{:<24} {:<22} {:>16.3e}", r.work, r.machine, r.t2s);
    }
    let ours = sota::table_ii_this_work(&model);
    let _ = writeln!(
        s,
        "{:<24} {:<22} {:>16.3e}",
        ours.work, ours.machine, ours.t2s
    );
    let _ = writeln!(
        s,
        "\nSpeedup over SOTA: {:.0}x   [paper: 3,780x]",
        sota::table_ii_speedup(&model)
    );
    let _ = writeln!(
        s,
        "Workload: 1.2288e12 atoms x 690,000 weights on 120,000 ranks (model)"
    );
    s
}

// -------------------------------------------------------------- Table III

/// One measured row of the kin_prop ladder.
#[derive(Clone, Copy, Debug)]
pub struct LadderRow {
    pub imp: KinImpl,
    pub seconds: f64,
    pub speedup: f64,
}

/// Measure the Table III optimization ladder on this host.
pub fn kin_prop_ladder(grid: Grid3, norb: usize, steps: usize) -> Vec<LadderRow> {
    let kp = KinProp::new(grid);
    let flops = FlopCounter::new();
    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for imp in KinImpl::ALL {
        let mut wf = WaveFunctions::random(grid, norb, 99);
        let start = Instant::now();
        kp.propagate_n(imp, &mut wf, 0.01, Vec3::ZERO, steps, &flops);
        let secs = start.elapsed().as_secs_f64();
        if imp == KinImpl::Baseline {
            baseline = secs;
        }
        rows.push(LadderRow {
            imp,
            seconds: secs,
            speedup: baseline / secs,
        });
    }
    rows
}

/// Table III: the kin_prop optimization ladder, measured here + paper row.
pub fn table3() -> String {
    let (grid, norb, steps) = if full_mode() {
        (Grid3::new(70, 70, 72, 0.5), 64, 100)
    } else {
        (Grid3::new(32, 32, 32, 0.5), 16, 10)
    };
    let rows = kin_prop_ladder(grid, norb, steps);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table III: kin_prop() local time-propagator ladder ({}x{}x{} mesh, {} orbitals, {} steps)",
        grid.nx, grid.ny, grid.nz, norb, steps
    );
    let _ = writeln!(
        s,
        "{:<38} {:>12} {:>10}",
        "Implementation", "Runtime (s)", "Speedup"
    );
    let paper = [
        ("Baseline (paper, CPU)", 8.655, 1.0),
        ("Data & loop re-ordering (paper)", 2.356, 3.67),
        ("Blocking/tiling (paper)", 0.939, 9.22),
        ("GPU hierarchical parallel (paper)", 0.026, 338.0),
    ];
    for row in &rows {
        let _ = writeln!(
            s,
            "{:<38} {:>12.4} {:>9.2}x",
            row.imp.label(),
            row.seconds,
            row.speedup
        );
    }
    let _ = writeln!(
        s,
        "\nPaper reference (Polaris, 70x70x72, 64 orbitals, 1000 steps):"
    );
    for (name, secs, sp) in paper {
        let _ = writeln!(s, "{name:<38} {secs:>12.3} {sp:>9.2}x");
    }
    s
}

// --------------------------------------------------------------- Table IV

/// Table IV: DC-MESH rate vs orbital count and precision —
/// host-measured GFLOP/s for the nonlocal tier, BF16-split accuracy, and
/// the PVC-projected TFLOP/s from the machine model.
pub fn table4() -> String {
    let grid = if full_mode() {
        Grid3::new(40, 40, 40, 0.5)
    } else {
        Grid3::new(24, 24, 24, 0.5)
    };
    let orbital_counts: &[usize] = if full_mode() {
        &[32, 64, 128]
    } else {
        &[16, 32, 64]
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table IV: DC-MESH nonlocal-tier performance vs problem size and precision"
    );
    let _ = writeln!(
        s,
        "(host-measured on a {}x{}x{} mesh; PVC column from the machine model)",
        grid.nx, grid.ny, grid.nz
    );
    let _ = writeln!(
        s,
        "{:>8} {:<12} {:>14} {:>14} {:>16}",
        "Orbitals", "Precision", "Host GFLOP/s", "Max |err|", "PVC TFLOP/s"
    );
    for &norb in orbital_counts {
        let wf0 = WaveFunctions::random(grid, norb, 11);
        let mut wf = WaveFunctions::random(grid, norb, 12);
        for (a, b) in wf.psi.as_mut_slice().iter_mut().zip(wf0.psi.as_slice()) {
            *a += b.scale(0.3);
        }
        let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
        for prec in [
            NlpPrecision::F64,
            NlpPrecision::F32,
            NlpPrecision::Bf16,
            NlpPrecision::Bf16x2,
            NlpPrecision::Bf16x3,
        ] {
            let counter = FlopCounter::new();
            let mut test = wf.clone();
            // Warm-up pass (first-touch allocations), then timed passes.
            nlp.apply(&mut test, prec, &counter);
            counter.reset();
            let reps = 3;
            let start = Instant::now();
            for _ in 0..reps {
                nlp.apply(&mut test, prec, &counter);
            }
            let secs = start.elapsed().as_secs_f64();
            let gflops = counter.total() as f64 / secs / 1e9;
            let err = nlp.precision_error(&wf, prec);
            let pvc = pvc_projection(prec);
            let _ = writeln!(
                s,
                "{:>8} {:<12} {:>14.2} {:>14.3e} {:>16}",
                norb,
                prec.label(),
                gflops,
                err,
                pvc
            );
        }
    }
    let _ = writeln!(
        s,
        "\nPaper reference (single PVC tile, 1024 orbitals): FP32 14.98 TF/s (65.2%),"
    );
    let _ = writeln!(s, "FP32/BF16 17.95 TF/s (78.0%), FP64 7.69 TF/s (33.4%).");
    let _ = writeln!(
        s,
        "Notes: the FP64-vs-FP32 throughput gap on PVC comes from power throttling"
    );
    let _ = writeln!(
        s,
        "and the XMX systolic arrays — hardware effects a CPU host does not mirror"
    );
    let _ = writeln!(
        s,
        "(here FP64 SIMD is the fast path); the PVC column carries that ordering."
    );
    let _ = writeln!(
        s,
        "BF16 rows are software-emulated (slow in wall-clock by construction); their"
    );
    let _ = writeln!(
        s,
        "reproduced content is the accuracy ladder Bf16 < Bf16x2 < Bf16x3 ≈ FP32."
    );
    s
}

fn pvc_projection(prec: NlpPrecision) -> String {
    let mut model = DcMeshModel::paper_config();
    model.precision = match prec {
        NlpPrecision::F64 => GemmPrecision::Fp64,
        NlpPrecision::F32 => GemmPrecision::Fp32,
        _ => GemmPrecision::Fp32Bf16,
    };
    let f = model.qd_step_flops();
    let t = model.qd_step_time();
    format!(
        "{:.2}",
        (f.kin + f.nlp + f.obs + f.ortho + f.local) / t / 1e12
    )
}

// ---------------------------------------------------------------- Table V

/// Table V: hotspot kernels, host-measured, with the paper's PVC column.
/// Percentages are relative to the best dense rate observed on this host
/// (the practical peak of this code base here), mirroring how the paper
/// normalizes against the PVC tile peak.
pub fn table5() -> String {
    let (grid, norb) = if full_mode() {
        (Grid3::new(40, 40, 40, 0.5), 64)
    } else {
        (Grid3::new(20, 20, 24, 0.5), 32)
    };
    let peaks = hostinfo::probe(if full_mode() { 512 } else { 256 });
    let ngrid = grid.len();
    let wf0 = WaveFunctions::random(grid, norb, 21);
    let wf = WaveFunctions::random(grid, norb, 22);
    // Measure every kernel first, then normalize.
    let mut overlap_out = Matrix::<c64>::zeros(norb, norb);
    let t1 = time(|| overlap(c64::one(), &wf0.psi, &wf.psi, c64::zero(), &mut overlap_out));
    let r1 = cgemm_flops(norb, norb, ngrid) as f64 / t1 / 1e9;
    let mut psi_t = wf.psi.clone();
    let t2 = time(|| rank_update(c64::new(-0.01, 0.0), &wf0.psi, &overlap_out, &mut psi_t));
    let r2 = cgemm_flops(ngrid, norb, norb) as f64 / t2 / 1e9;
    let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
    let counter = FlopCounter::new();
    let mut test = wf.clone();
    let t3 = time(|| nlp.apply(&mut test, NlpPrecision::F64, &counter));
    let r3 = counter.reset() as f64 / t3 / 1e9;
    let kp = KinProp::new(grid);
    let mut wfk = wf.clone();
    let t4 = time(|| kp.propagate_n(KinImpl::Parallel, &mut wfk, 0.01, Vec3::ZERO, 1, &counter));
    let r4 = counter.total() as f64 / t4 / 1e9;
    let peak = peaks.dgemm_gflops.max(r1).max(r2).max(r3);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table V: hotspot kernels on {}x{}x{} mesh, {} orbitals (host dense peak: {:.1} GF/s)",
        grid.nx, grid.ny, grid.nz, norb, peak
    );
    let _ = writeln!(
        s,
        "{:<14} {:>14} {:>12} {:>22}",
        "Kernel", "Host GFLOP/s", "% host peak", "Paper (PVC, % peak)"
    );
    for (name, rate, paper) in [
        ("CGEMM (1)", r1, "18.72 TF/s (81.4%)"),
        ("CGEMM (2)", r2, "21.66 TF/s (94.2%)"),
        ("nlp_prop()", r3, "16.02 TF/s (69.7%)"),
        ("kin_prop()", r4, "3.51 TF/s (15.3%)"),
    ] {
        let _ = writeln!(
            s,
            "{:<14} {:>14.2} {:>11.1}% {:>22}",
            name,
            rate,
            100.0 * rate / peak,
            paper
        );
    }
    let _ = writeln!(
        s,
        "\nReproduced shape: dense CGEMMs run near peak; the stencil tier sits far"
    );
    let _ = writeln!(
        s,
        "below it (paper: 15.3% vs 81-94%) — the arithmetic-intensity gap that"
    );
    let _ = writeln!(s, "motivates GEMMification (Sec. V.B.5).");
    s
}

fn time(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64().max(1e-9)
}

// ------------------------------------------------------------------ Fig 4

/// Fig. 4: DC-MESH weak and strong scaling series.
pub fn fig4() -> String {
    let model = DcMeshModel::paper_config();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 4a: DC-MESH weak scaling (wall-clock per MD step, s)"
    );
    for granularity in [32.0, 128.0] {
        let _ = writeln!(s, "  granularity {granularity} electrons/rank:");
        let _ = writeln!(
            s,
            "  {:>10} {:>14} {:>14} {:>12}",
            "ranks", "electrons", "time (s)", "efficiency"
        );
        for p in scaling::dcmesh_weak(&model, granularity, &sweeps::DCMESH_WEAK) {
            let _ = writeln!(
                s,
                "  {:>10} {:>14.3e} {:>14.1} {:>12.3}",
                p.ranks, p.size, p.time, p.efficiency
            );
        }
    }
    let _ = writeln!(
        s,
        "  [paper: efficiency 1.0 at 120,000 ranks, 15.36M electrons]"
    );
    let _ = writeln!(s, "\nFig. 4b: DC-MESH strong scaling, 12,582,912 electrons");
    let _ = writeln!(
        s,
        "  {:>10} {:>14} {:>12}",
        "ranks", "time (s)", "efficiency"
    );
    for p in scaling::dcmesh_strong(&model, 12_582_912.0, &sweeps::DCMESH_STRONG) {
        let _ = writeln!(
            s,
            "  {:>10} {:>14.1} {:>12.3}",
            p.ranks, p.time, p.efficiency
        );
    }
    let _ = writeln!(s, "  [paper: efficiency 0.843 at 98,304 ranks]");
    s
}

// ------------------------------------------------------------------ Fig 5

/// Fig. 5: XS-NNQMD weak and strong scaling series.
pub fn fig5() -> String {
    let model = NnqmdModel::paper_config();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fig. 5a: XS-NNQMD weak scaling (wall-clock per MD step, s)"
    );
    for (g, paper) in [
        (160_000.0, 0.957),
        (640_000.0, 0.964),
        (10_240_000.0, 0.997),
    ] {
        let _ = writeln!(s, "  granularity {g} atoms/rank [paper eff: {paper}]:");
        let _ = writeln!(
            s,
            "  {:>10} {:>14} {:>12}",
            "ranks", "time (s)", "efficiency"
        );
        for p in scaling::nnqmd_weak(&model, g, &sweeps::NNQMD_WEAK) {
            let _ = writeln!(
                s,
                "  {:>10} {:>14.2} {:>12.3}",
                p.ranks, p.time, p.efficiency
            );
        }
    }
    let _ = writeln!(s, "\nFig. 5b: XS-NNQMD strong scaling");
    for (n, paper) in [(221_400_000.0, 0.440), (984_000_000.0, 0.773)] {
        let _ = writeln!(s, "  {n:.3e} atoms [paper eff at 73,800 ranks: {paper}]:");
        let _ = writeln!(
            s,
            "  {:>10} {:>14} {:>12}",
            "ranks", "time (s)", "efficiency"
        );
        for p in scaling::nnqmd_strong(&model, n, &sweeps::NNQMD_STRONG) {
            let _ = writeln!(
                s,
                "  {:>10} {:>14.2} {:>12.3}",
                p.ranks, p.time, p.efficiency
            );
        }
    }
    s
}

// -------------------------------------------------------------- Fidelity

/// Fidelity scaling: the t_failure exponents of ref \[27\].
pub fn fidelity() -> String {
    let sizes: Vec<f64> = (0..6).map(|i| 1e4 * 8f64.powi(i)).collect();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Fidelity scaling: time-to-failure vs system size (ref [27])"
    );
    let _ = writeln!(
        s,
        "{:>12} {:>18} {:>18}",
        "atoms", "Allegro t_fail", "Legato t_fail"
    );
    let plain = FidelityScalingModel::allegro();
    let legato = FidelityScalingModel::allegro_legato();
    let tp = plain.mean_t_failure(&sizes, 4000, 1);
    let tl = legato.mean_t_failure(&sizes, 4000, 2);
    for ((n, a), b) in sizes.iter().zip(&tp).zip(&tl) {
        let _ = writeln!(s, "{n:>12.1e} {a:>18.3e} {b:>18.3e}");
    }
    let ep = plain.measured_exponent(&sizes, 4000, 1);
    let el = legato.measured_exponent(&sizes, 4000, 2);
    let _ = writeln!(
        s,
        "\nMeasured exponents: Allegro {ep:.3} [paper: -0.29], Allegro-Legato {el:.3} [paper: -0.14]"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_all_competitors() {
        let t = table1();
        for name in ["Qb@ll", "PWDFT", "SALMON", "This work"] {
            assert!(t.contains(name), "missing {name}:\n{t}");
        }
    }

    #[test]
    fn table2_has_speedup() {
        let t = table2();
        assert!(t.contains("Speedup"));
        assert!(t.contains("Linker"));
    }

    #[test]
    fn ladder_variants_all_measured() {
        let rows = kin_prop_ladder(Grid3::new(8, 8, 8, 0.5), 4, 2);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.seconds > 0.0));
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig4_contains_both_panels() {
        let f = fig4();
        assert!(f.contains("Fig. 4a"));
        assert!(f.contains("Fig. 4b"));
        assert!(f.contains("120000") || f.contains("120,000"));
    }

    #[test]
    fn fig5_contains_both_panels() {
        let f = fig5();
        assert!(f.contains("Fig. 5a"));
        assert!(f.contains("Fig. 5b"));
    }

    #[test]
    fn fidelity_exponents_reported() {
        let f = fidelity();
        assert!(f.contains("-0.29"));
        assert!(f.contains("-0.14"));
    }
}
