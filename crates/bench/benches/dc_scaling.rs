//! Criterion bench: serial vs rank-parallel DC-MESH global–local SCF.
//!
//! The `dc_scaling` group runs the same `small_problem`-shaped fixture
//! through the serial `DcScf` oracle and through `DistributedDcScf` at
//! 1, 2, and 4 ranks per domain (2/4/8-rank worlds). On a single CPU the
//! distributed drivers pay thread + collective overhead on top of the
//! serial kernels, so the group measures the *cost of the communication
//! pattern* — the number the exasim cost model needs to extrapolate
//! multi-node scaling (world sizes stay bounded so CI smoke runs fast).

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_dcmesh::dist::run_distributed;
use mlmd_dcmesh::fixture::{small_two_domain as fixture, SMALL_ELECTRONS, SMALL_NORB, SMALL_SEED};
use mlmd_dcmesh::scf::DcScf;
use std::hint::black_box;

const NORB: usize = SMALL_NORB;
const ELECTRONS: f64 = SMALL_ELECTRONS;
const SEED: u64 = SMALL_SEED;
const TOL: f64 = 1e-4;
const MAX_ITER: usize = 3;

fn bench_dc_scaling(c: &mut Criterion) {
    let (dd, atoms) = fixture();
    let mut group = c.benchmark_group("dc_scaling");
    group.sample_size(10);

    group.bench_function("serial_2dom", |b| {
        b.iter(|| {
            let mut scf = DcScf::new(dd.clone(), NORB, ELECTRONS, atoms.clone(), SEED);
            black_box(scf.converge(TOL, MAX_ITER))
        });
    });

    for ranks_per_domain in [1usize, 2, 4] {
        group.bench_function(format!("dist_2dom_{ranks_per_domain}rpd"), |b| {
            b.iter(|| {
                black_box(run_distributed(
                    &dd,
                    NORB,
                    ELECTRONS,
                    &atoms,
                    SEED,
                    ranks_per_domain,
                    TOL,
                    MAX_ITER,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dc_scaling);
criterion_main!(benches);
