//! Criterion bench: the Floquet workload class (PR 9).
//!
//! Two stories:
//!
//! - `observer_*`: the streaming spectral observer against the bare
//!   trace observer on the same driven 320-cell Yee grid — the
//!   acceptance criterion is that the windowed-DFT accumulation (one
//!   complex rotation per harmonic per step) stays inside a 10% step
//!   overhead, i.e. spectra are effectively free relative to storing
//!   the trace for post-hoc analysis.
//! - `sweep_width_*`: the canonical 4-geometry SSH-dimer sweep as a
//!   `RunPlan` batch at pool widths 1/2/4 (the service's execution
//!   shape).
//!
//! After the timed groups the bench measures the overhead ratio
//! directly (min-of-5 full runs per observer), *asserts* the 10%
//! criterion, and prints the `BENCH_pr9.json` payload (schema in
//! docs/BENCHMARKS.md).

use criterion::{criterion_group, Criterion};
use mlmd_core::engine::{CancelToken, Engine, RunPlan, TraceObserver};
use mlmd_floquet::sweep::{DimerConfig, SuperlatticeSweep};
use std::time::Instant;

fn fixture(n_steps: usize) -> SuperlatticeSweep {
    let mut sweep = SuperlatticeSweep::canonical(
        [0.4, 0.7, 1.5, 2.5]
            .into_iter()
            .map(|dimerization| DimerConfig {
                dimerization,
                patch_period: 20,
            })
            .collect(),
    );
    sweep.n_steps = n_steps;
    sweep
}

fn run_with_floquet(sweep: &SuperlatticeSweep) -> f64 {
    let mut driver = sweep.driver(&sweep.configs[2]);
    let mut obs = sweep.observer();
    Engine::run(&mut driver, sweep.n_steps, &mut obs);
    obs.finish().total_power()
}

fn run_with_trace(sweep: &SuperlatticeSweep) -> usize {
    let mut driver = sweep.driver(&sweep.configs[2]);
    let mut obs = TraceObserver::every();
    Engine::run(&mut driver, sweep.n_steps, &mut obs);
    obs.trace.len()
}

fn run_sweep_at_width(sweep: &SuperlatticeSweep, width: usize) -> usize {
    let mut plan = RunPlan::new();
    for config in &sweep.configs {
        plan.push_cancellable(
            sweep.driver(config),
            sweep.observer(),
            sweep.n_steps,
            CancelToken::new(),
        );
    }
    plan.execute_with_width(width)
        .iter()
        .map(|run| run.outcome.steps_done)
        .sum()
}

fn bench_floquet(c: &mut Criterion) {
    let mut group = c.benchmark_group("floquet");
    group.sample_size(10);

    let sweep = fixture(2_000);
    group.bench_function("observer_floquet", |b| {
        b.iter(|| run_with_floquet(&sweep));
    });
    group.bench_function("observer_trace", |b| {
        b.iter(|| run_with_trace(&sweep));
    });
    for width in [1usize, 2, 4] {
        group.bench_function(format!("sweep_width_{width}"), |b| {
            b.iter(|| run_sweep_at_width(&sweep, width));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_floquet);

/// Smallest of `reps` full-run wall-clocks — minimum rather than mean,
/// so a shared-CPU scheduling hiccup cannot fake an overhead.
fn min_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    benches();

    // The acceptance measurement behind BENCH_pr9.json. `--test` (the CI
    // bench smoke) downsizes the horizon to stay seconds-scale.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (n_steps, reps) = if test_mode { (2_000, 5) } else { (20_000, 5) };
    let sweep = fixture(n_steps);

    let floquet = min_secs(reps, || {
        run_with_floquet(&sweep);
    });
    let trace = min_secs(reps, || {
        run_with_trace(&sweep);
    });
    let overhead = floquet / trace - 1.0;
    assert!(
        overhead < 0.10,
        "FloquetObserver must stay under 10% step overhead vs TraceObserver, \
         measured {:.1}% ({floquet:.6} s vs {trace:.6} s)",
        overhead * 100.0
    );

    let widths: Vec<(usize, f64)> = [1usize, 2, 4]
        .into_iter()
        .map(|w| {
            (
                w,
                min_secs(3, || {
                    run_sweep_at_width(&sweep, w);
                }),
            )
        })
        .collect();

    println!("floquet acceptance report (BENCH_pr9.json schema):");
    println!("{{");
    println!("  \"observer_overhead\": {{");
    println!("    \"floquet_secs\": {floquet:.6},");
    println!("    \"trace_secs\": {trace:.6},");
    println!("    \"overhead_fraction\": {:.4},", (floquet / trace - 1.0));
    println!("    \"criterion\": \"< 0.10 (asserted)\"");
    println!("  }},");
    println!("  \"sweep_throughput\": [");
    for (i, (w, secs)) in widths.iter().enumerate() {
        let comma = if i + 1 < widths.len() { "," } else { "" };
        println!(
            "    {{ \"pool_width\": {w}, \"secs\": {secs:.6}, \"steps\": {} }}{comma}",
            sweep.total_steps()
        );
    }
    println!("  ]");
    println!("}}");
}
