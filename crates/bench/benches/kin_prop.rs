//! Criterion bench: the Table III kin_prop optimization ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlmd_lfd::kin_prop::{KinImpl, KinProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;
use std::hint::black_box;

fn bench_kin_prop(c: &mut Criterion) {
    let grid = Grid3::new(24, 24, 24, 0.5);
    let norb = 8;
    let kp = KinProp::new(grid);
    let flops = FlopCounter::new();
    let mut group = c.benchmark_group("table3_kin_prop");
    group.sample_size(10);
    for imp in KinImpl::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{imp:?}")),
            &imp,
            |b, &imp| {
                let mut wf = WaveFunctions::random(grid, norb, 1);
                b.iter(|| {
                    kp.propagate_n(imp, black_box(&mut wf), 0.01, Vec3::ZERO, 1, &flops);
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kin_prop);
criterion_main!(benches);
