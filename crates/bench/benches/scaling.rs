//! Criterion bench: the Fig. 4/5 cost-model sweeps (deterministic, fast —
//! benchmarks the model evaluation itself).

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_exasim::dcmesh_model::DcMeshModel;
use mlmd_exasim::nnqmd_model::NnqmdModel;
use mlmd_exasim::scaling::{self, sweeps};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let dcmesh = DcMeshModel::paper_config();
    let nnqmd = NnqmdModel::paper_config();
    let mut group = c.benchmark_group("fig45_scaling_model");
    group.sample_size(20);
    group.bench_function("fig4a_weak", |b| {
        b.iter(|| scaling::dcmesh_weak(black_box(&dcmesh), 128.0, &sweeps::DCMESH_WEAK));
    });
    group.bench_function("fig4b_strong", |b| {
        b.iter(|| scaling::dcmesh_strong(black_box(&dcmesh), 12_582_912.0, &sweeps::DCMESH_STRONG));
    });
    group.bench_function("fig5a_weak", |b| {
        b.iter(|| scaling::nnqmd_weak(black_box(&nnqmd), 10_240_000.0, &sweeps::NNQMD_WEAK));
    });
    group.bench_function("fig5b_strong", |b| {
        b.iter(|| scaling::nnqmd_strong(black_box(&nnqmd), 984_000_000.0, &sweeps::NNQMD_STRONG));
    });
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
