//! Criterion bench: the Fig. 4/5 cost-model sweeps (deterministic, fast —
//! benchmarks the model evaluation itself), plus the `pool_scaling` group
//! comparing the rayon shim's persistent work-stealing scheduler against
//! the old per-call static partition (build with `--features
//! static-partition` for the baseline; results recorded in BENCH_pr2.json).

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_exasim::dcmesh_model::DcMeshModel;
use mlmd_exasim::nnqmd_model::NnqmdModel;
use mlmd_exasim::scaling::{self, sweeps};
use mlmd_numerics::gemm::gemm_blocked;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::rng::{Rng64, SplitMix64};
use rayon::prelude::*;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let dcmesh = DcMeshModel::paper_config();
    let nnqmd = NnqmdModel::paper_config();
    let mut group = c.benchmark_group("fig45_scaling_model");
    group.sample_size(20);
    group.bench_function("fig4a_weak", |b| {
        b.iter(|| scaling::dcmesh_weak(black_box(&dcmesh), 128.0, &sweeps::DCMESH_WEAK));
    });
    group.bench_function("fig4b_strong", |b| {
        b.iter(|| scaling::dcmesh_strong(black_box(&dcmesh), 12_582_912.0, &sweeps::DCMESH_STRONG));
    });
    group.bench_function("fig5a_weak", |b| {
        b.iter(|| scaling::nnqmd_weak(black_box(&nnqmd), 10_240_000.0, &sweeps::NNQMD_WEAK));
    });
    group.bench_function("fig5b_strong", |b| {
        b.iter(|| scaling::nnqmd_strong(black_box(&nnqmd), 984_000_000.0, &sweeps::NNQMD_STRONG));
    });
    group.finish();
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
}

/// Deliberately skewed workloads for the scheduler A/B (ISSUE 2): uneven
/// GEMM panels and a domain loop with one oversized domain. The static
/// partition assigns whole contiguous buckets up front and pays a fresh
/// thread spawn per call; the work-stealing pool reuses persistent workers
/// and rebalances the oversized tasks.
fn bench_pool_scaling(c: &mut Criterion) {
    let scheduler = if cfg!(feature = "static-partition") {
        "static"
    } else {
        "worksteal"
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let mut group = c.benchmark_group(format!("pool_scaling/{scheduler}"));
    group.sample_size(60);

    // Imbalanced GEMM panels: C = A·B computed panel-by-panel where seven
    // panels are 1 column wide and the last holds the remaining 25 — the
    // shape of the ragged trailing panel in a blocked hierarchical GEMM.
    let (m, k, n) = (64usize, 64usize, 32usize);
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    let panels: Vec<(usize, usize)> = (0..7).map(|j| (j, 1)).chain([(7, 25)]).collect();
    group.bench_function("gemm_skewed_panels", |bch| {
        pool.install(|| {
            bch.iter(|| {
                let out: Vec<Matrix<f64>> = panels
                    .clone()
                    .into_par_iter()
                    .map(|(j0, w)| {
                        let bp = Matrix::from_fn(k, w, |p, j| b[(p, j0 + j)]);
                        let mut cp = Matrix::<f64>::zeros(m, w);
                        gemm_blocked(1.0, black_box(&a), &bp, 0.0, &mut cp);
                        cp
                    })
                    .collect();
                black_box(out)
            });
        });
    });

    // Uniform panels of the same total size: the no-skew control.
    let uniform: Vec<(usize, usize)> = (0..8).map(|j| (4 * j, 4)).collect();
    group.bench_function("gemm_uniform_panels", |bch| {
        pool.install(|| {
            bch.iter(|| {
                let out: Vec<Matrix<f64>> = uniform
                    .clone()
                    .into_par_iter()
                    .map(|(j0, w)| {
                        let bp = Matrix::from_fn(k, w, |p, j| b[(p, j0 + j)]);
                        let mut cp = Matrix::<f64>::zeros(m, w);
                        gemm_blocked(1.0, black_box(&a), &bp, 0.0, &mut cp);
                        cp
                    })
                    .collect();
                black_box(out)
            });
        });
    });

    // Domain loop with one oversized domain (the DC-MESH shape: one dense
    // hotspot domain among small ones).
    let domain_sizes: Vec<usize> = [60_000usize]
        .into_iter()
        .chain(std::iter::repeat_n(4_000, 15))
        .collect();
    group.bench_function("domain_loop_skewed", |bch| {
        pool.install(|| {
            bch.iter(|| {
                let sums: Vec<f64> = domain_sizes
                    .clone()
                    .into_par_iter()
                    .map(|len| {
                        let mut acc = 0.0f64;
                        for i in 0..len {
                            acc += (i as f64).sqrt();
                        }
                        acc
                    })
                    .collect();
                black_box(sums)
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_pool_scaling);
criterion_main!(benches);
