//! Criterion bench: the Table IV parameterized-precision modes of the
//! nonlocal correction (FP64 / FP32 / BF16-split with FP32 accumulation),
//! plus the PR-10 bf16-vs-f64 NNQMD inference A/B.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_nnqmd::infer::{
    block_evaluate, block_evaluate_bf16, BF16_ENERGY_ATOL_PER_ATOM, BF16_FORCE_ATOL,
    BF16_FORCE_RTOL,
};
use mlmd_nnqmd::model::{AllegroLite, ModelConfig, QuantizedModel};
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;
use mlmd_qxmd::perovskite::PerovskiteLattice;
use std::hint::black_box;

fn bench_precision(c: &mut Criterion) {
    let grid = Grid3::new(16, 16, 16, 0.5);
    let norb = 12;
    let wf0 = WaveFunctions::random(grid, norb, 1);
    let wf = WaveFunctions::random(grid, norb, 2);
    let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
    let flops = FlopCounter::new();
    let mut group = c.benchmark_group("table4_precision");
    group.sample_size(10);
    for prec in NlpPrecision::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(prec.label()),
            &prec,
            |b, &prec| {
                let mut t = wf.clone();
                b.iter(|| nlp.apply(black_box(&mut t), prec, &flops));
            },
        );
    }
    group.finish();
}

/// bf16-storage vs f64 NNQMD block inference on the canonical perovskite
/// patch, with the documented accuracy envelope re-checked on the bench
/// fixture so the timing A/B always ships next to its error bound.
fn bench_nnqmd_precision(c: &mut Criterion) {
    let model = AllegroLite::new(
        ModelConfig {
            hidden: 8,
            k_max: 5,
            rcut: 4.0,
        },
        1,
    );
    let quant = QuantizedModel::from_model(&model);
    let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, 0.2));
    let sys = &lat.system;
    let mut group = c.benchmark_group("pr10_nnqmd_precision");
    group.sample_size(10);
    group.bench_function("block_evaluate_f64", |b| {
        b.iter(|| {
            block_evaluate(
                black_box(&model),
                &sys.species,
                &sys.positions,
                sys.box_lengths,
                2,
            )
        });
    });
    group.bench_function("block_evaluate_bf16", |b| {
        b.iter(|| {
            block_evaluate_bf16(
                black_box(&quant),
                &sys.species,
                &sys.positions,
                sys.box_lengths,
                2,
            )
        });
    });
    group.finish();

    // Envelope check on the bench fixture (same bound as the proptests).
    let f64_res = block_evaluate(&model, &sys.species, &sys.positions, sys.box_lengths, 2);
    let bf_res = block_evaluate_bf16(&quant, &sys.species, &sys.positions, sys.box_lengths, 2);
    let fmax = f64_res
        .forces
        .iter()
        .map(|f| f.norm())
        .fold(0.0f64, f64::max);
    let ferr = f64_res
        .forces
        .iter()
        .zip(&bf_res.forces)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0f64, f64::max);
    let eerr = (f64_res.energy - bf_res.energy).abs() / sys.species.len() as f64;
    println!(
        "pr10_nnqmd_precision/envelope: force err {ferr:.3e} (bound {:.3e}), \
         energy err/atom {eerr:.3e} (bound {BF16_ENERGY_ATOL_PER_ATOM:.3e}), \
         peak bytes f64 {} vs bf16 {}",
        BF16_FORCE_RTOL * fmax + BF16_FORCE_ATOL,
        f64_res.peak_neighbor_bytes,
        bf_res.peak_neighbor_bytes,
    );
    assert!(
        ferr <= BF16_FORCE_RTOL * fmax + BF16_FORCE_ATOL,
        "bf16 forces out of envelope on bench fixture: {ferr:.3e}"
    );
    assert!(
        eerr <= BF16_ENERGY_ATOL_PER_ATOM,
        "bf16 energy out of envelope on bench fixture: {eerr:.3e}"
    );
}

criterion_group!(benches, bench_precision, bench_nnqmd_precision);
criterion_main!(benches);
