//! Criterion bench: the Table IV parameterized-precision modes of the
//! nonlocal correction (FP64 / FP32 / BF16-split with FP32 accumulation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use std::hint::black_box;

fn bench_precision(c: &mut Criterion) {
    let grid = Grid3::new(16, 16, 16, 0.5);
    let norb = 12;
    let wf0 = WaveFunctions::random(grid, norb, 1);
    let wf = WaveFunctions::random(grid, norb, 2);
    let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
    let flops = FlopCounter::new();
    let mut group = c.benchmark_group("table4_precision");
    group.sample_size(10);
    for prec in NlpPrecision::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(prec.label()),
            &prec,
            |b, &prec| {
                let mut t = wf.clone();
                b.iter(|| nlp.apply(black_box(&mut t), prec, &flops));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_precision);
criterion_main!(benches);
