//! Criterion bench: the job service under synthetic heavy traffic.
//!
//! The `service_load` group measures the scheduler as a throughput story
//! rather than a kernel story: a burst of unique FDTD jobs larger than
//! the queue (so submission must ride `QueueFull` backpressure) plus a
//! batch of identical-material pump–probe sweeps that must coalesce onto
//! one execution, with a fraction of jobs cancelled in flight.
//!
//! - `drive_smoke`: the CI-sized profile (16 unique + 8 identical).
//! - `drive_acceptance`: the PR's acceptance profile (64 unique + 8
//!   identical, every 9th job cancelled).
//!
//! After the timed groups the bench drives the acceptance profile once
//! more and prints the `BENCH_pr7.json` payload (schema in
//! docs/BENCHMARKS.md): sustained jobs/sec, p50/p99 submission-to-
//! resolution latency, dedup hit-rate, backpressure pushbacks, and the
//! queue high-water mark. Acceptance: dedup hit-rate >= 7/8, bounded
//! peak queue, cancellations observed.

use criterion::{criterion_group, Criterion};
use mlmd_core::engine::SampleStride;
use mlmd_service::loadgen::{self, LoadProfile};
use mlmd_service::{Scheduler, ServiceConfig};

/// The measured deployment: two workers over a queue deliberately
/// smaller than the acceptance burst, so admission control is exercised
/// rather than bypassed.
fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        progress_stride: SampleStride::new(100),
        dedup: true,
        planner: None,
    }
}

fn bench_service_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_load");
    group.sample_size(10);

    // One long-lived service per profile; `drive` reports metric deltas,
    // so iterations do not contaminate each other.
    let smoke = Scheduler::new(service_config());
    let profile = LoadProfile::smoke();
    group.bench_function("drive_smoke", |b| {
        b.iter(|| loadgen::drive(&smoke, &profile));
    });
    smoke.shutdown();

    let acceptance = Scheduler::new(service_config());
    let profile = LoadProfile::acceptance();
    group.bench_function("drive_acceptance", |b| {
        b.iter(|| loadgen::drive(&acceptance, &profile));
    });
    acceptance.shutdown();

    group.finish();
}

criterion_group!(benches, bench_service_load);

fn main() {
    benches();

    // The acceptance measurement behind BENCH_pr7.json. `--test` (the CI
    // bench smoke) downsizes to the smoke profile to stay seconds-scale.
    let test_mode = std::env::args().any(|a| a == "--test");
    let profile = if test_mode {
        LoadProfile::smoke()
    } else {
        LoadProfile::acceptance()
    };
    let config = service_config();
    let scheduler = Scheduler::new(config);
    let report = loadgen::drive(&scheduler, &profile);
    scheduler.shutdown();
    assert_eq!(
        report.completed + report.cancelled,
        report.submitted as u64,
        "every submitted job must resolve"
    );
    assert!(
        report.dedup_hits >= 7,
        "identical sweeps must coalesce (got {})",
        report.dedup_hits
    );
    println!(
        "service_load acceptance report (BENCH_pr7.json schema):\n{}",
        report.to_json(config.workers, config.queue_capacity)
    );
}
