//! Criterion bench: Allegro-lite inference — monolithic vs the
//! two-batch block inference of Sec. V.B.9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlmd_nnqmd::infer::block_evaluate;
use mlmd_nnqmd::model::{AllegroLite, ModelConfig};
use mlmd_numerics::vec3::Vec3;
use mlmd_qxmd::perovskite::PerovskiteLattice;
use std::hint::black_box;

fn bench_infer(c: &mut Criterion) {
    let model = AllegroLite::new(
        ModelConfig {
            hidden: 8,
            k_max: 5,
            rcut: 4.0,
        },
        1,
    );
    let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, 0.2));
    let sys = &lat.system;
    let mut group = c.benchmark_group("nnqmd_inference");
    group.sample_size(10);
    for n_batches in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("block_evaluate", n_batches),
            &n_batches,
            |b, &n| {
                b.iter(|| {
                    block_evaluate(
                        black_box(&model),
                        &sys.species,
                        &sys.positions,
                        sys.box_lengths,
                        n,
                    )
                });
            },
        );
    }
    group.bench_function("monolithic_evaluate", |b| {
        b.iter(|| model.evaluate(black_box(&sys.species), &sys.positions, sys.box_lengths));
    });
    group.finish();
}

criterion_group!(benches, bench_infer);
criterion_main!(benches);
