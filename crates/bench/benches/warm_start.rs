//! Criterion bench: cold vs warm-started MESH driver construction.
//!
//! The `warm_start` group isolates the cost PR 6 removes: the converged
//! eigenstate pre-descent (`descent_steps` damped-gradient sweeps plus a
//! subspace rotation) that `MeshDriver` construction used to replicate
//! on every rank, every driver, every run. Each variant times *driver
//! construction only* — no MD steps — so the numbers read directly as
//! "what does standing up a driver cost":
//!
//! - `cold_serial_construct` / `warm_serial_construct`: one serial
//!   driver, fresh descent vs a pre-seeded in-memory cache hit.
//! - `cold_dist_construct_{2,4}rpd` / `warm_dist_construct_{2,4}rpd`:
//!   one domain at 2 and 4 ranks per domain. Cold resolves the descent
//!   on the domain root (PR 6's root-resolve + panel broadcast — the
//!   pre-PR-6 per-rank replication is gone either way); warm turns even
//!   the root's descent into a cache hit, leaving only the broadcast
//!   and the world/hierarchy envelope.
//!
//! Acceptance (BENCH_pr6.json): warm 4-rpd construction within ~1.1x of
//! warm serial construction — once the descent is cached, rank count
//! must no longer matter.

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_dcmesh::checkpoint::{GroundStateCache, WarmStart};
use mlmd_dcmesh::dist_mesh::DistributedMeshDriver;
use mlmd_dcmesh::fixture::small_mesh_builder;
use mlmd_parallel::comm::World;
use std::hint::black_box;

const E0: f64 = 0.05;

fn seeded_cache() -> GroundStateCache {
    let cache = GroundStateCache::new();
    let builder = small_mesh_builder(E0);
    cache.get_or_compute(builder.config_key(), || builder.ground_state());
    cache
}

fn bench_warm_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("warm_start");
    group.sample_size(10);

    group.bench_function("cold_serial_construct", |b| {
        b.iter(|| black_box(small_mesh_builder(E0).build().time_fs()));
    });

    let cache = seeded_cache();
    group.bench_function("warm_serial_construct", |b| {
        b.iter(|| {
            let drv = small_mesh_builder(E0)
                .warm_start(WarmStart::InMemory(cache.clone()))
                .build();
            black_box(drv.time_fs())
        });
    });

    for ranks_per_domain in [2usize, 4] {
        // The bare simulated-MPI envelope: spawn + join an n-rank world
        // doing no work. The dist-construct numbers below include this
        // harness cost once per iteration, so the per-driver construction
        // comparison in BENCH_pr6.json reads net of it.
        group.bench_function(format!("world_envelope_{ranks_per_domain}rpd"), |b| {
            b.iter(|| black_box(World::run(ranks_per_domain, |world| world.rank())));
        });

        group.bench_function(format!("cold_dist_construct_{ranks_per_domain}rpd"), |b| {
            b.iter(|| {
                black_box(World::run(ranks_per_domain, |world| {
                    DistributedMeshDriver::new(world, 1, |_| small_mesh_builder(E0)).time_fs()
                }))
            });
        });

        let cache = seeded_cache();
        group.bench_function(format!("warm_dist_construct_{ranks_per_domain}rpd"), |b| {
            b.iter(|| {
                black_box(World::run(ranks_per_domain, |world| {
                    let cache = cache.clone();
                    DistributedMeshDriver::new(world, 1, move |_| {
                        small_mesh_builder(E0).warm_start(WarmStart::InMemory(cache))
                    })
                    .time_fs()
                }))
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_warm_start);
criterion_main!(benches);
