//! Criterion bench: the Table V hotspot kernels (CGEMMs, nlp_prop,
//! kin_prop) on a fixed domain, plus the PR-10 blocked-vs-naive GEMM
//! A/B with analytic GFLOP/s from the kernel flop tally.

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_lfd::kin_prop::{KinImpl, KinProp};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::cgemm::{overlap, rank_update};
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::{gemm_tally, reset_gemm_tally, FlopCounter};
use mlmd_numerics::gemm::{gemm_blocked, gemm_naive};
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::rng::{Rng64, SplitMix64};
use mlmd_numerics::vec3::Vec3;
use std::hint::black_box;
use std::time::Instant;

fn bench_hotspots(c: &mut Criterion) {
    let grid = Grid3::new(16, 16, 16, 0.5);
    let norb = 16;
    let wf0 = WaveFunctions::random(grid, norb, 1);
    let wf = WaveFunctions::random(grid, norb, 2);
    let flops = FlopCounter::new();
    let mut group = c.benchmark_group("table5_hotspots");
    group.sample_size(10);
    group.bench_function("cgemm1_overlap", |b| {
        let mut s = Matrix::<c64>::zeros(norb, norb);
        b.iter(|| {
            overlap(
                c64::one(),
                &wf0.psi,
                &wf.psi,
                c64::zero(),
                black_box(&mut s),
            )
        });
    });
    group.bench_function("cgemm2_rank_update", |b| {
        let s = Matrix::<c64>::eye(norb);
        let mut psi = wf.psi.clone();
        b.iter(|| rank_update(c64::new(-0.01, 0.0), &wf0.psi, &s, black_box(&mut psi)));
    });
    group.bench_function("nlp_prop", |b| {
        let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
        let mut t = wf.clone();
        b.iter(|| nlp.apply(black_box(&mut t), NlpPrecision::F64, &flops));
    });
    group.bench_function("kin_prop", |b| {
        let kp = KinProp::new(grid);
        let mut t = wf.clone();
        b.iter(|| {
            kp.propagate_n(
                KinImpl::Parallel,
                black_box(&mut t),
                0.01,
                Vec3::ZERO,
                1,
                &flops,
            )
        });
    });
    group.finish();
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = SplitMix64::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f64() - 0.5)
}

/// Best-of-`reps` wall time of `f` in seconds — a fixed internal
/// repetition count so the A/B gate below stays stable even under the
/// one-sample `--test` smoke mode.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Blocked-vs-naive f64 GEMM on the two hot-path groups, with analytic
/// GFLOP/s from the thread-local kernel flop tally, and the PR-10
/// acceptance gate: the blocked kernel must be ≥1.3× the naive oracle on
/// at least one group.
fn bench_gemm_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr10_gemm_blocking");
    group.sample_size(10);

    // Group 1 — the DC-MESH skewed-panel shape shared with
    // `scaling.rs::gemm_skewed_panels`: seven 1-column panels plus one
    // ragged 25-column trailer of a (64×64)·(64×32) product.
    let (m, k, n) = (64usize, 64usize, 32usize);
    let a = random_matrix(m, k, 1);
    let b = random_matrix(k, n, 2);
    let panels: Vec<(usize, usize)> = (0..7).map(|j| (j, 1)).chain([(7, 25)]).collect();
    type Gemm<'a> = &'a dyn Fn(&Matrix<f64>, &Matrix<f64>, &mut Matrix<f64>);
    let run_panels = |kernel: Gemm| {
        for &(j0, w) in &panels {
            let bp = Matrix::from_fn(k, w, |p, j| b[(p, j0 + j)]);
            let mut cp = Matrix::<f64>::zeros(m, w);
            kernel(black_box(&a), &bp, &mut cp);
            black_box(cp);
        }
    };
    group.bench_function("skewed_panels_naive", |bch| {
        bch.iter(|| run_panels(&|a, b, c| gemm_naive(1.0, a, b, 0.0, c)));
    });
    group.bench_function("skewed_panels_blocked", |bch| {
        bch.iter(|| run_panels(&|a, b, c| gemm_blocked(1.0, a, b, 0.0, c)));
    });

    // Group 2 — the orbital-block panel kernel: a cache-resident-exceeding
    // square product, the shape of the subspace rotations in the LFD
    // propagators at production orbital counts.
    let nn = 256usize;
    let a2 = random_matrix(nn, nn, 3);
    let b2 = random_matrix(nn, nn, 4);
    let mut c2 = Matrix::<f64>::zeros(nn, nn);
    group.bench_function("square256_naive", |bch| {
        bch.iter(|| gemm_naive(1.0, black_box(&a2), &b2, 0.0, &mut c2));
    });
    group.bench_function("square256_blocked", |bch| {
        bch.iter(|| gemm_blocked(1.0, black_box(&a2), &b2, 0.0, &mut c2));
    });
    group.finish();

    // ---- A/B gate + analytic GFLOP/s (independent of criterion sampling).
    let t_skew_naive = best_secs(5, || run_panels(&|a, b, c| gemm_naive(1.0, a, b, 0.0, c)));
    let t_skew_blocked = best_secs(5, || run_panels(&|a, b, c| gemm_blocked(1.0, a, b, 0.0, c)));
    let t_sq_naive = best_secs(3, || gemm_naive(1.0, &a2, &b2, 0.0, &mut c2));
    let t_sq_blocked = best_secs(3, || gemm_blocked(1.0, &a2, &b2, 0.0, &mut c2));

    reset_gemm_tally();
    run_panels(&|a, b, c| gemm_blocked(1.0, a, b, 0.0, c));
    let fl_skew = gemm_tally() as f64;
    reset_gemm_tally();
    gemm_blocked(1.0, &a2, &b2, 0.0, &mut c2);
    let fl_sq = gemm_tally() as f64;

    let s_skew = t_skew_naive / t_skew_blocked;
    let s_sq = t_sq_naive / t_sq_blocked;
    println!(
        "pr10_gemm_blocking/skewed_panels: {fl_skew:.0} flops, naive {:.3} GF/s, blocked {:.3} GF/s, speedup {s_skew:.2}x",
        fl_skew / t_skew_naive / 1e9,
        fl_skew / t_skew_blocked / 1e9,
    );
    println!(
        "pr10_gemm_blocking/square256: {fl_sq:.0} flops, naive {:.3} GF/s, blocked {:.3} GF/s, speedup {s_sq:.2}x",
        fl_sq / t_sq_naive / 1e9,
        fl_sq / t_sq_blocked / 1e9,
    );
    assert!(
        s_skew.max(s_sq) >= 1.3,
        "blocked f64 GEMM must be >=1.3x naive on a hot-path group \
         (skewed panels {s_skew:.2}x, square256 {s_sq:.2}x)"
    );
}

criterion_group!(benches, bench_hotspots, bench_gemm_blocking);
criterion_main!(benches);
