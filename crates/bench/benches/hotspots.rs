//! Criterion bench: the Table V hotspot kernels (CGEMMs, nlp_prop,
//! kin_prop) on a fixed domain.

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_lfd::kin_prop::{KinImpl, KinProp};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::cgemm::{overlap, rank_update};
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::vec3::Vec3;
use std::hint::black_box;

fn bench_hotspots(c: &mut Criterion) {
    let grid = Grid3::new(16, 16, 16, 0.5);
    let norb = 16;
    let wf0 = WaveFunctions::random(grid, norb, 1);
    let wf = WaveFunctions::random(grid, norb, 2);
    let flops = FlopCounter::new();
    let mut group = c.benchmark_group("table5_hotspots");
    group.sample_size(10);
    group.bench_function("cgemm1_overlap", |b| {
        let mut s = Matrix::<c64>::zeros(norb, norb);
        b.iter(|| {
            overlap(
                c64::one(),
                &wf0.psi,
                &wf.psi,
                c64::zero(),
                black_box(&mut s),
            )
        });
    });
    group.bench_function("cgemm2_rank_update", |b| {
        let s = Matrix::<c64>::eye(norb);
        let mut psi = wf.psi.clone();
        b.iter(|| rank_update(c64::new(-0.01, 0.0), &wf0.psi, &s, black_box(&mut psi)));
    });
    group.bench_function("nlp_prop", |b| {
        let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.01));
        let mut t = wf.clone();
        b.iter(|| nlp.apply(black_box(&mut t), NlpPrecision::F64, &flops));
    });
    group.bench_function("kin_prop", |b| {
        let kp = KinProp::new(grid);
        let mut t = wf.clone();
        b.iter(|| {
            kp.propagate_n(
                KinImpl::Parallel,
                black_box(&mut t),
                0.01,
                Vec3::ZERO,
                1,
                &flops,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hotspots);
criterion_main!(benches);
