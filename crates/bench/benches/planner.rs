//! Criterion bench: calibration and ahead-of-time planning.
//!
//! Two timed groups — `calibrate_quick` (the probe-workload fit end to
//! end) and `plan` (the pure-arithmetic inversion the scheduler runs on
//! every submission, which must stay microseconds-scale) — followed by
//! the acceptance measurement behind `BENCH_pr8.json`: fit this host,
//! admit a small-fixture MESH job through a planner-gated scheduler,
//! and report predicted vs measured wall-clock plus the admission gate
//! exercising both verdicts. Acceptance: the measured/predicted ratio
//! stays within the 2× band and the oversized job is refused.

use criterion::{criterion_group, Criterion};
use mlmd_core::config::PipelineConfig;
use mlmd_core::engine::SampleStride;
use mlmd_exasim::calibrate::{calibrate, CalibrationConfig, FIXTURE_E0};
use mlmd_exasim::planner::{PlanLimits, Planner};
use mlmd_exasim::Machine;
use mlmd_service::{JobSpec, Scheduler, ServiceConfig, SubmitError};

fn fixture_material() -> PipelineConfig {
    let mut cfg = PipelineConfig::small_demo();
    cfg.cells = (4, 4, 1);
    cfg.prepare_steps = 0;
    cfg
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    group.bench_function("calibrate_quick", |b| {
        b.iter(|| calibrate(&CalibrationConfig::quick()));
    });

    let cal = calibrate(&CalibrationConfig::quick());
    let planner = Planner::new(Machine::from_calibration(&cal), cal);
    let job = JobSpec::mesh_run(fixture_material(), FIXTURE_E0, 6).plan_job();
    group.bench_function("plan", |b| {
        b.iter(|| planner.plan(&job));
    });

    group.finish();
}

criterion_group!(benches, bench_planner);

fn main() {
    benches();

    // The acceptance measurement behind BENCH_pr8.json. `--test` (the CI
    // bench smoke) shortens the measured job to stay seconds-scale.
    let test_mode = std::env::args().any(|a| a == "--test");
    let steps = if test_mode { 8 } else { 24 };

    let cal = calibrate(&CalibrationConfig::quick());
    let planner = Planner::new(Machine::from_calibration(&cal), cal).with_limits(PlanLimits {
        max_wall_secs: 600.0,
        max_cost_rank_secs: 2400.0,
        ..PlanLimits::default()
    });
    let scheduler = Scheduler::new(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        progress_stride: SampleStride::new(100),
        dedup: true,
        planner: Some(planner),
    });

    // The gate must refuse oversized work with the typed verdict…
    let refused = scheduler.submit(JobSpec::mesh_run(
        fixture_material(),
        FIXTURE_E0,
        10_000_000,
    ));
    assert!(
        matches!(refused, Err(SubmitError::PlanRejected(_))),
        "oversized job must be plan-rejected, got {refused:?}"
    );
    // …and admit + predict the right-sized fixture run.
    let job = scheduler
        .submit(JobSpec::mesh_run(fixture_material(), FIXTURE_E0, steps))
        .expect("fixture job admitted");
    let plan = job.plan().expect("admitted job carries its plan");
    let out = job.wait();
    assert!(!out.cancelled);
    let m = scheduler.metrics();
    scheduler.shutdown();
    let ratio = m.actual_secs / m.predicted_secs;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "measured {} s vs predicted {} s: ratio {ratio} outside the 2x band",
        m.actual_secs,
        m.predicted_secs
    );

    println!("planner acceptance report (BENCH_pr8.json schema):");
    println!("{{");
    println!("  \"bench\": \"planner\",");
    println!("  \"mesh_steps\": {steps},");
    println!("  \"calibration\": {{");
    println!("    \"alpha_s\": {:.3e},", cal.alpha);
    println!("    \"beta_s_per_byte\": {:.3e},", cal.beta);
    println!("    \"mesh_step_s\": {:.6},", cal.mesh_step);
    println!("    \"construct_cold_s\": {:.6},", cal.construct_cold);
    println!("    \"construct_warm_s\": {:.6},", cal.construct_warm);
    println!(
        "    \"dist_step_s\": [{:.6}, {:.6}, {:.6}],",
        cal.dist_step[0], cal.dist_step[1], cal.dist_step[2]
    );
    println!("    \"md_atom_step_s\": {:.3e},", cal.md_atom_step);
    println!("    \"fdtd_cell_step_s\": {:.3e}", cal.fdtd_cell_step);
    println!("  }},");
    println!(
        "  \"plan\": {{ \"ranks_per_domain\": {}, \"batch_width\": {}, \"sample_stride\": {} }},",
        plan.ranks_per_domain
            .map_or("null".to_string(), |r| r.to_string()),
        plan.batch_width,
        plan.sample_stride
    );
    println!("  \"predicted_secs\": {:.6},", m.predicted_secs);
    println!("  \"actual_secs\": {:.6},", m.actual_secs);
    println!("  \"actual_over_predicted\": {ratio:.4},");
    println!("  \"plan_rejected\": {}", m.plan_rejected);
    println!("}}");
}
