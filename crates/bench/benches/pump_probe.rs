//! Criterion bench: the pump–probe MESH measurement, sequential vs as a
//! batched `RunPlan`.
//!
//! The `pump_probe` group runs the pipeline's embedded-region lit + dark
//! driver pair (the stage-2 measurement of the Fig. 3 workflow) two ways:
//! stepped one after another (the pre-engine behavior) and as a single
//! `RunPlan` batch on work-stealing pools of width 2 and 4. On a
//! single-CPU container both serialize the compute, so the delta measures
//! the batching overhead; on multi-core hardware the batch overlaps the
//! two independent MESH integrations. A 4-amplitude sweep exercises the
//! N-run generalization. Results for this PR are recorded in
//! `BENCH_pr4.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_core::config::PipelineConfig;
use mlmd_core::engine::{Engine, RunPlan, TraceObserver};
use mlmd_core::pipeline::Pipeline;
use std::hint::black_box;

fn bench_pump_probe(c: &mut Criterion) {
    let mut cfg = PipelineConfig::small_demo();
    // Short MESH trajectories keep the CI smoke run fast; each step still
    // runs the full Ehrenfest/hopping/QXMD loop.
    cfg.mesh_steps = 3;
    let pipeline = Pipeline::new(cfg);
    let steps = cfg.mesh_steps;
    let mut group = c.benchmark_group("pump_probe");
    group.sample_size(10);

    group.bench_function("lit_dark_sequential", |b| {
        b.iter(|| {
            let lit = Engine::run_collect(&mut pipeline.mesh_stage(cfg.pulse_e0), steps);
            let dark = Engine::run_collect(&mut pipeline.mesh_stage(0.0), steps);
            black_box(lit.len() + dark.len())
        });
    });

    for width in [2usize, 4] {
        group.bench_function(format!("lit_dark_runplan_w{width}"), |b| {
            b.iter(|| {
                let mut plan = RunPlan::new();
                plan.push(
                    pipeline.mesh_stage(cfg.pulse_e0),
                    TraceObserver::every(),
                    steps,
                );
                plan.push(pipeline.mesh_stage(0.0), TraceObserver::every(), steps);
                let done = plan.execute_with_width(width);
                black_box(done.len())
            });
        });
    }

    group.bench_function("sweep4_runplan", |b| {
        b.iter(|| {
            let runs = pipeline.pump_probe_sweep(&[0.025, 0.05, 0.075, 0.1]);
            black_box(runs.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pump_probe);
criterion_main!(benches);
