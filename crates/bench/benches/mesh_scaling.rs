//! Criterion bench: serial vs rank-parallel MESH step driver.
//!
//! The `mesh_scaling` group runs the canonical `small_mesh_driver`
//! fixture through the serial `MeshDriver` oracle and through
//! `DistributedMeshDriver` at 1, 2, and 4 ranks per domain, plus the
//! lit/dark pump-probe pair as a two-domain world. On a single CPU the
//! distributed drivers pay thread + collective overhead on top of the
//! serial kernels (panel/term allgathers per MD step, the world-level
//! E/J allreduce), so the group measures the *cost of the communication
//! pattern* — the number the exasim cost model needs to extrapolate
//! multi-node scaling. Driver construction (the eigenstate pre-descent)
//! is inside the timed region for every variant — it is identical
//! serial work per replica, so the deltas between variants still isolate
//! the communication pattern (world sizes stay bounded so CI smoke runs
//! fast).

use criterion::{criterion_group, criterion_main, Criterion};
use mlmd_dcmesh::dist_mesh::run_distributed_mesh;
use mlmd_dcmesh::fixture::{small_mesh_builder, small_mesh_driver};
use std::hint::black_box;

const STEPS: usize = 2;
const E0: f64 = 0.05;

fn bench_mesh_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_scaling");
    group.sample_size(10);

    group.bench_function("serial_1dom", |b| {
        b.iter(|| {
            let mut drv = small_mesh_driver(E0);
            black_box(drv.run(STEPS))
        });
    });

    for ranks_per_domain in [1usize, 2, 4] {
        group.bench_function(format!("dist_1dom_{ranks_per_domain}rpd"), |b| {
            b.iter(|| {
                black_box(run_distributed_mesh(1, ranks_per_domain, STEPS, |_| {
                    small_mesh_builder(E0)
                }))
            });
        });
    }

    // The pump-probe pair as a two-domain world (the ROADMAP's "RunPlan
    // batch inside World::run"): lit and dark advance concurrently, one
    // rank each.
    group.bench_function("lit_dark_2dom_1rpd", |b| {
        b.iter(|| {
            black_box(run_distributed_mesh(2, 1, STEPS, |d| {
                small_mesh_builder(if d == 0 { E0 } else { 0.0 })
            }))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_mesh_scaling);
criterion_main!(benches);
