//! Per-phase wall-clock probes on the engine's [`Observer`] seam.
//!
//! [`CostProbe`] wraps any observer and timestamps every step the engine
//! reports, without perturbing what the inner observer sees. The resulting
//! [`CostProbeReport`] (step count, total wall, per-step mean/min/max) is
//! the driver-side measurement the `mlmd-exasim` calibration harness fits
//! its per-step kernel terms from — the counterpart of the comm fabric's
//! per-collective counters on the network side.
//!
//! Because the probe clocks the *interval between observes* (and from
//! construction to the first observe), building the probe immediately
//! before `Engine::run` makes the first sample a true first-step time;
//! building it earlier folds setup cost into that sample. The calibration
//! harness exploits both: a probe built around a run measures steps, and
//! [`time_secs`] measures the construction phases the step loop excludes.

use crate::engine::{Observer, StepInfo, Stepper};
use std::time::Instant;

/// Wall-clock one closure; returns its value and the elapsed seconds.
/// The calibration harness uses this for the phases that happen outside
/// the engine's step loop (driver construction, warm-start loads).
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// An [`Observer`] wrapper that records the wall-clock duration of every
/// step while forwarding each record to the inner observer unchanged.
pub struct CostProbe<O> {
    inner: O,
    started: Instant,
    last: Instant,
    step_secs: Vec<f64>,
}

impl<O> CostProbe<O> {
    /// Start the probe clock now, wrapping `inner`. The interval from this
    /// call to the first observed step is charged to step 0.
    pub fn new(inner: O) -> Self {
        let now = Instant::now();
        Self {
            inner,
            started: now,
            last: now,
            step_secs: Vec::new(),
        }
    }

    /// The wrapped observer.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwrap, discarding the timing samples.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Per-step wall durations observed so far, in step order.
    pub fn step_secs(&self) -> &[f64] {
        &self.step_secs
    }

    /// Summarize the samples collected so far under a phase label.
    pub fn report(&self, label: &'static str) -> CostProbeReport {
        let steps = self.step_secs.len();
        let step_total: f64 = self.step_secs.iter().sum();
        let (mut min, mut max) = (f64::INFINITY, 0.0f64);
        for &s in &self.step_secs {
            min = min.min(s);
            max = max.max(s);
        }
        CostProbeReport {
            label,
            steps,
            total_secs: (self.last - self.started).as_secs_f64(),
            step_secs_total: step_total,
            step_secs_mean: if steps == 0 {
                0.0
            } else {
                step_total / steps as f64
            },
            step_secs_min: if steps == 0 { 0.0 } else { min },
            step_secs_max: max,
        }
    }
}

impl<S: Stepper, O: Observer<S>> Observer<S> for CostProbe<O> {
    fn observe(&mut self, info: StepInfo, stepper: &S, record: &S::Record) {
        let now = Instant::now();
        self.step_secs.push((now - self.last).as_secs_f64());
        self.last = now;
        self.inner.observe(info, stepper, record);
    }
}

/// Wall-clock summary of one probed run phase.
///
/// `total_secs` spans probe construction to the last observed step;
/// `step_secs_*` summarize the individual inter-observe intervals. With a
/// sampling stride of 1 the two totals agree; with a coarser stride each
/// sample covers `stride` steps and `total_secs` remains the honest
/// whole-phase figure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostProbeReport {
    pub label: &'static str,
    pub steps: usize,
    pub total_secs: f64,
    pub step_secs_total: f64,
    pub step_secs_mean: f64,
    pub step_secs_min: f64,
    pub step_secs_max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, NullObserver};

    /// Minimal stepper: spins for a deterministic amount of work.
    struct Spin(u64);

    impl Stepper for Spin {
        type Record = u64;
        fn step(&mut self) -> u64 {
            let mut acc = self.0;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            self.0 = acc;
            acc
        }
        fn time_fs(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn probe_counts_every_step_and_sums_to_total() {
        let mut probe = CostProbe::new(NullObserver);
        let mut spin = Spin(1);
        Engine::run(&mut spin, 5, &mut probe);
        let report = probe.report("spin");
        assert_eq!(report.steps, 5);
        assert_eq!(report.label, "spin");
        assert!(report.step_secs_min >= 0.0);
        assert!(report.step_secs_max >= report.step_secs_mean);
        assert!(report.step_secs_mean >= report.step_secs_min);
        // The samples partition [construction, last observe] exactly.
        let sum: f64 = probe.step_secs().iter().sum();
        assert!((sum - report.total_secs).abs() < 1e-9);
    }

    #[test]
    fn probe_forwards_records_to_inner_observer() {
        struct Sum(u64);
        impl Observer<Spin> for Sum {
            fn observe(&mut self, _: StepInfo, _: &Spin, record: &u64) {
                self.0 = self.0.wrapping_add(*record);
            }
        }
        let mut probe = CostProbe::new(Sum(0));
        let mut spin_a = Spin(7);
        Engine::run(&mut spin_a, 3, &mut probe);
        let seen = probe.into_inner().0;

        let mut spin_b = Spin(7);
        let mut expect = 0u64;
        for _ in 0..3 {
            expect = expect.wrapping_add(spin_b.step());
        }
        assert_eq!(seen, expect, "probe must not perturb the inner observer");
    }

    #[test]
    fn empty_probe_reports_zeros() {
        let probe = CostProbe::new(NullObserver);
        let report = probe.report("idle");
        assert_eq!(report.steps, 0);
        assert_eq!(report.step_secs_mean, 0.0);
        assert_eq!(report.step_secs_min, 0.0);
        assert_eq!(report.step_secs_max, 0.0);
    }

    #[test]
    fn time_secs_returns_value_and_duration() {
        let (v, secs) = time_secs(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
