//! Pipeline configuration.

use mlmd_dcmesh::ehrenfest::EhrenfestConfig;
use mlmd_dcmesh::WarmStartPolicy;

/// All knobs of the end-to-end Fig. 3 run.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Supercell cells per axis (the superlattice lives in x–y).
    pub cells: (usize, usize, usize),
    /// Skyrmions per axis in the superlattice.
    pub skyrmions: (usize, usize),
    /// Skyrmion radius in cells.
    pub skyrmion_radius: f64,
    /// Spontaneous Ti displacement amplitude (Å).
    pub u0: f64,
    /// Preparation MD steps (GS relaxation / thermalization).
    pub prepare_steps: usize,
    /// Preparation temperature (K); 0 = quenched.
    pub temperature: f64,
    /// Laser peak field (a.u.).
    pub pulse_e0: f64,
    /// Laser carrier frequency (a.u.).
    pub pulse_omega: f64,
    /// DC-MESH MD steps under the pulse.
    pub mesh_steps: usize,
    /// Ehrenfest inner-loop settings.
    pub ehrenfest: EhrenfestConfig,
    /// XS-NNQMD response MD steps after the pulse.
    pub response_steps: usize,
    /// Response-trace sampling stride: record the polarization texture
    /// every this many MD steps (plus always the final step). The default
    /// of 10 reproduces the historical `step % 10` cadence bit-for-bit.
    pub response_sample_stride: usize,
    /// When `Some(n)`, the respond stage adds a neural-network force term
    /// evaluated through `block_evaluate` with `n` inference batches (the
    /// Sec. V.B.9 neighbor-list blocking). `None` (the default) keeps the
    /// analytic excitation-reshaped landscape only.
    pub respond_nn_batches: Option<usize>,
    /// When `Some(r)`, the pump–probe MESH batch (the lit/dark pair of
    /// `Pipeline::run`, or the N-amplitude `pump_probe_sweep`) executes
    /// *inside* a simulated-MPI `World::run` region: one
    /// `DistributedMeshDriver` domain per run, `r` ranks per domain
    /// sharding each driver's band-local work. `None` (the default) keeps
    /// the in-process `RunPlan` batch on the work-stealing pool — both
    /// paths are bit-identical (pinned in `tests/mesh_dist.rs`).
    pub mesh_ranks_per_domain: Option<usize>,
    /// Where MESH drivers get their converged ground state from.
    /// `ProcessCache` (the default) shares one descent per config hash
    /// across the whole process — a `RunPlan` batch or `pump_probe_sweep`
    /// runs N amplitudes off 1 descent, since the pulse does not enter
    /// the ground-state key — and is bit-identical to `Fresh` (the warm
    /// panel *is* the cold panel; pinned in the checkpoint suite).
    pub mesh_warm_start: WarmStartPolicy,
    /// MD time step (fs).
    pub dt_fs: f64,
    /// Excitation gain from DC-MESH n_exc to the per-cell fraction
    /// (the XN/NN extrapolation constant of MSA-3).
    pub excitation_gain: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// A laptop-scale demonstration: one skyrmion in a 16×16×2 supercell.
    pub fn small_demo() -> Self {
        Self {
            cells: (16, 16, 2),
            skyrmions: (1, 1),
            skyrmion_radius: 6.0,
            u0: 0.3,
            prepare_steps: 20,
            temperature: 0.0,
            pulse_e0: 0.1,
            pulse_omega: 0.8,
            mesh_steps: 6,
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 30,
                self_consistent: false,
            },
            response_steps: 2000,
            response_sample_stride: 10,
            respond_nn_batches: None,
            mesh_ranks_per_domain: None,
            mesh_warm_start: WarmStartPolicy::ProcessCache,
            dt_fs: 0.2,
            excitation_gain: 8.0,
            seed: 2025,
        }
    }

    /// A 2×2-skyrmion superlattice (the Fig. 3 geometry, shrunk).
    pub fn superlattice_demo() -> Self {
        Self {
            cells: (32, 32, 2),
            skyrmions: (2, 2),
            skyrmion_radius: 6.0,
            ..Self::small_demo()
        }
    }

    /// Total unit cells.
    pub fn n_cells(&self) -> usize {
        self.cells.0 * self.cells.1 * self.cells.2
    }

    /// Total atoms (5 per perovskite cell).
    pub fn n_atoms(&self) -> usize {
        5 * self.n_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_sizes() {
        let c = PipelineConfig::small_demo();
        assert_eq!(c.n_cells(), 512);
        assert_eq!(c.n_atoms(), 2560);
        let s = PipelineConfig::superlattice_demo();
        assert_eq!(s.n_cells(), 2048);
        assert_eq!(s.skyrmions, (2, 2));
    }
}
