//! Metamodel-space algebra (MSA) — the three minimal-information
//! couplings of paper Sec. V (Fig. 1).
//!
//! MSA treats "level of theory" and "problem size / time / dataset" as
//! axes of a metamodel space; couplings between subproblems are arithmetic
//! in that space. This module gives each coupling an explicit, typed
//! interface so the payloads crossing subsystem boundaries are visible
//! (and countable — the whole point of the paradigm):
//!
//! | MSA | axis | payload | implemented by |
//! |---|---|---|---|
//! | 1 (shadow dynamics) | time | `Δf_s`, `Δv_loc` | [`ShadowHandshake`] / `mlmd-dcmesh::shadow` |
//! | 2 (TEA) | dataset | per-dataset `(scale, shift)` | [`tea_unify`] / `mlmd-nnqmd::tea` |
//! | 3 (XN/NN) | space | `n_exc^(α)` → mixing weight `w` | [`XnNnCoupling`] / `mlmd-nnqmd::mix` |

use mlmd_nnqmd::tea::{self, TeaMap};
use mlmd_nnqmd::train::Dataset;

/// MSA-1: the shadow-dynamics payload description. The actual transfers
/// happen in `mlmd-dcmesh::shadow`; this struct documents and sizes them.
#[derive(Clone, Copy, Debug)]
pub struct ShadowHandshake {
    pub norb: usize,
    pub ngrid: usize,
}

impl ShadowHandshake {
    /// Bytes per MD step crossing CPU→GPU (Δv) and GPU→CPU (Δf + n_exc + J).
    pub fn bytes_per_md_step(&self) -> (u64, u64) {
        let down = 8 * self.ngrid as u64;
        let up = 8 * (self.norb as u64 + 4);
        (down, up)
    }

    /// The footprint that *stays* on the device (what shadow dynamics
    /// avoids moving): the complex wave-function panel.
    pub fn resident_bytes(&self) -> u64 {
        16 * self.ngrid as u64 * self.norb as u64
    }

    /// Amortization ratio over `n_qd` steps: naive (ship ψ every QD step)
    /// vs shadow traffic.
    pub fn amortization(&self, n_qd: usize) -> f64 {
        let naive = 2 * self.resident_bytes() * n_qd as u64;
        let (down, up) = self.bytes_per_md_step();
        naive as f64 / (down + up) as f64
    }
}

/// MSA-2: unify multi-fidelity datasets by total-energy alignment.
/// Thin re-export of `mlmd-nnqmd::tea` at the orchestration level.
pub fn tea_unify(datasets: &[Dataset], overlaps: &[Vec<(f64, f64)>]) -> Dataset {
    tea::unify(datasets, overlaps)
}

/// Fit one TEA map.
pub fn tea_fit(foreign: &[f64], reference: &[f64]) -> TeaMap {
    tea::fit(foreign, reference)
}

/// MSA-3: XN/NN coupling — the excitation count from DC-MESH
/// (high-fidelity, small region) extrapolated to the NNQMD mixing weight
/// (low-fidelity, large region). "The sole assumption is that the
/// difference between [the two methods] remains the same across problem
/// sizes" — the weight is a *ratio*, not an absolute.
#[derive(Clone, Copy, Debug)]
pub struct XnNnCoupling {
    /// Electrons represented by the DC-MESH domain.
    pub domain_electrons: f64,
    /// Cells represented by the NNQMD supercell.
    pub supercell_cells: f64,
    /// Gain applied to the per-electron excitation fraction.
    pub gain: f64,
}

impl XnNnCoupling {
    /// Per-cell excitation fraction from the domain's excitation count.
    pub fn cell_fraction(&self, n_exc: f64) -> f64 {
        let per_electron = n_exc / self.domain_electrons.max(1e-300);
        (per_electron * self.gain).clamp(0.0, 1.0)
    }

    /// Eq. (4) mixing weight for the force blend.
    pub fn mixing_weight(&self, n_exc: f64) -> f64 {
        self.cell_fraction(n_exc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_payload_is_tiny() {
        // The paper's production domain: 1,024 orbitals on 70×70×72.
        let h = ShadowHandshake {
            norb: 1024,
            ngrid: 70 * 70 * 72,
        };
        let (down, up) = h.bytes_per_md_step();
        assert!(up < 10_000, "Δf payload is O(Norb): {up} B");
        assert!(down < h.resident_bytes() / 100, "Δv ≪ ψ footprint");
        // Amortized over 1,000 QD steps, shadow wins by > 10⁵.
        assert!(h.amortization(1000) > 1e5);
    }

    #[test]
    fn xn_nn_weight_saturates() {
        let c = XnNnCoupling {
            domain_electrons: 128.0,
            supercell_cells: 1e6,
            gain: 50.0,
        };
        assert_eq!(c.mixing_weight(0.0), 0.0);
        assert!(c.mixing_weight(1.0) > 0.0);
        assert_eq!(c.mixing_weight(1e9), 1.0);
        // Monotone.
        assert!(c.mixing_weight(2.0) > c.mixing_weight(1.0));
    }

    #[test]
    fn tea_reexport_works() {
        let f = [1.0, 2.0, 3.0];
        let r = [2.0, 4.0, 6.0];
        let map = tea_fit(&f, &r);
        assert!((map.scale - 2.0).abs() < 1e-12);
    }
}
