//! The Fig. 3 pipeline: light-induced switching of a ferroelectric
//! skyrmion superlattice.
//!
//! "We adopt a multiscale simulation approach, where we first prepare a
//! complex polar topology, i.e., a superlattice of skyrmions using
//! GS-NNQMD. These atomic positions are fed to DC-MESH to simulate
//! electronic and structural responses to a femtosecond laser pulse.
//! Informed by the resulting electronic-excitation number from DC-MESH,
//! XS-NNQMD simulation is then performed to study larger
//! spatiotemporal-scale topological dynamics." (paper Sec. VI.A)
//!
//! Stage 1 (prepare) and stage 3 (response) run on the supercell with the
//! ground-state / excitation-reshaped force field; stage 2 runs the full
//! DC-MESH driver on an embedded quantum region (the XN of the XN/NN
//! coupling, MSA-3) whose excitation count is extrapolated to the
//! supercell. Dissipation during the response stage (Langevin friction)
//! models the electron–phonon and phonon–phonon energy drain of the real
//! material.
//!
//! Every stage is an engine run (see [`crate::engine`]): prepare and
//! respond drive an [`MdStage`] over the [`SupercellForce`], and the
//! pump–probe measurement executes its lit and dark [`MeshDriver`] runs
//! as one [`Pipeline::mesh_batch`] ([`Pipeline::pump_probe_sweep`]
//! generalizes the pair to an N-amplitude sweep). The batch has two
//! bit-identical execution forms: a concurrent [`RunPlan`] on the
//! work-stealing pool (the default), or — with
//! `PipelineConfig::mesh_ranks_per_domain` set — a simulated-MPI
//! [`World::run`] region with one rank-sharded
//! [`DistributedMeshDriver`] domain per run (`tests/mesh_dist.rs` pins
//! the equivalence).

use crate::config::PipelineConfig;
use crate::engine::{
    polarization_of, CancelToken, Engine, NullObserver, Observer, ResponseTraceObserver,
    RunOutcome, RunPlan, SampleStride, SupercellForce, TraceObserver,
};
use crate::msa::XnNnCoupling;
use mlmd_dcmesh::dist_mesh::DistributedMeshDriver;
use mlmd_dcmesh::mesh::{MeshConfig, MeshDriver, MeshDriverBuilder, MeshStepRecord};
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::potential::AtomSite;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::source::GaussianPulse;
use mlmd_nnqmd::md::NnForceField;
use mlmd_nnqmd::model::{AllegroLite, ModelConfig};
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::rng::Xoshiro256;
use mlmd_numerics::vec3::Vec3;
use mlmd_parallel::comm::World;
use mlmd_qxmd::atoms::AtomsSystem;
use mlmd_qxmd::ferro::{FerroModel, FerroParams};
use mlmd_qxmd::md_stage::MdStage;
use mlmd_qxmd::perovskite::PerovskiteLattice;
use mlmd_qxmd::thermostat::Langevin;
use mlmd_topo::polarization::PolarizationField;
use mlmd_topo::superlattice::Texture;
use mlmd_topo::switching::{compare, SwitchingVerdict, TextureReport};

/// Edge length of the MESH stage's cubic FD grid — every pipeline MESH
/// run (and the calibration fixture) uses this one domain shape.
pub const MESH_STAGE_EDGE: usize = 8;
/// FD grid points of the MESH stage ([`MESH_STAGE_EDGE`]³).
pub const MESH_STAGE_NGRID: usize = MESH_STAGE_EDGE * MESH_STAGE_EDGE * MESH_STAGE_EDGE;
/// KS states in the MESH stage's panel (2 occupied + 6 virtual).
pub const MESH_STAGE_NORB: usize = 8;

/// One point of the response-stage trajectory.
#[derive(Clone, Copy, Debug)]
pub struct ResponsePoint {
    pub time_fs: f64,
    pub polar_order: f64,
    pub mean_charge: f64,
}

/// One lit run of a pump–probe amplitude sweep.
#[derive(Clone, Debug)]
pub struct PumpProbeRun {
    /// Pulse amplitude of this run (a.u.).
    pub e0: f64,
    /// Full MESH trajectory of the lit run.
    pub records: Vec<MeshStepRecord>,
    /// Peak excitation above the shared dark reference.
    pub n_exc_peak: f64,
}

/// The end-to-end result.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    pub initial_topological_charge: f64,
    pub final_topological_charge: f64,
    pub verdict: SwitchingVerdict,
    pub n_exc_peak: f64,
    pub excitation_fraction: f64,
    pub mesh_records: Vec<MeshStepRecord>,
    pub response_trace: Vec<ResponsePoint>,
}

/// The pipeline state.
pub struct Pipeline {
    pub config: PipelineConfig,
    lattice: PerovskiteLattice,
    ferro: FerroModel,
}

/// Peak excitation over a MESH trajectory.
fn peak_exc(records: &[MeshStepRecord]) -> f64 {
    records.iter().map(|r| r.n_exc).fold(0.0f64, f64::max)
}

impl Pipeline {
    /// Stage 0: build the skyrmion-superlattice supercell.
    pub fn new(config: PipelineConfig) -> Self {
        let (nx, ny, nz) = config.cells;
        let tex = Texture::skyrmion_lattice(
            config.skyrmions.0,
            config.skyrmions.1,
            nx as f64,
            ny as f64,
            config.skyrmion_radius,
        );
        let u0 = config.u0;
        let lattice = PerovskiteLattice::build(nx, ny, nz, |kx, ky, _| {
            tex.direction(kx as f64 + 0.5, ky as f64 + 0.5) * u0
        });
        let ferro = FerroModel::new(&lattice, FerroParams::pbtio3());
        Self {
            config,
            lattice,
            ferro,
        }
    }

    /// Current polarization field of the supercell.
    pub fn polarization(&self) -> PolarizationField {
        polarization_of(self.config.cells, &self.ferro, &self.lattice.system)
    }

    /// Move the supercell system out of the pipeline for an MD stage.
    fn take_system(&mut self) -> AtomsSystem {
        std::mem::replace(
            &mut self.lattice.system,
            AtomsSystem::new(Vec::new(), Vec::new(), Vec3::splat(1.0)),
        )
    }

    /// Run a supercell MD stage and reclaim its system and force model.
    fn run_md_stage<O: Observer<MdStage<SupercellForce>>>(
        &mut self,
        force: SupercellForce,
        n_steps: usize,
        thermostat: Option<Langevin>,
        rng: Xoshiro256,
        observer: &mut O,
    ) {
        let system = self.take_system();
        let mut stage = MdStage::new(system, force, self.config.dt_fs, thermostat, rng);
        Engine::run(&mut stage, n_steps, observer);
        let (system, force) = stage.into_parts();
        self.lattice.system = system;
        self.ferro = force.ferro;
    }

    /// Stage 1: GS relaxation/thermalization of the texture.
    fn prepare(&mut self) {
        let cfg = self.config;
        let mut rng = Xoshiro256::new(cfg.seed);
        if cfg.temperature > 0.0 {
            self.lattice.system.thermalize(cfg.temperature, &mut rng);
        }
        self.ferro.set_uniform_excitation(0.0);
        let thermostat =
            (cfg.temperature > 0.0).then(|| Langevin::new(cfg.temperature.max(1.0), 0.2));
        let force = SupercellForce::analytic(self.ferro.clone());
        self.run_md_stage(force, cfg.prepare_steps, thermostat, rng, &mut NullObserver);
    }

    /// The embedded-region MESH driver with the given pulse amplitude,
    /// assembled through [`MeshDriverBuilder`]. The QM patch starts at the
    /// *coupled* ferroelectric minimum u* = √((3J−a₂)/2a₄), so with no
    /// pulse the atoms are force-free and the electronic state is
    /// stationary. Public so tests, benches, and sweeps can engine-drive
    /// the same driver the pipeline measures.
    pub fn mesh_stage(&self, e0: f64) -> MeshDriver {
        self.mesh_stage_builder(e0).build()
    }

    /// The builder of [`Self::mesh_stage`]'s driver, with the configured
    /// warm-start source attached but not yet resolved. The distributed
    /// batch path hands this to every rank so the domain root resolves
    /// the ground state once and broadcasts it; `PipelineConfig`'s
    /// default `ProcessCache` policy additionally shares that one descent
    /// across every amplitude and batch in the process, since the pulse
    /// amplitude does not enter the ground-state config hash.
    pub fn mesh_stage_builder(&self, e0: f64) -> MeshDriverBuilder {
        let cfg = self.config;
        let grid = Grid3::new(MESH_STAGE_EDGE, MESH_STAGE_EDGE, MESH_STAGE_EDGE, 0.5);
        // 8-state panel, 2 occupied + 6 virtual (see MeshDriver docs).
        let wf = WaveFunctions::plane_waves(grid, MESH_STAGE_NORB);
        let occ = Occupations::aufbau(MESH_STAGE_NORB, 4.0);
        let params = FerroParams::pbtio3();
        let u_star = ((3.0 * params.j_nn - params.a2) / (2.0 * params.a4)).sqrt();
        let qm_lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
        let qm_ferro = FerroModel::new(&qm_lat, params);
        MeshDriverBuilder::new(wf, occ, qm_lat.system.clone(), qm_ferro)
            .config(MeshConfig {
                dt_md_fs: cfg.dt_fs,
                ehrenfest: cfg.ehrenfest,
                ..Default::default()
            })
            .pulse(GaussianPulse::new(e0, cfg.pulse_omega, 4.0, 2.0))
            .track_site(
                0,
                AtomSite {
                    pos: Vec3::new(2.0, 2.0, 2.0),
                    z_eff: 1.0,
                    sigma: 0.8,
                },
            )
            .warm_start(cfg.mesh_warm_start.to_warm_start())
    }

    /// Execute one MESH driver per amplitude for `n_steps` each and
    /// return the trajectories in amplitude order. This is the one batch
    /// seam both the lit/dark pulse measurement and the N-amplitude sweep
    /// go through, in one of two bit-identical forms:
    ///
    /// * `mesh_ranks_per_domain: None` — an in-process [`RunPlan`] batch
    ///   on the work-stealing pool (each run internally serial);
    /// * `mesh_ranks_per_domain: Some(r)` — a simulated-MPI
    ///   [`World::run`] region of `amplitudes.len() × r` ranks: one
    ///   [`DistributedMeshDriver`] domain per run, `r` ranks sharding each
    ///   driver's band-local work, every rank engine-driving its replica
    ///   in lockstep. The ROADMAP's "engine runs as simulated-MPI jobs".
    ///
    /// `tests/mesh_dist.rs` pins the two forms bit-identical.
    pub fn mesh_batch(&self, amplitudes: &[f64], n_steps: usize) -> Vec<Vec<MeshStepRecord>> {
        assert!(!amplitudes.is_empty(), "need at least one MESH run");
        match self.config.mesh_ranks_per_domain {
            None => self
                .mesh_batch_observed(amplitudes, n_steps, &CancelToken::default(), |_, _| {
                    TraceObserver::every()
                })
                .into_iter()
                .map(|(obs, _)| obs.trace)
                .collect(),
            Some(ranks_per_domain) => {
                let n_domains = amplitudes.len();
                let results = World::run(n_domains * ranks_per_domain, |world| {
                    let mut drv = DistributedMeshDriver::new(world, n_domains, |d| {
                        self.mesh_stage_builder(amplitudes[d])
                    });
                    let mut obs = TraceObserver::every();
                    Engine::run(&mut drv, n_steps, &mut obs);
                    obs.trace
                });
                // Replicas within a domain are identical; keep each
                // domain root's trace, in domain (= amplitude) order.
                results.into_iter().step_by(ranks_per_domain).collect()
            }
        }
    }

    /// The observer-generic, cancellable form of the in-process MESH
    /// batch — the seam the job service streams progress and threads
    /// cancellation through while sharing this exact code path with the
    /// synchronous API ([`Self::mesh_batch`] with
    /// `mesh_ranks_per_domain: None` delegates here with a default token
    /// and plain [`TraceObserver`]s).
    ///
    /// `make_observer(run_index, e0)` builds each run's observer; every
    /// run is pushed with a clone of `cancel`, so cancelling the token
    /// stops the whole batch at the next step boundaries, each run
    /// reporting its partial trace through its observer and its
    /// [`RunOutcome`]. A default token pins current behavior bit-for-bit.
    ///
    /// The rank-distributed batch form (`mesh_ranks_per_domain: Some(r)`)
    /// does not support cancellation or per-run observers: ranks step in
    /// lockstep inside `World::run`, where stopping early would need a
    /// collective agreement protocol.
    pub fn mesh_batch_observed<O, F>(
        &self,
        amplitudes: &[f64],
        n_steps: usize,
        cancel: &CancelToken,
        mut make_observer: F,
    ) -> Vec<(O, RunOutcome)>
    where
        O: Observer<MeshDriver> + Send,
        F: FnMut(usize, f64) -> O,
    {
        assert!(!amplitudes.is_empty(), "need at least one MESH run");
        let mut plan = RunPlan::new();
        for (run, &e0) in amplitudes.iter().enumerate() {
            plan.push_cancellable(
                self.mesh_stage(e0),
                make_observer(run, e0),
                n_steps,
                cancel.clone(),
            );
        }
        plan.execute()
            .into_iter()
            .map(|run| (run.observer, run.outcome))
            .collect()
    }

    /// Stage 2: DC-MESH pulse on the embedded quantum region, measured
    /// pump–probe style: the excitation count is the *difference* between
    /// the driven run and a dark reference run, removing the residual
    /// baseline from eigenstate imperfection. The lit and dark drivers
    /// execute as one [`Self::mesh_batch`] (an in-process [`RunPlan`] or,
    /// with `mesh_ranks_per_domain` set, rank-sharded inside
    /// [`World::run`]).
    fn pulse(&mut self) -> (Vec<MeshStepRecord>, f64) {
        let cfg = self.config;
        let with_dark = cfg.pulse_e0 != 0.0;
        let mut amplitudes = vec![cfg.pulse_e0];
        if with_dark {
            amplitudes.push(0.0);
        }
        let mut traces = self.mesh_batch(&amplitudes, cfg.mesh_steps);
        let peak_dark = if with_dark {
            peak_exc(&traces.pop().expect("dark run"))
        } else {
            0.0
        };
        let records = traces.pop().expect("lit run");
        let delta = if with_dark {
            (peak_exc(&records) - peak_dark).max(0.0)
        } else {
            0.0
        };
        (records, delta)
    }

    /// Pump–probe amplitude sweep: N lit drivers plus one shared dark
    /// reference, all executed as a single [`Self::mesh_batch`].
    pub fn pump_probe_sweep(&self, amplitudes: &[f64]) -> Vec<PumpProbeRun> {
        let mut all = amplitudes.to_vec();
        all.push(0.0);
        let traces = self.mesh_batch(&all, self.config.mesh_steps);
        Self::sweep_runs(amplitudes, traces)
    }

    /// Reduce a sweep's raw trajectories to [`PumpProbeRun`]s: the last
    /// trace is the shared dark reference, and each lit run's peak is
    /// measured above it. This is the one summarization both
    /// [`Self::pump_probe_sweep`] and the job service's sweep jobs use,
    /// so the two APIs cannot diverge. Partial (cancelled) traces
    /// summarize too — the peak is taken over the steps that ran.
    pub fn sweep_runs(
        amplitudes: &[f64],
        mut traces: Vec<Vec<MeshStepRecord>>,
    ) -> Vec<PumpProbeRun> {
        assert_eq!(
            traces.len(),
            amplitudes.len() + 1,
            "traces must be the lit runs plus one trailing dark reference"
        );
        let peak_dark = peak_exc(&traces.pop().expect("dark reference"));
        amplitudes
            .iter()
            .zip(traces)
            .map(|(&e0, records)| {
                let n_exc_peak = (peak_exc(&records) - peak_dark).max(0.0);
                PumpProbeRun {
                    e0,
                    records,
                    n_exc_peak,
                }
            })
            .collect()
    }

    /// A supercell MD stage over the current texture with the respond
    /// stage's force and dissipation wiring (analytic excitation-reshaped
    /// landscape, low-temperature Langevin drain, the respond RNG
    /// stream), built over a *clone* of the system so the pipeline is
    /// untouched — the engine-drivable form of the XS-NNQMD response the
    /// job service's MD jobs run.
    pub fn supercell_md_stage(&self, excitation_fraction: f64) -> MdStage<SupercellForce> {
        let cfg = self.config;
        let mut ferro = self.ferro.clone();
        ferro.set_uniform_excitation(excitation_fraction);
        let force = SupercellForce::analytic(ferro);
        let thermostat = Some(Langevin::new(1.0, 0.3));
        MdStage::new(
            self.lattice.system.clone(),
            force,
            cfg.dt_fs,
            thermostat,
            Xoshiro256::new(cfg.seed ^ 0x5eed),
        )
    }

    /// Stage 3: XS-NNQMD response of the full supercell. With
    /// `respond_nn_batches: Some(n)` the force model gains a network term
    /// evaluated through batched `block_evaluate` inference.
    fn respond(&mut self, excitation_fraction: f64) -> Vec<ResponsePoint> {
        let cfg = self.config;
        self.ferro.set_uniform_excitation(excitation_fraction);
        // Dissipation channel (electron-phonon drain) at low temperature.
        let thermostat = Some(Langevin::new(1.0, 0.3));
        let rng = Xoshiro256::new(cfg.seed ^ 0x5eed);
        let network = cfg.respond_nn_batches.map(|n_batches| {
            let model = AllegroLite::new(
                ModelConfig {
                    hidden: 6,
                    k_max: 4,
                    rcut: 3.5,
                },
                cfg.seed,
            );
            NnForceField::with_batches(model, n_batches)
        });
        let force = SupercellForce {
            ferro: self.ferro.clone(),
            network,
        };
        let mut observer = ResponseTraceObserver::new(
            cfg.cells,
            cfg.dt_fs,
            SampleStride::new(cfg.response_sample_stride),
        );
        self.run_md_stage(force, cfg.response_steps, thermostat, rng, &mut observer);
        observer.trace
    }

    /// Run all stages.
    ///
    /// # Example
    ///
    /// The laptop-scale demo, shrunk to a few steps per stage so the
    /// example stays fast:
    ///
    /// ```
    /// use mlmd_core::config::PipelineConfig;
    /// use mlmd_core::pipeline::Pipeline;
    ///
    /// let mut cfg = PipelineConfig::small_demo();
    /// cfg.cells = (4, 4, 1);
    /// cfg.prepare_steps = 2;
    /// cfg.mesh_steps = 1;
    /// cfg.response_steps = 10;
    /// let out = Pipeline::new(cfg).run();
    /// assert_eq!(out.mesh_records.len(), 1);
    /// assert!(out.n_exc_peak >= 0.0);
    /// assert!(out.response_trace.last().unwrap().polar_order.is_finite());
    /// ```
    pub fn run(&mut self) -> PipelineOutcome {
        self.prepare();
        let before = self.polarization();
        let report_before = TextureReport::analyze(&before);
        let (mesh_records, n_exc_peak) = self.pulse();
        let coupling = XnNnCoupling {
            domain_electrons: 4.0,
            supercell_cells: self.config.n_cells() as f64,
            gain: self.config.excitation_gain,
        };
        let excitation_fraction = coupling.cell_fraction(n_exc_peak);
        let response_trace = self.respond(excitation_fraction);
        let after = self.polarization();
        let verdict = compare(&before, &after);
        PipelineOutcome {
            initial_topological_charge: report_before.mean_charge,
            final_topological_charge: verdict.after.mean_charge,
            verdict,
            n_exc_peak,
            excitation_fraction,
            mesh_records,
            response_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_superlattice_carries_charge() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        p.prepare();
        let f = p.polarization();
        let r = TextureReport::analyze(&f);
        assert!(
            (r.mean_charge.abs() - 1.0).abs() < 0.2,
            "one skyrmion per layer: Q = {}",
            r.mean_charge
        );
    }

    #[test]
    fn full_pipeline_switches_topology() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        let out = p.run();
        assert!(
            out.initial_topological_charge.abs() > 0.5,
            "starts with a skyrmion: {}",
            out.initial_topological_charge
        );
        assert!(out.n_exc_peak > 0.0, "pulse must excite");
        assert!(out.excitation_fraction > 0.1, "excitation above critical");
        assert!(
            out.verdict.topology_switched,
            "strong pulse must erase the skyrmion: Q {} → {}",
            out.initial_topological_charge, out.final_topological_charge
        );
        assert!(
            out.verdict.order_suppression > 0.3,
            "polar order must collapse: {}",
            out.verdict.order_suppression
        );
    }

    #[test]
    fn dark_pipeline_preserves_topology() {
        let mut cfg = PipelineConfig::small_demo();
        cfg.pulse_e0 = 0.0;
        let mut p = Pipeline::new(cfg);
        let out = p.run();
        assert!(
            !out.verdict.topology_switched,
            "no pulse, no switch: Q {} → {}",
            out.initial_topological_charge, out.final_topological_charge
        );
        assert!(out.excitation_fraction < 0.05);
    }

    #[test]
    fn response_trace_records_decay() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        let out = p.run();
        assert!(out.response_trace.len() >= 2);
        let first = out.response_trace.first().unwrap().polar_order;
        let last = out.response_trace.last().unwrap().polar_order;
        assert!(last < first, "excited order must decay: {first} → {last}");
    }

    /// A shrunken configuration for mechanics tests: tiny supercell, one
    /// MESH step, a handful of response steps.
    fn tiny_config() -> PipelineConfig {
        let mut cfg = PipelineConfig::small_demo();
        cfg.cells = (4, 4, 1);
        cfg.prepare_steps = 2;
        cfg.mesh_steps = 1;
        cfg.response_steps = 25;
        cfg
    }

    #[test]
    fn sample_stride_controls_trace_cadence() {
        // stride 10 over 25 steps: samples at 0, 10, 20, 24 → 4 points.
        let mut p = Pipeline::new(tiny_config());
        let out = p.run();
        assert_eq!(out.response_trace.len(), 4);
        // stride 1: every step.
        let mut cfg = tiny_config();
        cfg.response_sample_stride = 1;
        let mut p = Pipeline::new(cfg);
        let out_dense = p.run();
        assert_eq!(out_dense.response_trace.len(), 25);
        // The shared sample points are identical: denser sampling must not
        // perturb the trajectory.
        for pt in &out.response_trace {
            let twin = out_dense
                .response_trace
                .iter()
                .find(|q| q.time_fs == pt.time_fs)
                .expect("coarse sample must exist in the dense trace");
            assert_eq!(twin.polar_order.to_bits(), pt.polar_order.to_bits());
        }
    }

    #[test]
    fn network_respond_path_is_blocking_invariant() {
        // The NN term rides through block_evaluate, whose batched and
        // monolithic evaluations are exact — so the *trajectory* must be
        // bit-identical across batch counts.
        let run = |n_batches: usize| {
            let mut cfg = tiny_config();
            cfg.respond_nn_batches = Some(n_batches);
            let mut p = Pipeline::new(cfg);
            let out = p.run();
            (
                out.final_topological_charge,
                out.response_trace.last().unwrap().polar_order,
            )
        };
        let (q1, p1) = run(1);
        let (q2, p2) = run(2);
        assert_eq!(
            q1.to_bits(),
            q2.to_bits(),
            "blocking must not change physics"
        );
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert!(p1.is_finite());
    }

    #[test]
    fn pump_probe_sweep_monotone_in_amplitude() {
        let mut cfg = tiny_config();
        cfg.mesh_steps = 3;
        let p = Pipeline::new(cfg);
        let runs = p.pump_probe_sweep(&[0.0, 0.1]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].e0, 0.0);
        // The zero-amplitude run measures zero above the dark reference.
        assert_eq!(runs[0].n_exc_peak, 0.0);
        assert!(
            runs[1].n_exc_peak > runs[0].n_exc_peak,
            "stronger pulse must excite more: {} vs {}",
            runs[1].n_exc_peak,
            runs[0].n_exc_peak
        );
        assert_eq!(runs[1].records.len(), 3);
    }
}
