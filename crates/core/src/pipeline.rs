//! The Fig. 3 pipeline: light-induced switching of a ferroelectric
//! skyrmion superlattice.
//!
//! "We adopt a multiscale simulation approach, where we first prepare a
//! complex polar topology, i.e., a superlattice of skyrmions using
//! GS-NNQMD. These atomic positions are fed to DC-MESH to simulate
//! electronic and structural responses to a femtosecond laser pulse.
//! Informed by the resulting electronic-excitation number from DC-MESH,
//! XS-NNQMD simulation is then performed to study larger
//! spatiotemporal-scale topological dynamics." (paper Sec. VI.A)
//!
//! Stage 1 (prepare) and stage 3 (response) run on the supercell with the
//! ground-state / excitation-reshaped force field; stage 2 runs the full
//! DC-MESH driver on an embedded quantum region (the XN of the XN/NN
//! coupling, MSA-3) whose excitation count is extrapolated to the
//! supercell. Dissipation during the response stage (Langevin friction)
//! models the electron–phonon and phonon–phonon energy drain of the real
//! material.

use crate::config::PipelineConfig;
use crate::msa::XnNnCoupling;
use mlmd_dcmesh::mesh::{MeshConfig, MeshDriver, MeshStepRecord};
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::potential::AtomSite;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::source::GaussianPulse;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::rng::Xoshiro256;
use mlmd_numerics::vec3::Vec3;
use mlmd_parallel::device::TransferLedger;
use mlmd_qxmd::ferro::{FerroModel, FerroParams};
use mlmd_qxmd::integrator::{ForceField, VelocityVerlet};
use mlmd_qxmd::perovskite::PerovskiteLattice;
use mlmd_qxmd::thermostat::Langevin;
use mlmd_topo::polarization::PolarizationField;
use mlmd_topo::superlattice::Texture;
use mlmd_topo::switching::{compare, SwitchingVerdict, TextureReport};
use std::sync::Arc;

/// One point of the response-stage trajectory.
#[derive(Clone, Copy, Debug)]
pub struct ResponsePoint {
    pub time_fs: f64,
    pub polar_order: f64,
    pub mean_charge: f64,
}

/// The end-to-end result.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    pub initial_topological_charge: f64,
    pub final_topological_charge: f64,
    pub verdict: SwitchingVerdict,
    pub n_exc_peak: f64,
    pub excitation_fraction: f64,
    pub mesh_records: Vec<MeshStepRecord>,
    pub response_trace: Vec<ResponsePoint>,
}

/// The pipeline state.
pub struct Pipeline {
    pub config: PipelineConfig,
    lattice: PerovskiteLattice,
    ferro: FerroModel,
}

impl Pipeline {
    /// Stage 0: build the skyrmion-superlattice supercell.
    pub fn new(config: PipelineConfig) -> Self {
        let (nx, ny, nz) = config.cells;
        let tex = Texture::skyrmion_lattice(
            config.skyrmions.0,
            config.skyrmions.1,
            nx as f64,
            ny as f64,
            config.skyrmion_radius,
        );
        let u0 = config.u0;
        let lattice = PerovskiteLattice::build(nx, ny, nz, |kx, ky, _| {
            tex.direction(kx as f64 + 0.5, ky as f64 + 0.5) * u0
        });
        let ferro = FerroModel::new(&lattice, FerroParams::pbtio3());
        Self {
            config,
            lattice,
            ferro,
        }
    }

    /// Current polarization field of the supercell.
    pub fn polarization(&self) -> PolarizationField {
        let (nx, ny, nz) = self.config.cells;
        PolarizationField::new(
            nx,
            ny,
            nz,
            self.ferro.displacement_field(&self.lattice.system),
        )
    }

    /// Stage 1: GS relaxation/thermalization of the texture.
    fn prepare(&mut self) {
        let cfg = self.config;
        let mut rng = Xoshiro256::new(cfg.seed);
        if cfg.temperature > 0.0 {
            self.lattice.system.thermalize(cfg.temperature, &mut rng);
        }
        self.ferro.set_uniform_excitation(0.0);
        let vv = VelocityVerlet::new(cfg.dt_fs);
        let thermo = Langevin::new(cfg.temperature.max(1.0), 0.2);
        self.ferro.compute(&mut self.lattice.system);
        for _ in 0..cfg.prepare_steps {
            vv.step(&mut self.lattice.system, &self.ferro);
            if cfg.temperature > 0.0 {
                thermo.apply(&mut self.lattice.system, cfg.dt_fs, &mut rng);
            }
        }
    }

    /// Build one DC-MESH driver for the embedded quantum region with the
    /// given pulse amplitude. The QM patch starts at the *coupled*
    /// ferroelectric minimum u* = √((3J−a₂)/2a₄), so with no pulse the
    /// atoms are force-free and the electronic state is stationary.
    fn build_mesh_driver(&self, e0: f64) -> MeshDriver {
        let cfg = self.config;
        let grid = Grid3::new(8, 8, 8, 0.5);
        // 8-state panel, 2 occupied + 6 virtual (see MeshDriver docs).
        let wf = WaveFunctions::plane_waves(grid, 8);
        let occ = Occupations::aufbau(8, 4.0);
        let params = FerroParams::pbtio3();
        let u_star = ((3.0 * params.j_nn - params.a2) / (2.0 * params.a4)).sqrt();
        let qm_lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
        let qm_ferro = FerroModel::new(&qm_lat, params);
        let pulse = GaussianPulse::new(e0, cfg.pulse_omega, 4.0, 2.0);
        let site = AtomSite {
            pos: Vec3::new(2.0, 2.0, 2.0),
            z_eff: 1.0,
            sigma: 0.8,
        };
        let mesh_cfg = MeshConfig {
            dt_md_fs: cfg.dt_fs,
            ehrenfest: cfg.ehrenfest,
            ..Default::default()
        };
        MeshDriver::new(
            mesh_cfg,
            wf,
            occ,
            qm_lat.system.clone(),
            qm_ferro,
            pulse,
            vec![(0, site)],
            Arc::new(TransferLedger::new()),
        )
    }

    /// Testing/diagnostic access to the embedded-region driver.
    #[doc(hidden)]
    pub fn __probe_driver(&self, e0: f64) -> MeshDriver {
        self.build_mesh_driver(e0)
    }

    /// Stage 2: DC-MESH pulse on the embedded quantum region, measured
    /// pump–probe style: the excitation count is the *difference* between
    /// the driven run and a dark reference run, removing the residual
    /// baseline from eigenstate imperfection.
    fn pulse(&mut self) -> (Vec<MeshStepRecord>, f64) {
        let cfg = self.config;
        let mut lit = self.build_mesh_driver(cfg.pulse_e0);
        let records = lit.run(cfg.mesh_steps);
        let peak_lit = records.iter().map(|r| r.n_exc).fold(0.0f64, f64::max);
        let delta = if cfg.pulse_e0 == 0.0 {
            0.0
        } else {
            let mut dark = self.build_mesh_driver(0.0);
            let dark_records = dark.run(cfg.mesh_steps);
            let peak_dark = dark_records.iter().map(|r| r.n_exc).fold(0.0f64, f64::max);
            (peak_lit - peak_dark).max(0.0)
        };
        (records, delta)
    }

    /// Stage 3: XS-NNQMD response of the full supercell.
    fn respond(&mut self, excitation_fraction: f64) -> Vec<ResponsePoint> {
        let cfg = self.config;
        self.ferro.set_uniform_excitation(excitation_fraction);
        let vv = VelocityVerlet::new(cfg.dt_fs);
        // Dissipation channel (electron-phonon drain) at low temperature.
        let thermo = Langevin::new(1.0, 0.3);
        let mut rng = Xoshiro256::new(cfg.seed ^ 0x5eed);
        let mut trace = Vec::with_capacity(cfg.response_steps);
        self.ferro.compute(&mut self.lattice.system);
        for step in 0..cfg.response_steps {
            vv.step(&mut self.lattice.system, &self.ferro);
            thermo.apply(&mut self.lattice.system, cfg.dt_fs, &mut rng);
            if step % 10 == 0 || step + 1 == cfg.response_steps {
                let field = self.polarization();
                let report = TextureReport::analyze(&field);
                trace.push(ResponsePoint {
                    time_fs: (step + 1) as f64 * cfg.dt_fs,
                    polar_order: report.polar_order,
                    mean_charge: report.mean_charge,
                });
            }
        }
        trace
    }

    /// Run all stages.
    pub fn run(&mut self) -> PipelineOutcome {
        self.prepare();
        let before = self.polarization();
        let report_before = TextureReport::analyze(&before);
        let (mesh_records, n_exc_peak) = self.pulse();
        let coupling = XnNnCoupling {
            domain_electrons: 4.0,
            supercell_cells: self.config.n_cells() as f64,
            gain: self.config.excitation_gain,
        };
        let excitation_fraction = coupling.cell_fraction(n_exc_peak);
        let response_trace = self.respond(excitation_fraction);
        let after = self.polarization();
        let verdict = compare(&before, &after);
        PipelineOutcome {
            initial_topological_charge: report_before.mean_charge,
            final_topological_charge: verdict.after.mean_charge,
            verdict,
            n_exc_peak,
            excitation_fraction,
            mesh_records,
            response_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_superlattice_carries_charge() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        p.prepare();
        let f = p.polarization();
        let r = TextureReport::analyze(&f);
        assert!(
            (r.mean_charge.abs() - 1.0).abs() < 0.2,
            "one skyrmion per layer: Q = {}",
            r.mean_charge
        );
    }

    #[test]
    fn full_pipeline_switches_topology() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        let out = p.run();
        assert!(
            out.initial_topological_charge.abs() > 0.5,
            "starts with a skyrmion: {}",
            out.initial_topological_charge
        );
        assert!(out.n_exc_peak > 0.0, "pulse must excite");
        assert!(out.excitation_fraction > 0.1, "excitation above critical");
        assert!(
            out.verdict.topology_switched,
            "strong pulse must erase the skyrmion: Q {} → {}",
            out.initial_topological_charge, out.final_topological_charge
        );
        assert!(
            out.verdict.order_suppression > 0.3,
            "polar order must collapse: {}",
            out.verdict.order_suppression
        );
    }

    #[test]
    fn dark_pipeline_preserves_topology() {
        let mut cfg = PipelineConfig::small_demo();
        cfg.pulse_e0 = 0.0;
        let mut p = Pipeline::new(cfg);
        let out = p.run();
        assert!(
            !out.verdict.topology_switched,
            "no pulse, no switch: Q {} → {}",
            out.initial_topological_charge, out.final_topological_charge
        );
        assert!(out.excitation_fraction < 0.05);
    }

    #[test]
    fn response_trace_records_decay() {
        let mut p = Pipeline::new(PipelineConfig::small_demo());
        let out = p.run();
        assert!(out.response_trace.len() >= 2);
        let first = out.response_trace.first().unwrap().polar_order;
        let last = out.response_trace.last().unwrap().polar_order;
        assert!(last < first, "excited order must decay: {first} → {last}");
    }
}
