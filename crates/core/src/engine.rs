//! The engine layer: one driver contract for every time-stepping loop in
//! the workspace, plus the observation and batch machinery built on it.
//!
//! The paper's central claim is that a single multiscale loop (Eq. (2),
//! Fig. 1) composes Maxwell, Ehrenfest, surface-hopping, QXMD, and NNQMD
//! propagators into one pipeline. This module is that seam in code:
//!
//! * [`Stepper`] — the driver contract: `step()` advances the underlying
//!   propagator exactly once and yields a typed per-step record.
//!   Implemented here for [`MeshDriver`] (DC-MESH), [`MdStage`] (velocity
//!   Verlet + Langevin + any [`ForceField`] — the pipeline's prepare and
//!   respond stages), [`PulsedYee`] / [`PulsedMultiscale`] (FDTD light),
//!   and [`NnMdLoop`] (the XS-NNQMD MD loop).
//! * [`Observer`] — what to do with each record. Sampling cadence is a
//!   [`SampleStride`] config value, not a hardcoded `step % 10`.
//! * [`Engine`] — the run loop gluing a stepper to an observer.
//!   [`Engine::run_cancellable`] threads a [`CancelToken`] check through
//!   the loop (checked before each step, so cancellation lands on a step
//!   boundary and the observer's trace stays a valid prefix); a default
//!   token never fires, pinning `Engine::run` bit-for-bit.
//! * [`RunPlan`] — a batch of independent stepper runs executed
//!   concurrently on the work-stealing pool (the `rayon` shim). The
//!   pump–probe lit/dark pair and N-amplitude sweeps run as one batch;
//!   later sharding/batching work plugs in behind the same interface.
//!
//! Every parallel kernel under these drivers is bit-deterministic across
//! pool widths (pinned since PR 2), and each run in a [`RunPlan`] is
//! internally serial, so batched execution reproduces sequential results
//! bit-for-bit — asserted in `tests/engine_pipeline.rs`.

use mlmd_dcmesh::dist_mesh::DistributedMeshDriver;
use mlmd_dcmesh::mesh::{MeshDriver, MeshStepRecord};
use mlmd_maxwell::driver::{FieldRecord, MultiscaleRecord, PulsedMultiscale, PulsedYee};
use mlmd_nnqmd::md::{NnForceField, NnMdLoop, NnMdRecord};
use mlmd_nnqmd::NnMdEnsemble;
use mlmd_qxmd::ferro::FerroModel;
use mlmd_qxmd::integrator::ForceField;
use mlmd_qxmd::md_stage::{MdRecord, MdStage};
use mlmd_topo::polarization::PolarizationField;
use mlmd_topo::switching::TextureReport;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ------------------------------------------------------- cancellation

/// Cooperative cancellation handle for engine runs.
///
/// A token is a cheap, cloneable flag shared between the party driving a
/// run and the party that may want to stop it. [`Engine::run_cancellable`]
/// checks the token *before every step*, so cancellation lands on a step
/// boundary: the stepper is never interrupted mid-step, the observer has
/// seen every completed step, and the partial trace is a valid prefix of
/// the full run.
///
/// A fresh (default) token never fires, so code paths threaded through
/// the cancellable entry points with a default token behave bit-for-bit
/// like the uncancellable originals.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A token that has not been cancelled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`Self::cancel`] been called on any clone of this token?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// How an engine run ended: either it took every requested step, or a
/// [`CancelToken`] stopped it at a step boundary first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Steps actually taken (== the requested count unless cancelled).
    pub steps_done: usize,
    /// Whether the run stopped early on a cancelled token.
    pub cancelled: bool,
}

// ------------------------------------------------------------- contract

/// A time-stepping driver: one call advances the propagator exactly one
/// step and yields its per-step record.
///
/// `time_fs` reports the driver's native simulation clock — femtoseconds
/// for the MD-side drivers, natural `c = 1` units for the FDTD wrappers.
pub trait Stepper {
    /// The typed per-step measurement this driver produces.
    type Record;

    /// Advance exactly one step.
    fn step(&mut self) -> Self::Record;

    /// Simulation time on the driver's native clock after the steps taken.
    fn time_fs(&self) -> f64;
}

/// Per-step metadata handed to observers alongside the record.
#[derive(Clone, Copy, Debug)]
pub struct StepInfo {
    /// 0-based index of the step that just completed.
    pub index: usize,
    /// Whether this was the final step of the engine run.
    pub is_last: bool,
}

/// Consumes the records of an engine run. Observers see the stepper
/// *after* the step, so they can derive measurements the record does not
/// carry (e.g. a polarization analysis of the full system).
pub trait Observer<S: Stepper> {
    fn observe(&mut self, info: StepInfo, stepper: &S, record: &S::Record);
}

/// Sampling cadence for trace observers: sample every `stride`-th step
/// (0, stride, 2·stride, …) plus always the final step.
///
/// `SampleStride::EVERY` records each step; the pipeline's response trace
/// defaults to `SampleStride::new(10)`, which reproduces the historical
/// `step % 10 == 0 || last` cadence bit-for-bit.
///
/// A stride of zero is rejected at construction ([`SampleStride::new`]),
/// so a held `SampleStride` is always valid and `should_sample` never has
/// to re-validate on the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SampleStride(usize);

impl SampleStride {
    /// Record every step.
    pub const EVERY: SampleStride = SampleStride(1);

    /// A validated stride: sample steps 0, `stride`, `2·stride`, … plus
    /// always the final step.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero — a zero stride samples nothing and
    /// was historically only caught deep inside the run loop.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0, "sample stride must be non-zero");
        Self(stride)
    }

    /// The validated stride value.
    pub fn get(self) -> usize {
        self.0
    }

    pub fn should_sample(self, info: StepInfo) -> bool {
        info.index.is_multiple_of(self.0) || info.is_last
    }
}

impl Default for SampleStride {
    /// The pipeline's historical response-trace cadence.
    fn default() -> Self {
        SampleStride(10)
    }
}

/// Discards every record (pure side-effect runs, e.g. GS relaxation).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl<S: Stepper> Observer<S> for NullObserver {
    fn observe(&mut self, _info: StepInfo, _stepper: &S, _record: &S::Record) {}
}

/// Collects the records sampled by a [`SampleStride`] into a trace.
#[derive(Clone, Debug)]
pub struct TraceObserver<R> {
    pub stride: SampleStride,
    pub trace: Vec<R>,
}

impl<R> TraceObserver<R> {
    /// Record every step.
    pub fn every() -> Self {
        Self::with_stride(SampleStride::EVERY)
    }

    pub fn with_stride(stride: SampleStride) -> Self {
        Self {
            stride,
            trace: Vec::new(),
        }
    }
}

impl<S: Stepper> Observer<S> for TraceObserver<S::Record>
where
    S::Record: Clone,
{
    fn observe(&mut self, info: StepInfo, _stepper: &S, record: &S::Record) {
        if self.stride.should_sample(info) {
            self.trace.push(record.clone());
        }
    }
}

// --------------------------------------------------------------- engine

/// The run loop: step `n_steps` times, notifying the observer after each
/// step with the record and [`StepInfo`].
pub struct Engine;

impl Engine {
    pub fn run<S: Stepper, O: Observer<S>>(stepper: &mut S, n_steps: usize, observer: &mut O) {
        // A fresh token never fires, so this is the plain loop bit-for-bit.
        Self::run_cancellable(stepper, n_steps, observer, &CancelToken::new());
    }

    /// The run loop with cooperative cancellation: the token is checked
    /// *before* each step, so a cancelled run stops on a step boundary
    /// with every completed step already observed — the observer's trace
    /// is a valid prefix of the full run, never a torn state.
    pub fn run_cancellable<S: Stepper, O: Observer<S>>(
        stepper: &mut S,
        n_steps: usize,
        observer: &mut O,
        cancel: &CancelToken,
    ) -> RunOutcome {
        for index in 0..n_steps {
            if cancel.is_cancelled() {
                return RunOutcome {
                    steps_done: index,
                    cancelled: true,
                };
            }
            let record = stepper.step();
            let info = StepInfo {
                index,
                is_last: index + 1 == n_steps,
            };
            observer.observe(info, stepper, &record);
        }
        RunOutcome {
            steps_done: n_steps,
            cancelled: false,
        }
    }

    /// Convenience: run and return every record (the engine-shaped
    /// replacement for the old `MeshDriver::run`).
    pub fn run_collect<S: Stepper>(stepper: &mut S, n_steps: usize) -> Vec<S::Record>
    where
        S::Record: Clone,
    {
        let mut obs = TraceObserver::every();
        Self::run(stepper, n_steps, &mut obs);
        obs.trace
    }
}

// ------------------------------------------------------------- run plan

/// One entry of a [`RunPlan`]: a stepper, its observer, how many steps to
/// drive it, and the run's cancellation token (a fresh token — which
/// never fires — unless the run was pushed with
/// [`RunPlan::push_cancellable`]).
///
/// After [`RunPlan::execute`], `outcome` reports how the run ended; a
/// cancelled run's observer holds the partial trace of the steps that
/// completed before the token fired.
pub struct PlannedRun<S, O> {
    pub stepper: S,
    pub observer: O,
    pub n_steps: usize,
    /// Cooperative cancellation handle checked before each step.
    pub cancel: CancelToken,
    /// Filled in by `execute`: steps taken and whether the token fired.
    pub outcome: RunOutcome,
}

/// A batch of independent stepper runs executed concurrently on the
/// work-stealing pool. Results come back in submission order; each run is
/// internally serial, so the batch is bit-identical to executing the runs
/// one after another (pinned in `tests/engine_pipeline.rs` at pool widths
/// 1/2/4).
///
/// # Example
///
/// Batch two runs of a toy stepper and read the traces back in
/// submission order:
///
/// ```
/// use mlmd_core::engine::{RunPlan, Stepper, TraceObserver};
///
/// /// Counts up from a starting value; the record is the new count.
/// struct Counter(u64);
///
/// impl Stepper for Counter {
///     type Record = u64;
///     fn step(&mut self) -> u64 {
///         self.0 += 1;
///         self.0
///     }
///     fn time_fs(&self) -> f64 {
///         self.0 as f64
///     }
/// }
///
/// let mut plan = RunPlan::new();
/// plan.push(Counter(0), TraceObserver::every(), 3);
/// plan.push(Counter(100), TraceObserver::every(), 2);
/// let done = plan.execute();
/// assert_eq!(done[0].observer.trace, vec![1, 2, 3]);
/// assert_eq!(done[1].observer.trace, vec![101, 102]);
/// ```
#[derive(Default)]
pub struct RunPlan<S, O> {
    runs: Vec<PlannedRun<S, O>>,
}

impl<S, O> RunPlan<S, O>
where
    S: Stepper + Send,
    O: Observer<S> + Send,
{
    pub fn new() -> Self {
        Self { runs: Vec::new() }
    }

    pub fn push(&mut self, stepper: S, observer: O, n_steps: usize) -> &mut Self {
        self.push_cancellable(stepper, observer, n_steps, CancelToken::new())
    }

    /// Push a run wired to an externally held [`CancelToken`]. Cancelling
    /// the token stops that run at its next step boundary; the other runs
    /// of the batch are unaffected (unless they share the same token) and
    /// the pool stays healthy — a cancelled run is an early return, not a
    /// panic. Results still come back in submission order, the cancelled
    /// run reporting its partial trace and `outcome.cancelled == true`.
    pub fn push_cancellable(
        &mut self,
        stepper: S,
        observer: O,
        n_steps: usize,
        cancel: CancelToken,
    ) -> &mut Self {
        self.runs.push(PlannedRun {
            stepper,
            observer,
            n_steps,
            cancel,
            outcome: RunOutcome::default(),
        });
        self
    }

    pub fn len(&self) -> usize {
        self.runs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Execute every run concurrently on the current pool (the innermost
    /// installed [`rayon::ThreadPool`], or the global one), returning the
    /// completed runs in submission order.
    pub fn execute(self) -> Vec<PlannedRun<S, O>> {
        self.runs
            .into_par_iter()
            .map(|mut run| {
                run.outcome = Engine::run_cancellable(
                    &mut run.stepper,
                    run.n_steps,
                    &mut run.observer,
                    &run.cancel,
                );
                run
            })
            .collect()
    }

    /// Execute on a dedicated pool of the given width (`0` = hardware
    /// default, matching the rayon contract).
    pub fn execute_with_width(self, width: usize) -> Vec<PlannedRun<S, O>> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(width)
            .build()
            .expect("failed to build RunPlan pool");
        pool.install(|| self.execute())
    }
}

// -------------------------------------------------------- stepper impls

impl Stepper for MeshDriver {
    type Record = MeshStepRecord;

    fn step(&mut self) -> MeshStepRecord {
        MeshDriver::step(self)
    }

    fn time_fs(&self) -> f64 {
        MeshDriver::time_fs(self)
    }
}

/// The rank-distributed MESH driver is a stepper too: inside a
/// `World::run` region each rank engine-drives its replica in lockstep
/// (every `step()` is collective over the world), so observers, traces,
/// and `RunPlan`-style batch logic compose with the sharded driver
/// exactly as with the serial one.
impl Stepper for DistributedMeshDriver {
    type Record = MeshStepRecord;

    fn step(&mut self) -> MeshStepRecord {
        DistributedMeshDriver::step(self)
    }

    fn time_fs(&self) -> f64 {
        DistributedMeshDriver::time_fs(self)
    }
}

impl<F: ForceField> Stepper for MdStage<F> {
    type Record = MdRecord;

    fn step(&mut self) -> MdRecord {
        self.advance()
    }

    fn time_fs(&self) -> f64 {
        MdStage::time_fs(self)
    }
}

impl Stepper for PulsedYee {
    type Record = FieldRecord;

    fn step(&mut self) -> FieldRecord {
        self.advance()
    }

    fn time_fs(&self) -> f64 {
        self.time()
    }
}

impl Stepper for PulsedMultiscale {
    type Record = MultiscaleRecord;

    fn step(&mut self) -> MultiscaleRecord {
        self.advance()
    }

    fn time_fs(&self) -> f64 {
        self.time()
    }
}

impl Stepper for NnMdLoop {
    type Record = NnMdRecord;

    fn step(&mut self) -> NnMdRecord {
        self.advance()
    }

    fn time_fs(&self) -> f64 {
        NnMdLoop::time_fs(self)
    }
}

/// The cross-domain batched ensemble advances all member domains in
/// lockstep; its per-step record is the vector of member records, in
/// domain order.
impl Stepper for NnMdEnsemble {
    type Record = Vec<NnMdRecord>;

    fn step(&mut self) -> Vec<NnMdRecord> {
        self.advance()
    }

    fn time_fs(&self) -> f64 {
        NnMdEnsemble::time_fs(self)
    }
}

// ------------------------------------------------- supercell force model

/// The supercell force model of the pipeline's MD stages: the analytic
/// excitation-reshaped ferroelectric landscape, plus an optional
/// neural-network term evaluated through batched
/// [`mlmd_nnqmd::infer::block_evaluate`] inference (the ROADMAP's
/// "wire `block_evaluate` into the pipeline response stage" path —
/// neighbor-list construction is amortized per inference batch).
pub struct SupercellForce {
    pub ferro: FerroModel,
    pub network: Option<NnForceField>,
}

impl SupercellForce {
    /// Analytic landscape only (the default pipeline configuration).
    pub fn analytic(ferro: FerroModel) -> Self {
        Self {
            ferro,
            network: None,
        }
    }
}

impl ForceField for SupercellForce {
    fn accumulate(&self, sys: &mut mlmd_qxmd::atoms::AtomsSystem) -> f64 {
        let mut e = self.ferro.accumulate(sys);
        if let Some(nn) = &self.network {
            e += nn.accumulate(sys);
        }
        e
    }
}

/// Polarization texture of a supercell — the one field construction both
/// the switching verdict (`Pipeline::polarization`) and the response-trace
/// observer analyze, so the two measurements cannot diverge.
pub fn polarization_of(
    cells: (usize, usize, usize),
    ferro: &FerroModel,
    system: &mlmd_qxmd::atoms::AtomsSystem,
) -> PolarizationField {
    let (nx, ny, nz) = cells;
    PolarizationField::new(nx, ny, nz, ferro.displacement_field(system))
}

// ------------------------------------------------------------ observers

/// Samples the polarization texture of an [`MdStage`] over a
/// [`SupercellForce`] at the configured stride — the engine-shaped
/// replacement for the pipeline's hand-rolled response-trace loop.
pub struct ResponseTraceObserver {
    pub stride: SampleStride,
    cells: (usize, usize, usize),
    dt_fs: f64,
    pub trace: Vec<crate::pipeline::ResponsePoint>,
}

impl ResponseTraceObserver {
    pub fn new(cells: (usize, usize, usize), dt_fs: f64, stride: SampleStride) -> Self {
        Self {
            stride,
            cells,
            dt_fs,
            trace: Vec::new(),
        }
    }
}

impl Observer<MdStage<SupercellForce>> for ResponseTraceObserver {
    fn observe(&mut self, info: StepInfo, stage: &MdStage<SupercellForce>, _record: &MdRecord) {
        if !self.stride.should_sample(info) {
            return;
        }
        let field = polarization_of(self.cells, &stage.force().ferro, stage.system());
        let report = TextureReport::analyze(&field);
        self.trace.push(crate::pipeline::ResponsePoint {
            // (index + 1) · dt, not an accumulated sum — bit-compatible
            // with the historical trace timestamps.
            time_fs: (info.index + 1) as f64 * self.dt_fs,
            polar_order: report.polar_order,
            mean_charge: report.mean_charge,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_maxwell::source::GaussianPulse;
    use mlmd_maxwell::yee1d::Yee1d;
    use mlmd_numerics::rng::Xoshiro256;
    use mlmd_numerics::vec3::Vec3;
    use mlmd_qxmd::atoms::{AtomsSystem, Species};

    /// Deterministic toy stepper: record = index².
    struct Counter {
        n: usize,
    }

    impl Stepper for Counter {
        type Record = usize;

        fn step(&mut self) -> usize {
            let r = self.n * self.n;
            self.n += 1;
            r
        }

        fn time_fs(&self) -> f64 {
            self.n as f64
        }
    }

    #[test]
    fn stride_matches_historical_cadence() {
        // step % 10 == 0 || step + 1 == n  over n = 23 steps.
        let n = 23;
        let stride = SampleStride::default();
        let sampled: Vec<usize> = (0..n)
            .filter(|&index| {
                stride.should_sample(StepInfo {
                    index,
                    is_last: index + 1 == n,
                })
            })
            .collect();
        let historical: Vec<usize> = (0..n)
            .filter(|&step| step % 10 == 0 || step + 1 == n)
            .collect();
        assert_eq!(sampled, historical);
        assert_eq!(sampled, vec![0, 10, 20, 22]);
    }

    #[test]
    #[should_panic(expected = "sample stride must be non-zero")]
    fn zero_stride_rejected_at_construction() {
        let _ = SampleStride::new(0);
    }

    #[test]
    fn stride_constructors_agree() {
        assert_eq!(SampleStride::new(1), SampleStride::EVERY);
        assert_eq!(SampleStride::default(), SampleStride::new(10));
        assert_eq!(SampleStride::new(7).get(), 7);
    }

    #[test]
    fn default_token_never_cancels() {
        let mut obs = TraceObserver::every();
        let out =
            Engine::run_cancellable(&mut Counter { n: 0 }, 5, &mut obs, &CancelToken::default());
        assert_eq!(
            out,
            RunOutcome {
                steps_done: 5,
                cancelled: false
            }
        );
        assert_eq!(obs.trace, vec![0, 1, 4, 9, 16]);
    }

    /// A stepper that cancels its own token during step number `at`
    /// (1-based), so the engine — which checks *before* each step —
    /// stops deterministically after exactly `at` steps.
    struct SelfCancel {
        n: usize,
        at: usize,
        token: CancelToken,
    }

    impl Stepper for SelfCancel {
        type Record = usize;

        fn step(&mut self) -> usize {
            self.n += 1;
            if self.n == self.at {
                self.token.cancel();
            }
            self.n
        }

        fn time_fs(&self) -> f64 {
            self.n as f64
        }
    }

    #[test]
    fn cancellation_lands_on_a_step_boundary() {
        let token = CancelToken::new();
        let mut obs = TraceObserver::every();
        let mut stepper = SelfCancel {
            n: 0,
            at: 3,
            token: token.clone(),
        };
        let out = Engine::run_cancellable(&mut stepper, 10, &mut obs, &token);
        assert_eq!(
            out,
            RunOutcome {
                steps_done: 3,
                cancelled: true
            }
        );
        // The partial trace is a valid prefix: every completed step
        // observed, nothing after the boundary.
        assert_eq!(obs.trace, vec![1, 2, 3]);
    }

    #[test]
    fn pre_cancelled_run_takes_no_steps() {
        let token = CancelToken::new();
        token.cancel();
        let mut obs = TraceObserver::every();
        let out = Engine::run_cancellable(&mut Counter { n: 0 }, 4, &mut obs, &token);
        assert_eq!(
            out,
            RunOutcome {
                steps_done: 0,
                cancelled: true
            }
        );
        assert!(obs.trace.is_empty());
    }

    #[test]
    fn run_plan_cancelled_run_reports_partial_trace() {
        let token = CancelToken::new();
        let mut plan = RunPlan::new();
        plan.push(
            SelfCancel {
                n: 0,
                at: usize::MAX,
                token: CancelToken::new(),
            },
            TraceObserver::every(),
            6,
        );
        plan.push_cancellable(
            SelfCancel {
                n: 0,
                at: 2,
                token: token.clone(),
            },
            TraceObserver::every(),
            6,
            token,
        );
        let done = plan.execute_with_width(2);
        assert_eq!(done[0].outcome.steps_done, 6);
        assert!(!done[0].outcome.cancelled);
        assert_eq!(done[0].observer.trace.len(), 6);
        assert!(done[1].outcome.cancelled);
        assert_eq!(done[1].outcome.steps_done, 2);
        assert_eq!(done[1].observer.trace, vec![1, 2]);
    }

    #[test]
    fn every_stride_records_all_steps() {
        let mut obs = TraceObserver::every();
        Engine::run(&mut Counter { n: 0 }, 7, &mut obs);
        assert_eq!(obs.trace, vec![0, 1, 4, 9, 16, 25, 36]);
        let collected = Engine::run_collect(&mut Counter { n: 0 }, 7);
        assert_eq!(collected, obs.trace);
    }

    #[test]
    fn ensemble_stepper_matches_direct_advances() {
        use mlmd_nnqmd::{AllegroLite, ModelConfig};
        let model = AllegroLite::new(
            ModelConfig {
                hidden: 6,
                k_max: 4,
                rcut: 3.5,
            },
            41,
        );
        let domains: Vec<AtomsSystem> = (0..2)
            .map(|d| {
                let mut sys = mlmd_qxmd::perovskite::PerovskiteLattice::uniform(
                    2,
                    2,
                    2,
                    Vec3::new(0.0, 0.0, 0.1),
                )
                .system;
                let mut rng = Xoshiro256::new(7 + d as u64);
                sys.thermalize(40.0, &mut rng);
                sys
            })
            .collect();
        let mut direct = NnMdEnsemble::new(domains.clone(), model.clone(), 0.5, 2);
        let mut stepped = NnMdEnsemble::new(domains, model, 0.5, 2);
        let collected = Engine::run_collect(&mut stepped, 3);
        assert_eq!(collected.len(), 3);
        for _ in 0..3 {
            let want = direct.advance();
            let got = &collected[direct.steps_taken() - 1];
            assert_eq!(want.len(), got.len());
            for (w, g) in want.iter().zip(got) {
                assert_eq!(w.potential_energy.to_bits(), g.potential_energy.to_bits());
                assert_eq!(w.kinetic_energy.to_bits(), g.kinetic_energy.to_bits());
            }
        }
        assert_eq!(stepped.time_fs(), direct.time_fs());
    }

    #[test]
    fn run_plan_preserves_submission_order() {
        let mut plan: RunPlan<Counter, TraceObserver<usize>> = RunPlan::new();
        for n0 in 0..8 {
            plan.push(Counter { n: n0 * 100 }, TraceObserver::every(), 2);
        }
        let done = plan.execute_with_width(4);
        assert_eq!(done.len(), 8);
        for (i, run) in done.iter().enumerate() {
            let n0 = i * 100;
            assert_eq!(run.observer.trace, vec![n0 * n0, (n0 + 1) * (n0 + 1)]);
        }
    }

    #[test]
    fn run_plan_batches_field_steppers() {
        // Two independent FDTD runs through the plan vs sequentially.
        let make = |amp: f64| {
            PulsedYee::new(
                Yee1d::new(120, 1.0, 0.5),
                GaussianPulse::new(amp, 0.3, 20.0, 8.0),
                30,
            )
        };
        let mut seq_a = make(0.1);
        let mut seq_b = make(0.2);
        let ra = Engine::run_collect(&mut seq_a, 100);
        let rb = Engine::run_collect(&mut seq_b, 100);
        let mut plan = RunPlan::new();
        plan.push(make(0.1), TraceObserver::every(), 100);
        plan.push(make(0.2), TraceObserver::every(), 100);
        let done = plan.execute_with_width(2);
        for (seq, run) in [ra, rb].iter().zip(&done) {
            for (a, b) in seq.iter().zip(&run.observer.trace) {
                assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            }
        }
    }

    #[test]
    fn md_stage_is_a_stepper() {
        let sys = AtomsSystem::new(
            vec![Species::O],
            vec![Vec3::new(0.3, 0.0, 0.0)],
            Vec3::splat(50.0),
        );
        struct Spring;
        impl ForceField for Spring {
            fn accumulate(&self, sys: &mut AtomsSystem) -> f64 {
                let mut e = 0.0;
                for i in 0..sys.len() {
                    e += sys.positions[i].norm_sqr();
                    sys.forces[i] -= sys.positions[i] * 2.0;
                }
                e
            }
        }
        let mut stage = MdStage::new(sys, Spring, 0.1, None, Xoshiro256::new(1));
        let trace = Engine::run_collect(&mut stage, 5);
        assert_eq!(trace.len(), 5);
        assert_eq!(Stepper::time_fs(&stage), 5.0 * 0.1);
        assert!(trace.iter().all(|r| r.potential_energy.is_finite()));
    }
}
