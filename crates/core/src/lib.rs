//! # mlmd-core — the MLMD orchestrator
//!
//! The paper's top-level contribution: divide–conquer–recombine (DCR) and
//! metamodel-space algebra (MSA) gluing DC-MESH and XS-NNQMD into one
//! end-to-end multiscale light-matter dynamics pipeline (Fig. 1).
//!
//! * [`engine`] — the driver seam: the [`engine::Stepper`] contract every
//!   time-stepping loop satisfies, [`engine::Observer`] sampling with a
//!   configurable stride, and the [`engine::RunPlan`] batch runner that
//!   executes independent runs concurrently on the work-stealing pool.
//! * [`msa`] — the three MSA couplings as explicit, typed interfaces:
//!   MSA-1 shadow occupations (time axis), MSA-2 total-energy alignment
//!   (dataset axis), MSA-3 XN/NN force extrapolation (space axis).
//! * [`pipeline`] — the Fig. 3 workflow: GS-prepared skyrmion
//!   superlattice → DC-MESH femtosecond pulse → XS-NNQMD large-scale
//!   dynamics → topological-switching verdict, rebuilt as engine runs
//!   (the pump–probe pair executes as one [`engine::RunPlan`] batch).
//! * [`probe`] — [`probe::CostProbe`], a wall-clock probe on the
//!   `Observer` seam whose per-step report feeds `mlmd-exasim`'s
//!   calibration harness.
//! * [`config`] — run configuration.

pub mod config;
pub mod engine;
pub mod msa;
pub mod pipeline;
pub mod probe;

pub use config::PipelineConfig;
pub use engine::{Engine, Observer, RunPlan, SampleStride, Stepper};
pub use pipeline::{Pipeline, PipelineOutcome};
pub use probe::{CostProbe, CostProbeReport};
