//! Synthetic heavy-traffic load generator — the throughput story.
//!
//! Drives a [`Scheduler`] with the acceptance workload: a burst of unique
//! FDTD jobs (≥ the queue capacity, so admission control and
//! backpressure are actually exercised) followed by a batch of
//! *identical-material* pump–probe sweeps that must coalesce onto one
//! execution, with a fraction of jobs cancelled in flight. The
//! [`LoadReport`] records what a service operator would watch: sustained
//! jobs/sec, p50/p99 submission-to-resolution latency, dedup hit-rate,
//! backpressure pushbacks, and the queue high-water mark (bounded by
//! construction — the admission gate is the memory ceiling).

use crate::job::JobSpec;
use crate::scheduler::{JobHandle, Scheduler, SubmitError};
use mlmd_core::config::PipelineConfig;
use std::time::{Duration, Instant};

/// Shape of the synthetic load.
#[derive(Clone, Copy, Debug)]
pub struct LoadProfile {
    /// Unique (non-coalescing) jobs, each a distinct FDTD pulse.
    pub unique_jobs: usize,
    /// Identical-material pump–probe sweep submissions; all but the
    /// first should coalesce onto the primary's execution.
    pub identical_sweeps: usize,
    /// Cancel every Nth unique job right after submission (0 = never) —
    /// queued-job cancellation under load.
    pub cancel_every: usize,
    /// FDTD grid cells per unique job.
    pub fdtd_cells: usize,
    /// FDTD steps per unique job.
    pub fdtd_steps: usize,
    /// Submissions round-robin across this many synthetic tenants.
    pub tenants: usize,
}

impl LoadProfile {
    /// The PR's acceptance workload: 64 unique jobs (at queue capacity,
    /// so submission must ride the backpressure) + 8 identical-material
    /// sweeps, every 9th job cancelled.
    pub fn acceptance() -> Self {
        Self {
            unique_jobs: 64,
            identical_sweeps: 8,
            cancel_every: 9,
            fdtd_cells: 96,
            fdtd_steps: 400,
            tenants: 4,
        }
    }

    /// A seconds-scale smoke profile for CI.
    pub fn smoke() -> Self {
        Self {
            unique_jobs: 16,
            identical_sweeps: 8,
            cancel_every: 5,
            fdtd_cells: 48,
            fdtd_steps: 60,
            tenants: 2,
        }
    }

    fn total_jobs(&self) -> usize {
        self.unique_jobs + self.identical_sweeps
    }
}

/// What the load run measured.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Jobs submitted (unique + sweep submissions).
    pub submitted: usize,
    /// Jobs resolved successfully.
    pub completed: u64,
    /// Jobs resolved by cancellation.
    pub cancelled: u64,
    /// Submissions coalesced onto an identical in-flight execution.
    pub dedup_hits: u64,
    /// `dedup_hits` over the best possible (`identical_sweeps - 1`).
    pub dedup_hit_rate: f64,
    /// `QueueFull` pushbacks absorbed by the submission loop.
    pub backpressure_rejections: u64,
    /// Queue high-water mark (bounded by the admission gate).
    pub peak_queued: u64,
    /// Resolved jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Median submission-to-resolution latency.
    pub p50_ms: f64,
    /// Tail submission-to-resolution latency.
    pub p99_ms: f64,
    /// Whole-run wall time.
    pub wall_ms: f64,
}

impl LoadReport {
    /// Render as the `BENCH_pr7.json` payload (no serde in the tree —
    /// the schema is documented in docs/BENCHMARKS.md).
    pub fn to_json(&self, workers: usize, queue_capacity: usize) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"service_load\",\n",
                "  \"workers\": {},\n",
                "  \"queue_capacity\": {},\n",
                "  \"submitted\": {},\n",
                "  \"completed\": {},\n",
                "  \"cancelled\": {},\n",
                "  \"dedup_hits\": {},\n",
                "  \"dedup_hit_rate\": {:.4},\n",
                "  \"backpressure_rejections\": {},\n",
                "  \"peak_queued\": {},\n",
                "  \"jobs_per_sec\": {:.2},\n",
                "  \"p50_ms\": {:.3},\n",
                "  \"p99_ms\": {:.3},\n",
                "  \"wall_ms\": {:.1}\n",
                "}}"
            ),
            workers,
            queue_capacity,
            self.submitted,
            self.completed,
            self.cancelled,
            self.dedup_hits,
            self.dedup_hit_rate,
            self.backpressure_rejections,
            self.peak_queued,
            self.jobs_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.wall_ms,
        )
    }
}

/// The identical-material sweep every load run submits `identical_sweeps`
/// times — a small but real MESH workload (ground-state descent included
/// on the primary; followers share the result without running at all).
pub fn sweep_spec() -> JobSpec {
    let mut cfg = PipelineConfig::small_demo();
    cfg.cells = (4, 4, 1);
    cfg.prepare_steps = 2;
    cfg.mesh_steps = 2;
    cfg.response_steps = 10;
    JobSpec::pump_probe_sweep(cfg, vec![0.05, 0.1])
}

/// A unique FDTD job: `tag` varies the carrier frequency so every key
/// differs and nothing coalesces.
fn unique_spec(profile: &LoadProfile, tag: usize) -> JobSpec {
    JobSpec::fdtd_pulse(
        profile.fdtd_cells,
        0.2,
        0.25 + tag as f64 * 1e-3,
        profile.fdtd_steps,
    )
}

/// Submit, riding backpressure: on [`SubmitError::QueueFull`] back off
/// briefly and retry (workers drain concurrently, so progress is
/// guaranteed); counts the pushbacks absorbed.
fn submit_sustained(
    scheduler: &Scheduler,
    tenant: &str,
    spec: &JobSpec,
    rejections: &mut u64,
) -> Option<JobHandle> {
    loop {
        match scheduler.submit_for(tenant, Default::default(), spec.clone()) {
            Ok(handle) => return Some(handle),
            Err(SubmitError::QueueFull { .. }) => {
                *rejections += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            // A planner rejection is deterministic — retrying the same
            // spec can never succeed, so the generator drops the job.
            Err(SubmitError::ShuttingDown) | Err(SubmitError::PlanRejected(_)) => return None,
        }
    }
}

/// Nearest-rank percentile of an already-sorted slice.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// Drive `profile` through `scheduler` and measure. The scheduler may be
/// shared / reused: counters are reported as deltas across this run.
pub fn drive(scheduler: &Scheduler, profile: &LoadProfile) -> LoadReport {
    let before = scheduler.metrics();
    let mut rejections = 0u64;
    let mut handles: Vec<JobHandle> = Vec::with_capacity(profile.total_jobs());
    let started = Instant::now();

    // Phase 1: the unique burst — exceeds the queue, so the loop has to
    // ride QueueFull pushbacks; every Nth job is cancelled while queued.
    for i in 0..profile.unique_jobs {
        let tenant = format!("tenant-{}", i % profile.tenants.max(1));
        let spec = unique_spec(profile, i);
        let Some(handle) = submit_sustained(scheduler, &tenant, &spec, &mut rejections) else {
            break;
        };
        if profile.cancel_every > 0 && (i + 1) % profile.cancel_every == 0 {
            handle.cancel();
        }
        handles.push(handle);
    }

    // Phase 2: the identical-material sweeps, back to back. The first
    // becomes the primary; the rest must coalesce (dedup hits).
    let sweep = sweep_spec();
    for i in 0..profile.identical_sweeps {
        let tenant = format!("tenant-{}", i % profile.tenants.max(1));
        let Some(handle) = submit_sustained(scheduler, &tenant, &sweep, &mut rejections) else {
            break;
        };
        handles.push(handle);
    }

    // Drain: every handle resolves (completed or cancelled).
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(handles.len());
    let mut completed = 0u64;
    let mut cancelled = 0u64;
    for handle in &handles {
        let output = handle.wait();
        if output.cancelled {
            cancelled += 1;
        } else {
            completed += 1;
        }
        let latency = handle.latency().unwrap_or_default();
        latencies_ms.push(latency.as_secs_f64() * 1e3);
    }
    let wall = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));

    let after = scheduler.metrics();
    let dedup_hits = after.dedup_hits - before.dedup_hits;
    let best = (profile.identical_sweeps.saturating_sub(1)).max(1) as u64;
    LoadReport {
        submitted: handles.len(),
        completed,
        cancelled,
        dedup_hits,
        dedup_hit_rate: dedup_hits as f64 / best as f64,
        backpressure_rejections: rejections,
        peak_queued: after.peak_queued,
        jobs_per_sec: handles.len() as f64 / wall.max(1e-9),
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        wall_ms: wall * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ServiceConfig;
    use mlmd_core::engine::SampleStride;

    #[test]
    fn smoke_load_resolves_every_job_and_coalesces_sweeps() {
        let scheduler = Scheduler::new(ServiceConfig {
            workers: 2,
            queue_capacity: 8, // smaller than the burst: forces pushback
            progress_stride: SampleStride::new(20),
            dedup: true,
            planner: None,
        });
        let profile = LoadProfile::smoke();
        let report = drive(&scheduler, &profile);
        assert_eq!(report.submitted, profile.total_jobs());
        assert_eq!(
            report.completed + report.cancelled,
            report.submitted as u64,
            "every job resolves"
        );
        assert!(report.cancelled >= 1, "cancellation observed under load");
        assert!(
            report.dedup_hits >= 7,
            "identical sweeps coalesce (got {} hits)",
            report.dedup_hits
        );
        assert!(
            report.peak_queued <= 8,
            "queue stays bounded (peak {})",
            report.peak_queued
        );
        assert!(report.backpressure_rejections > 0, "pushback exercised");
        assert!(report.p50_ms <= report.p99_ms);
        scheduler.shutdown();
    }

    #[test]
    fn report_renders_the_bench_json_schema() {
        let report = LoadReport {
            submitted: 72,
            completed: 60,
            cancelled: 12,
            dedup_hits: 7,
            dedup_hit_rate: 1.0,
            backpressure_rejections: 5,
            peak_queued: 64,
            jobs_per_sec: 10.0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            wall_ms: 100.0,
        };
        let json = report.to_json(2, 64);
        for key in [
            "\"bench\": \"service_load\"",
            "\"dedup_hit_rate\": 1.0000",
            "\"p99_ms\": 2.000",
            "\"queue_capacity\": 64",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
