//! The multi-tenant job scheduler.
//!
//! ```text
//! clients ── submit(spec) ──▶ admission control (bounded queue)
//!                │                    │
//!                │  identical key     ▼
//!                ├─▶ dedup group   priority bands (High ▸ Normal ▸ Low)
//!                │   (followers)   round-robin across tenants per band
//!                │                    │
//!                ▼                    ▼
//!            JobHandle ◀── events ── worker threads ──▶ engine runs on
//!            (stream, wait,          (CancelToken,      the shared
//!             cancel)                 ProgressObserver)  work-stealing pool
//! ```
//!
//! Semantics, precisely:
//!
//! * **Admission**: `submit` fails with [`SubmitError::QueueFull`] once
//!   `queue_capacity` jobs are queued — backpressure, never unbounded
//!   memory. Dedup followers coalesce onto an existing execution and so
//!   do not consume queue slots.
//! * **Planning** (when [`ServiceConfig::planner`] is set): every
//!   submission is costed ahead of time by the calibrated
//!   [`Planner`] — a job whose best execution choice still exceeds the
//!   planner's limits is refused with [`SubmitError::PlanRejected`]
//!   before it can occupy a queue slot; an admitted job carries its
//!   [`RunPlan`] (see [`JobHandle::plan`]) and, when predicted longer
//!   than `batch_threshold_secs`, is demoted one priority band so batch
//!   work cannot crowd interactive requests. Workers measure actual
//!   wall-clock, and [`MetricsSnapshot`] reports the running
//!   predicted-vs-actual totals — the feedback that keeps the
//!   calibration honest.
//! * **Fairness**: within a priority band the queue serves tenants
//!   round-robin (one job per turn), so a tenant submitting 100 jobs
//!   cannot starve a tenant submitting 1. Bands are strict: High drains
//!   before Normal before Low.
//! * **Dedup**: a submission whose [`JobSpec::dedup_key`] matches a
//!   queued or running job attaches to that job's group; exactly one
//!   execution runs and every member receives the shared result. Members
//!   see a [`JobEvent::Deduped`] naming the primary whose stream carries
//!   the progress events.
//! * **Cancellation** is cooperative and lands on step boundaries.
//!   Cancelling a *queued* job resolves it immediately (`Unstarted`, no
//!   execution); cancelling a *running* job fires its [`CancelToken`]
//!   and the result carries the partial trace. Cancelling a dedup
//!   primary cancels the group's single execution — followers share its
//!   fate; cancelling a follower detaches only that follower.
//! * **Shutdown**: [`Scheduler::shutdown`] stops admission, drains the
//!   queue, and joins the workers. Dropping the scheduler instead
//!   cancels all outstanding work first, so a drop never hangs on a
//!   long-running job and no `wait()` caller is left dangling.

use crate::job::{JobOutput, JobResult, JobSpec, Priority};
use crate::progress::{EventSink, JobEvent, JobId};
use crossbeam::channel::{Receiver, Sender};
use mlmd_core::engine::{CancelToken, SampleStride};
use mlmd_exasim::planner::{PlanVerdict, Planner, RunPlan};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service sizing and behavior knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing jobs (each run still fans out onto the
    /// shared work-stealing pool for its inner parallelism).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before `submit` pushes back
    /// with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Stride of streamed [`JobEvent::Progress`] events within each run.
    pub progress_stride: SampleStride,
    /// Coalesce submissions with identical dedup keys onto one
    /// execution. On by default.
    pub dedup: bool,
    /// Ahead-of-time admission planning: when set, every submission is
    /// costed against the planner's calibrated model and limits before
    /// it reaches the queue (see the module docs). `None` (the default)
    /// admits on queue capacity alone.
    pub planner: Option<Planner>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            progress_stride: SampleStride::default(),
            dedup: true,
            planner: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitError {
    /// The bounded queue is full — back off and retry (backpressure).
    QueueFull { capacity: usize },
    /// The planner predicts that even the cheapest execution choice
    /// exceeds the admission limits — the verdict carries which limit
    /// and by how much. Resize the job (fewer steps, coarser stride) and
    /// resubmit; retrying unchanged can never succeed.
    PlanRejected(PlanVerdict),
    /// The scheduler is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue full ({capacity} jobs queued)")
            }
            SubmitError::PlanRejected(verdict) => {
                write!(f, "planner refused the job: {verdict}")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lifecycle of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker (or for its dedup primary).
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; result available and not cancelled.
    Completed,
    /// Resolved by cancellation (possibly with a partial trace).
    Cancelled,
}

struct CoreState {
    status: JobStatus,
    output: Option<Arc<JobOutput>>,
    resolved_at: Option<Instant>,
}

/// Shared per-job record: handles, queue entries, and dedup groups all
/// point at the same core.
struct JobCore {
    id: JobId,
    cancel: CancelToken,
    sink: EventSink,
    state: Mutex<CoreState>,
    resolved: Condvar,
    submitted_at: Instant,
    /// The planner's chosen execution plan, when admission planning is
    /// on. Dedup followers carry the same plan as their primary (same
    /// spec, same plan).
    plan: Option<RunPlan>,
}

impl JobCore {
    fn new(id: JobId, sink: EventSink, plan: Option<RunPlan>) -> Self {
        Self {
            id,
            cancel: CancelToken::new(),
            sink,
            state: Mutex::new(CoreState {
                status: JobStatus::Queued,
                output: None,
                resolved_at: None,
            }),
            resolved: Condvar::new(),
            submitted_at: Instant::now(),
            plan,
        }
    }

    fn status(&self) -> JobStatus {
        self.state.lock().expect("job state poisoned").status
    }

    fn is_resolved(&self) -> bool {
        self.state
            .lock()
            .expect("job state poisoned")
            .output
            .is_some()
    }

    /// Publish the result exactly once; later calls are no-ops (a
    /// follower individually cancelled before its primary finished keeps
    /// its own resolution).
    fn resolve(&self, output: Arc<JobOutput>) {
        let cancelled = output.cancelled;
        {
            let mut state = self.state.lock().expect("job state poisoned");
            if state.output.is_some() {
                return;
            }
            state.output = Some(output);
            state.resolved_at = Some(Instant::now());
            state.status = if cancelled {
                JobStatus::Cancelled
            } else {
                JobStatus::Completed
            };
        }
        // Emit before waking waiters so a `wait()`er that immediately
        // drains the event stream sees the terminal events.
        if cancelled {
            self.sink.emit(JobEvent::Cancelled { id: self.id });
        }
        self.sink.emit(JobEvent::Completed {
            id: self.id,
            cancelled,
        });
        self.resolved.notify_all();
    }

    fn wait(&self) -> Arc<JobOutput> {
        let mut state = self.state.lock().expect("job state poisoned");
        loop {
            if let Some(output) = &state.output {
                return Arc::clone(output);
            }
            state = self.resolved.wait(state).expect("job state poisoned");
        }
    }
}

fn unstarted_cancelled() -> Arc<JobOutput> {
    Arc::new(JobOutput {
        result: JobResult::Unstarted,
        cancelled: true,
        steps_done: 0,
    })
}

/// One queued execution (a dedup group's primary).
struct QueueEntry {
    core: Arc<JobCore>,
    spec: JobSpec,
    key: u64,
}

struct TenantQueue {
    tenant: String,
    jobs: VecDeque<QueueEntry>,
}

/// One priority band: per-tenant FIFOs served round-robin.
#[derive(Default)]
struct Band {
    tenants: Vec<TenantQueue>,
    cursor: usize,
}

impl Band {
    fn push(&mut self, tenant: &str, entry: QueueEntry) {
        match self.tenants.iter_mut().find(|t| t.tenant == tenant) {
            Some(t) => t.jobs.push_back(entry),
            None => self.tenants.push(TenantQueue {
                tenant: tenant.to_string(),
                jobs: VecDeque::from([entry]),
            }),
        }
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let n = self.tenants.len();
        for k in 0..n {
            let i = (self.cursor + k) % n;
            if let Some(entry) = self.tenants[i].jobs.pop_front() {
                self.cursor = (i + 1) % n;
                return Some(entry);
            }
        }
        None
    }
}

/// An in-flight dedup group: the primary's execution plus the followers
/// waiting to share its result.
struct DedupGroup {
    primary: Arc<JobCore>,
    followers: Vec<Arc<JobCore>>,
}

struct QueueState {
    bands: [Band; 3],
    /// Queued (not yet popped) executions, dead entries included.
    queued: usize,
    accepting: bool,
    /// dedup key → in-flight group (queued or running primary).
    groups: HashMap<u64, DedupGroup>,
    /// Every unresolved job, for drop-time cancellation.
    active: HashMap<JobId, Arc<JobCore>>,
    /// Scheduler-wide event subscribers, attached to every later job.
    subscribers: Vec<Sender<JobEvent>>,
    next_id: u64,
}

#[derive(Default)]
struct Metrics {
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    dedup_hits: AtomicU64,
    executed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    peak_queued: AtomicU64,
    planned: AtomicU64,
    plan_rejected: AtomicU64,
    demoted: AtomicU64,
    /// Wall-clock totals in microseconds (atomics carry no f64).
    predicted_us: AtomicU64,
    actual_us: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsSnapshot {
    /// Submission attempts (admitted + deduped + rejected).
    pub submitted: u64,
    /// Executions admitted into the queue.
    pub admitted: u64,
    /// Submissions pushed back with `QueueFull`.
    pub rejected: u64,
    /// Submissions coalesced onto an identical in-flight job.
    pub dedup_hits: u64,
    /// Executions a worker actually ran.
    pub executed: u64,
    /// Jobs resolved successfully.
    pub completed: u64,
    /// Jobs resolved by cancellation.
    pub cancelled: u64,
    /// High-water mark of the queue.
    pub peak_queued: u64,
    /// Submissions the planner costed and accepted.
    pub planned: u64,
    /// Submissions refused with [`SubmitError::PlanRejected`].
    pub plan_rejected: u64,
    /// Planned jobs demoted one priority band (predicted longer than
    /// the planner's `batch_threshold_secs`).
    pub demoted: u64,
    /// Planner-predicted wall-clock, summed over executed planned jobs (s).
    pub predicted_secs: f64,
    /// Measured wall-clock, summed over every executed job (s) — compare
    /// against `predicted_secs` to audit the calibration.
    pub actual_secs: f64,
}

struct SchedInner {
    config: ServiceConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    metrics: Metrics,
}

/// Client-side handle to a submitted job: status, cancellation, the
/// event stream, and the (shared) result.
pub struct JobHandle {
    core: Arc<JobCore>,
    inner: Arc<SchedInner>,
    events: Receiver<JobEvent>,
    key: u64,
    deduped: bool,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.core.id)
            .field("status", &self.core.status())
            .field("deduped", &self.deduped)
            .finish()
    }
}

impl JobHandle {
    pub fn id(&self) -> JobId {
        self.core.id
    }

    pub fn status(&self) -> JobStatus {
        self.core.status()
    }

    /// Was this submission coalesced onto an identical in-flight job?
    pub fn is_deduped(&self) -> bool {
        self.deduped
    }

    /// The planner's chosen execution plan for this job, when the
    /// scheduler was configured with one ([`ServiceConfig::planner`]).
    /// Dedup followers report the same plan as their primary.
    pub fn plan(&self) -> Option<RunPlan> {
        self.core.plan
    }

    /// This job's event stream (lifecycle + streamed progress).
    pub fn events(&self) -> &Receiver<JobEvent> {
        &self.events
    }

    /// Block until the job resolves; the result is shared (`Arc`) with
    /// any dedup followers.
    pub fn wait(&self) -> Arc<JobOutput> {
        self.core.wait()
    }

    /// The result if already resolved, without blocking.
    pub fn try_output(&self) -> Option<Arc<JobOutput>> {
        self.core
            .state
            .lock()
            .expect("job state poisoned")
            .output
            .clone()
    }

    /// Submission-to-resolution time, once resolved.
    pub fn latency(&self) -> Option<Duration> {
        self.core
            .state
            .lock()
            .expect("job state poisoned")
            .resolved_at
            .map(|t| t - self.core.submitted_at)
    }

    /// Request cancellation (see the module docs for the exact queued /
    /// running / dedup semantics). Idempotent.
    pub fn cancel(&self) {
        self.inner.cancel_job(&self.core, self.key);
    }
}

impl SchedInner {
    fn cancel_job(self: &Arc<Self>, core: &Arc<JobCore>, key: u64) {
        // Fire the token first: a running execution stops at its next
        // step boundary whatever else happens.
        core.cancel.cancel();
        let mut q = self.queue.lock().expect("scheduler queue poisoned");
        if core.is_resolved() || core.status() == JobStatus::Running {
            // Running executions resolve through their worker (with the
            // partial trace); resolved jobs keep their resolution.
            return;
        }
        // Queued: resolve immediately, never execute.
        match q.groups.get_mut(&key) {
            Some(group) if Arc::ptr_eq(&group.primary, core) => {
                // Cancelling the group's one execution: followers share
                // its fate. The dead queue entry is skipped on pop.
                let group = q.groups.remove(&key).expect("group just found");
                q.active.remove(&core.id);
                for f in &group.followers {
                    q.active.remove(&f.id);
                }
                drop(q);
                core.resolve(unstarted_cancelled());
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                for f in group.followers {
                    f.resolve(unstarted_cancelled());
                    self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(group) => {
                // A follower detaches alone; the execution lives on.
                group.followers.retain(|f| !Arc::ptr_eq(f, core));
                q.active.remove(&core.id);
                drop(q);
                core.resolve(unstarted_cancelled());
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                // Dedup off (or group already gone): solo queued job.
                q.active.remove(&core.id);
                drop(q);
                core.resolve(unstarted_cancelled());
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn worker_loop(self: Arc<Self>) {
        loop {
            let entry = {
                let mut q = self.queue.lock().expect("scheduler queue poisoned");
                loop {
                    if let Some(entry) = Self::pop(&mut q) {
                        if entry.core.is_resolved() {
                            // Dead entry (cancelled while queued).
                            continue;
                        }
                        // Mark running under the queue lock so a
                        // concurrent cancel sees a consistent status.
                        entry.core.state.lock().expect("job state poisoned").status =
                            JobStatus::Running;
                        break Some(entry);
                    }
                    if !q.accepting {
                        break None;
                    }
                    q = self.available.wait(q).expect("scheduler queue poisoned");
                }
            };
            let Some(entry) = entry else { return };
            entry
                .core
                .sink
                .emit(JobEvent::Started { id: entry.core.id });
            self.metrics.executed.fetch_add(1, Ordering::Relaxed);
            let run_started = Instant::now();
            let output = Arc::new(entry.spec.run(
                &entry.core.cancel,
                &entry.core.sink,
                entry.core.id,
                self.config.progress_stride,
            ));
            // Predicted-vs-actual accounting: actual wall-clock for every
            // execution, the plan's prediction when one was made.
            self.metrics
                .actual_us
                .fetch_add(run_started.elapsed().as_micros() as u64, Ordering::Relaxed);
            if let Some(plan) = &entry.core.plan {
                self.metrics
                    .predicted_us
                    .fetch_add((plan.predicted_secs * 1e6) as u64, Ordering::Relaxed);
            }
            // Detach the group, then resolve primary + followers.
            let followers = {
                let mut q = self.queue.lock().expect("scheduler queue poisoned");
                q.active.remove(&entry.core.id);
                let followers = match q.groups.remove(&entry.key) {
                    Some(group) => group.followers,
                    None => Vec::new(),
                };
                for f in &followers {
                    q.active.remove(&f.id);
                }
                followers
            };
            let count = |out: &JobOutput| {
                if out.cancelled {
                    self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                }
            };
            count(&output);
            entry.core.resolve(Arc::clone(&output));
            for f in followers {
                count(&output);
                f.resolve(Arc::clone(&output));
            }
        }
    }

    fn pop(q: &mut QueueState) -> Option<QueueEntry> {
        for band in &mut q.bands {
            if let Some(entry) = band.pop() {
                q.queued -= 1;
                return Some(entry);
            }
        }
        None
    }
}

/// The persistent simulation service (see the module docs).
///
/// # Example
///
/// ```
/// use mlmd_service::{JobSpec, Scheduler, ServiceConfig};
///
/// let scheduler = Scheduler::new(ServiceConfig {
///     workers: 1,
///     ..ServiceConfig::default()
/// });
/// let job = scheduler
///     .submit(JobSpec::fdtd_pulse(64, 0.2, 0.3, 25))
///     .expect("admitted");
/// let output = job.wait();
/// assert!(!output.cancelled);
/// assert_eq!(output.steps_done, 25);
/// scheduler.shutdown();
/// ```
pub struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Spawn the worker threads and open the queue.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_capacity > 0, "need a non-empty queue");
        let inner = Arc::new(SchedInner {
            config,
            queue: Mutex::new(QueueState {
                bands: [Band::default(), Band::default(), Band::default()],
                queued: 0,
                accepting: true,
                groups: HashMap::new(),
                active: HashMap::new(),
                subscribers: Vec::new(),
                next_id: 0,
            }),
            available: Condvar::new(),
            metrics: Metrics::default(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mlmd-service-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("failed to spawn service worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Submit under the default tenant at normal priority.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, SubmitError> {
        self.submit_for("default", Priority::Normal, spec)
    }

    /// Submit a job for `tenant` at `priority`.
    pub fn submit_for(
        &self,
        tenant: &str,
        priority: Priority,
        spec: JobSpec,
    ) -> Result<JobHandle, SubmitError> {
        let inner = &self.inner;
        inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        // Ahead-of-time planning: cost the job before it can touch the
        // queue. Pure arithmetic on the calibrated model — no lock held.
        let mut priority = priority;
        let mut plan = None;
        if let Some(planner) = &inner.config.planner {
            let (chosen, verdict) = planner.plan(&spec.plan_job());
            if !verdict.is_accept() {
                inner.metrics.plan_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::PlanRejected(verdict));
            }
            inner.metrics.planned.fetch_add(1, Ordering::Relaxed);
            if chosen.predicted_secs > planner.limits.batch_threshold_secs {
                let demoted = priority.demote();
                if demoted != priority {
                    inner.metrics.demoted.fetch_add(1, Ordering::Relaxed);
                    priority = demoted;
                }
            }
            plan = Some(chosen);
        }
        let key = spec.dedup_key();
        let mut q = inner.queue.lock().expect("scheduler queue poisoned");
        if !q.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        let id = JobId(q.next_id);
        q.next_id += 1;
        let mut sink = EventSink::new();
        let events = sink.attach();
        for tx in &q.subscribers {
            sink.attach_sender(tx.clone());
        }
        // Dedup: coalesce onto an identical in-flight execution.
        if inner.config.dedup {
            if let Some(group) = q.groups.get_mut(&key) {
                let primary = group.primary.id;
                let core = Arc::new(JobCore::new(id, sink, plan));
                group.followers.push(Arc::clone(&core));
                q.active.insert(id, Arc::clone(&core));
                drop(q);
                inner.metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
                core.sink.emit(JobEvent::Queued { id });
                core.sink.emit(JobEvent::Deduped { id, primary });
                return Ok(JobHandle {
                    core,
                    inner: Arc::clone(inner),
                    events,
                    key,
                    deduped: true,
                });
            }
        }
        // Admission control: bounded queue, push back when full.
        if q.queued >= inner.config.queue_capacity {
            inner.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }
        let core = Arc::new(JobCore::new(id, sink, plan));
        if inner.config.dedup {
            q.groups.insert(
                key,
                DedupGroup {
                    primary: Arc::clone(&core),
                    followers: Vec::new(),
                },
            );
        }
        q.active.insert(id, Arc::clone(&core));
        q.bands[priority as usize].push(
            tenant,
            QueueEntry {
                core: Arc::clone(&core),
                spec,
                key,
            },
        );
        q.queued += 1;
        let queued = q.queued as u64;
        drop(q);
        inner.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        inner
            .metrics
            .peak_queued
            .fetch_max(queued, Ordering::Relaxed);
        core.sink.emit(JobEvent::Queued { id });
        inner.available.notify_one();
        Ok(JobHandle {
            core,
            inner: Arc::clone(inner),
            events,
            key,
            deduped: false,
        })
    }

    /// A scheduler-wide event stream carrying every event of every job
    /// submitted *after* this call — the live dashboard feed.
    pub fn subscribe(&self) -> Receiver<JobEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.inner
            .queue
            .lock()
            .expect("scheduler queue poisoned")
            .subscribers
            .push(tx);
        rx
    }

    /// Current service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let m = &self.inner.metrics;
        MetricsSnapshot {
            submitted: m.submitted.load(Ordering::Relaxed),
            admitted: m.admitted.load(Ordering::Relaxed),
            rejected: m.rejected.load(Ordering::Relaxed),
            dedup_hits: m.dedup_hits.load(Ordering::Relaxed),
            executed: m.executed.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            cancelled: m.cancelled.load(Ordering::Relaxed),
            peak_queued: m.peak_queued.load(Ordering::Relaxed),
            planned: m.planned.load(Ordering::Relaxed),
            plan_rejected: m.plan_rejected.load(Ordering::Relaxed),
            demoted: m.demoted.load(Ordering::Relaxed),
            predicted_secs: m.predicted_us.load(Ordering::Relaxed) as f64 * 1e-6,
            actual_secs: m.actual_us.load(Ordering::Relaxed) as f64 * 1e-6,
        }
    }

    /// Jobs currently queued (dead entries included until popped).
    pub fn queued_len(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("scheduler queue poisoned")
            .queued
    }

    /// Stop admission, drain the queue, and join the workers. Queued
    /// jobs still execute; call this for a graceful end of service.
    pub fn shutdown(mut self) {
        self.close_and_join(false);
    }

    fn close_and_join(&mut self, cancel_outstanding: bool) {
        {
            let mut q = self.inner.queue.lock().expect("scheduler queue poisoned");
            q.accepting = false;
            if cancel_outstanding {
                for core in q.active.values() {
                    core.cancel.cancel();
                }
            }
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    /// Dropping the service cancels outstanding work (cooperatively, at
    /// step boundaries) and joins the workers — every `wait()` caller
    /// still gets a resolution, with `cancelled: true` and whatever
    /// partial trace existed.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.close_and_join(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fdtd(n_steps: usize, omega_tag: f64) -> JobSpec {
        // omega_tag varies the dedup key so tests control coalescing.
        JobSpec::fdtd_pulse(48, 0.2, omega_tag, n_steps)
    }

    /// A job slow enough to still be running when a test cancels it:
    /// per-step cost scales with the grid, so a wide grid makes each
    /// step milliseconds while the trace stays small (16 B/record).
    fn slow_blocker(omega_tag: f64) -> JobSpec {
        JobSpec::fdtd_pulse(100_000, 0.2, omega_tag, 20_000)
    }

    fn one_worker() -> Scheduler {
        Scheduler::new(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            progress_stride: SampleStride::EVERY,
            dedup: true,
            planner: None,
        })
    }

    /// A synthetic fit with deterministic constants — admission decisions
    /// must not depend on this host's actual speed.
    fn test_planner() -> Planner {
        use mlmd_exasim::calibrate::Calibration;
        use mlmd_exasim::Machine;
        let cal = Calibration {
            alpha: 2.0e-6,
            beta: 5.0e-11,
            mesh_step: 0.010,
            n_qd: 30.0,
            construct_cold: 0.008,
            construct_warm: 0.0008,
            dist_step: [0.0; 3],
            dist_fixed: [0.0; 3],
            md_atom_step: 2.0e-7,
            fdtd_cell_step: 4.0e-9,
        };
        Planner::new(Machine::from_calibration(&cal), cal)
    }

    fn planned_scheduler(planner: Planner) -> Scheduler {
        Scheduler::new(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            progress_stride: SampleStride::EVERY,
            dedup: true,
            planner: Some(planner),
        })
    }

    #[test]
    fn planner_gate_admits_annotates_and_rejects() {
        let s = planned_scheduler(test_planner());
        // A small job passes and carries its plan.
        let h = s.submit(fdtd(12, 0.33)).unwrap();
        let plan = h.plan().expect("planned scheduler annotates the job");
        assert!(plan.predicted_secs < 1.0);
        assert!(!h.wait().cancelled);
        // An oversized job (predicted ≫ max_wall_secs) is refused with
        // the typed verdict before touching the queue.
        let huge = JobSpec::fdtd_pulse(1_000_000, 0.2, 0.3, 100_000_000);
        let err = s.submit(huge).unwrap_err();
        let SubmitError::PlanRejected(verdict) = err else {
            panic!("expected PlanRejected, got {err:?}");
        };
        assert!(!verdict.is_accept());
        let m = s.metrics();
        assert_eq!(m.planned, 1);
        assert_eq!(m.plan_rejected, 1);
        assert_eq!(m.admitted, 1);
        assert!(m.actual_secs > 0.0, "worker measured the run");
        assert!(m.predicted_secs > 0.0, "prediction accumulated");
        s.shutdown();
    }

    #[test]
    fn long_jobs_are_demoted_to_the_batch_band() {
        let mut planner = test_planner();
        planner.limits.batch_threshold_secs = 1e-9; // everything is "long"
        planner.limits.max_wall_secs = f64::INFINITY;
        planner.limits.max_cost_rank_secs = f64::INFINITY;
        let s = planned_scheduler(planner);
        // Stall the worker so ordering is decided by the queue alone.
        let blocker = s.submit(slow_blocker(0.95)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let rx = s.subscribe();
        // Every submission is predicted over the threshold, so each lands
        // one band down: High→Normal and Normal→Low.
        let a = s.submit_for("t", Priority::High, fdtd(3, 0.61)).unwrap();
        let b = s.submit_for("t", Priority::Normal, fdtd(3, 0.62)).unwrap();
        blocker.cancel();
        a.wait();
        b.wait();
        // High→Normal still outranks Normal→Low.
        let started: Vec<JobId> = rx
            .try_iter()
            .filter_map(|e| match e {
                JobEvent::Started { id } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![a.id(), b.id()]);
        assert_eq!(s.metrics().demoted, 3, "blocker + both jobs demoted");
        s.shutdown();
    }

    #[test]
    fn dedup_followers_share_the_primary_plan() {
        let s = planned_scheduler(test_planner());
        let blocker = s.submit(slow_blocker(0.94)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let first = s.submit(fdtd(30, 0.43)).unwrap();
        let second = s.submit(fdtd(30, 0.43)).unwrap();
        assert!(second.is_deduped());
        assert_eq!(
            first.plan().expect("primary planned"),
            second.plan().expect("follower carries the same plan")
        );
        blocker.cancel();
        first.wait();
        second.wait();
        s.shutdown();
    }

    #[test]
    fn jobs_complete_and_report_events() {
        let s = one_worker();
        let h = s.submit(fdtd(12, 0.31)).unwrap();
        let out = h.wait();
        assert!(!out.cancelled);
        assert_eq!(out.steps_done, 12);
        assert_eq!(h.status(), JobStatus::Completed);
        assert!(h.latency().is_some());
        let events: Vec<JobEvent> = h.events().try_iter().collect();
        assert!(matches!(events.first(), Some(JobEvent::Queued { .. })));
        assert!(events.iter().any(|e| matches!(e, JobEvent::Started { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, JobEvent::Progress { step: 12, .. })));
        assert!(matches!(
            events.last(),
            Some(JobEvent::Completed {
                cancelled: false,
                ..
            })
        ));
        s.shutdown();
    }

    #[test]
    fn identical_jobs_coalesce_to_one_execution() {
        let s = one_worker();
        // Stall the single worker so the identical batch stays queued
        // long enough to coalesce deterministically.
        let blocker = s.submit(slow_blocker(0.99)).unwrap();
        let handles: Vec<JobHandle> = (0..8).map(|_| s.submit(fdtd(30, 0.41)).unwrap()).collect();
        assert!(!handles[0].is_deduped(), "first submission is the primary");
        assert!(handles[1..].iter().all(JobHandle::is_deduped));
        // Free the worker, then drain the batch.
        blocker.cancel();
        let outputs: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        // One execution, one shared result.
        let m = s.metrics();
        assert_eq!(m.dedup_hits, 7);
        for out in &outputs[1..] {
            assert!(Arc::ptr_eq(&outputs[0], out), "result is shared, not rerun");
        }
        s.shutdown();
    }

    #[test]
    fn queue_full_pushes_back() {
        let s = Scheduler::new(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            progress_stride: SampleStride::EVERY,
            dedup: false,
            planner: None,
        });
        // Occupy the worker, then fill the two queue slots.
        let blocker = s.submit(slow_blocker(0.98)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let a = s.submit(fdtd(5, 0.11)).unwrap();
        let b = s.submit(fdtd(5, 0.12)).unwrap();
        let err = s.submit(fdtd(5, 0.13)).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        assert_eq!(s.metrics().rejected, 1);
        blocker.cancel();
        assert!(blocker.wait().cancelled);
        assert!(!a.wait().cancelled);
        assert!(!b.wait().cancelled);
        s.shutdown();
    }

    #[test]
    fn priority_bands_and_tenant_fairness_order_execution() {
        let s = one_worker();
        // Stall the worker so the whole batch queues before any runs.
        let blocker = s.submit(slow_blocker(0.97)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let rx = s.subscribe();
        // tenant A floods normal priority; tenant B submits one normal
        // job and one high-priority job.
        let a: Vec<JobHandle> = (0..3)
            .map(|i| {
                s.submit_for("alice", Priority::Normal, fdtd(3, 0.2 + i as f64 * 0.01))
                    .unwrap()
            })
            .collect();
        let b_normal = s
            .submit_for("bob", Priority::Normal, fdtd(3, 0.51))
            .unwrap();
        let b_high = s.submit_for("bob", Priority::High, fdtd(3, 0.52)).unwrap();
        blocker.cancel();
        for h in a.iter().chain([&b_normal, &b_high]) {
            h.wait();
        }
        let started: Vec<JobId> = rx
            .try_iter()
            .filter_map(|e| match e {
                JobEvent::Started { id } => Some(id),
                _ => None,
            })
            .collect();
        // High band first; then the normal band alternates tenants
        // (alice, bob, alice, alice) instead of draining alice's flood.
        assert_eq!(
            started,
            vec![b_high.id(), a[0].id(), b_normal.id(), a[1].id(), a[2].id()]
        );
        s.shutdown();
    }

    #[test]
    fn cancelling_queued_job_never_executes() {
        let s = one_worker();
        let blocker = s.submit(slow_blocker(0.96)).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let victim = s.submit(fdtd(50, 0.61)).unwrap();
        victim.cancel();
        let out = victim.wait();
        assert!(out.cancelled);
        assert!(matches!(out.result, JobResult::Unstarted));
        assert_eq!(victim.status(), JobStatus::Cancelled);
        let events: Vec<JobEvent> = victim.events().try_iter().collect();
        assert!(
            !events.iter().any(|e| matches!(e, JobEvent::Started { .. })),
            "a queued-cancelled job must never start"
        );
        blocker.cancel();
        blocker.wait();
        // The worker never ran the victim.
        assert_eq!(s.metrics().executed, 1);
        s.shutdown();
    }

    #[test]
    fn cancelling_running_job_yields_partial_trace() {
        let s = one_worker();
        let h = s.submit(slow_blocker(0.71)).unwrap();
        // Wait until it is actually running.
        loop {
            if matches!(
                h.events().try_iter().last(),
                Some(JobEvent::Started { .. }) | Some(JobEvent::Progress { .. })
            ) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        h.cancel();
        let out = h.wait();
        assert!(out.cancelled);
        assert!(out.steps_done < 20_000, "stopped early");
        let JobResult::Fdtd(trace) = &out.result else {
            panic!("partial trace expected");
        };
        assert_eq!(trace.len(), out.steps_done, "trace is a valid prefix");
        // The pool is not poisoned: the next job completes normally.
        let next = s.submit(fdtd(10, 0.72)).unwrap();
        assert!(!next.wait().cancelled);
        s.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let s = one_worker();
        let handles: Vec<JobHandle> = (0..5)
            .map(|i| s.submit(fdtd(20, 0.8 + i as f64 * 0.01)).unwrap())
            .collect();
        s.shutdown();
        for h in handles {
            assert!(!h.wait().cancelled, "graceful shutdown runs queued work");
        }
    }

    #[test]
    fn drop_cancels_outstanding_work_without_hanging() {
        let s = one_worker();
        let long = s.submit(slow_blocker(0.91)).unwrap();
        let queued = s.submit(slow_blocker(0.92)).unwrap();
        drop(s);
        assert!(long.wait().cancelled);
        assert!(queued.wait().cancelled);
    }
}
