//! The service's workload vocabulary: every `Pipeline`/engine workload
//! re-expressed as a [`JobSpec`] value, so the scheduler and the existing
//! synchronous API share one code path.
//!
//! A sweep job executes through `Pipeline::mesh_batch_observed` +
//! `Pipeline::sweep_runs` — exactly the functions
//! `Pipeline::pump_probe_sweep` is built from; a MESH job engine-drives
//! `Pipeline::mesh_stage`, an MD job `Pipeline::supercell_md_stage`, an
//! FDTD job the `PulsedYee` wrapper. The service adds only the envelope:
//! cancellation tokens, progress observers, and a canonical
//! [`JobSpec::dedup_key`].
//!
//! ## Dedup-key discipline
//!
//! The key hashes *exactly the inputs that determine the job's result*,
//! and nothing else:
//!
//! * mesh-family jobs fold in the ground-state config hash
//!   (`MeshDriverBuilder::config_key`, i.e.
//!   `mlmd_dcmesh::checkpoint::ground_state_key`) — "same material" —
//!   plus the measurement knobs (amplitudes, step counts, Ehrenfest
//!   settings, carrier frequency, time step);
//! * execution-form knobs that are pinned bit-identical
//!   (`mesh_ranks_per_domain`, `mesh_warm_start`, pool width) are
//!   deliberately excluded: two clients asking for the same physics
//!   coalesce even if they would have executed it differently;
//! * every variant starts from its own salt, so an MD job can never
//!   collide with a MESH job.

use crate::progress::{EventSink, JobId, ProgressObserver};
use mlmd_core::config::PipelineConfig;
use mlmd_core::engine::{CancelToken, Engine, SampleStride, SupercellForce, TraceObserver};
use mlmd_core::pipeline::{Pipeline, PumpProbeRun, MESH_STAGE_NGRID, MESH_STAGE_NORB};
use mlmd_dcmesh::mesh::MeshStepRecord;
use mlmd_dcmesh::WarmStartPolicy;
use mlmd_exasim::planner::PlanJob;
use mlmd_floquet::sweep::{SuperlatticeSweep, SweepPoint};
use mlmd_maxwell::driver::{FieldRecord, PulsedYee};
use mlmd_maxwell::source::{Drive, GaussianPulse};
use mlmd_maxwell::yee1d::Yee1d;
use mlmd_numerics::codec::Fnv64;
use mlmd_qxmd::md_stage::MdRecord;

/// Scheduling priority band; within a band tenants are served round-robin.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Interactive / latency-sensitive requests.
    High,
    /// The default band.
    #[default]
    Normal,
    /// Batch backfill.
    Low,
}

impl Priority {
    /// All bands, highest first — the queue's service order.
    pub const BANDS: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// One band down — what the scheduler applies to jobs the planner
    /// predicts longer than [`PlanLimits::batch_threshold_secs`], so
    /// batch-scale work cannot crowd the interactive band. `Low` is the
    /// floor.
    ///
    /// [`PlanLimits::batch_threshold_secs`]: mlmd_exasim::planner::PlanLimits::batch_threshold_secs
    pub fn demote(self) -> Priority {
        match self {
            Priority::High => Priority::Normal,
            Priority::Normal | Priority::Low => Priority::Low,
        }
    }
}

/// Per-variant key salts (distinct leading bytes per workload class).
const SWEEP_SALT: u64 = u64::from_le_bytes(*b"job-swp\0");
const MESH_SALT: u64 = u64::from_le_bytes(*b"job-mesh");
const MD_SALT: u64 = u64::from_le_bytes(*b"job-md\0\0");
const FDTD_SALT: u64 = u64::from_le_bytes(*b"job-fdtd");
const FLOQUET_SALT: u64 = u64::from_le_bytes(*b"job-flq\0");

/// One simulation request, as data.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// N-amplitude pump–probe sweep sharing one dark reference — the
    /// workload of `Pipeline::pump_probe_sweep` (and, with a single
    /// amplitude, the lit/dark pair of `Pipeline::run`'s pulse stage).
    PumpProbeSweep {
        config: PipelineConfig,
        amplitudes: Vec<f64>,
    },
    /// A single MESH driver run at one pulse amplitude.
    MeshRun {
        config: PipelineConfig,
        e0: f64,
        n_steps: usize,
    },
    /// A supercell MD run with the respond stage's force/dissipation
    /// wiring at the given uniform excitation fraction.
    MdRun {
        config: PipelineConfig,
        excitation_fraction: f64,
        n_steps: usize,
    },
    /// A 1-D FDTD vacuum pulse propagation.
    FdtdPulse {
        n_cells: usize,
        dz: f64,
        dt: f64,
        e0: f64,
        omega: f64,
        t0: f64,
        sigma: f64,
        source_node: usize,
        n_steps: usize,
    },
    /// An SSH-dimer superlattice geometry scan under a fixed periodic
    /// drive, with streaming Floquet spectra and per-configuration band
    /// invariants — the workload of
    /// [`SuperlatticeSweep::execute`].
    FloquetSweep { sweep: SuperlatticeSweep },
}

/// What a finished job hands back.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// Cancelled before execution started — nothing ran, no trace.
    Unstarted,
    PumpProbe(Vec<PumpProbeRun>),
    Mesh(Vec<MeshStepRecord>),
    Md(Vec<MdRecord>),
    Fdtd(Vec<FieldRecord>),
    Floquet(Vec<SweepPoint>),
}

/// A job's result plus how the execution ended. A cancelled job reports
/// the partial trace of the steps that completed before the token fired
/// (a valid prefix — cancellation lands on step boundaries).
#[derive(Clone, Debug)]
pub struct JobOutput {
    pub result: JobResult,
    /// Whether a cancel token stopped the execution early.
    pub cancelled: bool,
    /// Steps actually taken, summed over the job's runs.
    pub steps_done: usize,
}

fn hash_ehrenfest(h: &mut Fnv64, cfg: &PipelineConfig) {
    h.write_f64(cfg.ehrenfest.dt_qd);
    h.write_u64(cfg.ehrenfest.n_qd as u64);
    h.write_u64(cfg.ehrenfest.self_consistent as u64);
}

/// The supercell-texture inputs (what `Pipeline::new` builds from).
fn hash_supercell(h: &mut Fnv64, cfg: &PipelineConfig) {
    h.write_u64(cfg.cells.0 as u64);
    h.write_u64(cfg.cells.1 as u64);
    h.write_u64(cfg.cells.2 as u64);
    h.write_u64(cfg.skyrmions.0 as u64);
    h.write_u64(cfg.skyrmions.1 as u64);
    h.write_f64(cfg.skyrmion_radius);
    h.write_f64(cfg.u0);
}

/// Every parameter of a [`Drive`] that enters the field values, tagged
/// per variant so a CW drive can never collide with a pulse train of
/// the same amplitudes.
fn hash_drive(h: &mut Fnv64, drive: &Drive) {
    match drive {
        Drive::Gaussian(p) => {
            h.write_u64(1);
            h.write_f64(p.e0);
            h.write_f64(p.omega);
            h.write_f64(p.t0);
            h.write_f64(p.sigma);
            h.write_f64(p.phase);
        }
        Drive::Cw(d) => {
            h.write_u64(2);
            h.write_f64(d.e0);
            h.write_f64(d.omega);
            h.write_f64(d.phase);
            h.write_f64(d.ramp_time);
        }
        Drive::Chirped(p) => {
            h.write_u64(3);
            h.write_f64(p.e0);
            h.write_f64(p.omega);
            h.write_f64(p.t0);
            h.write_f64(p.sigma);
            h.write_f64(p.phase);
            h.write_f64(p.chirp);
        }
        Drive::Train(p) => {
            h.write_u64(4);
            h.write_f64(p.base.e0);
            h.write_f64(p.base.omega);
            h.write_f64(p.base.t0);
            h.write_f64(p.base.sigma);
            h.write_f64(p.base.phase);
            h.write_u64(p.count as u64);
            h.write_f64(p.spacing);
        }
    }
}

impl JobSpec {
    /// The sweep workload of [`Pipeline::pump_probe_sweep`].
    pub fn pump_probe_sweep(config: PipelineConfig, amplitudes: Vec<f64>) -> Self {
        assert!(!amplitudes.is_empty(), "sweep needs at least one amplitude");
        JobSpec::PumpProbeSweep { config, amplitudes }
    }

    /// The lit/dark pulse pair of `Pipeline::run`'s stage 2, as a
    /// single-amplitude sweep.
    pub fn pulse_pair(config: PipelineConfig) -> Self {
        Self::pump_probe_sweep(config, vec![config.pulse_e0])
    }

    /// One MESH driver run at amplitude `e0` for `n_steps`.
    pub fn mesh_run(config: PipelineConfig, e0: f64, n_steps: usize) -> Self {
        JobSpec::MeshRun {
            config,
            e0,
            n_steps,
        }
    }

    /// A supercell MD response run at the given excitation fraction.
    pub fn md_run(config: PipelineConfig, excitation_fraction: f64, n_steps: usize) -> Self {
        JobSpec::MdRun {
            config,
            excitation_fraction,
            n_steps,
        }
    }

    /// A 1-D FDTD pulse on an `n_cells` vacuum grid (Courant-stable
    /// defaults: dz 1.0, dt 0.5, source at `n_cells / 4`, pulse center
    /// t₀ = 20 with width 8 — the engine-suite geometry).
    pub fn fdtd_pulse(n_cells: usize, e0: f64, omega: f64, n_steps: usize) -> Self {
        JobSpec::FdtdPulse {
            n_cells,
            dz: 1.0,
            dt: 0.5,
            e0,
            omega,
            t0: 20.0,
            sigma: 8.0,
            source_node: n_cells / 4,
            n_steps,
        }
    }

    /// A superlattice geometry scan under a fixed periodic drive.
    pub fn floquet_sweep(sweep: SuperlatticeSweep) -> Self {
        assert!(
            !sweep.configs.is_empty(),
            "sweep needs at least one geometry"
        );
        JobSpec::FloquetSweep { sweep }
    }

    /// A short human label for logs and progress displays.
    pub fn label(&self) -> &'static str {
        match self {
            JobSpec::PumpProbeSweep { .. } => "pump-probe-sweep",
            JobSpec::MeshRun { .. } => "mesh-run",
            JobSpec::MdRun { .. } => "md-run",
            JobSpec::FdtdPulse { .. } => "fdtd-pulse",
            JobSpec::FloquetSweep { .. } => "floquet-sweep",
        }
    }

    /// Total engine steps this job will take (the denominator of its
    /// progress events).
    pub fn total_steps(&self) -> usize {
        match self {
            JobSpec::PumpProbeSweep { config, amplitudes } => {
                (amplitudes.len() + 1) * config.mesh_steps
            }
            JobSpec::MeshRun { n_steps, .. }
            | JobSpec::MdRun { n_steps, .. }
            | JobSpec::FdtdPulse { n_steps, .. } => *n_steps,
            JobSpec::FloquetSweep { sweep } => sweep.total_steps(),
        }
    }

    /// The canonical cross-request deduplication key (see the module
    /// docs for the discipline). Two specs with equal keys produce
    /// bit-identical results, so the scheduler may run one and share.
    pub fn dedup_key(&self) -> u64 {
        let mut h = Fnv64::new();
        match self {
            JobSpec::PumpProbeSweep { config, amplitudes } => {
                h.write_u64(SWEEP_SALT);
                h.write_u64(Self::material_key(config));
                h.write_f64(config.dt_fs);
                h.write_f64(config.pulse_omega);
                hash_ehrenfest(&mut h, config);
                h.write_u64(config.mesh_steps as u64);
                h.write_u64(amplitudes.len() as u64);
                for &e0 in amplitudes {
                    h.write_f64(e0);
                }
            }
            JobSpec::MeshRun {
                config,
                e0,
                n_steps,
            } => {
                h.write_u64(MESH_SALT);
                h.write_u64(Self::material_key(config));
                h.write_f64(config.dt_fs);
                h.write_f64(config.pulse_omega);
                hash_ehrenfest(&mut h, config);
                h.write_f64(*e0);
                h.write_u64(*n_steps as u64);
            }
            JobSpec::MdRun {
                config,
                excitation_fraction,
                n_steps,
            } => {
                h.write_u64(MD_SALT);
                hash_supercell(&mut h, config);
                h.write_f64(config.dt_fs);
                h.write_u64(config.seed);
                h.write_f64(*excitation_fraction);
                h.write_u64(*n_steps as u64);
            }
            JobSpec::FdtdPulse {
                n_cells,
                dz,
                dt,
                e0,
                omega,
                t0,
                sigma,
                source_node,
                n_steps,
            } => {
                h.write_u64(FDTD_SALT);
                h.write_u64(*n_cells as u64);
                h.write_f64(*dz);
                h.write_f64(*dt);
                h.write_f64(*e0);
                h.write_f64(*omega);
                h.write_f64(*t0);
                h.write_f64(*sigma);
                h.write_u64(*source_node as u64);
                h.write_u64(*n_steps as u64);
            }
            JobSpec::FloquetSweep { sweep } => {
                h.write_u64(FLOQUET_SALT);
                hash_drive(&mut h, &sweep.drive);
                h.write_u64(sweep.n_cells as u64);
                h.write_f64(sweep.dz);
                h.write_f64(sweep.dt);
                h.write_u64(sweep.n_steps as u64);
                h.write_f64(sweep.sigma_patch);
                h.write_u64(sweep.n_harmonics as u64);
                h.write_u64(sweep.invariant_grid as u64);
                h.write_u64(sweep.chain_pairs as u64);
                h.write_u64(sweep.configs.len() as u64);
                for c in &sweep.configs {
                    h.write_f64(c.dimerization);
                    h.write_u64(c.patch_period as u64);
                }
            }
        }
        h.finish()
    }

    /// This job's workload shape for the ahead-of-time planner — the
    /// quantities the calibrated cost model needs, nothing more. Mesh
    /// jobs report the pipeline's one domain shape
    /// ([`MESH_STAGE_NGRID`] × [`MESH_STAGE_NORB`], the calibration
    /// fixture's shape), so fitted fixture times transfer directly.
    pub fn plan_job(&self) -> PlanJob {
        match self {
            JobSpec::PumpProbeSweep { config, amplitudes } => PlanJob::MeshBatch {
                // The sweep runs every amplitude plus the shared dark
                // reference (see `run`).
                runs: amplitudes.len() + 1,
                steps: config.mesh_steps,
                ngrid: MESH_STAGE_NGRID,
                norb: MESH_STAGE_NORB,
                n_qd: config.ehrenfest.n_qd,
                stride: 1,
                warm_shared: matches!(config.mesh_warm_start, WarmStartPolicy::ProcessCache),
            },
            JobSpec::MeshRun {
                config, n_steps, ..
            } => PlanJob::MeshBatch {
                runs: 1,
                steps: *n_steps,
                ngrid: MESH_STAGE_NGRID,
                norb: MESH_STAGE_NORB,
                n_qd: config.ehrenfest.n_qd,
                stride: 1,
                warm_shared: matches!(config.mesh_warm_start, WarmStartPolicy::ProcessCache),
            },
            JobSpec::MdRun {
                config, n_steps, ..
            } => PlanJob::Md {
                steps: *n_steps,
                atoms: config.n_atoms(),
            },
            JobSpec::FdtdPulse {
                n_cells, n_steps, ..
            } => PlanJob::Fdtd {
                steps: *n_steps,
                cells: *n_cells,
            },
            JobSpec::FloquetSweep { sweep } => PlanJob::FloquetSweep {
                runs: sweep.configs.len(),
                steps: sweep.n_steps,
                cells: sweep.n_cells,
            },
        }
    }

    /// The ground-state config hash of this configuration's MESH stage —
    /// `ground_state_key` through the builder seam, amplitude-independent
    /// by construction (the pulse does not enter the descent).
    pub fn material_key(config: &PipelineConfig) -> u64 {
        Pipeline::new(*config).mesh_stage_builder(0.0).config_key()
    }

    /// Execute the job: drive the underlying engine workload with
    /// cooperative cancellation and progress streaming. Runs on the
    /// calling thread; inner batches use the work-stealing pool exactly
    /// as the synchronous API does.
    pub fn run(
        &self,
        cancel: &CancelToken,
        sink: &EventSink,
        id: JobId,
        progress_stride: SampleStride,
    ) -> JobOutput {
        let total = self.total_steps();
        match self {
            JobSpec::PumpProbeSweep { config, amplitudes } => {
                let pipeline = Pipeline::new(*config);
                let mut all = amplitudes.clone();
                all.push(0.0); // the shared dark reference
                let pairs =
                    pipeline.mesh_batch_observed(&all, config.mesh_steps, cancel, |run, _e0| {
                        ProgressObserver::new(
                            TraceObserver::every(),
                            progress_stride,
                            sink.clone(),
                            id,
                            run,
                            config.mesh_steps,
                        )
                    });
                let cancelled = pairs.iter().any(|(_, outcome)| outcome.cancelled);
                let steps_done = pairs.iter().map(|(_, outcome)| outcome.steps_done).sum();
                let traces: Vec<Vec<MeshStepRecord>> = pairs
                    .into_iter()
                    .map(|(obs, _)| obs.into_inner().trace)
                    .collect();
                JobOutput {
                    result: JobResult::PumpProbe(Pipeline::sweep_runs(amplitudes, traces)),
                    cancelled,
                    steps_done,
                }
            }
            JobSpec::MeshRun {
                config,
                e0,
                n_steps,
            } => {
                let pipeline = Pipeline::new(*config);
                let mut driver = pipeline.mesh_stage(*e0);
                let mut obs = ProgressObserver::new(
                    TraceObserver::every(),
                    progress_stride,
                    sink.clone(),
                    id,
                    0,
                    total,
                );
                let outcome = Engine::run_cancellable(&mut driver, *n_steps, &mut obs, cancel);
                JobOutput {
                    result: JobResult::Mesh(obs.into_inner().trace),
                    cancelled: outcome.cancelled,
                    steps_done: outcome.steps_done,
                }
            }
            JobSpec::MdRun {
                config,
                excitation_fraction,
                n_steps,
            } => {
                let pipeline = Pipeline::new(*config);
                let mut stage: mlmd_qxmd::md_stage::MdStage<SupercellForce> =
                    pipeline.supercell_md_stage(*excitation_fraction);
                let mut obs = ProgressObserver::new(
                    TraceObserver::every(),
                    progress_stride,
                    sink.clone(),
                    id,
                    0,
                    total,
                );
                let outcome = Engine::run_cancellable(&mut stage, *n_steps, &mut obs, cancel);
                JobOutput {
                    result: JobResult::Md(obs.into_inner().trace),
                    cancelled: outcome.cancelled,
                    steps_done: outcome.steps_done,
                }
            }
            JobSpec::FdtdPulse {
                n_cells,
                dz,
                dt,
                e0,
                omega,
                t0,
                sigma,
                source_node,
                n_steps,
            } => {
                let mut driver = PulsedYee::new(
                    Yee1d::new(*n_cells, *dz, *dt),
                    GaussianPulse::new(*e0, *omega, *t0, *sigma),
                    *source_node,
                );
                let mut obs = ProgressObserver::new(
                    TraceObserver::every(),
                    progress_stride,
                    sink.clone(),
                    id,
                    0,
                    total,
                );
                let outcome = Engine::run_cancellable(&mut driver, *n_steps, &mut obs, cancel);
                JobOutput {
                    result: JobResult::Fdtd(obs.into_inner().trace),
                    cancelled: outcome.cancelled,
                    steps_done: outcome.steps_done,
                }
            }
            JobSpec::FloquetSweep { sweep } => {
                // One engine pass per geometry: the progress observer
                // wraps the spectral accumulator, so streaming events
                // and the Floquet bins come from the same step loop.
                let per_run = sweep.n_steps;
                let points = sweep.execute_observed(
                    cancel,
                    |run, obs| {
                        ProgressObserver::new(obs, progress_stride, sink.clone(), id, run, per_run)
                    },
                    |obs| obs.into_inner(),
                );
                let cancelled = points.iter().any(|p| p.outcome.cancelled);
                let steps_done = points.iter().map(|p| p.outcome.steps_done).sum();
                JobOutput {
                    result: JobResult::Floquet(points),
                    cancelled,
                    steps_done,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PipelineConfig {
        let mut cfg = PipelineConfig::small_demo();
        cfg.cells = (4, 4, 1);
        cfg.prepare_steps = 2;
        cfg.mesh_steps = 2;
        cfg.response_steps = 10;
        cfg
    }

    #[test]
    fn dedup_keys_are_canonical_and_discriminating() {
        let cfg = tiny_config();
        let a = JobSpec::pump_probe_sweep(cfg, vec![0.05, 0.1]);
        let b = JobSpec::pump_probe_sweep(cfg, vec![0.05, 0.1]);
        assert_eq!(a.dedup_key(), b.dedup_key(), "identical specs, one key");
        // Different amplitudes, steps, or workload class: different keys.
        assert_ne!(
            a.dedup_key(),
            JobSpec::pump_probe_sweep(cfg, vec![0.05, 0.2]).dedup_key()
        );
        assert_ne!(
            JobSpec::mesh_run(cfg, 0.05, 2).dedup_key(),
            JobSpec::mesh_run(cfg, 0.05, 3).dedup_key()
        );
        assert_ne!(
            JobSpec::mesh_run(cfg, 0.05, 2).dedup_key(),
            JobSpec::pump_probe_sweep(cfg, vec![0.05]).dedup_key()
        );
    }

    #[test]
    fn execution_form_does_not_enter_the_key() {
        // Bit-identical execution forms (distributed batch, warm-start
        // policy) must coalesce with their in-process twins.
        let cfg = tiny_config();
        let mut dist = cfg;
        dist.mesh_ranks_per_domain = Some(2);
        let mut fresh = cfg;
        fresh.mesh_warm_start = mlmd_dcmesh::WarmStartPolicy::Fresh;
        let base = JobSpec::pump_probe_sweep(cfg, vec![0.1]).dedup_key();
        assert_eq!(base, JobSpec::pump_probe_sweep(dist, vec![0.1]).dedup_key());
        assert_eq!(
            base,
            JobSpec::pump_probe_sweep(fresh, vec![0.1]).dedup_key()
        );
    }

    #[test]
    fn sweep_job_matches_synchronous_sweep_bit_for_bit() {
        // One code path: the job-service execution of a sweep must equal
        // Pipeline::pump_probe_sweep exactly.
        let cfg = tiny_config();
        let amplitudes = [0.05, 0.1];
        let sync = Pipeline::new(cfg).pump_probe_sweep(&amplitudes);
        let spec = JobSpec::pump_probe_sweep(cfg, amplitudes.to_vec());
        let out = spec.run(
            &CancelToken::new(),
            &EventSink::new(),
            JobId(1),
            SampleStride::EVERY,
        );
        assert!(!out.cancelled);
        assert_eq!(out.steps_done, spec.total_steps());
        let JobResult::PumpProbe(runs) = out.result else {
            panic!("sweep job must produce a sweep result");
        };
        assert_eq!(runs.len(), sync.len());
        for (a, b) in sync.iter().zip(&runs) {
            assert_eq!(a.e0, b.e0);
            assert_eq!(a.n_exc_peak.to_bits(), b.n_exc_peak.to_bits());
            assert_eq!(a.records.len(), b.records.len());
            for (ra, rb) in a.records.iter().zip(&b.records) {
                assert_eq!(ra.n_exc.to_bits(), rb.n_exc.to_bits());
            }
        }
    }

    #[test]
    fn floquet_keys_fold_drive_and_geometry() {
        use mlmd_floquet::sweep::DimerConfig;
        let configs = |etas: &[f64]| -> Vec<DimerConfig> {
            etas.iter()
                .map(|&dimerization| DimerConfig {
                    dimerization,
                    patch_period: 20,
                })
                .collect()
        };
        let base = SuperlatticeSweep::canonical(configs(&[0.5, 2.0]));
        let key = JobSpec::floquet_sweep(base.clone()).dedup_key();
        assert_eq!(
            key,
            JobSpec::floquet_sweep(base.clone()).dedup_key(),
            "identical sweeps, one key"
        );
        // A different geometry list, drive, or workload class breaks it.
        let mut other = base.clone();
        other.configs = configs(&[0.5, 2.5]);
        assert_ne!(key, JobSpec::floquet_sweep(other).dedup_key());
        let mut other = base.clone();
        other.drive = GaussianPulse::new(0.08, 0.3, 20.0, 8.0).into();
        assert_ne!(key, JobSpec::floquet_sweep(other).dedup_key());
        assert_ne!(
            key,
            JobSpec::fdtd_pulse(base.n_cells, 0.08, 0.3, base.n_steps).dedup_key()
        );
    }

    #[test]
    fn floquet_job_runs_and_cancels() {
        use mlmd_floquet::sweep::DimerConfig;
        let mut sweep = SuperlatticeSweep::canonical(
            [0.5, 2.0]
                .into_iter()
                .map(|dimerization| DimerConfig {
                    dimerization,
                    patch_period: 20,
                })
                .collect(),
        );
        sweep.n_steps = 120;
        let spec = JobSpec::floquet_sweep(sweep);
        let out = spec.run(
            &CancelToken::new(),
            &EventSink::new(),
            JobId(7),
            SampleStride::new(40),
        );
        assert!(!out.cancelled);
        assert_eq!(out.steps_done, spec.total_steps());
        let JobResult::Floquet(points) = out.result else {
            panic!("floquet result expected");
        };
        assert_eq!(points.len(), 2);
        assert!(!points[0].topological && points[1].topological);
        // Pre-cancelled: zero steps, every point flagged.
        let token = CancelToken::new();
        token.cancel();
        let out = spec.run(&token, &EventSink::new(), JobId(8), SampleStride::EVERY);
        assert!(out.cancelled);
        assert_eq!(out.steps_done, 0);
    }

    #[test]
    fn fdtd_job_runs_and_cancels() {
        let spec = JobSpec::fdtd_pulse(64, 0.2, 0.3, 40);
        let out = spec.run(
            &CancelToken::new(),
            &EventSink::new(),
            JobId(2),
            SampleStride::new(10),
        );
        assert!(!out.cancelled);
        let JobResult::Fdtd(trace) = out.result else {
            panic!("fdtd result expected");
        };
        assert_eq!(trace.len(), 40);
        // Pre-cancelled: no steps, empty trace, cancelled flag set.
        let token = CancelToken::new();
        token.cancel();
        let out = spec.run(&token, &EventSink::new(), JobId(3), SampleStride::EVERY);
        assert!(out.cancelled);
        assert_eq!(out.steps_done, 0);
    }
}
