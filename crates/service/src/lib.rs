//! # mlmd-service — simulation as a service
//!
//! The paper's end state is an exascale pipeline serving many concurrent
//! light-matter workloads; the ROADMAP north star is heavy multi-client
//! traffic. This crate is that layer: a persistent, multi-tenant job
//! service over the engine seam (`mlmd_core::engine`), so N clients
//! submitting pump–probe sweeps, MESH runs, MD relaxations, FDTD
//! pulses, and Floquet superlattice sweeps share one process, one
//! work-stealing pool, and one ground-state
//! cache — instead of each owning a blocking `Pipeline` call.
//!
//! The pieces, bottom-up:
//!
//! * [`job::JobSpec`] — the workload vocabulary. Each variant is a
//!   `Pipeline`/engine workload re-expressed as data, with a canonical
//!   [`job::JobSpec::dedup_key`] that folds in the ground-state config
//!   hash (`mlmd_dcmesh::checkpoint::ground_state_key` via the builder
//!   seam), so "same material, same measurement" is decidable before any
//!   work runs.
//! * [`progress::ProgressObserver`] — structured progress streaming on
//!   the `Observer` seam: wraps any inner observer and emits
//!   [`progress::JobEvent`]s over crossbeam channels at a configurable
//!   stride.
//! * [`scheduler::Scheduler`] — the service itself: a bounded
//!   priority/fairness queue (admission control + backpressure) feeding
//!   worker threads that execute jobs on the shared work-stealing pool,
//!   cross-request deduplication (identical in-flight jobs coalesce into
//!   one execution), and cooperative cancellation of both queued and
//!   running jobs through `mlmd_core::engine::CancelToken`. With a
//!   calibrated `mlmd_exasim::planner::Planner` configured
//!   ([`scheduler::ServiceConfig::planner`]), admission additionally
//!   costs every job ahead of time: oversized jobs are refused with
//!   [`scheduler::SubmitError::PlanRejected`], long jobs are demoted to
//!   the batch band, and the metrics report predicted-vs-actual
//!   wall-clock.
//! * [`loadgen`] — the synthetic heavy-traffic load generator behind the
//!   `service_load` bench group and `BENCH_pr7.json`: sustained
//!   submission with backpressure, p50/p99 latency, jobs/sec, and
//!   dedup hit-rate.
//!
//! Two layers of deduplication compose here: *identical* jobs share one
//! execution (the scheduler's dedup groups), while merely
//! *similar* jobs — e.g. sweeps of the same material at different
//! amplitudes — still share the expensive eigenstate descent through the
//! process-wide `GroundStateCache` (the pulse does not enter the
//! ground-state key).

pub mod job;
pub mod loadgen;
pub mod progress;
pub mod scheduler;

pub use job::{JobOutput, JobResult, JobSpec, Priority};
pub use progress::{JobEvent, JobId, ProgressObserver};
pub use scheduler::{JobHandle, JobStatus, Scheduler, ServiceConfig, SubmitError};
