//! Structured progress and lifecycle streaming.
//!
//! Built on the engine's `Observer` seam: [`ProgressObserver`] wraps any
//! inner observer (delegating every record to it unchanged) and
//! additionally publishes [`JobEvent::Progress`] envelopes over a
//! crossbeam channel at a configurable [`SampleStride`]. The scheduler
//! publishes the remaining lifecycle events ([`JobEvent::Queued`],
//! `Started`, `Deduped`, `Cancelled`, `Completed`) on the same channels,
//! so a client watching a [`crate::scheduler::JobHandle`]'s event stream
//! sees the whole story of its job in order.

use crossbeam::channel::{Receiver, Sender};
use mlmd_core::engine::{Observer, SampleStride, StepInfo, Stepper};

/// Service-assigned job identifier, unique within one scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// One envelope of a job's event stream.
#[derive(Clone, Debug)]
pub enum JobEvent {
    /// Admitted into the queue.
    Queued { id: JobId },
    /// Coalesced onto an identical in-flight job (the dedup primary):
    /// this job will complete with the primary's shared result.
    Deduped { id: JobId, primary: JobId },
    /// A worker started executing the job.
    Started { id: JobId },
    /// Streamed from inside the run by [`ProgressObserver`]: `step` of
    /// `of` completed in run `run` (a sweep executes several runs; single
    /// drivers report `run == 0`), at driver time `time_fs`.
    Progress {
        id: JobId,
        run: usize,
        step: usize,
        of: usize,
        time_fs: f64,
    },
    /// Cancelled — before starting if no `Started` event preceded this,
    /// else mid-run (the result then carries the partial trace).
    Cancelled { id: JobId },
    /// Execution finished and the result is available.
    Completed { id: JobId, cancelled: bool },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn id(&self) -> JobId {
        match *self {
            JobEvent::Queued { id }
            | JobEvent::Deduped { id, .. }
            | JobEvent::Started { id }
            | JobEvent::Progress { id, .. }
            | JobEvent::Cancelled { id }
            | JobEvent::Completed { id, .. } => id,
        }
    }
}

/// Fan-out sink for [`JobEvent`]s: one send clones the event to every
/// attached channel (the job's own handle stream plus any scheduler-wide
/// subscribers). Sends never block (channels are unbounded) and ignore
/// dropped receivers — a client that walked away must not wedge a worker.
#[derive(Clone, Default)]
pub struct EventSink {
    senders: Vec<Sender<JobEvent>>,
}

impl EventSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach another channel; returns the receiving end.
    pub fn attach(&mut self) -> Receiver<JobEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.senders.push(tx);
        rx
    }

    /// Attach an existing sender (a scheduler-wide subscriber).
    pub fn attach_sender(&mut self, tx: Sender<JobEvent>) {
        self.senders.push(tx);
    }

    /// Publish to every attached channel.
    pub fn emit(&self, event: JobEvent) {
        for tx in &self.senders {
            let _ = tx.send(event.clone());
        }
    }
}

/// Observer adapter that streams progress while delegating every record
/// to the wrapped inner observer — the run's trace collection and its
/// progress reporting are one engine pass, not two.
pub struct ProgressObserver<O> {
    inner: O,
    stride: SampleStride,
    sink: EventSink,
    id: JobId,
    run: usize,
    n_steps: usize,
}

impl<O> ProgressObserver<O> {
    /// Wrap `inner`; progress events go to `sink` every `stride` steps
    /// (plus always the final step), labelled with `id` and the batch
    /// run index `run` out of `n_steps` total steps.
    pub fn new(
        inner: O,
        stride: SampleStride,
        sink: EventSink,
        id: JobId,
        run: usize,
        n_steps: usize,
    ) -> Self {
        Self {
            inner,
            stride,
            sink,
            id,
            run,
            n_steps,
        }
    }

    /// The wrapped observer (e.g. to read its trace after the run).
    pub fn into_inner(self) -> O {
        self.inner
    }

    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<S: Stepper, O: Observer<S>> Observer<S> for ProgressObserver<O> {
    fn observe(&mut self, info: StepInfo, stepper: &S, record: &S::Record) {
        self.inner.observe(info, stepper, record);
        if self.stride.should_sample(info) {
            self.sink.emit(JobEvent::Progress {
                id: self.id,
                run: self.run,
                step: info.index + 1,
                of: self.n_steps,
                time_fs: stepper.time_fs(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_core::engine::{Engine, TraceObserver};

    struct Counter(usize);

    impl Stepper for Counter {
        type Record = usize;

        fn step(&mut self) -> usize {
            self.0 += 1;
            self.0
        }

        fn time_fs(&self) -> f64 {
            self.0 as f64
        }
    }

    #[test]
    fn progress_streams_at_stride_and_delegates_records() {
        let mut sink = EventSink::new();
        let rx = sink.attach();
        let mut obs = ProgressObserver::new(
            TraceObserver::every(),
            SampleStride::new(4),
            sink,
            JobId(7),
            2,
            10,
        );
        Engine::run(&mut Counter(0), 10, &mut obs);
        // Inner observer saw every record.
        assert_eq!(obs.inner().trace.len(), 10);
        // Progress sampled at steps 1, 5, 9 (indices 0, 4, 8) + final.
        let steps: Vec<usize> = rx
            .try_iter()
            .map(|e| match e {
                JobEvent::Progress {
                    step, of, run, id, ..
                } => {
                    assert_eq!(of, 10);
                    assert_eq!(run, 2);
                    assert_eq!(id, JobId(7));
                    step
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(steps, vec![1, 5, 9, 10]);
    }

    #[test]
    fn sink_fans_out_to_every_attachment() {
        let mut sink = EventSink::new();
        let a = sink.attach();
        let b = sink.attach();
        sink.emit(JobEvent::Queued { id: JobId(1) });
        assert!(matches!(a.recv().unwrap(), JobEvent::Queued { id } if id == JobId(1)));
        assert!(matches!(b.recv().unwrap(), JobEvent::Queued { id } if id == JobId(1)));
        // A dropped receiver must not wedge emission.
        drop(a);
        sink.emit(JobEvent::Completed {
            id: JobId(1),
            cancelled: false,
        });
        assert!(matches!(
            b.try_iter().last(),
            Some(JobEvent::Completed { .. })
        ));
    }
}
