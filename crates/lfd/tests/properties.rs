//! Property tests: the quantum-dynamics invariants of LFD — unitarity,
//! reversibility, and precision-ladder monotonicity over random states.

use mlmd_lfd::kin_prop::{KinImpl, KinProp};
use mlmd_lfd::nlp_prop::{NlpPrecision, NlpProp};
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::propagator::QdStep;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kinetic_propagation_unitary_for_any_state_and_field(
        seed in 0u64..10_000,
        dt in 0.001f64..0.1,
        ax in -0.5f64..0.5,
        az in -0.5f64..0.5
    ) {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let kp = KinProp::new(grid);
        let mut wf = WaveFunctions::random(grid, 3, seed);
        let flops = FlopCounter::new();
        for _ in 0..5 {
            kp.propagate_n(KinImpl::Parallel, &mut wf, dt, Vec3::new(ax, 0.0, az), 1, &flops);
        }
        prop_assert!(wf.norm_error() < 1e-10, "norm error {}", wf.norm_error());
    }

    #[test]
    fn all_kin_tiers_agree_on_random_states(seed in 0u64..10_000, dt in 0.005f64..0.05) {
        let grid = Grid3::new(6, 6, 6, 0.6);
        let kp = KinProp::new(grid);
        let flops = FlopCounter::new();
        let a = Vec3::new(0.1, -0.2, 0.05);
        let reference = {
            let mut wf = WaveFunctions::random(grid, 2, seed);
            kp.propagate_n(KinImpl::Baseline, &mut wf, dt, a, 2, &flops);
            wf
        };
        for imp in [KinImpl::Reordered, KinImpl::Blocked, KinImpl::Parallel] {
            let mut wf = WaveFunctions::random(grid, 2, seed);
            kp.propagate_n(imp, &mut wf, dt, a, 2, &flops);
            prop_assert!(wf.psi.max_abs_diff(&reference.psi) < 1e-11);
        }
    }

    #[test]
    fn full_step_time_reversible(seed in 0u64..10_000, dt in 0.01f64..0.05) {
        let grid = Grid3::new(6, 6, 6, 0.5);
        let qd = QdStep::new(grid);
        let vloc: Vec<f64> = (0..grid.len()).map(|i| 0.1 * ((i % 7) as f64)).collect();
        let mut wf = WaveFunctions::random(grid, 2, seed);
        let original = wf.clone();
        for _ in 0..3 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, dt);
        }
        for _ in 0..3 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, -dt);
        }
        prop_assert!(wf.psi.max_abs_diff(&original.psi) < 1e-10);
    }

    #[test]
    fn nlp_precision_ladder_monotone_on_random_panels(seed in 0u64..10_000) {
        let grid = Grid3::new(6, 6, 6, 0.5);
        let wf0 = WaveFunctions::random(grid, 4, seed);
        let mut wf = WaveFunctions::random(grid, 4, seed.wrapping_add(1));
        for (a, b) in wf.psi.as_mut_slice().iter_mut().zip(wf0.psi.as_slice()) {
            *a += b.scale(0.4);
        }
        let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.02));
        let e1 = nlp.precision_error(&wf, NlpPrecision::Bf16);
        let e3 = nlp.precision_error(&wf, NlpPrecision::Bf16x3);
        prop_assert!(e1 >= e3, "ladder inverted: {} < {}", e1, e3);
        prop_assert!(e1 < 1e-2, "perturbative BF16 error too large: {}", e1);
    }

    #[test]
    fn occupation_transfers_conserve_total(
        f0 in 0.0f64..2.0, f1 in 0.0f64..2.0, f2 in 0.0f64..2.0,
        amount in 0.0f64..1.0
    ) {
        let mut occ = Occupations::new(vec![f0, f1, f2]);
        let total = occ.total();
        occ.transfer(0, 2, amount);
        occ.transfer(1, 0, amount * 0.5);
        prop_assert!((occ.total() - total).abs() < 1e-12);
        prop_assert!(occ.as_slice().iter().all(|&f| (0.0..=2.0).contains(&f)));
        prop_assert!(occ.n_exc() >= 0.0);
    }

    #[test]
    fn local_phase_preserves_density_pointwise(seed in 0u64..10_000, dt in 0.01f64..0.5) {
        let grid = Grid3::new(6, 6, 6, 0.5);
        let qd = QdStep::new(grid);
        let vloc: Vec<f64> = (0..grid.len()).map(|i| ((i * 13) % 11) as f64 * 0.1).collect();
        let mut wf = WaveFunctions::random(grid, 2, seed);
        let before: Vec<f64> = wf.psi.col(0).iter().map(|z| z.norm_sqr()).collect();
        qd.apply_vloc(&mut wf, &vloc, dt);
        for (b, z) in before.iter().zip(wf.psi.col(0)) {
            prop_assert!((b - z.norm_sqr()).abs() < 1e-12);
        }
    }
}
