//! Electron density from occupied KS orbitals.
//!
//! `ρ(r) = Σ_s f_s |ψ_s(r)|²` with occupations `f_s ∈ \[0, 2\]`
//! (spin-degenerate). The density is the only wave-function-derived field
//! the Hartree and xc potentials need, and its integral is the electron
//! count (a conserved diagnostic asserted throughout the test suite).

use crate::occupation::Occupations;
use crate::wavefunction::WaveFunctions;

/// Accumulate `ρ(r)` on the wave-function grid.
pub fn density(wf: &WaveFunctions, occ: &Occupations) -> Vec<f64> {
    assert_eq!(occ.len(), wf.norb, "occupations/orbitals mismatch");
    let mut rho = vec![0.0; wf.ngrid()];
    for s in 0..wf.norb {
        let f = occ.f(s);
        if f == 0.0 {
            continue;
        }
        for (r, z) in rho.iter_mut().zip(wf.psi.col(s)) {
            *r += f * z.norm_sqr();
        }
    }
    rho
}

/// ∫ρ dV — the total electron count.
pub fn electron_count(wf: &WaveFunctions, occ: &Occupations) -> f64 {
    density(wf, occ).iter().sum::<f64>() * wf.grid.dv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::grid::Grid3;

    #[test]
    fn integrates_to_electron_count() {
        let grid = Grid3::new(8, 8, 6, 0.4);
        let wf = WaveFunctions::random(grid, 4, 11);
        let occ = Occupations::aufbau(4, 3.0); // 1.5 pairs → f = [2,1,0,0]
        let n = electron_count(&wf, &occ);
        assert!((n - 3.0).abs() < 1e-10, "got {n}");
    }

    #[test]
    fn density_nonnegative() {
        let grid = Grid3::new(6, 6, 6, 0.5);
        let wf = WaveFunctions::random(grid, 3, 2);
        let occ = Occupations::uniform(3, 1.0);
        assert!(density(&wf, &occ).iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn zero_occupation_contributes_nothing() {
        let grid = Grid3::new(6, 6, 6, 0.5);
        let wf = WaveFunctions::random(grid, 2, 3);
        let occ = Occupations::new(vec![2.0, 0.0]);
        let occ_single = Occupations::new(vec![2.0]);
        let wf_single = {
            let mut w = WaveFunctions::zeros(grid, 1);
            w.psi.col_mut(0).copy_from_slice(wf.psi.col(0));
            w
        };
        let a = density(&wf, &occ);
        let b = density(&wf_single, &occ_single);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-15);
        }
    }
}
