//! `nlp_prop` — GEMMified nonlocal correction (paper Secs. V.A.5, V.B.5, V.B.7).
//!
//! Two forms are provided:
//!
//! * [`NlpProp`] — the paper's Eq. (5) scissor-type projector correction
//!   `Ψ(t) ← Ψ(t) − δ·Ψ(0)·[Ψ(0)†Ψ(t)]`, implemented as the two CGEMMs of
//!   Table V (the overlap `S = Ψ(0)†Ψ(t)` and the rank-Norb update), with
//!   **parameterized precision**: FP64, FP32, or the three BF16 split modes
//!   with FP32 accumulation. The correction is perturbative and constructed
//!   to reproduce the dominant energy term exactly (refs \[44, 53\]), which
//!   is why low precision suffices (Sec. V.B.7 / ref \[34\]).
//! * [`KbProjectors`] — Kleinman–Bylander separable nonlocal
//!   pseudopotential `V_NL = Σ_p |β_p⟩ D_p ⟨β_p|` whose exact exponential
//!   `exp(−iΔt V_NL) = 1 + B(e^{−iΔtD}−1)B†` is unitary when the projector
//!   columns are orthonormal — also two GEMMs.

use crate::wavefunction::WaveFunctions;
use mlmd_numerics::bf16::SplitMode;
use mlmd_numerics::cgemm::{cgemm_c32_split, cgemm_flops, overlap, rank_update};
use mlmd_numerics::complex::{c32, c64};
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::ortho;
use mlmd_numerics::vec3::Vec3;

/// Precision mode for the nonlocal CGEMMs (paper Sec. VI.C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NlpPrecision {
    F64,
    F32,
    /// `float_to_BF16`: 1 component.
    Bf16,
    /// `float_to_BF16x2`: 2 components / 3 products.
    Bf16x2,
    /// `float_to_BF16x3`: 3 components / 6 products (≈ FP32 accuracy).
    Bf16x3,
}

impl NlpPrecision {
    pub const ALL: [NlpPrecision; 5] = [
        NlpPrecision::F64,
        NlpPrecision::F32,
        NlpPrecision::Bf16,
        NlpPrecision::Bf16x2,
        NlpPrecision::Bf16x3,
    ];

    pub fn label(self) -> &'static str {
        match self {
            NlpPrecision::F64 => "FP64",
            NlpPrecision::F32 => "FP32",
            NlpPrecision::Bf16 => "FP32/BF16",
            NlpPrecision::Bf16x2 => "FP32/BF16x2",
            NlpPrecision::Bf16x3 => "FP32/BF16x3",
        }
    }

    fn split_mode(self) -> Option<SplitMode> {
        match self {
            NlpPrecision::Bf16 => Some(SplitMode::Bf16),
            NlpPrecision::Bf16x2 => Some(SplitMode::Bf16x2),
            NlpPrecision::Bf16x3 => Some(SplitMode::Bf16x3),
            _ => None,
        }
    }
}

/// Eq. (5) nonlocal correction with a frozen `Ψ(0)` reference panel.
pub struct NlpProp {
    psi0: Matrix<c64>,
    psi0_f32: Matrix<c32>,
    delta: c64,
    dv: f64,
}

impl NlpProp {
    /// Snapshot `Ψ(0)` and the correction strength `δ` (small, typically
    /// `−i·Δt·Δε` for a scissor shift Δε).
    pub fn new(psi0: &WaveFunctions, delta: c64) -> Self {
        let psi0_f32 = Matrix::from_fn(psi0.psi.rows(), psi0.psi.cols(), |i, j| {
            psi0.psi[(i, j)].cast::<f32>()
        });
        Self {
            psi0: psi0.psi.clone(),
            psi0_f32,
            delta,
            dv: psi0.grid.dv(),
        }
    }

    pub fn norb(&self) -> usize {
        self.psi0.cols()
    }

    pub fn ngrid(&self) -> usize {
        self.psi0.rows()
    }

    /// FLOPs of one application (both CGEMMs).
    pub fn flop_count(&self) -> u64 {
        let (m, n) = (self.ngrid(), self.norb());
        // CGEMM(1): (n×m)·(m×n); CGEMM(2): (m×n)·(n×n).
        cgemm_flops(n, n, m) + cgemm_flops(m, n, n)
    }

    /// Apply `Ψ(t) ← Ψ(t) − δ·Ψ(0)·[Ψ(0)†Ψ(t)·dV]` in the selected
    /// precision. The overlap carries the grid measure so `S` is the
    /// physical overlap matrix.
    pub fn apply(&self, wf: &mut WaveFunctions, prec: NlpPrecision, flops: &FlopCounter) {
        assert_eq!(wf.psi.rows(), self.ngrid());
        assert_eq!(wf.psi.cols(), self.norb());
        flops.add(self.flop_count());
        match prec {
            NlpPrecision::F64 => {
                let n = self.norb();
                let mut s = Matrix::<c64>::zeros(n, n);
                overlap(c64::real(self.dv), &self.psi0, &wf.psi, c64::zero(), &mut s);
                rank_update(-self.delta, &self.psi0, &s, &mut wf.psi);
            }
            NlpPrecision::F32 => {
                let psi_t32 = cast_c32(&wf.psi);
                let n = self.norb();
                let mut s = Matrix::<c32>::zeros(n, n);
                overlap(
                    c32::real(self.dv as f32),
                    &self.psi0_f32,
                    &psi_t32,
                    c32::zero(),
                    &mut s,
                );
                let mut corr = Matrix::<c32>::zeros(self.ngrid(), n);
                mlmd_numerics::gemm::gemm_parallel(
                    self.delta.cast::<f32>(),
                    &self.psi0_f32,
                    &s,
                    c32::zero(),
                    &mut corr,
                );
                subtract_cast(&mut wf.psi, &corr);
            }
            _ => {
                let mode = prec.split_mode().unwrap();
                let psi_t32 = cast_c32(&wf.psi);
                let n = self.norb();
                // CGEMM(1): S = dv · Ψ0† Ψt, via split kernel on Ψ0† panel.
                let psi0_h = self.psi0_f32.conj_transpose();
                let mut s = Matrix::<c32>::zeros(n, n);
                cgemm_c32_split(mode, &psi0_h, &psi_t32, &mut s);
                let dv32 = self.dv as f32;
                for z in s.as_mut_slice() {
                    *z = z.scale(dv32);
                }
                // CGEMM(2): corr = Ψ0 · S, then scale by δ and subtract.
                let mut corr = Matrix::<c32>::zeros(self.ngrid(), n);
                cgemm_c32_split(mode, &self.psi0_f32, &s, &mut corr);
                let d32 = self.delta.cast::<f32>();
                for z in corr.as_mut_slice() {
                    *z *= d32;
                }
                subtract_cast(&mut wf.psi, &corr);
            }
        }
    }

    /// Deviation of a low-precision application from the FP64 reference,
    /// normalized per element — the accuracy column of the Table IV harness.
    pub fn precision_error(&self, wf: &WaveFunctions, prec: NlpPrecision) -> f64 {
        let flops = FlopCounter::new();
        let mut reference = wf.clone();
        self.apply(&mut reference, NlpPrecision::F64, &flops);
        let mut test = wf.clone();
        self.apply(&mut test, prec, &flops);
        test.psi.max_abs_diff(&reference.psi)
    }
}

fn cast_c32(m: &Matrix<c64>) -> Matrix<c32> {
    // Straight slice pass (no per-element index math): the cast must stay
    // negligible next to the O(Norb²·Ngrid) GEMMs it feeds.
    let data: Vec<c32> = m.as_slice().iter().map(|z| z.cast::<f32>()).collect();
    Matrix::from_vec(m.rows(), m.cols(), data)
}

fn subtract_cast(dst: &mut Matrix<c64>, corr: &Matrix<c32>) {
    for (d, &c) in dst.as_mut_slice().iter_mut().zip(corr.as_slice()) {
        *d -= c.cast::<f64>();
    }
}

/// Kleinman–Bylander separable nonlocal pseudopotential.
pub struct KbProjectors {
    /// `Ngrid × Nproj`, columns orthonormal under the dV measure.
    b: Matrix<c64>,
    /// Channel strengths `D_p` (hartree).
    d: Vec<f64>,
    dv: f64,
}

impl KbProjectors {
    /// Gaussian projectors centered on `centers`, orthonormalized.
    pub fn gaussian(grid: Grid3, centers: &[Vec3], sigma: f64, strengths: &[f64]) -> Self {
        assert_eq!(centers.len(), strengths.len());
        let lens = {
            let (lx, ly, lz) = grid.lengths();
            Vec3::new(lx, ly, lz)
        };
        let mut b = Matrix::from_fn(grid.len(), centers.len(), |g, p| {
            let (i, j, k) = grid.coords(g);
            let (x, y, z) = grid.position(i, j, k);
            let d = (Vec3::new(x, y, z) - centers[p]).min_image(lens);
            c64::real((-d.norm_sqr() / (2.0 * sigma * sigma)).exp())
        });
        ortho::gram_schmidt(&mut b);
        // Rescale to dV-orthonormality.
        let s = 1.0 / grid.dv().sqrt();
        for z in b.as_mut_slice() {
            *z = z.scale(s);
        }
        Self {
            b,
            d: strengths.to_vec(),
            dv: grid.dv(),
        }
    }

    pub fn nproj(&self) -> usize {
        self.d.len()
    }

    /// Exact unitary propagation `Ψ ← [1 + B(e^{−iΔtD}−1)B†]Ψ`, GEMMified.
    pub fn propagate(&self, wf: &mut WaveFunctions, dt: f64, flops: &FlopCounter) {
        let (m, n, p) = (self.b.rows(), wf.norb, self.nproj());
        assert_eq!(wf.psi.rows(), m);
        flops.add(cgemm_flops(p, n, m) + cgemm_flops(m, n, p));
        // P = dV·B†Ψ
        let mut proj = Matrix::<c64>::zeros(p, n);
        overlap(c64::real(self.dv), &self.b, &wf.psi, c64::zero(), &mut proj);
        // W = (e^{−iΔtD} − 1) P, row-scaled per channel.
        for (row, &dp) in self.d.iter().enumerate() {
            let w = c64::cis(-dt * dp) - c64::one();
            for col in 0..n {
                proj[(row, col)] *= w;
            }
        }
        // Ψ += B W
        rank_update(c64::one(), &self.b, &proj, &mut wf.psi);
    }

    /// Expectation value `Σ_s f_s ⟨ψ_s|V_NL|ψ_s⟩`.
    pub fn energy(&self, wf: &WaveFunctions, occ: &[f64]) -> f64 {
        let (n, p) = (wf.norb, self.nproj());
        let mut proj = Matrix::<c64>::zeros(p, n);
        overlap(c64::real(self.dv), &self.b, &wf.psi, c64::zero(), &mut proj);
        let mut e = 0.0;
        for s in 0..n {
            for (row, &dp) in self.d.iter().enumerate() {
                e += occ[s] * dp * proj[(row, s)].norm_sqr();
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (WaveFunctions, NlpProp) {
        let grid = Grid3::new(10, 8, 6, 0.5);
        let wf0 = WaveFunctions::random(grid, 6, 21);
        let nlp = NlpProp::new(&wf0, c64::new(0.0, -0.02));
        let mut wf = WaveFunctions::random(grid, 6, 22);
        // Mix in some of psi0 so the projection is nontrivial.
        for (a, b) in wf.psi.as_mut_slice().iter_mut().zip(wf0.psi.as_slice()) {
            *a += b.scale(0.5);
        }
        (wf, nlp)
    }

    #[test]
    fn f64_matches_dense_reference() {
        let (wf, nlp) = setup();
        let flops = FlopCounter::new();
        let mut out = wf.clone();
        nlp.apply(&mut out, NlpPrecision::F64, &flops);
        // Dense reference via explicit matrices.
        let s = {
            let p0h = nlp.psi0.conj_transpose();
            let mut s = Matrix::<c64>::zeros(6, 6);
            mlmd_numerics::gemm::gemm_naive(c64::real(nlp.dv), &p0h, &wf.psi, c64::zero(), &mut s);
            s
        };
        let mut expect = wf.psi.clone();
        mlmd_numerics::gemm::gemm_naive(-nlp.delta, &nlp.psi0, &s, c64::one(), &mut expect);
        assert!(out.psi.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn precision_ladder() {
        let (wf, nlp) = setup();
        let e32 = nlp.precision_error(&wf, NlpPrecision::F32);
        let e1 = nlp.precision_error(&wf, NlpPrecision::Bf16);
        let e2 = nlp.precision_error(&wf, NlpPrecision::Bf16x2);
        let e3 = nlp.precision_error(&wf, NlpPrecision::Bf16x3);
        assert!(e1 > e2 && e2 > e3, "BF16 ladder violated: {e1} {e2} {e3}");
        assert!(e3 < 10.0 * e32.max(1e-9), "BF16x3 must be f32-comparable");
        // Because the correction is perturbative (|δ| ≪ 1), even plain BF16
        // keeps the error far below the wave-function scale — the paper's
        // Sec. V.B.7 argument.
        assert!(e1 < 1e-3, "perturbative BF16 error too large: {e1}");
    }

    #[test]
    fn correction_magnitude_scales_with_delta() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf0 = WaveFunctions::random(grid, 4, 1);
        let wf = WaveFunctions::random(grid, 4, 2);
        let flops = FlopCounter::new();
        let norm_change = |delta: c64| {
            let nlp = NlpProp::new(&wf0, delta);
            let mut w = wf.clone();
            nlp.apply(&mut w, NlpPrecision::F64, &flops);
            w.psi.max_abs_diff(&wf.psi)
        };
        let c1 = norm_change(c64::new(0.0, -0.01));
        let c2 = norm_change(c64::new(0.0, -0.02));
        assert!((c2 / c1 - 2.0).abs() < 1e-6, "linear in delta");
    }

    #[test]
    fn flop_count_matches_table_v_shapes() {
        let (_, nlp) = setup();
        let (m, n) = (10 * 8 * 6, 6);
        assert_eq!(nlp.flop_count(), 8 * (n * n * m + m * n * n) as u64);
    }

    #[test]
    fn kb_propagation_is_unitary() {
        let grid = Grid3::new(10, 10, 8, 0.45);
        let mut wf = WaveFunctions::random(grid, 5, 3);
        let centers = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(3.0, 2.0, 1.5),
            Vec3::new(2.0, 3.5, 2.5),
        ];
        let kb = KbProjectors::gaussian(grid, &centers, 0.8, &[0.5, -0.3, 0.8]);
        let flops = FlopCounter::new();
        for _ in 0..20 {
            kb.propagate(&mut wf, 0.05, &flops);
        }
        assert!(wf.norm_error() < 1e-9, "KB propagation must be unitary");
    }

    #[test]
    fn kb_identity_at_zero_strength() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let mut wf = WaveFunctions::random(grid, 3, 4);
        let before = wf.clone();
        let kb = KbProjectors::gaussian(grid, &[Vec3::new(2.0, 2.0, 2.0)], 0.7, &[0.0]);
        kb.propagate(&mut wf, 0.1, &FlopCounter::new());
        assert!(wf.psi.max_abs_diff(&before.psi) < 1e-12);
    }

    #[test]
    fn kb_energy_sign_follows_strength() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::random(grid, 2, 5);
        let center = [Vec3::new(2.0, 2.0, 2.0)];
        let attract = KbProjectors::gaussian(grid, &center, 0.7, &[-1.0]);
        let repel = KbProjectors::gaussian(grid, &center, 0.7, &[1.0]);
        let occ = [2.0, 2.0];
        assert!(attract.energy(&wf, &occ) < 0.0);
        assert!(repel.energy(&wf, &occ) > 0.0);
    }
}
