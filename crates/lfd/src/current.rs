//! Macroscopic electric current from the orbital panel (TDCDFT, ref \[52\]).
//!
//! The current density couples the electron dynamics back into Maxwell's
//! equations (paper Sec. V.B.5: "GEMMification is applied to nonlocal
//! correction in energy and electric current, with the latter used in
//! Maxwell's equations"). For the multiscale coupling only the cell-average
//! matters:
//!
//! ```text
//! J = (1/V) Σ_s f_s ∫ [ Im(ψ_s* ∇ψ_s) + A |ψ_s|² ] dV
//!   = paramagnetic + diamagnetic
//! ```

use crate::occupation::Occupations;
use crate::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::vec3::Vec3;

/// Macroscopic current: paramagnetic and diamagnetic parts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Current {
    pub paramagnetic: Vec3,
    pub diamagnetic: Vec3,
}

impl Current {
    pub fn total(&self) -> Vec3 {
        self.paramagnetic + self.diamagnetic
    }
}

/// Compute the cell-averaged current for vector potential `a`.
pub fn macroscopic_current(wf: &WaveFunctions, occ: &Occupations, a: Vec3) -> Current {
    assert_eq!(occ.len(), wf.norb);
    let grid = wf.grid;
    let (lx, ly, lz) = grid.lengths();
    let volume = lx * ly * lz;
    let inv_2h = 0.5 / grid.h;
    let mut para = Vec3::ZERO;
    let mut n_electrons = 0.0;
    for s in 0..wf.norb {
        let f = occ.f(s);
        if f == 0.0 {
            continue;
        }
        let col = wf.psi.col(s);
        let mut acc = Vec3::ZERO;
        let mut norm = 0.0;
        for k in 0..grid.nz {
            let kp = (k + 1) % grid.nz;
            let km = (k + grid.nz - 1) % grid.nz;
            for j in 0..grid.ny {
                let jp = (j + 1) % grid.ny;
                let jm = (j + grid.ny - 1) % grid.ny;
                for i in 0..grid.nx {
                    let ip = (i + 1) % grid.nx;
                    let im = (i + grid.nx - 1) % grid.nx;
                    let z = col[grid.idx(i, j, k)];
                    let gx = (col[grid.idx(ip, j, k)] - col[grid.idx(im, j, k)]).scale(inv_2h);
                    let gy = (col[grid.idx(i, jp, k)] - col[grid.idx(i, jm, k)]).scale(inv_2h);
                    let gz = (col[grid.idx(i, j, kp)] - col[grid.idx(i, j, km)]).scale(inv_2h);
                    acc += Vec3::new(im_conj_mul(z, gx), im_conj_mul(z, gy), im_conj_mul(z, gz));
                    norm += z.norm_sqr();
                }
            }
        }
        para += acc * (f * grid.dv());
        n_electrons += f * norm * grid.dv();
    }
    Current {
        paramagnetic: para / volume,
        diamagnetic: a * (n_electrons / volume),
    }
}

/// Im(z* w).
#[inline]
fn im_conj_mul(z: c64, w: c64) -> f64 {
    z.re * w.im - z.im * w.re
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::grid::Grid3;

    #[test]
    fn gamma_state_carries_no_current() {
        let grid = Grid3::new(10, 10, 10, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 1); // k = 0
        let occ = Occupations::uniform(1, 2.0);
        let j = macroscopic_current(&wf, &occ, Vec3::ZERO);
        assert!(j.total().norm() < 1e-12);
    }

    #[test]
    fn plane_wave_carries_its_group_velocity() {
        let grid = Grid3::new(16, 16, 16, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 2);
        let occ = Occupations::new(vec![0.0, 1.0]); // occupy the k≠0 mode only
        let j = macroscopic_current(&wf, &occ, Vec3::ZERO);
        // Mode 1 is (−1,0,0): k = −2π/L x̂; central-difference gradient gives
        // sin(k h)/h instead of k (FD dispersion).
        let (lx, _, _) = grid.lengths();
        let kx = -2.0 * std::f64::consts::PI / lx;
        let v_fd = (kx * grid.h).sin() / grid.h;
        let expect = v_fd / (lx * lx * lx) * (lx * lx * lx); // ρ=1/V, J = v/V·∫|ψ|²dV = v/V
        let _ = expect;
        assert!(
            (j.paramagnetic.x - v_fd / (lx * lx * lx) * 1.0).abs() < 1e-10,
            "J_x = {} vs v_fd/V = {}",
            j.paramagnetic.x,
            v_fd / (lx * lx * lx)
        );
        assert!(j.paramagnetic.y.abs() < 1e-12);
    }

    #[test]
    fn diamagnetic_term_proportional_to_a_and_density() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 1);
        let occ = Occupations::uniform(1, 2.0);
        let a = Vec3::new(0.3, 0.0, -0.1);
        let j = macroscopic_current(&wf, &occ, a);
        let (lx, ly, lz) = grid.lengths();
        let v = lx * ly * lz;
        let expect = a * (2.0 / v);
        assert!((j.diamagnetic - expect).norm() < 1e-10);
    }

    #[test]
    fn occupation_weighting_is_linear() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 2);
        let j1 = macroscopic_current(&wf, &Occupations::new(vec![0.0, 1.0]), Vec3::ZERO);
        let j2 = macroscopic_current(&wf, &Occupations::new(vec![0.0, 2.0]), Vec3::ZERO);
        assert!((j2.paramagnetic - j1.paramagnetic * 2.0).norm() < 1e-12);
    }
}
