//! Macroscopic electric current from the orbital panel (TDCDFT, ref \[52\]).
//!
//! The current density couples the electron dynamics back into Maxwell's
//! equations (paper Sec. V.B.5: "GEMMification is applied to nonlocal
//! correction in energy and electric current, with the latter used in
//! Maxwell's equations"). For the multiscale coupling only the cell-average
//! matters:
//!
//! ```text
//! J = (1/V) Σ_s f_s ∫ [ Im(ψ_s* ∇ψ_s) + A |ψ_s|² ] dV
//!   = paramagnetic + diamagnetic
//! ```

use crate::occupation::Occupations;
use crate::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;

/// Macroscopic current: paramagnetic and diamagnetic parts.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Current {
    pub paramagnetic: Vec3,
    pub diamagnetic: Vec3,
}

impl Current {
    pub fn total(&self) -> Vec3 {
        self.paramagnetic + self.diamagnetic
    }
}

/// One orbital's raw (occupation-unweighted) contribution to the
/// macroscopic current: the grid sum of `Im(ψ* ∇ψ)` and of `|ψ|²`.
///
/// Orbitals are independent, so the DC-MESH band tier shards this kernel
/// over ranks and [`fold_current_terms`] recombines the gathered terms in
/// orbital order — every value is computed exactly as in the serial path,
/// so sharding is bit-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OrbitalCurrentTerm {
    /// Σ_r Im(ψ* ∇ψ) (raw grid sum, no `f` weight, no dV).
    pub paramagnetic: Vec3,
    /// Σ_r |ψ|² (raw grid sum).
    pub norm_sqr: f64,
}

/// Compute one orbital column's [`OrbitalCurrentTerm`] on `grid` (periodic
/// central differences for the gradient).
pub fn orbital_current_term(grid: &Grid3, col: &[c64]) -> OrbitalCurrentTerm {
    assert_eq!(col.len(), grid.len());
    let inv_2h = 0.5 / grid.h;
    let mut acc = Vec3::ZERO;
    let mut norm = 0.0;
    for k in 0..grid.nz {
        let kp = (k + 1) % grid.nz;
        let km = (k + grid.nz - 1) % grid.nz;
        for j in 0..grid.ny {
            let jp = (j + 1) % grid.ny;
            let jm = (j + grid.ny - 1) % grid.ny;
            for i in 0..grid.nx {
                let ip = (i + 1) % grid.nx;
                let im = (i + grid.nx - 1) % grid.nx;
                let z = col[grid.idx(i, j, k)];
                let gx = (col[grid.idx(ip, j, k)] - col[grid.idx(im, j, k)]).scale(inv_2h);
                let gy = (col[grid.idx(i, jp, k)] - col[grid.idx(i, jm, k)]).scale(inv_2h);
                let gz = (col[grid.idx(i, j, kp)] - col[grid.idx(i, j, km)]).scale(inv_2h);
                acc += Vec3::new(im_conj_mul(z, gx), im_conj_mul(z, gy), im_conj_mul(z, gz));
                norm += z.norm_sqr();
            }
        }
    }
    OrbitalCurrentTerm {
        paramagnetic: acc,
        norm_sqr: norm,
    }
}

/// Recombine per-orbital terms (indexed by orbital, in band order) into
/// the macroscopic [`Current`] for vector potential `a`. Orbitals with
/// `f = 0` are skipped exactly as in the monolithic path, so their terms
/// may be left at `Default`.
pub fn fold_current_terms(
    terms: &[OrbitalCurrentTerm],
    occ: &Occupations,
    a: Vec3,
    grid: &Grid3,
) -> Current {
    assert_eq!(terms.len(), occ.len());
    let (lx, ly, lz) = grid.lengths();
    let volume = lx * ly * lz;
    let mut para = Vec3::ZERO;
    let mut n_electrons = 0.0;
    for (s, t) in terms.iter().enumerate() {
        let f = occ.f(s);
        if f == 0.0 {
            continue;
        }
        para += t.paramagnetic * (f * grid.dv());
        n_electrons += f * t.norm_sqr * grid.dv();
    }
    Current {
        paramagnetic: para / volume,
        diamagnetic: a * (n_electrons / volume),
    }
}

/// Compute the cell-averaged current for vector potential `a`: the fold
/// of every orbital's [`orbital_current_term`] — the exact kernel pair the
/// distributed MESH driver shards over ranks.
pub fn macroscopic_current(wf: &WaveFunctions, occ: &Occupations, a: Vec3) -> Current {
    assert_eq!(occ.len(), wf.norb);
    let grid = wf.grid;
    let terms: Vec<OrbitalCurrentTerm> = (0..wf.norb)
        .map(|s| {
            if occ.f(s) == 0.0 {
                OrbitalCurrentTerm::default()
            } else {
                orbital_current_term(&grid, wf.psi.col(s))
            }
        })
        .collect();
    fold_current_terms(&terms, occ, a, &grid)
}

/// Im(z* w).
#[inline]
fn im_conj_mul(z: c64, w: c64) -> f64 {
    z.re * w.im - z.im * w.re
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_state_carries_no_current() {
        let grid = Grid3::new(10, 10, 10, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 1); // k = 0
        let occ = Occupations::uniform(1, 2.0);
        let j = macroscopic_current(&wf, &occ, Vec3::ZERO);
        assert!(j.total().norm() < 1e-12);
    }

    #[test]
    fn plane_wave_carries_its_group_velocity() {
        let grid = Grid3::new(16, 16, 16, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 2);
        let occ = Occupations::new(vec![0.0, 1.0]); // occupy the k≠0 mode only
        let j = macroscopic_current(&wf, &occ, Vec3::ZERO);
        // Mode 1 is (−1,0,0): k = −2π/L x̂; central-difference gradient gives
        // sin(k h)/h instead of k (FD dispersion).
        let (lx, _, _) = grid.lengths();
        let kx = -2.0 * std::f64::consts::PI / lx;
        let v_fd = (kx * grid.h).sin() / grid.h;
        let expect = v_fd / (lx * lx * lx) * (lx * lx * lx); // ρ=1/V, J = v/V·∫|ψ|²dV = v/V
        let _ = expect;
        assert!(
            (j.paramagnetic.x - v_fd / (lx * lx * lx) * 1.0).abs() < 1e-10,
            "J_x = {} vs v_fd/V = {}",
            j.paramagnetic.x,
            v_fd / (lx * lx * lx)
        );
        assert!(j.paramagnetic.y.abs() < 1e-12);
    }

    #[test]
    fn diamagnetic_term_proportional_to_a_and_density() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 1);
        let occ = Occupations::uniform(1, 2.0);
        let a = Vec3::new(0.3, 0.0, -0.1);
        let j = macroscopic_current(&wf, &occ, a);
        let (lx, ly, lz) = grid.lengths();
        let v = lx * ly * lz;
        let expect = a * (2.0 / v);
        assert!((j.diamagnetic - expect).norm() < 1e-10);
    }

    #[test]
    fn sharded_terms_fold_to_the_monolithic_current() {
        // The DC-MESH band tier computes orbital terms on different ranks
        // and folds the gathered vector: any column partition must
        // reproduce the monolithic current bit-for-bit.
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::random(grid, 5, 9);
        let occ = Occupations::new(vec![2.0, 1.5, 0.0, 0.5, 1.0]);
        let a = Vec3::new(0.1, -0.2, 0.05);
        let want = macroscopic_current(&wf, &occ, a);
        // "Rank 0" owns orbitals 0..2, "rank 1" owns 2..5.
        let mut terms = vec![OrbitalCurrentTerm::default(); 5];
        for cols in [0..2usize, 2..5] {
            for (s, slot) in terms[cols.clone()].iter_mut().enumerate() {
                let s = cols.start + s;
                if occ.f(s) != 0.0 {
                    *slot = orbital_current_term(&grid, wf.psi.col(s));
                }
            }
        }
        let got = fold_current_terms(&terms, &occ, a, &grid);
        assert_eq!(got.paramagnetic.x.to_bits(), want.paramagnetic.x.to_bits());
        assert_eq!(got.paramagnetic.y.to_bits(), want.paramagnetic.y.to_bits());
        assert_eq!(got.paramagnetic.z.to_bits(), want.paramagnetic.z.to_bits());
        assert_eq!(got.diamagnetic.x.to_bits(), want.diamagnetic.x.to_bits());
    }

    #[test]
    fn occupation_weighting_is_linear() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 2);
        let j1 = macroscopic_current(&wf, &Occupations::new(vec![0.0, 1.0]), Vec3::ZERO);
        let j2 = macroscopic_current(&wf, &Occupations::new(vec![0.0, 2.0]), Vec3::ZERO);
        assert!((j2.paramagnetic - j1.paramagnetic * 2.0).norm() < 1e-12);
    }
}
