//! `kin_prop` — the local kinetic time-propagator (paper Secs. V.A.5, V.B.2–4).
//!
//! Implements `exp(−iΔt T̂)` by the block-diagonal split-operator scheme of
//! Richardson (ref \[41\]): the 1-D finite-difference kinetic operator along
//! each axis decomposes into bond operators `B = λ[[1,−1],[−1,1]]`
//! (λ = 1/2h²) acting on nearest-neighbour pairs; bonds of equal parity are
//! disjoint, so `exp(−iτB)` is an *exact 2×2 unitary* applied
//! independently — and data-parallel — across the grid:
//!
//! ```text
//! a' = u·a + v·e^{+iφ}·b        u = (1+e)/2,  v = (1−e)/2,
//! b' = v·e^{−iφ}·a + u·b        e = e^{−2iλτ}
//! ```
//!
//! with the Peierls phase `φ = −A_axis·h` carrying the vector-potential
//! coupling of Eq. (3) (velocity gauge, uniform A per DC domain).
//!
//! The four [`KinImpl`] tiers reproduce the optimization ladder of
//! **Table III**:
//!
//! | tier | paper section | what changes |
//! |---|---|---|
//! | `Baseline`  | —      | orbital-major storage, per-point index math |
//! | `Reordered` | V.B.2  | orbital-fastest SoA, stencil coefficient reused across orbitals, precomputed bond lists |
//! | `Blocked`   | V.B.3  | orbital blocks processed through *all* sweeps while cache-resident |
//! | `Parallel`  | V.B.4  | hierarchical parallelism over blocks × bond sets (the GPU offload analogue) |
//!
//! All four produce bit-comparable states (asserted in tests); only their
//! speed differs.

use crate::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;
use rayon::prelude::*;

/// FLOPs per bond update per orbital: 4 complex multiplies + 2 complex adds.
pub const FLOPS_PER_BOND_ORBITAL: u64 = 28;

/// Optimization tier (Table III rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KinImpl {
    Baseline,
    Reordered,
    Blocked,
    Parallel,
}

impl KinImpl {
    pub const ALL: [KinImpl; 4] = [
        KinImpl::Baseline,
        KinImpl::Reordered,
        KinImpl::Blocked,
        KinImpl::Parallel,
    ];

    pub fn label(self) -> &'static str {
        match self {
            KinImpl::Baseline => "Baseline",
            KinImpl::Reordered => "Data & loop re-ordering (B.2)",
            KinImpl::Blocked => "Blocking/tiling (B.3)",
            KinImpl::Parallel => "Hierarchical parallel regions (B.4)",
        }
    }
}

/// 2×2 bond-mixing coefficients for one axis and sweep time τ.
#[derive(Clone, Copy, Debug)]
struct BondCoeffs {
    u: c64,
    vp: c64,
    vm: c64,
}

impl BondCoeffs {
    fn new(lambda: f64, tau: f64, phi: f64) -> Self {
        let e = c64::cis(-2.0 * lambda * tau);
        let u = (c64::one() + e).scale(0.5);
        let v = (c64::one() - e).scale(0.5);
        Self {
            u,
            vp: v * c64::cis(phi),
            vm: v * c64::cis(-phi),
        }
    }

    #[inline(always)]
    fn mix(&self, a: c64, b: c64) -> (c64, c64) {
        (self.u * a + self.vp * b, self.vm * a + self.u * b)
    }
}

/// Plan-time partition of one bond set into branch-free runs (PR 10).
///
/// `fwd` bonds have the a-operand at the lower grid index (the common,
/// non-wrapping case); `wrap` bonds cross the periodic boundary, so their
/// a-operand sits at the *higher* index and the split-borrow direction
/// reverses. Partitioning once at plan time removes the per-bond
/// `(lo, hi, first_is_lo)` branch from the innermost sweep loop, leaving
/// two straight-line loops the autovectorizer can unroll. Bonds within a
/// set touch disjoint grid-point pairs, so executing the two lists
/// back-to-back is bit-identical to the interleaved traversal.
#[derive(Default)]
struct BondSetPlan {
    /// `(lo, hi)` with the a-operand at `lo`.
    fwd: Vec<(u32, u32)>,
    /// `(lo, hi)` with the a-operand at `hi` (periodic wrap bonds).
    wrap: Vec<(u32, u32)>,
}

impl BondSetPlan {
    fn from_bonds(bonds: &[(u32, u32)]) -> Self {
        let mut plan = Self::default();
        for &(g1, g2) in bonds {
            if g1 < g2 {
                plan.fwd.push((g1, g2));
            } else {
                plan.wrap.push((g2, g1));
            }
        }
        plan
    }
}

/// Planned kinetic propagator for one grid geometry.
pub struct KinProp {
    grid: Grid3,
    /// Bond lists: [x-even, x-odd, y-even, y-odd, z-even, z-odd], each a
    /// disjoint set of (g1, g2) grid-index pairs.
    bonds: [Vec<(u32, u32)>; 6],
    /// Branch-free execution plans for the Blocked/Parallel tiers, one per
    /// bond set.
    plans: [BondSetPlan; 6],
    /// Orbital block size for the Blocked/Parallel tiers.
    pub block: usize,
}

impl KinProp {
    /// Plan for a grid; all dimensions must be even so that each parity
    /// class tiles the periodic axis exactly.
    pub fn new(grid: Grid3) -> Self {
        assert!(
            grid.nx.is_multiple_of(2) && grid.ny.is_multiple_of(2) && grid.nz.is_multiple_of(2),
            "kin_prop requires even grid dimensions (got {}×{}×{})",
            grid.nx,
            grid.ny,
            grid.nz
        );
        let mut bonds: [Vec<(u32, u32)>; 6] = Default::default();
        for axis in 0..3 {
            let n_axis = [grid.nx, grid.ny, grid.nz][axis];
            for parity in 0..2 {
                let list = &mut bonds[2 * axis + parity];
                for k in 0..grid.nz {
                    for j in 0..grid.ny {
                        for i in 0..grid.nx {
                            let along = [i, j, k][axis];
                            if along % 2 == parity {
                                let g1 = grid.idx(i, j, k) as u32;
                                let (di, dj, dk) = match axis {
                                    0 => (1isize, 0isize, 0isize),
                                    1 => (0, 1, 0),
                                    _ => (0, 0, 1),
                                };
                                let g2 = grid.idx_offset(i, j, k, di, dj, dk) as u32;
                                let _ = n_axis;
                                list.push((g1, g2));
                            }
                        }
                    }
                }
            }
        }
        let plans = [
            BondSetPlan::from_bonds(&bonds[0]),
            BondSetPlan::from_bonds(&bonds[1]),
            BondSetPlan::from_bonds(&bonds[2]),
            BondSetPlan::from_bonds(&bonds[3]),
            BondSetPlan::from_bonds(&bonds[4]),
            BondSetPlan::from_bonds(&bonds[5]),
        ];
        Self {
            grid,
            bonds,
            plans,
            block: 8,
        }
    }

    fn lambda(&self) -> f64 {
        0.5 / (self.grid.h * self.grid.h)
    }

    fn coeffs(&self, axis: usize, tau: f64, a: Vec3) -> BondCoeffs {
        let phi = -a[axis] * self.grid.h;
        BondCoeffs::new(self.lambda(), tau, phi)
    }

    /// FLOPs of `n_steps` symmetric propagation steps on `norb` orbitals.
    pub fn flops_per_steps(&self, norb: usize, n_steps: usize) -> u64 {
        // Symmetric step = 2 passes over all 6 bond sets = 6·Ngrid bonds.
        6 * self.grid.len() as u64 * norb as u64 * FLOPS_PER_BOND_ORBITAL * n_steps as u64
    }

    /// Propagate `wf` by `n_steps` symmetric split-operator kinetic steps
    /// of `dt` each, under uniform vector potential `a`, using the selected
    /// implementation tier. Conversion into the tier's preferred layout is
    /// done once and amortized over all steps, matching how Table III runs
    /// 1,000 QD steps.
    pub fn propagate_n(
        &self,
        imp: KinImpl,
        wf: &mut WaveFunctions,
        dt: f64,
        a: Vec3,
        n_steps: usize,
        flops: &FlopCounter,
    ) {
        assert_eq!(wf.grid, self.grid, "wave functions on a different grid");
        flops.add(self.flops_per_steps(wf.norb, n_steps));
        match imp {
            KinImpl::Baseline => self.run_baseline(wf, dt, a, n_steps),
            KinImpl::Reordered => self.run_soa(wf, dt, a, n_steps, false),
            KinImpl::Blocked => self.run_blocked(wf, dt, a, n_steps, false),
            KinImpl::Parallel => self.run_blocked(wf, dt, a, n_steps, true),
        }
    }

    /// One symmetric step (`Parallel` tier): the form used by the QD driver.
    pub fn step(&self, wf: &mut WaveFunctions, dt: f64, a: Vec3, flops: &FlopCounter) {
        self.propagate_n(KinImpl::Parallel, wf, dt, a, 1, flops);
    }

    // ---- Baseline: orbital-major, inline index arithmetic ----------------

    fn run_baseline(&self, wf: &mut WaveFunctions, dt: f64, a: Vec3, n_steps: usize) {
        let tau = 0.5 * dt;
        let grid = self.grid;
        let norb = wf.norb;
        for _ in 0..n_steps {
            for s in 0..norb {
                let col = wf.psi.col_mut(s);
                for sweep in 0..12 {
                    // 0..6 forward half-step, then 6..12 reversed order.
                    let set = if sweep < 6 { sweep } else { 11 - sweep };
                    let axis = set / 2;
                    let parity = set % 2;
                    let c = self.coeffs(axis, tau, a);
                    // Naive traversal: recompute neighbour indices with
                    // wrap-around arithmetic at every point (the pre-B.2
                    // code structure).
                    for k in 0..grid.nz {
                        for j in 0..grid.ny {
                            for i in 0..grid.nx {
                                let along = [i, j, k][axis];
                                if along % 2 != parity {
                                    continue;
                                }
                                let g1 = i + grid.nx * (j + grid.ny * k);
                                let (ii, jj, kk) = match axis {
                                    0 => ((i + 1) % grid.nx, j, k),
                                    1 => (i, (j + 1) % grid.ny, k),
                                    _ => (i, j, (k + 1) % grid.nz),
                                };
                                let g2 = ii + grid.nx * (jj + grid.ny * kk);
                                let (na, nb) = c.mix(col[g1], col[g2]);
                                col[g1] = na;
                                col[g2] = nb;
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- Reordered: orbital-fastest SoA, precomputed bonds ---------------

    fn run_soa(&self, wf: &mut WaveFunctions, dt: f64, a: Vec3, n_steps: usize, _par: bool) {
        let norb = wf.norb;
        let mut data = wf.to_soa();
        let tau = 0.5 * dt;
        for _ in 0..n_steps {
            for sweep in 0..12 {
                let set = if sweep < 6 { sweep } else { 11 - sweep };
                let c = self.coeffs(set / 2, tau, a);
                for &(g1, g2) in &self.bonds[set] {
                    let b1 = g1 as usize * norb;
                    let b2 = g2 as usize * norb;
                    for s in 0..norb {
                        let (na, nb) = c.mix(data[b1 + s], data[b2 + s]);
                        data[b1 + s] = na;
                        data[b2 + s] = nb;
                    }
                }
            }
        }
        wf.from_soa(&data);
    }

    // ---- Blocked / Parallel: block-SoA, all sweeps per resident block ----

    fn run_blocked(&self, wf: &mut WaveFunctions, dt: f64, a: Vec3, n_steps: usize, par: bool) {
        let norb = wf.norb;
        let ngrid = self.grid.len();
        // The parallel tier needs enough blocks to feed the pool
        // (2 tasks per thread for load balance); the serial blocked tier
        // uses the cache-sized block.
        let bs = if par {
            (norb / (2 * rayon::current_num_threads()).max(1))
                .clamp(1, self.block.max(1))
                .min(norb)
        } else {
            self.block.min(norb).max(1)
        };
        let nblocks = norb.div_ceil(bs);
        let tau = 0.5 * dt;
        // Gather per-block SoA panels: panel[b][g*bw + s_local].
        let mut panels: Vec<Vec<c64>> = (0..nblocks)
            .map(|b| {
                let s0 = b * bs;
                let bw = bs.min(norb - s0);
                let mut p = vec![c64::zero(); ngrid * bw];
                for sl in 0..bw {
                    let col = wf.psi.col(s0 + sl);
                    for (g, &v) in col.iter().enumerate() {
                        p[g * bw + sl] = v;
                    }
                }
                p
            })
            .collect();
        let coeffs: Vec<BondCoeffs> = (0..6).map(|set| self.coeffs(set / 2, tau, a)).collect();
        let sweep_block = |panel: &mut Vec<c64>, bw: usize| {
            for _ in 0..n_steps {
                for sweep in 0..12 {
                    let set = if sweep < 6 { sweep } else { 11 - sweep };
                    let c = coeffs[set];
                    let plan = &self.plans[set];
                    // The plan-time fwd/wrap partition makes both loops
                    // branch-free; bonds in a set are disjoint, so the
                    // regrouped order is bit-identical (see BondSetPlan).
                    for &(lo, hi) in &plan.fwd {
                        let b_lo = lo as usize * bw;
                        let (head, tail) = panel.split_at_mut(hi as usize * bw);
                        let run_a = &mut head[b_lo..b_lo + bw];
                        let run_b = &mut tail[..bw];
                        for (x, y) in run_a.iter_mut().zip(run_b.iter_mut()) {
                            let (na, nb) = c.mix(*x, *y);
                            *x = na;
                            *y = nb;
                        }
                    }
                    for &(lo, hi) in &plan.wrap {
                        let b_lo = lo as usize * bw;
                        let (head, tail) = panel.split_at_mut(hi as usize * bw);
                        let run_b = &mut head[b_lo..b_lo + bw];
                        let run_a = &mut tail[..bw];
                        for (y, x) in run_b.iter_mut().zip(run_a.iter_mut()) {
                            let (na, nb) = c.mix(*x, *y);
                            *x = na;
                            *y = nb;
                        }
                    }
                }
            }
        };
        if par {
            panels.par_iter_mut().enumerate().for_each(|(b, panel)| {
                let s0 = b * bs;
                let bw = bs.min(norb - s0);
                sweep_block(panel, bw);
            });
        } else {
            for (b, panel) in panels.iter_mut().enumerate() {
                let s0 = b * bs;
                let bw = bs.min(norb - s0);
                sweep_block(panel, bw);
            }
        }
        // Scatter back.
        for (b, panel) in panels.iter().enumerate() {
            let s0 = b * bs;
            let bw = bs.min(norb - s0);
            for sl in 0..bw {
                let col = wf.psi.col_mut(s0 + sl);
                for (g, v) in col.iter_mut().enumerate() {
                    *v = panel[g * bw + sl];
                }
            }
        }
    }

    /// Finite-difference kinetic dispersion `E(k) = Σ_a (1−cos(k_a h))/h²`
    /// with vector-potential shift — the exact eigenvalue a plane wave
    /// accumulates per unit time under this propagator's Hamiltonian.
    pub fn fd_dispersion(&self, k: Vec3, a: Vec3) -> f64 {
        let h = self.grid.h;
        let mut e = 0.0;
        for axis in 0..3 {
            e += (1.0 - ((k[axis] + a[axis]) * h).cos()) / (h * h);
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid3 {
        Grid3::new(8, 8, 8, 0.4)
    }

    fn counter() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn all_tiers_agree() {
        let g = grid();
        let kp = KinProp::new(g);
        let reference = {
            let mut wf = WaveFunctions::random(g, 5, 42);
            kp.propagate_n(
                KinImpl::Baseline,
                &mut wf,
                0.01,
                Vec3::new(0.2, 0.0, -0.1),
                3,
                &counter(),
            );
            wf
        };
        for imp in [KinImpl::Reordered, KinImpl::Blocked, KinImpl::Parallel] {
            let mut wf = WaveFunctions::random(g, 5, 42);
            kp.propagate_n(imp, &mut wf, 0.01, Vec3::new(0.2, 0.0, -0.1), 3, &counter());
            let diff = wf.psi.max_abs_diff(&reference.psi);
            assert!(diff < 1e-12, "{imp:?} deviates by {diff}");
        }
    }

    #[test]
    fn tiers_are_bit_identical() {
        // The fwd/wrap plan partition reorders disjoint bond updates only,
        // so every tier reproduces the baseline bits exactly.
        let g = grid();
        let kp = KinProp::new(g);
        let run = |imp: KinImpl| {
            let mut wf = WaveFunctions::random(g, 5, 42);
            kp.propagate_n(imp, &mut wf, 0.01, Vec3::new(0.2, 0.0, -0.1), 3, &counter());
            wf
        };
        let reference = run(KinImpl::Baseline);
        for imp in [KinImpl::Reordered, KinImpl::Blocked, KinImpl::Parallel] {
            let wf = run(imp);
            for (x, y) in wf.psi.as_slice().iter().zip(reference.psi.as_slice()) {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "{imp:?}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "{imp:?}");
            }
        }
    }

    #[test]
    fn unitarity_exact() {
        let g = grid();
        let kp = KinProp::new(g);
        let mut wf = WaveFunctions::random(g, 4, 7);
        for _ in 0..50 {
            kp.step(&mut wf, 0.05, Vec3::new(0.3, -0.2, 0.1), &counter());
        }
        assert!(wf.norm_error() < 1e-11, "norm error {}", wf.norm_error());
    }

    #[test]
    fn orthogonality_preserved() {
        // The propagator is one unitary applied to all orbitals: overlaps
        // are invariants.
        let g = grid();
        let kp = KinProp::new(g);
        let mut wf = WaveFunctions::random(g, 3, 9);
        let s01 = wf.overlap(0, &wf, 1);
        for _ in 0..20 {
            kp.step(&mut wf, 0.03, Vec3::ZERO, &counter());
        }
        let s01_after = wf.overlap(0, &wf, 1);
        assert!((s01 - s01_after).abs() < 1e-10);
    }

    #[test]
    fn free_particle_phase_evolution() {
        // A plane wave must acquire phase e^{-i E(k) t} with the FD
        // dispersion; Trotter error is O(dt²) per step, so use small dt.
        let g = Grid3::new(16, 16, 16, 0.5);
        let kp = KinProp::new(g);
        let mut wf = WaveFunctions::plane_waves(g, 2); // mode 1 = (0,0,±1)-like
        let before = wf.psi[(3, 1)];
        let dt = 1e-3;
        let steps = 200;
        for _ in 0..steps {
            kp.step(&mut wf, dt, Vec3::ZERO, &counter());
        }
        // Identify the mode's k vector from the plane-wave constructor:
        // mode 1 has |m|²=1; measure its energy from the accumulated phase
        // and compare to the smallest nonzero FD dispersion value.
        let after = wf.psi[(3, 1)];
        let phase = (after / before).arg();
        let t = dt * steps as f64;
        let (lx, _, _) = g.lengths();
        let kmin = 2.0 * std::f64::consts::PI / lx;
        // Candidate energies along each axis (grid is cubic, all equal).
        let e_expect = kp.fd_dispersion(Vec3::new(kmin, 0.0, 0.0), Vec3::ZERO);
        let phase_expect = -(e_expect * t);
        let wrap = |x: f64| {
            (x + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI) - std::f64::consts::PI
        };
        assert!(
            wrap(phase - phase_expect).abs() < 2e-3,
            "phase {phase} vs expected {phase_expect}"
        );
    }

    #[test]
    fn vector_potential_shifts_dispersion() {
        // With A ≠ 0 the gamma-mode (k = 0) acquires energy E(A) ≠ 0.
        let g = Grid3::new(12, 12, 12, 0.5);
        let kp = KinProp::new(g);
        let a = Vec3::new(0.4, 0.0, 0.0);
        let mut wf = WaveFunctions::plane_waves(g, 1); // k = 0 mode only
        let before = wf.psi[(0, 0)];
        let dt = 1e-3;
        let steps = 100;
        for _ in 0..steps {
            kp.step(&mut wf, dt, a, &counter());
        }
        let after = wf.psi[(0, 0)];
        let phase = (after / before).arg();
        let e_expect = kp.fd_dispersion(Vec3::ZERO, a);
        assert!(
            (phase + e_expect * dt * steps as f64).abs() < 1e-3,
            "phase {phase}, expected {}",
            -e_expect * dt * steps as f64
        );
    }

    #[test]
    fn trotter_error_is_second_order() {
        // Halving dt (same total time) must reduce the error ~4×.
        let g = Grid3::new(8, 8, 8, 0.6);
        let kp = KinProp::new(g);
        let total_t = 0.2;
        let run = |nsteps: usize| -> WaveFunctions {
            let mut wf = WaveFunctions::random(g, 2, 5);
            kp.propagate_n(
                KinImpl::Parallel,
                &mut wf,
                total_t / nsteps as f64,
                Vec3::ZERO,
                nsteps,
                &counter(),
            );
            wf
        };
        let exact = run(512); // fine-step proxy for the exact result
        let err = |w: &WaveFunctions| w.psi.max_abs_diff(&exact.psi);
        let e1 = err(&run(8));
        let e2 = err(&run(16));
        let ratio = e1 / e2;
        assert!(
            ratio > 3.0 && ratio < 5.5,
            "expected ~4x error reduction, got {ratio} ({e1} / {e2})"
        );
    }

    #[test]
    fn flop_accounting() {
        let g = grid();
        let kp = KinProp::new(g);
        let c = counter();
        let mut wf = WaveFunctions::random(g, 3, 1);
        kp.propagate_n(KinImpl::Parallel, &mut wf, 0.01, Vec3::ZERO, 2, &c);
        assert_eq!(c.total(), kp.flops_per_steps(3, 2));
        assert_eq!(
            kp.flops_per_steps(1, 1),
            6 * g.len() as u64 * FLOPS_PER_BOND_ORBITAL
        );
    }

    #[test]
    fn bond_sets_are_disjoint_and_complete() {
        let g = Grid3::new(6, 4, 8, 1.0);
        let kp = KinProp::new(g);
        for axis in 0..3 {
            let mut touched = vec![0u8; g.len()];
            for parity in 0..2 {
                for &(g1, g2) in &kp.bonds[2 * axis + parity] {
                    touched[g1 as usize] += 1;
                    touched[g2 as usize] += 1;
                }
            }
            // Every point participates in exactly 2 bonds per axis.
            assert!(touched.iter().all(|&t| t == 2), "axis {axis}");
        }
    }

    #[test]
    #[should_panic(expected = "even grid dimensions")]
    fn odd_grid_rejected() {
        KinProp::new(Grid3::new(7, 8, 8, 1.0));
    }
}
