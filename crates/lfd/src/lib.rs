//! # mlmd-lfd — Local Field Dynamics
//!
//! The "GPU side" of DC-MESH (paper Fig. 2b): quantum dynamics of electrons
//! on a real-space finite-difference grid under a laser field, implementing
//! the time evolution of Eq. (2):
//!
//! ```text
//! |ψ_s(t+Δt_MD)⟩ = Π_n  exp(−i Δt_QD/ħ · ĥ_loc(t_n))  ⊗  nonlocal correction
//! ```
//!
//! * [`wavefunction`] — KS orbital panels on a [`mlmd_numerics::Grid3`],
//!   grid-major for GEMM and orbital-fastest SoA for stencils (Sec. V.B.2).
//! * [`kin_prop`] — the local kinetic propagator: block-diagonal
//!   split-operator (ref \[41\]) with Peierls-phase vector-potential coupling,
//!   in the four optimization tiers of Table III (baseline / data-loop
//!   reordering / blocking-tiling / hierarchical parallel).
//! * [`nlp_prop`] — GEMMified nonlocal correction: paper Eq. (5) projector
//!   form and Kleinman–Bylander separable pseudopotentials, with
//!   parameterized FP64/FP32/BF16-split precision (Secs. V.B.5, V.B.7).
//! * [`hartree`] — Poisson solvers: spectral FFT, geometric multigrid
//!   ("globally sparse" tier of GSLF, Sec. V.A.2), and damped-dynamics DSA
//!   (ref \[42\]).
//! * [`xc`] — LDA (Slater) exchange.
//! * [`density`] / [`current`] — occupation-weighted density and TDCDFT
//!   macroscopic current (feeds Maxwell's equations, Sec. V.B.5).
//! * [`occupation`] — occupation numbers `f_s ∈ \[0,1\]`, the small-dynamic-
//!   range handshake payload of shadow dynamics (Sec. V.A.3).
//! * [`potential`] — local ionic + Hartree + xc potential assembly.
//! * [`propagator`] — the full split-operator QD step and the
//!   self-consistent time-reversible loop (ref \[43\]).

pub mod current;
pub mod density;
pub mod hartree;
pub mod kin_prop;
pub mod nlp_prop;
pub mod occupation;
pub mod potential;
pub mod propagator;
pub mod wavefunction;
pub mod xc;

pub use kin_prop::{KinImpl, KinProp};
pub use nlp_prop::{NlpPrecision, NlpProp};
pub use occupation::Occupations;
pub use propagator::QdStep;
pub use wavefunction::WaveFunctions;
