//! Occupation numbers — the shadow-dynamics handshake payload.
//!
//! Paper Sec. V.A.3: shadow dynamics ships only the occupation numbers
//! `f_s^(α) ∈ \[0, 2\]` (and their changes) between LFD (GPU) and QXMD (CPU),
//! "negligible compared to the large memory footprint of KS wave
//! functions". This module owns that small-dynamic-range state: the f_s
//! vector, the reference ground-state occupations, and the per-domain
//! photo-excitation count `n_exc^(α)` that DC-MESH returns to XS-NNQMD
//! (Sec. V.A.8).

/// Occupations of `norb` spin-degenerate KS orbitals, each in \[0, 2\].
#[derive(Clone, Debug, PartialEq)]
pub struct Occupations {
    f: Vec<f64>,
    /// Ground-state reference used to define excitation counts.
    f0: Vec<f64>,
}

impl Occupations {
    /// From explicit values (reference = initial values).
    pub fn new(f: Vec<f64>) -> Self {
        assert!(
            f.iter().all(|&x| (0.0..=2.0).contains(&x)),
            "occupations must lie in [0, 2]"
        );
        let f0 = f.clone();
        Self { f, f0 }
    }

    /// Aufbau filling of `n_electrons` into `norb` orbitals (2 per level).
    pub fn aufbau(norb: usize, n_electrons: f64) -> Self {
        assert!(n_electrons <= 2.0 * norb as f64, "too many electrons");
        let mut f = vec![0.0; norb];
        let mut remaining = n_electrons;
        for x in f.iter_mut() {
            let take = remaining.min(2.0);
            *x = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        Self::new(f)
    }

    /// All orbitals at the same occupation.
    pub fn uniform(norb: usize, value: f64) -> Self {
        Self::new(vec![value; norb])
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.f.len()
    }

    pub fn is_empty(&self) -> bool {
        self.f.is_empty()
    }

    #[inline]
    pub fn f(&self, s: usize) -> f64 {
        self.f[s]
    }

    pub fn as_slice(&self) -> &[f64] {
        &self.f
    }

    /// Total electron count Σf_s.
    pub fn total(&self) -> f64 {
        self.f.iter().sum()
    }

    /// Move `amount` of occupation from orbital `from` to orbital `to`,
    /// clamped so occupancies stay in \[0, 2\] and the total is conserved —
    /// the elementary surface-hopping update.
    pub fn transfer(&mut self, from: usize, to: usize, amount: f64) -> f64 {
        let amount = amount.min(self.f[from]).min(2.0 - self.f[to]).max(0.0);
        self.f[from] -= amount;
        self.f[to] += amount;
        amount
    }

    /// Photo-excitation count relative to the ground-state reference:
    /// `n_exc = ½ Σ_s |f_s − f_s⁰|` (each excited electron leaves a hole,
    /// hence the ½).
    pub fn n_exc(&self) -> f64 {
        0.5 * self
            .f
            .iter()
            .zip(&self.f0)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Change vector Δf since the reference — the literal bytes shipped
    /// across the CPU↔GPU link by shadow dynamics.
    pub fn delta_f(&self) -> Vec<f64> {
        self.f.iter().zip(&self.f0).map(|(a, b)| a - b).collect()
    }

    /// Reset the reference to the current state (start of an MD step).
    pub fn rebase(&mut self) {
        self.f0.clone_from(&self.f);
    }

    /// Apply a Δf received from the device (inverse of [`Self::delta_f`]).
    pub fn apply_delta(&mut self, delta: &[f64]) {
        assert_eq!(delta.len(), self.f.len());
        for (x, d) in self.f.iter_mut().zip(delta) {
            *x = (*x + d).clamp(0.0, 2.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aufbau_fills_lowest_first() {
        let occ = Occupations::aufbau(4, 5.0);
        assert_eq!(occ.as_slice(), &[2.0, 2.0, 1.0, 0.0]);
        assert_eq!(occ.total(), 5.0);
    }

    #[test]
    fn transfer_conserves_total() {
        let mut occ = Occupations::aufbau(3, 4.0); // [2,2,0]
        let moved = occ.transfer(1, 2, 0.7);
        assert_eq!(moved, 0.7);
        assert!((occ.total() - 4.0).abs() < 1e-15);
        assert!((occ.f(1) - 1.3).abs() < 1e-15);
        assert!((occ.f(2) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn transfer_clamps_at_bounds() {
        let mut occ = Occupations::new(vec![0.3, 1.9]);
        // Can move at most 0.1 into the nearly-full orbital.
        let moved = occ.transfer(0, 1, 0.5);
        assert!((moved - 0.1).abs() < 1e-15);
        assert!((occ.f(1) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn n_exc_counts_electron_hole_pairs() {
        let mut occ = Occupations::aufbau(4, 4.0); // [2,2,0,0]
        occ.transfer(1, 2, 1.0);
        assert!((occ.n_exc() - 1.0).abs() < 1e-15);
        occ.transfer(0, 3, 0.5);
        assert!((occ.n_exc() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn delta_roundtrip() {
        let mut gpu_side = Occupations::aufbau(3, 2.0);
        gpu_side.transfer(0, 2, 0.25);
        let delta = gpu_side.delta_f();
        let mut cpu_side = Occupations::aufbau(3, 2.0);
        cpu_side.apply_delta(&delta);
        assert_eq!(cpu_side.as_slice(), gpu_side.as_slice());
    }

    #[test]
    fn rebase_zeroes_excitation() {
        let mut occ = Occupations::aufbau(2, 2.0);
        occ.transfer(0, 1, 0.5);
        assert!(occ.n_exc() > 0.0);
        occ.rebase();
        assert_eq!(occ.n_exc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "occupations must lie in")]
    fn rejects_out_of_range() {
        Occupations::new(vec![2.5]);
    }
}
