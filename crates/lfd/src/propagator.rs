//! The assembled QD step: split-operator propagation of paper Eq. (2).
//!
//! One QD step of `dt` is the symmetric product
//!
//! ```text
//! exp(−i dt v_loc/2) · exp(−i dt T̂(A)) · exp(−i dt v_loc/2) · [nonlocal]
//! ```
//!
//! where the kinetic factor is the block-diagonal `kin_prop` (with the
//! Peierls vector-potential coupling), the local-potential factors are
//! pointwise phases, and the optional nonlocal factor is either the exact
//! Kleinman–Bylander unitary or the paper's Eq. (5) perturbative CGEMM
//! correction. The self-consistent time-reversible scheme of ref \[43\]
//! enters at the DC-MESH level (`mlmd-dcmesh::ehrenfest`), where the
//! potential is updated between steps; within a step the propagator is
//! exactly unitary (up to the perturbative Eq. (5) term).

use crate::kin_prop::{KinImpl, KinProp};
use crate::nlp_prop::{NlpPrecision, NlpProp};
use crate::occupation::Occupations;
use crate::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::flops::FlopCounter;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::stencil::{laplacian, Order};
use rayon::prelude::*;

/// FLOPs per grid point per orbital of one local-phase application
/// (one complex multiply plus the phase table lookup).
pub const FLOPS_PER_VLOC_POINT: u64 = 6;

/// A planned QD stepper for one domain.
pub struct QdStep {
    pub kin: KinProp,
    /// Optional Eq. (5) nonlocal correction.
    pub nlp: Option<NlpProp>,
    /// Precision of the nonlocal CGEMMs.
    pub nlp_precision: NlpPrecision,
    /// Implementation tier for the kinetic kernel.
    pub kin_impl: KinImpl,
    pub flops: FlopCounter,
}

impl QdStep {
    pub fn new(grid: Grid3) -> Self {
        Self {
            kin: KinProp::new(grid),
            nlp: None,
            nlp_precision: NlpPrecision::F64,
            kin_impl: KinImpl::Parallel,
            flops: FlopCounter::new(),
        }
    }

    /// Install the Eq. (5) correction with reference panel `psi0`.
    pub fn with_nlp(mut self, psi0: &WaveFunctions, delta: c64, prec: NlpPrecision) -> Self {
        self.nlp = Some(NlpProp::new(psi0, delta));
        self.nlp_precision = prec;
        self
    }

    /// Pointwise local-potential phase `ψ ← e^{−i dt v(r)} ψ`,
    /// parallelized over orbitals (each orbital is a contiguous column).
    pub fn apply_vloc(&self, wf: &mut WaveFunctions, vloc: &[f64], dt: f64) {
        assert_eq!(vloc.len(), wf.ngrid());
        let norb = wf.norb as u64;
        self.flops
            .add(FLOPS_PER_VLOC_POINT * wf.ngrid() as u64 * norb);
        let ngrid = wf.ngrid();
        // Precompute the phase table once, reuse for all orbitals
        // (the same coefficient-reuse idea as Sec. V.B.2).
        let phases: Vec<c64> = vloc.iter().map(|&v| c64::cis(-dt * v)).collect();
        wf.psi.as_mut_slice().par_chunks_mut(ngrid).for_each(|col| {
            for (z, p) in col.iter_mut().zip(&phases) {
                *z *= *p;
            }
        });
    }

    /// One symmetric QD step under frozen `vloc` and uniform vector
    /// potential `a`.
    pub fn step(
        &self,
        wf: &mut WaveFunctions,
        vloc: &[f64],
        a: mlmd_numerics::vec3::Vec3,
        dt: f64,
    ) {
        self.apply_vloc(wf, vloc, 0.5 * dt);
        self.kin
            .propagate_n(self.kin_impl, wf, dt, a, 1, &self.flops);
        self.apply_vloc(wf, vloc, 0.5 * dt);
        if let Some(nlp) = &self.nlp {
            nlp.apply(wf, self.nlp_precision, &self.flops);
        }
    }

    /// Total energy `Σ_s f_s [⟨ψ_s|T̂|ψ_s⟩ + ⟨ψ_s|v_loc|ψ_s⟩]` with the FD
    /// kinetic operator (matches the propagator's discretization).
    pub fn energy(&self, wf: &WaveFunctions, vloc: &[f64], occ: &Occupations) -> f64 {
        let grid = wf.grid;
        let dv = grid.dv();
        let ngrid = wf.ngrid();
        let mut e = 0.0;
        let mut re = vec![0.0; ngrid];
        let mut im = vec![0.0; ngrid];
        let mut lap_re = vec![0.0; ngrid];
        let mut lap_im = vec![0.0; ngrid];
        for s in 0..wf.norb {
            let f = occ.f(s);
            if f == 0.0 {
                continue;
            }
            let col = wf.psi.col(s);
            for (idx, z) in col.iter().enumerate() {
                re[idx] = z.re;
                im[idx] = z.im;
            }
            laplacian(&grid, &re, &mut lap_re, Order::Second);
            laplacian(&grid, &im, &mut lap_im, Order::Second);
            let mut kin = 0.0;
            let mut pot = 0.0;
            for idx in 0..ngrid {
                // ⟨ψ|−½∇²|ψ⟩ = −½ (re·∇²re + im·∇²im)
                kin -= 0.5 * (re[idx] * lap_re[idx] + im[idx] * lap_im[idx]);
                pot += vloc[idx] * (re[idx] * re[idx] + im[idx] * im[idx]);
            }
            e += f * (kin + pot) * dv;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::vec3::Vec3;

    fn harmonic_vloc(grid: &Grid3, k: f64) -> Vec<f64> {
        // Periodicized harmonic well centred in the box.
        let (lx, ly, lz) = grid.lengths();
        let c = Vec3::new(lx / 2.0, ly / 2.0, lz / 2.0);
        let mut v = vec![0.0; grid.len()];
        for kk in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, y, z) = grid.position(i, j, kk);
                    let d = (Vec3::new(x, y, z) - c).min_image(Vec3::new(lx, ly, lz));
                    v[grid.idx(i, j, kk)] = 0.5 * k * d.norm_sqr();
                }
            }
        }
        v
    }

    #[test]
    fn full_step_is_unitary() {
        let grid = Grid3::new(10, 10, 10, 0.5);
        let qd = QdStep::new(grid);
        let vloc = harmonic_vloc(&grid, 0.5);
        let mut wf = WaveFunctions::random(grid, 4, 17);
        for _ in 0..40 {
            qd.step(&mut wf, &vloc, Vec3::new(0.1, 0.0, 0.0), 0.02);
        }
        assert!(wf.norm_error() < 1e-10, "norm error {}", wf.norm_error());
    }

    #[test]
    fn time_reversibility() {
        // Symmetric split-operator: stepping +dt then −dt restores the state.
        let grid = Grid3::new(8, 8, 8, 0.5);
        let qd = QdStep::new(grid);
        let vloc = harmonic_vloc(&grid, 1.0);
        let mut wf = WaveFunctions::random(grid, 3, 5);
        let original = wf.clone();
        for _ in 0..5 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, 0.04);
        }
        for _ in 0..5 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, -0.04);
        }
        assert!(
            wf.psi.max_abs_diff(&original.psi) < 1e-11,
            "time reversal must restore the state"
        );
    }

    #[test]
    fn energy_conserved_in_static_potential() {
        let grid = Grid3::new(10, 10, 10, 0.5);
        let qd = QdStep::new(grid);
        let vloc = harmonic_vloc(&grid, 0.8);
        let occ = Occupations::uniform(3, 2.0);
        let mut wf = WaveFunctions::random(grid, 3, 23);
        let e0 = qd.energy(&wf, &vloc, &occ);
        for _ in 0..100 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, 0.01);
        }
        let e1 = qd.energy(&wf, &vloc, &occ);
        let drift = (e1 - e0).abs() / e0.abs().max(1.0);
        assert!(drift < 1e-3, "energy drift {drift} (E {e0} → {e1})");
    }

    #[test]
    fn vloc_phase_only_changes_phase() {
        let grid = Grid3::new(8, 8, 8, 0.4);
        let qd = QdStep::new(grid);
        let vloc = harmonic_vloc(&grid, 0.3);
        let mut wf = WaveFunctions::random(grid, 2, 3);
        let dens_before: Vec<f64> = wf.psi.col(0).iter().map(|z| z.norm_sqr()).collect();
        qd.apply_vloc(&mut wf, &vloc, 0.1);
        let dens_after: Vec<f64> = wf.psi.col(0).iter().map(|z| z.norm_sqr()).collect();
        for (a, b) in dens_before.iter().zip(&dens_after) {
            assert!((a - b).abs() < 1e-14, "local phase must preserve density");
        }
    }

    #[test]
    fn nlp_integration_in_step() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf0 = WaveFunctions::random(grid, 3, 1);
        let qd = QdStep::new(grid).with_nlp(&wf0, c64::new(0.0, -0.01), NlpPrecision::F32);
        let vloc = harmonic_vloc(&grid, 0.5);
        let mut wf = wf0.clone();
        for _ in 0..10 {
            qd.step(&mut wf, &vloc, Vec3::ZERO, 0.02);
        }
        // Perturbative correction: norms stay near 1 (not exactly).
        assert!(wf.norm_error() < 1e-2);
        assert!(qd.flops.total() > 0);
    }

    #[test]
    fn flop_counter_accumulates_all_kernels() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let qd = QdStep::new(grid);
        let vloc = vec![0.0; grid.len()];
        let mut wf = WaveFunctions::random(grid, 2, 2);
        qd.step(&mut wf, &vloc, Vec3::ZERO, 0.01);
        let expected_min =
            qd.kin.flops_per_steps(2, 1) + 2 * FLOPS_PER_VLOC_POINT * grid.len() as u64 * 2;
        assert!(qd.flops.total() >= expected_min);
    }
}
