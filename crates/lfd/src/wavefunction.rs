//! KS wave-function panels on a finite-difference grid.
//!
//! Two layouts coexist, exactly as in the paper:
//!
//! * **grid-major** (the canonical [`WaveFunctions::psi`] matrix): each
//!   orbital is a contiguous column of an `Ngrid × Norb` column-major
//!   matrix — the representation `nlp_prop`'s CGEMMs consume (Sec. V.B.5);
//! * **orbital-fastest SoA** ([`WaveFunctions::to_soa`]): consecutive
//!   storage of all `Norb` orbital values per grid point — the layout of
//!   Sec. V.B.2 that lets one stencil coefficient be reused across all
//!   orbitals in the innermost loop.

use mlmd_numerics::codec::{ByteReader, ByteWriter, CodecError, Fnv64};
use mlmd_numerics::complex::c64;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::matrix::Matrix;
use mlmd_numerics::ortho;
use mlmd_numerics::rng::{Rng64, Xoshiro256};

/// A panel of `norb` complex KS orbitals on `grid`.
#[derive(Clone, Debug)]
pub struct WaveFunctions {
    pub grid: Grid3,
    pub norb: usize,
    /// `Ngrid × Norb`, column-major (each column one orbital), grid-major.
    pub psi: Matrix<c64>,
}

impl WaveFunctions {
    /// All-zero panel.
    pub fn zeros(grid: Grid3, norb: usize) -> Self {
        Self {
            grid,
            norb,
            psi: Matrix::zeros(grid.len(), norb),
        }
    }

    /// Random orthonormalized panel (the SCF initial guess).
    pub fn random(grid: Grid3, norb: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::new(seed);
        let mut psi = Matrix::from_fn(grid.len(), norb, |_, _| {
            c64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5)
        });
        ortho::gram_schmidt(&mut psi);
        // Gram–Schmidt normalizes in the l² sense; rescale to ∫|ψ|²dV = 1.
        let s = 1.0 / grid.dv().sqrt();
        for z in psi.as_mut_slice() {
            *z = z.scale(s);
        }
        Self { grid, norb, psi }
    }

    /// Plane-wave orbitals `exp(i G_s · r)/√V` with distinct low-|G| modes:
    /// analytic eigenfunctions of the free-particle problem, used heavily
    /// in tests.
    pub fn plane_waves(grid: Grid3, norb: usize) -> Self {
        let (lx, ly, lz) = grid.lengths();
        let vol = lx * ly * lz;
        let amp = 1.0 / vol.sqrt();
        // Enumerate integer modes in a deterministic low-to-high order.
        let modes = low_modes(norb);
        let psi = Matrix::from_fn(grid.len(), norb, |g, s| {
            let (i, j, k) = grid.coords(g);
            let (x, y, z) = grid.position(i, j, k);
            let (mx, my, mz) = modes[s];
            let phase = 2.0
                * std::f64::consts::PI
                * (mx as f64 * x / lx + my as f64 * y / ly + mz as f64 * z / lz);
            c64::cis(phase).scale(amp)
        });
        Self { grid, norb, psi }
    }

    /// Number of grid points.
    #[inline]
    pub fn ngrid(&self) -> usize {
        self.grid.len()
    }

    /// `⟨ψ_s|ψ_s⟩ = ∫|ψ_s|² dV` for each orbital.
    pub fn norms(&self) -> Vec<f64> {
        let dv = self.grid.dv();
        (0..self.norb)
            .map(|s| self.psi.col(s).iter().map(|z| z.norm_sqr()).sum::<f64>() * dv)
            .collect()
    }

    /// Max deviation of any orbital norm from 1 (unitarity diagnostic).
    pub fn norm_error(&self) -> f64 {
        self.norms()
            .into_iter()
            .map(|n| (n - 1.0).abs())
            .fold(0.0, f64::max)
    }

    /// Convert to orbital-fastest SoA: `out[g*norb + s] = ψ_s(g)`.
    pub fn to_soa(&self) -> Vec<c64> {
        let ngrid = self.ngrid();
        let norb = self.norb;
        let mut out = vec![c64::zero(); ngrid * norb];
        for s in 0..norb {
            let col = self.psi.col(s);
            for (g, &v) in col.iter().enumerate() {
                out[g * norb + s] = v;
            }
        }
        out
    }

    /// Load from orbital-fastest SoA (inverse of [`Self::to_soa`]).
    pub fn from_soa(&mut self, soa: &[c64]) {
        let ngrid = self.ngrid();
        let norb = self.norb;
        assert_eq!(soa.len(), ngrid * norb);
        for s in 0..norb {
            let col = self.psi.col_mut(s);
            for (g, v) in col.iter_mut().enumerate() {
                *v = soa[g * norb + s];
            }
        }
    }

    /// Overlap ⟨ψ_a|ψ_b⟩ between two orbitals of (possibly different)
    /// panels on the same grid.
    pub fn overlap(&self, a: usize, other: &WaveFunctions, b: usize) -> c64 {
        assert_eq!(self.grid, other.grid);
        let dv = self.grid.dv();
        let mut acc = c64::zero();
        for (&x, &y) in self.psi.col(a).iter().zip(other.psi.col(b)) {
            acc = acc.mul_acc(x.conj(), y);
        }
        acc.scale(dv)
    }

    /// Memory footprint of the panel in bytes (what stays GPU-resident).
    pub fn bytes(&self) -> u64 {
        (self.ngrid() * self.norb * std::mem::size_of::<c64>()) as u64
    }

    /// Serialize the panel into `w`: grid descriptor (nx, ny, nz, h),
    /// orbital count, then every ψ value column-major as (re, im) bit
    /// patterns. The framing is deterministic, so encode → decode is the
    /// identity on the panel and the byte stream hashes identically
    /// across hosts — the property the ground-state checkpoint layer
    /// builds on.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.grid.nx as u64);
        w.put_u64(self.grid.ny as u64);
        w.put_u64(self.grid.nz as u64);
        w.put_f64(self.grid.h);
        w.put_u64(self.norb as u64);
        for z in self.psi.as_slice() {
            w.put_f64(z.re);
            w.put_f64(z.im);
        }
    }

    /// Decode a panel written by [`Self::encode`]. A short buffer
    /// surfaces as [`CodecError::Truncated`] rather than a panic.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let nx = r.take_u64()? as usize;
        let ny = r.take_u64()? as usize;
        let nz = r.take_u64()? as usize;
        let h = r.take_f64()?;
        let norb = r.take_u64()? as usize;
        let grid = Grid3::new(nx, ny, nz, h);
        let mut data = Vec::with_capacity(grid.len() * norb);
        for _ in 0..grid.len() * norb {
            let re = r.take_f64()?;
            let im = r.take_f64()?;
            data.push(c64::new(re, im));
        }
        Ok(Self {
            grid,
            norb,
            psi: Matrix::from_vec(grid.len(), norb, data),
        })
    }

    /// FNV-1a digest over the panel's shape and every ψ bit pattern —
    /// equal digests mean bit-identical panels on identical grids.
    pub fn panel_digest(&self) -> u64 {
        let mut d = Fnv64::new();
        d.write_u64(self.grid.nx as u64);
        d.write_u64(self.grid.ny as u64);
        d.write_u64(self.grid.nz as u64);
        d.write_f64(self.grid.h);
        d.write_u64(self.norb as u64);
        for z in self.psi.as_slice() {
            d.write_f64(z.re);
            d.write_f64(z.im);
        }
        d.finish()
    }
}

/// The `n` smallest integer modes (mx, my, mz), sorted by |m|² then lexical.
fn low_modes(n: usize) -> Vec<(i32, i32, i32)> {
    let mut modes = Vec::new();
    let r = 6i32; // generous search radius; supports hundreds of orbitals
    for mx in -r..=r {
        for my in -r..=r {
            for mz in -r..=r {
                modes.push((mx, my, mz));
            }
        }
    }
    modes.sort_by_key(|&(x, y, z)| (x * x + y * y + z * z, x, y, z));
    assert!(
        modes.len() >= n,
        "mode search radius too small for {n} orbitals"
    );
    modes.truncate(n);
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::ortho::orthonormality_error;

    fn small_grid() -> Grid3 {
        Grid3::new(8, 6, 4, 0.5)
    }

    #[test]
    fn random_panel_is_orthonormal() {
        let wf = WaveFunctions::random(small_grid(), 5, 1);
        for (s, n) in wf.norms().iter().enumerate() {
            assert!((n - 1.0).abs() < 1e-10, "orbital {s} norm {n}");
        }
        assert!(wf.norm_error() < 1e-10);
    }

    #[test]
    fn plane_waves_are_orthonormal() {
        let wf = WaveFunctions::plane_waves(small_grid(), 6);
        for a in 0..6 {
            for b in 0..6 {
                let o = wf.overlap(a, &wf, b);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((o - c64::real(expect)).abs() < 1e-10, "⟨{a}|{b}⟩ = {o}");
            }
        }
    }

    #[test]
    fn soa_round_trip() {
        let wf = WaveFunctions::random(small_grid(), 4, 3);
        let soa = wf.to_soa();
        let mut back = WaveFunctions::zeros(wf.grid, wf.norb);
        back.from_soa(&soa);
        assert!(wf.psi.max_abs_diff(&back.psi) < 1e-15);
    }

    #[test]
    fn soa_layout_is_orbital_fastest() {
        let wf = WaveFunctions::random(small_grid(), 3, 4);
        let soa = wf.to_soa();
        // Grid point 5, orbital 2 sits at 5*3+2.
        assert_eq!(soa[5 * 3 + 2], wf.psi[(5, 2)]);
    }

    #[test]
    fn gram_schmidt_scaling_matches_grid_measure() {
        // The l²-orthonormal psi must integrate to one with the dV weight.
        let grid = Grid3::cubic(6, 0.3);
        let wf = WaveFunctions::random(grid, 2, 7);
        let l2: f64 = wf.psi.col(0).iter().map(|z| z.norm_sqr()).sum();
        assert!((l2 * grid.dv() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn low_modes_start_at_gamma() {
        let m = low_modes(7);
        assert_eq!(m[0], (0, 0, 0));
        // Next six are the ±1 modes.
        for &(x, y, z) in &m[1..7] {
            assert_eq!(x * x + y * y + z * z, 1);
        }
    }

    #[test]
    fn footprint_counts_bytes() {
        let wf = WaveFunctions::zeros(small_grid(), 2);
        assert_eq!(wf.bytes(), (8 * 6 * 4 * 2 * 16) as u64);
    }

    #[test]
    fn encode_decode_round_trip_is_bit_identical() {
        let wf = WaveFunctions::random(small_grid(), 4, 13);
        let mut w = ByteWriter::new();
        wf.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = WaveFunctions::decode(&mut r).expect("round trip");
        assert_eq!(r.remaining(), 0, "decode must consume the full frame");
        assert_eq!(back.grid, wf.grid);
        assert_eq!(back.norb, wf.norb);
        for (a, b) in wf.psi.as_slice().iter().zip(back.psi.as_slice()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(wf.panel_digest(), back.panel_digest());
    }

    #[test]
    fn truncated_panel_frame_is_rejected_not_panicked() {
        let wf = WaveFunctions::random(small_grid(), 2, 5);
        let mut w = ByteWriter::new();
        wf.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 9]);
        assert!(matches!(
            WaveFunctions::decode(&mut r),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn panel_digest_distinguishes_panels() {
        let a = WaveFunctions::random(small_grid(), 3, 1);
        let b = WaveFunctions::random(small_grid(), 3, 2);
        assert_ne!(a.panel_digest(), b.panel_digest());
        assert_eq!(a.panel_digest(), a.clone().panel_digest());
    }

    #[test]
    fn orthonormality_of_panel_in_l2_sense() {
        let wf = WaveFunctions::random(small_grid(), 4, 9);
        // The psi matrix scaled by sqrt(dV) must be orthonormal.
        let mut scaled = wf.psi.clone();
        let s = wf.grid.dv().sqrt();
        for z in scaled.as_mut_slice() {
            *z = z.scale(s);
        }
        assert!(orthonormality_error(&scaled) < 1e-10);
    }
}
