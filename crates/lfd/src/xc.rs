//! Exchange-correlation: LDA (Slater Xα) exchange.
//!
//! The paper's QXMD uses full nonlocal xc functionals; the LFD proxy needs
//! only a local potential with the right qualitative behaviour (attractive,
//! density-dependent, sub-linear). Slater exchange
//! `v_x(ρ) = −(3ρ/π)^{1/3}` and `ε_x(ρ) = −(3/4)(3/π)^{1/3} ρ^{1/3}`
//! is the standard choice and is exactly what the substitution table in
//! DESIGN.md records.

/// Exchange potential `v_x(ρ)` per grid point.
pub fn vx_lda(rho: &[f64], out: &mut [f64]) {
    assert_eq!(rho.len(), out.len());
    let c = (3.0 / std::f64::consts::PI).cbrt();
    for (v, &r) in out.iter_mut().zip(rho) {
        *v = -c * r.max(0.0).cbrt();
    }
}

/// Exchange energy `E_x = ∫ ε_x(ρ) ρ dV` (pass dV separately).
pub fn ex_lda(rho: &[f64], dv: f64) -> f64 {
    let c = -0.75 * (3.0 / std::f64::consts::PI).cbrt();
    rho.iter()
        .map(|&r| {
            let r = r.max(0.0);
            c * r.cbrt() * r
        })
        .sum::<f64>()
        * dv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn potential_is_attractive_and_monotone() {
        let rho = [0.0, 0.1, 1.0, 10.0];
        let mut v = [0.0; 4];
        vx_lda(&rho, &mut v);
        assert_eq!(v[0], 0.0);
        assert!(v[1] < 0.0);
        assert!(v[2] < v[1]);
        assert!(v[3] < v[2]);
    }

    #[test]
    fn known_value_at_unit_density() {
        let mut v = [0.0];
        vx_lda(&[1.0], &mut v);
        let expect = -(3.0f64 / std::f64::consts::PI).cbrt();
        assert!((v[0] - expect).abs() < 1e-14);
    }

    #[test]
    fn energy_scaling() {
        // E_x ∝ ρ^{4/3}: doubling ρ multiplies ε·ρ by 2^{4/3}.
        let e1 = ex_lda(&[1.0; 10], 0.1);
        let e2 = ex_lda(&[2.0; 10], 0.1);
        assert!((e2 / e1 - 2.0f64.powf(4.0 / 3.0)).abs() < 1e-12);
        assert!(e1 < 0.0);
    }

    #[test]
    fn virial_relation() {
        // For LDA exchange, v_x = (4/3) ε_x pointwise.
        let rho = [0.7];
        let mut v = [0.0];
        vx_lda(&rho, &mut v);
        let eps = ex_lda(&rho, 1.0) / rho[0];
        assert!((v[0] - 4.0 / 3.0 * eps).abs() < 1e-14);
    }

    #[test]
    fn negative_density_clamped() {
        let mut v = [0.0];
        vx_lda(&[-0.5], &mut v);
        assert_eq!(v[0], 0.0);
    }
}
