//! Hartree (Poisson) solvers: `∇²V_H = −4πρ` with periodic boundaries.
//!
//! Three solvers mirror the paper's "globally scalable and locally fast"
//! stack (Sec. V.A.2):
//!
//! * [`solve_fft`] — spectral solver (the "locally fast" FFT tier used
//!   inside each DC domain);
//! * [`Multigrid`] — geometric V-cycle with red–black Gauss–Seidel
//!   smoothing (the "O(N) tree-based multigrid", globally sparse tier used
//!   for the global KS potential);
//! * [`solve_dsa`] — damped second-order Richardson iteration, the
//!   dynamical-simulated-annealing solver of Car–Parrinello (ref \[42\]).
//!
//! Periodic Poisson problems are only solvable for neutral sources, so all
//! solvers internally subtract the mean of `ρ` (the uniform compensating
//! background of a periodic solid) and return a zero-mean potential.

use mlmd_numerics::complex::c64;
use mlmd_numerics::fft::Fft3d;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::stencil::{laplacian, Order};

const FOUR_PI: f64 = 4.0 * std::f64::consts::PI;

fn subtract_mean(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

/// Residual `r = ∇²V + 4πρ'` (ρ' mean-subtracted); returns its RMS.
pub fn residual_rms(grid: &Grid3, v: &[f64], rho: &[f64]) -> f64 {
    let mut rho_p = rho.to_vec();
    subtract_mean(&mut rho_p);
    let mut lap = vec![0.0; grid.len()];
    laplacian(grid, v, &mut lap, Order::Second);
    let ss: f64 = lap
        .iter()
        .zip(&rho_p)
        .map(|(l, r)| {
            let res = l + FOUR_PI * r;
            res * res
        })
        .sum();
    (ss / grid.len() as f64).sqrt()
}

/// Spectral solution: `V(G) = 4π ρ(G) / |G|²`, `V(0) = 0`.
pub fn solve_fft(grid: &Grid3, rho: &[f64]) -> Vec<f64> {
    assert_eq!(rho.len(), grid.len());
    let fft = Fft3d::new(grid.nx, grid.ny, grid.nz);
    let mut hat: Vec<c64> = rho.iter().map(|&r| c64::real(r)).collect();
    fft.forward(&mut hat);
    for c in 0..grid.nz {
        for b in 0..grid.ny {
            for a in 0..grid.nx {
                let idx = grid.idx(a, b, c);
                let g2 = grid.g_squared(a, b, c);
                hat[idx] = if g2 > 0.0 {
                    hat[idx].scale(FOUR_PI / g2)
                } else {
                    c64::zero()
                };
            }
        }
    }
    fft.inverse(&mut hat);
    hat.into_iter().map(|z| z.re).collect()
}

// Note: the spectral Laplacian (exact for the continuum operator) and the
// 7-point FD Laplacian differ at O(h²); `residual_rms` measures against
// the FD operator, so the FFT solution has a small but nonzero FD
// residual. Multigrid and DSA solve the FD operator exactly.

/// Geometric multigrid V-cycle solver for the 7-point FD Poisson problem.
pub struct Multigrid {
    levels: Vec<Grid3>,
    pub pre_smooth: usize,
    pub post_smooth: usize,
    pub coarse_iters: usize,
}

impl Multigrid {
    /// Build a hierarchy by halving while all dims stay even and ≥ 4.
    pub fn new(grid: Grid3) -> Self {
        let mut levels = vec![grid];
        loop {
            let g = *levels.last().unwrap();
            if g.nx % 2 == 0
                && g.ny % 2 == 0
                && g.nz % 2 == 0
                && g.nx >= 8
                && g.ny >= 8
                && g.nz >= 8
            {
                levels.push(g.coarsen());
            } else {
                break;
            }
        }
        Self {
            levels,
            pre_smooth: 3,
            post_smooth: 3,
            coarse_iters: 60,
        }
    }

    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Solve `∇²V = −4πρ` to relative tolerance `tol` (at most `max_cycles`
    /// V-cycles). Returns (V, cycles used).
    pub fn solve(&self, rho: &[f64], tol: f64, max_cycles: usize) -> (Vec<f64>, usize) {
        let grid = self.levels[0];
        assert_eq!(rho.len(), grid.len());
        let mut f: Vec<f64> = rho.iter().map(|&r| FOUR_PI * r).collect();
        subtract_mean(&mut f);
        // Solve ∇²V = −f.
        let mut v = vec![0.0; grid.len()];
        let f_norm = f.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
        let mut cycles = 0;
        for _ in 0..max_cycles {
            self.v_cycle(0, &mut v, &f);
            subtract_mean(&mut v);
            cycles += 1;
            let r = self.residual(0, &v, &f);
            let r_norm = r.iter().map(|x| x * x).sum::<f64>().sqrt();
            if r_norm / f_norm < tol {
                break;
            }
        }
        (v, cycles)
    }

    /// residual r = −f − ∇²v  (so solving ∇²v = −f drives r → 0).
    fn residual(&self, level: usize, v: &[f64], f: &[f64]) -> Vec<f64> {
        let g = self.levels[level];
        let mut lap = vec![0.0; g.len()];
        laplacian(&g, v, &mut lap, Order::Second);
        lap.iter().zip(f).map(|(l, ff)| -ff - l).collect()
    }

    fn v_cycle(&self, level: usize, v: &mut [f64], f: &[f64]) {
        let g = self.levels[level];
        if level + 1 == self.levels.len() {
            for _ in 0..self.coarse_iters {
                self.gauss_seidel(level, v, f);
            }
            return;
        }
        for _ in 0..self.pre_smooth {
            self.gauss_seidel(level, v, f);
        }
        let r = self.residual(level, v, f);
        let coarse = self.levels[level + 1];
        let rc = restrict(&g, &coarse, &r);
        // Defect equation: ∇²e = r. The smoother solves ∇²e = −f_c, so the
        // coarse right-hand side is f_c = −r_c.
        let mut ec = vec![0.0; coarse.len()];
        let mut fc: Vec<f64> = rc.into_iter().map(|x| -x).collect();
        subtract_mean(&mut fc);
        self.v_cycle(level + 1, &mut ec, &fc);
        prolong_add(&coarse, &g, &ec, v);
        for _ in 0..self.post_smooth {
            self.gauss_seidel(level, v, f);
        }
    }

    /// Red–black Gauss–Seidel sweep on `∇²v = −f` (7-point stencil).
    fn gauss_seidel(&self, level: usize, v: &mut [f64], f: &[f64]) {
        let g = self.levels[level];
        let h2 = g.h * g.h;
        for color in 0..2 {
            for k in 0..g.nz {
                for j in 0..g.ny {
                    for i in 0..g.nx {
                        if (i + j + k) % 2 != color {
                            continue;
                        }
                        let nb = v[g.idx((i + 1) % g.nx, j, k)]
                            + v[g.idx((i + g.nx - 1) % g.nx, j, k)]
                            + v[g.idx(i, (j + 1) % g.ny, k)]
                            + v[g.idx(i, (j + g.ny - 1) % g.ny, k)]
                            + v[g.idx(i, j, (k + 1) % g.nz)]
                            + v[g.idx(i, j, (k + g.nz - 1) % g.nz)];
                        v[g.idx(i, j, k)] = (nb + h2 * f[g.idx(i, j, k)]) / 6.0;
                    }
                }
            }
        }
    }
}

/// Full-weighting restriction: average the 2×2×2 children of each coarse
/// cell.
fn restrict(fine: &Grid3, coarse: &Grid3, r: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; coarse.len()];
    for k in 0..coarse.nz {
        for j in 0..coarse.ny {
            for i in 0..coarse.nx {
                let mut acc = 0.0;
                for dk in 0..2 {
                    for dj in 0..2 {
                        for di in 0..2 {
                            acc += r[fine.idx(
                                (2 * i + di) % fine.nx,
                                (2 * j + dj) % fine.ny,
                                (2 * k + dk) % fine.nz,
                            )];
                        }
                    }
                }
                out[coarse.idx(i, j, k)] = acc / 8.0;
            }
        }
    }
    out
}

/// Piecewise-constant prolongation: add each coarse value to its 8 children.
fn prolong_add(coarse: &Grid3, fine: &Grid3, e: &[f64], v: &mut [f64]) {
    for k in 0..fine.nz {
        for j in 0..fine.ny {
            for i in 0..fine.nx {
                let c = e[coarse.idx(
                    (i / 2).min(coarse.nx - 1),
                    (j / 2).min(coarse.ny - 1),
                    (k / 2).min(coarse.nz - 1),
                )];
                v[fine.idx(i, j, k)] += c;
            }
        }
    }
}

/// Dynamical-simulated-annealing (damped dynamics) solver: second-order
/// Richardson / heavy-ball iteration on the FD residual.
///
/// Returns (V, iterations used).
pub fn solve_dsa(grid: &Grid3, rho: &[f64], tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
    assert_eq!(rho.len(), grid.len());
    let mut f: Vec<f64> = rho.iter().map(|&r| FOUR_PI * r).collect();
    subtract_mean(&mut f);
    let mut v = vec![0.0; grid.len()];
    let mut u = vec![0.0; grid.len()];
    let mut lap = vec![0.0; grid.len()];
    // Stability: explicit step for ∇² needs τ ≤ h²/6; damping γ < 1.
    let tau = grid.h * grid.h / 6.5;
    let gamma = 0.92;
    let f_norm = f.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for it in 1..=max_iters {
        laplacian(grid, &v, &mut lap, Order::Second);
        let mut r_norm = 0.0;
        for idx in 0..grid.len() {
            let r = lap[idx] + f[idx];
            r_norm += r * r;
            u[idx] = gamma * u[idx] + tau * r;
            v[idx] += u[idx];
        }
        if r_norm.sqrt() / f_norm < tol {
            subtract_mean(&mut v);
            return (v, it);
        }
    }
    subtract_mean(&mut v);
    (v, max_iters)
}

/// Hartree energy `E_H = ½ ∫ ρ V_H dV`.
pub fn hartree_energy(grid: &Grid3, rho: &[f64], v: &[f64]) -> f64 {
    0.5 * rho.iter().zip(v).map(|(r, p)| r * p).sum::<f64>() * grid.dv()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A neutral cosine source with analytic solution:
    /// ρ = cos(k·x) → V = 4π cos(k·x)/k².
    fn cosine_source(grid: &Grid3) -> (Vec<f64>, Vec<f64>) {
        let (lx, _, _) = grid.lengths();
        let kx = 2.0 * std::f64::consts::PI / lx;
        let mut rho = vec![0.0; grid.len()];
        let mut v_exact = vec![0.0; grid.len()];
        for k in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, _, _) = grid.position(i, j, k);
                    rho[grid.idx(i, j, k)] = (kx * x).cos();
                    v_exact[grid.idx(i, j, k)] = FOUR_PI * (kx * x).cos() / (kx * kx);
                }
            }
        }
        (rho, v_exact)
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn fft_solver_analytic() {
        let grid = Grid3::cubic(16, 0.5);
        let (rho, v_exact) = cosine_source(&grid);
        let v = solve_fft(&grid, &rho);
        let scale = v_exact.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(
            max_err(&v, &v_exact) / scale < 1e-10,
            "spectral must be exact for a single mode"
        );
    }

    #[test]
    fn multigrid_reduces_residual() {
        let grid = Grid3::cubic(16, 0.5);
        let (rho, _) = cosine_source(&grid);
        let mg = Multigrid::new(grid);
        assert!(mg.depth() >= 2);
        let (v, cycles) = mg.solve(&rho, 1e-8, 40);
        assert!(
            cycles < 40,
            "multigrid should converge well before 40 cycles"
        );
        assert!(residual_rms(&grid, &v, &rho) < 1e-6);
    }

    #[test]
    fn multigrid_matches_fd_solution_of_analytic_problem() {
        let grid = Grid3::cubic(16, 0.4);
        let (rho, v_exact) = cosine_source(&grid);
        let mg = Multigrid::new(grid);
        let (v, _) = mg.solve(&rho, 1e-10, 60);
        // FD discretization error is O(h²) ≈ (k h)²/12 relative.
        let scale = v_exact.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max_err(&v, &v_exact) / scale < 0.05);
    }

    #[test]
    fn dsa_converges_to_same_answer_as_multigrid() {
        let grid = Grid3::cubic(8, 0.6);
        let (rho, _) = cosine_source(&grid);
        let mg = Multigrid::new(grid);
        let (v_mg, _) = mg.solve(&rho, 1e-10, 80);
        let (v_dsa, iters) = solve_dsa(&grid, &rho, 1e-9, 20_000);
        assert!(iters < 20_000, "DSA must converge");
        assert!(max_err(&v_mg, &v_dsa) < 1e-5);
    }

    #[test]
    fn solvers_handle_non_neutral_sources() {
        // A constant offset in rho must be neutralized, not blow up.
        let grid = Grid3::cubic(8, 0.5);
        let (mut rho, _) = cosine_source(&grid);
        for r in rho.iter_mut() {
            *r += 3.0;
        }
        let v = solve_fft(&grid, &rho);
        assert!(v.iter().all(|x| x.is_finite()));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean.abs() < 1e-10, "potential must be zero-mean");
    }

    #[test]
    fn hartree_energy_positive_for_localized_charge() {
        let grid = Grid3::cubic(16, 0.5);
        // Gaussian blob (plus neutralizing background, handled internally).
        let mut rho = vec![0.0; grid.len()];
        let (lx, ly, lz) = grid.lengths();
        for k in 0..grid.nz {
            for j in 0..grid.ny {
                for i in 0..grid.nx {
                    let (x, y, z) = grid.position(i, j, k);
                    let d2 =
                        (x - lx / 2.0).powi(2) + (y - ly / 2.0).powi(2) + (z - lz / 2.0).powi(2);
                    rho[grid.idx(i, j, k)] = (-d2 / 0.8).exp();
                }
            }
        }
        let v = solve_fft(&grid, &rho);
        let mut rho_p = rho.clone();
        subtract_mean(&mut rho_p);
        let e = hartree_energy(&grid, &rho_p, &v);
        assert!(
            e > 0.0,
            "self-energy of a localized charge is positive, got {e}"
        );
    }

    #[test]
    fn fft_and_multigrid_agree() {
        let grid = Grid3::cubic(16, 0.5);
        let (rho, _) = cosine_source(&grid);
        let v_fft = solve_fft(&grid, &rho);
        let mg = Multigrid::new(grid);
        let (v_mg, _) = mg.solve(&rho, 1e-10, 60);
        // They solve slightly different operators (spectral vs 7-point FD):
        // agreement to O(h²) relative.
        let scale = v_fft.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max_err(&v_fft, &v_mg) / scale < 0.05);
    }
}
