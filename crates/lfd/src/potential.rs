//! Local Kohn–Sham potential assembly: `v_loc = v_ion + v_H + v_xc`.
//!
//! The ionic part uses soft Gaussian pseudo-wells (the local channel of a
//! norm-conserving pseudopotential, regularized at the origin); Hartree
//! comes from the solvers in [`crate::hartree`]; exchange from
//! [`crate::xc`]. The *change* `Δv_loc` between MD steps is the quantity
//! the shadow-dynamics handshake ships from QXMD to LFD (paper Sec. A.4).

use crate::hartree;
use crate::xc;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;

/// An ion contributing to the local potential.
#[derive(Clone, Copy, Debug)]
pub struct AtomSite {
    pub pos: Vec3,
    /// Effective valence charge (well depth scale, hartree·bohr-ish units).
    pub z_eff: f64,
    /// Gaussian width (bohr).
    pub sigma: f64,
}

/// `v_ion(r) = Σ_I −Z_I · exp(−|r−R_I|²/2σ_I²)` with minimum-image wrap.
pub fn ionic_potential(grid: &Grid3, atoms: &[AtomSite]) -> Vec<f64> {
    let (lx, ly, lz) = grid.lengths();
    let lens = Vec3::new(lx, ly, lz);
    let mut v = vec![0.0; grid.len()];
    for k in 0..grid.nz {
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let (x, y, z) = grid.position(i, j, k);
                let r = Vec3::new(x, y, z);
                let mut acc = 0.0;
                for a in atoms {
                    let d = (r - a.pos).min_image(lens);
                    acc -= a.z_eff * (-d.norm_sqr() / (2.0 * a.sigma * a.sigma)).exp();
                }
                v[grid.idx(i, j, k)] = acc;
            }
        }
    }
    v
}

/// Which Hartree solver assembles the potential.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HartreeSolver {
    Fft,
    Multigrid,
    Dsa,
}

/// The assembled local potential and its parts (kept for diagnostics and
/// energy bookkeeping).
#[derive(Clone, Debug)]
pub struct LocalPotential {
    pub v_ion: Vec<f64>,
    pub v_h: Vec<f64>,
    pub v_xc: Vec<f64>,
    pub total: Vec<f64>,
}

impl LocalPotential {
    /// Assemble from a density and atom list.
    pub fn assemble(grid: &Grid3, rho: &[f64], atoms: &[AtomSite], solver: HartreeSolver) -> Self {
        let v_ion = ionic_potential(grid, atoms);
        let v_h = match solver {
            HartreeSolver::Fft => hartree::solve_fft(grid, rho),
            HartreeSolver::Multigrid => hartree::Multigrid::new(*grid).solve(rho, 1e-7, 30).0,
            HartreeSolver::Dsa => hartree::solve_dsa(grid, rho, 1e-7, 10_000).0,
        };
        let mut v_xc = vec![0.0; grid.len()];
        xc::vx_lda(rho, &mut v_xc);
        let total = v_ion
            .iter()
            .zip(&v_h)
            .zip(&v_xc)
            .map(|((a, b), c)| a + b + c)
            .collect();
        Self {
            v_ion,
            v_h,
            v_xc,
            total,
        }
    }

    /// Pointwise difference `Δv = other.total − self.total` — the shadow
    /// handshake payload from QXMD to LFD.
    pub fn delta(&self, other: &LocalPotential) -> Vec<f64> {
        self.total
            .iter()
            .zip(&other.total)
            .map(|(a, b)| b - a)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid3 {
        Grid3::new(12, 12, 12, 0.5)
    }

    #[test]
    fn ionic_well_is_deepest_at_the_atom() {
        let g = grid();
        let atom = AtomSite {
            pos: Vec3::new(3.0, 3.0, 3.0),
            z_eff: 4.0,
            sigma: 0.8,
        };
        let v = ionic_potential(&g, &[atom]);
        let at_atom = v[g.idx(6, 6, 6)]; // 3.0/0.5 = index 6
        let far = v[g.idx(0, 0, 0)];
        assert!(
            at_atom < -3.9,
            "well depth ≈ −Z at the center, got {at_atom}"
        );
        assert!(far > at_atom, "potential must decay away from the ion");
    }

    #[test]
    fn ionic_potential_is_periodic() {
        let g = grid();
        // Atom at the box corner: the well must wrap smoothly.
        let atom = AtomSite {
            pos: Vec3::ZERO,
            z_eff: 2.0,
            sigma: 0.6,
        };
        let v = ionic_potential(&g, &[atom]);
        let corner = v[g.idx(0, 0, 0)];
        // Neighbours on both periodic sides see the same value by symmetry.
        assert!((v[g.idx(1, 0, 0)] - v[g.idx(11, 0, 0)]).abs() < 1e-12);
        assert!(corner < v[g.idx(1, 0, 0)]);
    }

    #[test]
    fn superposition_of_two_atoms() {
        let g = grid();
        let a1 = AtomSite {
            pos: Vec3::new(1.5, 1.5, 1.5),
            z_eff: 1.0,
            sigma: 0.5,
        };
        let a2 = AtomSite {
            pos: Vec3::new(4.0, 4.0, 4.0),
            z_eff: 1.0,
            sigma: 0.5,
        };
        let v1 = ionic_potential(&g, &[a1]);
        let v2 = ionic_potential(&g, &[a2]);
        let v12 = ionic_potential(&g, &[a1, a2]);
        for i in 0..g.len() {
            assert!((v12[i] - v1[i] - v2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn assembled_potential_has_all_parts() {
        let g = grid();
        let atoms = [AtomSite {
            pos: Vec3::new(3.0, 3.0, 3.0),
            z_eff: 2.0,
            sigma: 0.7,
        }];
        // A blob of density near the atom.
        let mut rho = vec![0.0; g.len()];
        for k in 0..g.nz {
            for j in 0..g.ny {
                for i in 0..g.nx {
                    let (x, y, z) = g.position(i, j, k);
                    let d2 = (Vec3::new(x, y, z) - atoms[0].pos).norm_sqr();
                    rho[g.idx(i, j, k)] = 2.0 * (-d2).exp();
                }
            }
        }
        let pot = LocalPotential::assemble(&g, &rho, &atoms, HartreeSolver::Fft);
        assert!(pot.v_ion.iter().all(|&x| x <= 0.0));
        assert!(pot.v_xc.iter().all(|&x| x <= 0.0));
        // Hartree of a localized positive blob is positive at its center.
        assert!(pot.v_h[g.idx(6, 6, 6)] > 0.0);
        for i in 0..g.len() {
            let sum = pot.v_ion[i] + pot.v_h[i] + pot.v_xc[i];
            assert!((pot.total[i] - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn delta_v_is_the_difference() {
        let g = grid();
        let atoms1 = [AtomSite {
            pos: Vec3::new(3.0, 3.0, 3.0),
            z_eff: 2.0,
            sigma: 0.7,
        }];
        let atoms2 = [AtomSite {
            pos: Vec3::new(3.2, 3.0, 3.0),
            z_eff: 2.0,
            sigma: 0.7,
        }];
        let rho = vec![0.01; g.len()];
        let p1 = LocalPotential::assemble(&g, &rho, &atoms1, HartreeSolver::Fft);
        let p2 = LocalPotential::assemble(&g, &rho, &atoms2, HartreeSolver::Fft);
        let dv = p1.delta(&p2);
        // Moving the atom changes the potential somewhere…
        assert!(dv.iter().any(|&x| x.abs() > 1e-6));
        // …and the delta reconstructs p2 from p1.
        for (i, &d) in dv.iter().enumerate().take(g.len()) {
            assert!((p1.total[i] + d - p2.total[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solvers_agree_on_assembled_hartree() {
        let g = Grid3::new(8, 8, 8, 0.6);
        let atoms = [AtomSite {
            pos: Vec3::new(2.0, 2.0, 2.0),
            z_eff: 1.0,
            sigma: 0.6,
        }];
        let mut rho = vec![0.0; g.len()];
        for k in 0..g.nz {
            for j in 0..g.ny {
                for i in 0..g.nx {
                    let (x, y, z) = g.position(i, j, k);
                    let d2 = (Vec3::new(x, y, z) - atoms[0].pos).norm_sqr();
                    rho[g.idx(i, j, k)] = (-d2 / 0.5).exp();
                }
            }
        }
        let p_mg = LocalPotential::assemble(&g, &rho, &atoms, HartreeSolver::Multigrid);
        let p_dsa = LocalPotential::assemble(&g, &rho, &atoms, HartreeSolver::Dsa);
        let worst = p_mg
            .v_h
            .iter()
            .zip(&p_dsa.v_h)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-4, "MG and DSA disagree by {worst}");
    }
}
