//! Per-kernel FLOP / wall-time accounting — the measurement mechanism of
//! paper Sec. VI.B ("timers and FLOP count"), feeding the Table IV/V
//! harnesses.

use mlmd_numerics::flops::FlopReport;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Named-kernel accumulator.
#[derive(Debug, Default)]
pub struct KernelMetrics {
    entries: BTreeMap<&'static str, (u64, Duration)>,
}

impl KernelMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a kernel invocation, crediting `flops` operations to `name`.
    pub fn record<R>(&mut self, name: &'static str, flops: u64, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        let e = self.entries.entry(name).or_insert((0, Duration::ZERO));
        e.0 += flops;
        e.1 += elapsed;
        out
    }

    /// Credit pre-measured work.
    pub fn add(&mut self, name: &'static str, flops: u64, elapsed: Duration) {
        let e = self.entries.entry(name).or_insert((0, Duration::ZERO));
        e.0 += flops;
        e.1 += elapsed;
    }

    /// Per-kernel reports, sorted by name.
    pub fn reports(&self) -> Vec<(&'static str, FlopReport)> {
        self.entries
            .iter()
            .map(|(name, (flops, dur))| (*name, FlopReport::new(*flops, *dur)))
            .collect()
    }

    /// Aggregate over all kernels.
    pub fn total(&self) -> FlopReport {
        let flops = self.entries.values().map(|e| e.0).sum();
        let dur = self.entries.values().map(|e| e.1).sum();
        FlopReport::new(flops, dur)
    }

    pub fn get(&self, name: &str) -> Option<FlopReport> {
        self.entries
            .iter()
            .find(|(n, _)| **n == name)
            .map(|(_, (f, d))| FlopReport::new(*f, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = KernelMetrics::new();
        let x = m.record("kin_prop", 1000, || 42);
        assert_eq!(x, 42);
        m.record("kin_prop", 500, || ());
        m.record("nlp_prop", 8000, || ());
        let kin = m.get("kin_prop").unwrap();
        assert_eq!(kin.flops, 1500);
        assert_eq!(m.total().flops, 9500);
    }

    #[test]
    fn reports_sorted_by_name() {
        let mut m = KernelMetrics::new();
        m.add("z_last", 1, Duration::from_millis(1));
        m.add("a_first", 2, Duration::from_millis(1));
        let names: Vec<_> = m.reports().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a_first", "z_last"]);
    }

    #[test]
    fn missing_kernel_is_none() {
        let m = KernelMetrics::new();
        assert!(m.get("nope").is_none());
    }
}
