//! The Ehrenfest inner loop — `N_QD` quantum-dynamics steps per MD step
//! (paper Eq. (2), Sec. V.A.4).
//!
//! Between shadow-handshake points the local potential from QXMD is
//! frozen; within the loop the *electronic* part of the potential (Hartree
//! of the evolving density) can be updated self-consistently with the
//! time-reversible predictor–corrector of ref \[43\]: propagate with `v(t)`
//! to predict `ψ̃`, rebuild the Hartree term from `ρ̃`, then re-propagate
//! from `ψ(t)` with the averaged potential — one corrector pass keeps the
//! scheme second-order and time-reversible.

use mlmd_lfd::density;
use mlmd_lfd::hartree::solve_fft;
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::propagator::QdStep;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::source::Drive;
use mlmd_numerics::vec3::Vec3;

/// Settings for the inner loop.
#[derive(Clone, Copy, Debug)]
pub struct EhrenfestConfig {
    /// QD time step Δt_QD (a.u., ~1 attosecond ≈ 0.04 a.u.).
    pub dt_qd: f64,
    /// Steps per MD step (paper: ~100–1,000).
    pub n_qd: usize,
    /// Update the Hartree term self-consistently every step.
    pub self_consistent: bool,
}

impl Default for EhrenfestConfig {
    fn default() -> Self {
        Self {
            dt_qd: 0.05,
            n_qd: 100,
            self_consistent: false,
        }
    }
}

/// Result of one inner loop.
#[derive(Clone, Debug)]
pub struct EhrenfestResult {
    /// Current J(t) sampled at every QD step (x-component).
    pub current_trace: Vec<f64>,
    /// Absorbed energy estimate `−∫J·E dt` (a.u.).
    pub absorbed_energy: f64,
    /// Final vector potential.
    pub a_final: Vec3,
}

/// Run `n_qd` QD steps under a time-dependent uniform field.
///
/// `frozen_v` is the QXMD-provided local potential (ions + xc + Hartree at
/// the MD step boundary); `field(t)` returns the laser E(t) at the domain
/// (the vector potential is accumulated internally, velocity gauge).
#[allow(clippy::too_many_arguments)] // physics driver: each argument is a distinct field of the problem
pub fn run_inner_loop(
    qd: &QdStep,
    wf: &mut WaveFunctions,
    occ: &Occupations,
    frozen_v: &[f64],
    mut a: Vec3,
    field: impl Fn(f64) -> Vec3,
    t0: f64,
    cfg: EhrenfestConfig,
) -> EhrenfestResult {
    let grid = wf.grid;
    let mut current_trace = Vec::with_capacity(cfg.n_qd);
    let mut absorbed = 0.0;
    let mut v_eff = frozen_v.to_vec();
    for step in 0..cfg.n_qd {
        let t = t0 + step as f64 * cfg.dt_qd;
        let e_field = field(t);
        // Velocity gauge: A(t+dt) = A(t) − E(t)·dt.
        a -= e_field * cfg.dt_qd;
        if cfg.self_consistent {
            // Predictor: propagate a copy with the current potential.
            let mut predictor = wf.clone();
            qd.step(&mut predictor, &v_eff, a, cfg.dt_qd);
            // Corrector potential: average Hartree of ρ(t) and ρ̃(t+dt).
            let rho_now = density::density(wf, occ);
            let rho_pred = density::density(&predictor, occ);
            let avg: Vec<f64> = rho_now
                .iter()
                .zip(&rho_pred)
                .map(|(a, b)| 0.5 * (a + b))
                .collect();
            let vh = solve_fft(&grid, &avg);
            for (v, (f, h)) in v_eff.iter_mut().zip(frozen_v.iter().zip(&vh)) {
                *v = f + h;
            }
        }
        qd.step(wf, &v_eff, a, cfg.dt_qd);
        let j = mlmd_lfd::current::macroscopic_current(wf, occ, a);
        let jt = j.total();
        current_trace.push(jt.x);
        // Joule heating: dE/dt = −J·E × volume.
        let (lx, ly, lz) = grid.lengths();
        absorbed -= jt.dot(e_field) * cfg.dt_qd * (lx * ly * lz);
    }
    EhrenfestResult {
        current_trace,
        absorbed_energy: absorbed,
        a_final: a,
    }
}

/// Convenience: a linearly-polarized drive (any [`Drive`] shape — a
/// bare Gaussian converts in place) as the field closure.
pub fn pulse_field(drive: impl Into<Drive>, polarization: Vec3) -> impl Fn(f64) -> Vec3 {
    let drive = drive.into();
    move |t| polarization * drive.field(t)
}

/// Band-sharded half of the inner loop: propagate only the orbital
/// sub-panel `sub` (the columns `col0..col0 + sub.norb` of the full panel)
/// through all `n_qd` QD steps, recording each owned orbital's raw
/// current term at every step.
///
/// With a frozen potential the split-operator step is exactly
/// column-local, so propagating a sub-panel produces the same orbitals
/// bit-for-bit as propagating them inside the full panel — this is what
/// lets the distributed MESH driver shard the loop by
/// [`mlmd_parallel::hier::Hierarchy::band_range`] and recombine with one
/// `allgather_vec` per MD step. The self-consistent Hartree update
/// couples the orbitals every QD step and is therefore not shardable this
/// way (the distributed driver falls back to redundant full-panel
/// propagation for it).
///
/// The returned terms are laid out owned-column-major
/// (`[local_col * n_qd + step]`), so concatenating the blocks of
/// consecutive ranks yields the orbital-major layout
/// [`fold_inner_loop`] consumes.
#[allow(clippy::too_many_arguments)] // physics driver: mirrors run_inner_loop's signature + the column range
pub fn propagate_columns(
    qd: &QdStep,
    sub: &mut WaveFunctions,
    occ: &Occupations,
    col0: usize,
    frozen_v: &[f64],
    mut a: Vec3,
    field: impl Fn(f64) -> Vec3,
    t0: f64,
    cfg: EhrenfestConfig,
) -> Vec<mlmd_lfd::current::OrbitalCurrentTerm> {
    assert!(
        !cfg.self_consistent,
        "column sharding requires a frozen Hartree term"
    );
    let ncols = sub.norb;
    let mut terms = vec![mlmd_lfd::current::OrbitalCurrentTerm::default(); ncols * cfg.n_qd];
    for step in 0..cfg.n_qd {
        let t = t0 + step as f64 * cfg.dt_qd;
        let e_field = field(t);
        a -= e_field * cfg.dt_qd;
        if ncols > 0 {
            qd.step(sub, frozen_v, a, cfg.dt_qd);
        }
        for lc in 0..ncols {
            if occ.f(col0 + lc) == 0.0 {
                continue;
            }
            terms[lc * cfg.n_qd + step] =
                mlmd_lfd::current::orbital_current_term(&sub.grid, sub.psi.col(lc));
        }
    }
    terms
}

/// Recombining half of the sharded inner loop: replay the (purely
/// field-driven, wave-function-independent) vector-potential schedule and
/// fold the gathered per-orbital current terms into the serial
/// [`EhrenfestResult`] — trace, absorbed energy, and final `A`.
///
/// `terms` must be orbital-major (`[orbital * n_qd + step]`, all `norb`
/// orbitals). Every float operation matches [`run_inner_loop`]'s
/// non-self-consistent path exactly, so the fold is bit-identical to the
/// monolithic loop.
#[allow(clippy::too_many_arguments)] // physics driver: mirrors run_inner_loop's signature + the term table
pub fn fold_inner_loop(
    terms: &[mlmd_lfd::current::OrbitalCurrentTerm],
    norb: usize,
    occ: &Occupations,
    grid: &mlmd_numerics::grid::Grid3,
    mut a: Vec3,
    field: impl Fn(f64) -> Vec3,
    t0: f64,
    cfg: EhrenfestConfig,
) -> EhrenfestResult {
    assert_eq!(terms.len(), norb * cfg.n_qd, "need every orbital's trace");
    let mut current_trace = Vec::with_capacity(cfg.n_qd);
    let mut absorbed = 0.0;
    let mut step_terms = vec![mlmd_lfd::current::OrbitalCurrentTerm::default(); norb];
    for step in 0..cfg.n_qd {
        let t = t0 + step as f64 * cfg.dt_qd;
        let e_field = field(t);
        a -= e_field * cfg.dt_qd;
        for (s, slot) in step_terms.iter_mut().enumerate() {
            *slot = terms[s * cfg.n_qd + step];
        }
        let j = mlmd_lfd::current::fold_current_terms(&step_terms, occ, a, grid);
        let jt = j.total();
        current_trace.push(jt.x);
        let (lx, ly, lz) = grid.lengths();
        absorbed -= jt.dot(e_field) * cfg.dt_qd * (lx * ly * lz);
    }
    EhrenfestResult {
        current_trace,
        absorbed_energy: absorbed,
        a_final: a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_maxwell::source::GaussianPulse;
    use mlmd_numerics::grid::Grid3;

    /// Seven plane-wave modes = Γ plus all six ±1 modes: a k-symmetric
    /// occupation set, so linear-in-A terms cancel and the net equilibrium
    /// current vanishes.
    fn setup() -> (QdStep, WaveFunctions, Occupations, Vec<f64>) {
        let grid = Grid3::new(10, 10, 10, 0.5);
        let qd = QdStep::new(grid);
        let wf = WaveFunctions::plane_waves(grid, 7);
        let occ = Occupations::uniform(7, 1.0);
        let vloc = vec![0.0; grid.len()];
        (qd, wf, occ, vloc)
    }

    #[test]
    fn no_field_no_current_no_absorption() {
        let (qd, mut wf, occ, vloc) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 20,
            self_consistent: false,
        };
        let res = run_inner_loop(
            &qd,
            &mut wf,
            &occ,
            &vloc,
            Vec3::ZERO,
            |_| Vec3::ZERO,
            0.0,
            cfg,
        );
        assert!(res.absorbed_energy.abs() < 1e-12);
        assert!(res.a_final.norm() < 1e-15);
        // k-symmetric occupation: zero net current, up to Trotter noise.
        let worst = res
            .current_trace
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(worst < 1e-8, "field-free current must vanish, got {worst}");
    }

    #[test]
    fn field_drives_current_and_absorbs_energy() {
        let (qd, mut wf, occ, vloc) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 120,
            self_consistent: false,
        };
        let pulse = GaussianPulse::new(0.05, 0.4, 2.0, 1.0);
        let res = run_inner_loop(
            &qd,
            &mut wf,
            &occ,
            &vloc,
            Vec3::ZERO,
            pulse_field(pulse, Vec3::EX),
            0.0,
            cfg,
        );
        let peak_j = res
            .current_trace
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(peak_j > 1e-6, "pulse must drive a current, peak {peak_j}");
        assert!(res.a_final.x.abs() > 1e-6, "A must accumulate");
        // Free carriers in a band: the pulse does net positive work.
        assert!(
            res.absorbed_energy > 0.0,
            "absorbed energy {:.3e}",
            res.absorbed_energy
        );
    }

    #[test]
    fn absorption_scales_with_intensity() {
        let (qd, wf, occ, vloc) = setup();
        let run = |e0: f64| -> f64 {
            let mut w = wf.clone();
            // Long enough for the pulse (t0=2, σ=1) to fully pass.
            let cfg = EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 200,
                self_consistent: false,
            };
            let pulse = GaussianPulse::new(e0, 0.4, 2.0, 1.0);
            run_inner_loop(
                &qd,
                &mut w,
                &occ,
                &vloc,
                Vec3::ZERO,
                pulse_field(pulse, Vec3::EX),
                0.0,
                cfg,
            )
            .absorbed_energy
        };
        let a1 = run(0.02);
        let a2 = run(0.04);
        // Linear response with a k-symmetric occupation: absorption ∝ E².
        let ratio = a2 / a1;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "expected ~4x absorption at 2x field, got {ratio}"
        );
    }

    #[test]
    fn unitarity_through_inner_loop() {
        let (qd, mut wf, occ, vloc) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 100,
            self_consistent: false,
        };
        let pulse = GaussianPulse::new(0.05, 0.3, 2.0, 1.0);
        run_inner_loop(
            &qd,
            &mut wf,
            &occ,
            &vloc,
            Vec3::ZERO,
            pulse_field(pulse, Vec3::EX),
            0.0,
            cfg,
        );
        assert!(wf.norm_error() < 1e-9, "norm error {}", wf.norm_error());
    }

    #[test]
    fn sharded_inner_loop_matches_monolithic_bitwise() {
        // propagate_columns + fold_inner_loop over any column partition
        // must reproduce run_inner_loop exactly: trace, absorbed energy,
        // final vector potential, and the propagated panel itself.
        let (qd, wf, occ, vloc) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 40,
            self_consistent: false,
        };
        let pulse = GaussianPulse::new(0.04, 0.4, 1.0, 0.6);
        let field = pulse_field(pulse, Vec3::EX);
        let mut mono = wf.clone();
        let want = run_inner_loop(&qd, &mut mono, &occ, &vloc, Vec3::ZERO, &field, 0.0, cfg);
        // "Ranks" own columns 0..3 and 3..7.
        let ngrid = wf.ngrid();
        let mut all_terms = Vec::new();
        let mut panel = Vec::new();
        for cols in [0usize..3, 3..7] {
            let mut sub = WaveFunctions::zeros(wf.grid, cols.len());
            sub.psi
                .as_mut_slice()
                .copy_from_slice(&wf.psi.as_slice()[cols.start * ngrid..cols.end * ngrid]);
            let terms = propagate_columns(
                &qd,
                &mut sub,
                &occ,
                cols.start,
                &vloc,
                Vec3::ZERO,
                &field,
                0.0,
                cfg,
            );
            all_terms.extend(terms);
            panel.extend_from_slice(sub.psi.as_slice());
        }
        let got = fold_inner_loop(&all_terms, 7, &occ, &wf.grid, Vec3::ZERO, &field, 0.0, cfg);
        assert_eq!(want.current_trace.len(), got.current_trace.len());
        for (a, b) in want.current_trace.iter().zip(&got.current_trace) {
            assert_eq!(a.to_bits(), b.to_bits(), "current trace must be exact");
        }
        assert_eq!(
            want.absorbed_energy.to_bits(),
            got.absorbed_energy.to_bits()
        );
        assert_eq!(want.a_final.x.to_bits(), got.a_final.x.to_bits());
        for (a, b) in mono.psi.as_slice().iter().zip(&panel) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "panel must be exact");
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn empty_column_range_contributes_nothing() {
        // Surplus ranks (more ranks than orbitals) own empty band ranges;
        // their propagate_columns call must be a no-op with no terms.
        let (qd, wf, occ, vloc) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 5,
            self_consistent: false,
        };
        let mut sub = WaveFunctions::zeros(wf.grid, 0);
        let terms = propagate_columns(
            &qd,
            &mut sub,
            &occ,
            7,
            &vloc,
            Vec3::ZERO,
            |_| Vec3::ZERO,
            0.0,
            cfg,
        );
        assert!(terms.is_empty());
    }

    #[test]
    fn self_consistent_variant_runs_and_stays_unitary() {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let qd = QdStep::new(grid);
        let mut wf = WaveFunctions::random(grid, 2, 3);
        let occ = Occupations::uniform(2, 2.0);
        let vloc = vec![0.0; grid.len()];
        let cfg = EhrenfestConfig {
            dt_qd: 0.04,
            n_qd: 25,
            self_consistent: true,
        };
        let res = run_inner_loop(
            &qd,
            &mut wf,
            &occ,
            &vloc,
            Vec3::ZERO,
            |_| Vec3::new(0.01, 0.0, 0.0),
            0.0,
            cfg,
        );
        assert!(wf.norm_error() < 1e-9);
        assert_eq!(res.current_trace.len(), 25);
    }
}
