//! Rank-parallel global–local SCF — the two-tier DC-MESH hierarchy of
//! paper Sec. V.A.1, run for real on simulated-MPI ranks.
//!
//! The paper's headline scale (15.36M electrons) comes from running every
//! DC domain on its own MPI rank-group with hybrid band-space
//! decomposition. [`DistributedDcScf`] is that driver: it runs inside
//! [`World::run`], uses [`Hierarchy::build`] to give each domain its own
//! communicator, keeps each domain's orbital panel resident on its
//! rank-group, and replaces the serial recombine/restrict of
//! [`crate::scf::DcScf`] with real collectives:
//!
//! * **recombine** — per-domain core densities are accumulated into the
//!   global ρ with [`Comm::allreduce_sum_vec`] over the world
//!   communicator (each domain root contributes its core block, everyone
//!   else zeros);
//! * **global solve** — the multigrid Hartree solve (plus v_ion and LDA
//!   xc) runs redundantly on each domain root, which then restricts the
//!   global potential to its domain's buffered grid and broadcasts it
//!   through the domain communicator;
//! * **local solve** — within a domain, each rank descends the orbital
//!   block given by [`Hierarchy::band_range`] and assembles its columns
//!   of the subspace Hamiltonian; the coupling steps (Gram–Schmidt,
//!   Rayleigh–Ritz diagonalize + rotate) are synchronized by
//!   [`Comm::allgather_vec`] of the panel and run redundantly.
//!
//! # Bit-identity to the serial oracle
//!
//! The serial [`crate::scf::DcScf`] stays as the oracle, and the integration suite
//! (`tests/dc_dist.rs`) pins this driver's band-energy trajectory to it
//! **bit-for-bit** at 1, 2, and 4 ranks per domain. No tolerance is
//! needed because no float sum is ever reordered:
//!
//! * the steepest-descent update and each subspace-Hamiltonian entry read
//!   and write only their own column, so sharding columns over ranks
//!   computes exactly the serial values ([`scf::descend_columns`],
//!   [`scf::subspace_h_columns`]);
//! * the orbital-coupling steps (Gram–Schmidt, hermitize + eigh + rotate,
//!   density mixing, multigrid solve) run redundantly on identical
//!   replicated inputs;
//! * domain cores are mutually exclusive, so each global grid point
//!   receives exactly one non-zero contribution in the density allreduce,
//!   and `x + 0.0 == x` bit-exactly for the non-negative densities
//!   involved; likewise the band-energy allreduce left-folds one non-zero
//!   term per domain in world-rank order — the same order as the serial
//!   domain loop.

use crate::checkpoint::WarmStart;
use crate::domain::{Domain, DomainDecomposition};
use crate::scf::{self, ScfIteration};
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::potential::AtomSite;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_parallel::comm::{Comm, World};
use mlmd_parallel::hier::Hierarchy;

/// The rank-local state of the distributed global–local SCF driver.
///
/// Constructed on every rank of a [`World::run`] region; world size must
/// be a multiple of the domain count (the [`Hierarchy::build`]
/// contract). Each rank holds its domain's full orbital panel (replicated
/// within the domain group, never leaving it) plus the replicated global
/// density used for mixing.
pub struct DistributedDcScf {
    hier: Hierarchy,
    decomposition: DomainDecomposition,
    /// This rank's domain (a clone of `decomposition.domains[domain_index]`).
    dom: Domain,
    /// This domain's orbital panel, replicated across the domain group.
    wf: WaveFunctions,
    occ: Occupations,
    atoms: Vec<AtomSite>,
    /// Density mixing parameter (must match the serial driver's).
    pub mixing: f64,
    /// Replicated mixed global density.
    rho_global: Vec<f64>,
    /// Last restricted potential on this domain's buffered grid.
    v_local: Vec<f64>,
}

impl DistributedDcScf {
    /// Initialize on one rank of an SPMD region, mirroring
    /// [`crate::scf::DcScf::new`]: domain `d` gets a random orthonormal panel seeded
    /// with `seed + d` and aufbau occupations, so a world of any
    /// compatible size starts from exactly the serial initial state.
    /// Equivalent to [`Self::with_warm_start`] with [`WarmStart::Fresh`].
    pub fn new(
        world: Comm,
        decomposition: DomainDecomposition,
        norb: usize,
        electrons_per_domain: f64,
        atoms: Vec<AtomSite>,
        seed: u64,
    ) -> Self {
        Self::with_warm_start(
            world,
            decomposition,
            norb,
            electrons_per_domain,
            atoms,
            seed,
            &WarmStart::Fresh,
        )
    }

    /// Initialize with this domain's initial panel resolved through a
    /// warm-start source — **once, on the domain root** — and broadcast
    /// over the domain communicator, instead of every rank constructing
    /// its own replica. Broadcasting a value the serial kernel produced
    /// preserves bit-identity trivially, and it means a cache hit or a
    /// checkpoint file is read by one rank per domain, not all of them.
    #[allow(clippy::too_many_arguments)] // mirrors the serial constructor + source
    pub fn with_warm_start(
        world: Comm,
        decomposition: DomainDecomposition,
        norb: usize,
        electrons_per_domain: f64,
        atoms: Vec<AtomSite>,
        seed: u64,
        warm_start: &WarmStart,
    ) -> Self {
        let hier = Hierarchy::build(world, decomposition.len());
        let dom = decomposition.domains[hier.domain_index].clone();
        let wf = if hier.domain.size() == 1 {
            scf::resolve_initial_panel(
                &dom.grid,
                norb,
                electrons_per_domain,
                seed,
                hier.domain_index,
                warm_start,
            )
        } else {
            let panel = if hier.domain.rank() == 0 {
                Some(scf::resolve_initial_panel(
                    &dom.grid,
                    norb,
                    electrons_per_domain,
                    seed,
                    hier.domain_index,
                    warm_start,
                ))
            } else {
                None
            };
            hier.domain.bcast(0, panel)
        };
        let occ = Occupations::aufbau(norb, electrons_per_domain);
        let global_len = decomposition.spec.global.len();
        let v_local = vec![0.0; dom.grid.len()];
        Self {
            hier,
            decomposition,
            dom,
            wf,
            occ,
            atoms,
            mixing: 0.4,
            rho_global: vec![0.0; global_len],
            v_local,
        }
    }

    /// The communicator hierarchy this rank participates in.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// This rank's domain.
    pub fn domain(&self) -> &Domain {
        &self.dom
    }

    /// This domain's orbital panel (replicated within the domain group).
    pub fn wave_functions(&self) -> &WaveFunctions {
        &self.wf
    }

    /// Recombine: assemble the global density from all domain cores.
    /// Collective over world; every rank returns the full global ρ.
    pub fn global_density(&self) -> Vec<f64> {
        let g = self.decomposition.spec.global;
        let mut contrib = vec![0.0; g.len()];
        if self.hier.domain.rank() == 0 {
            let local = scf::domain_core_density(&self.dom, &self.wf, &self.occ);
            self.dom.accumulate_core(&g, &local, &mut contrib);
        }
        // Cores are mutually exclusive, so each grid point gets exactly one
        // non-zero term: the left-fold over world ranks is bit-identical to
        // the serial per-domain accumulation.
        self.hier.world.allreduce_sum_vec(contrib)
    }

    /// Synchronize the domain's panel after each rank updated its own
    /// orbital block: all-gather the band-range column blocks (contiguous
    /// and in domain-rank order, so the concatenation *is* the column-major
    /// panel) and overwrite the replica.
    fn sync_panel(&mut self) {
        if self.hier.domain.size() == 1 {
            return;
        }
        let ngrid = self.wf.ngrid();
        let cols = self.hier.band_range(self.wf.norb);
        let mine: Vec<c64> = self.wf.psi.as_slice()[cols.start * ngrid..cols.end * ngrid].to_vec();
        let full = self.hier.domain.allgather_vec(mine);
        debug_assert_eq!(full.len(), ngrid * self.wf.norb);
        self.wf.psi.as_mut_slice().copy_from_slice(&full);
    }

    /// One distributed global–local SCF iteration; returns the total band
    /// energy (identical on every rank). Collective over world.
    pub fn iterate(&mut self) -> f64 {
        let g = self.decomposition.spec.global;
        // 1. Recombine and mix (mixing state is replicated, so every rank
        //    performs the identical update).
        let rho_new = self.global_density();
        scf::mix_density(&mut self.rho_global, rho_new, self.mixing);
        // 2–3. Global solve redundantly on each domain root; restrict to
        //    the domain's buffered grid and broadcast through the domain
        //    communicator.
        let v_local = if self.hier.domain.rank() == 0 {
            let v_global = scf::assemble_global_potential(&g, &self.rho_global, &self.atoms);
            Some(self.dom.restrict(&g, &v_global))
        } else {
            None
        };
        let v_local = self.hier.domain.bcast(0, v_local);
        // 4. Local solve, band tier: each rank descends its orbital block;
        //    Gram–Schmidt runs redundantly on the synchronized panel.
        let cols = self.hier.band_range(self.wf.norb);
        for _ in 0..scf::DESCENT_STEPS {
            scf::descend_columns(
                &self.dom.grid,
                &v_local,
                &mut self.wf,
                scf::DESCENT_ETA,
                cols.clone(),
            );
            self.sync_panel();
            scf::orthonormalize_panel(&self.dom.grid, &mut self.wf);
        }
        // Rayleigh–Ritz: each rank assembles its columns of the subspace
        // Hamiltonian; diagonalization + rotation run redundantly.
        let h_cols = scf::subspace_h_columns(&self.dom.grid, &v_local, &self.wf, cols);
        let h_flat = self.hier.domain.allgather_vec(h_cols);
        let eps = scf::finish_subspace_rotate(&mut self.wf, h_flat);
        let e_dom: f64 = eps.iter().enumerate().map(|(s, e)| self.occ.f(s) * e).sum();
        self.v_local = v_local;
        // 5. Total band energy: one non-zero term per domain, left-folded
        //    in world-rank order — the serial domain-loop order.
        self.hier
            .world
            .allreduce_sum(if self.hier.domain.rank() == 0 {
                e_dom
            } else {
                0.0
            })
    }

    /// Run to convergence with the same outer loop (and iteration-0 delta
    /// convention) as [`crate::scf::DcScf::converge`]; the returned history is
    /// identical on every rank, so all ranks stop together.
    pub fn converge(&mut self, tol: f64, max_iter: usize) -> Vec<ScfIteration> {
        scf::run_scf_loop(|| self.iterate(), tol, max_iter)
    }

    /// Worst eigen-residual `|Hψ − εψ|` over all domains, against the last
    /// restricted potential. Collective over world.
    pub fn max_residual(&self) -> f64 {
        let mine = if self.hier.domain.rank() == 0 {
            let eps = scf::band_energies(&self.dom.grid, &self.v_local, &self.wf);
            let mut worst = 0.0f64;
            for (s, &eps_s) in eps.iter().enumerate().take(self.wf.norb) {
                let col = self.wf.psi.col(s);
                let hpsi = scf::apply_h(&self.dom.grid, &self.v_local, col);
                let mut r2 = 0.0;
                for (h, c) in hpsi.iter().zip(col) {
                    r2 += (*h - c.scale(eps_s)).norm_sqr();
                }
                worst = worst.max((r2 * self.dom.grid.dv()).sqrt());
            }
            worst
        } else {
            0.0
        };
        self.hier.world.allreduce(mine, f64::max)
    }
}

/// Convenience oracle harness: run the distributed driver on
/// `ranks_per_domain × n_domains` ranks and return rank 0's history —
/// the exact shape the integration suite and benches compare against a
/// serial [`crate::scf::DcScf::converge`] run.
#[allow(clippy::too_many_arguments)] // mirrors DcScf::new + converge in one call
pub fn run_distributed(
    decomposition: &DomainDecomposition,
    norb: usize,
    electrons_per_domain: f64,
    atoms: &[AtomSite],
    seed: u64,
    ranks_per_domain: usize,
    tol: f64,
    max_iter: usize,
) -> Vec<ScfIteration> {
    let n_ranks = decomposition.len() * ranks_per_domain;
    let mut histories = World::run(n_ranks, |world| {
        let mut drv = DistributedDcScf::new(
            world,
            decomposition.clone(),
            norb,
            electrons_per_domain,
            atoms.to_vec(),
            seed,
        );
        drv.converge(tol, max_iter)
    });
    histories.swap_remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{small_two_domain, SMALL_ELECTRONS, SMALL_NORB, SMALL_SEED};
    use crate::scf::DcScf;

    // The full oracle comparison (1/2/4 ranks per domain, per-rank history
    // agreement, electron conservation) lives in `tests/dc_dist.rs`; these
    // crate-local tests keep a fast standalone bit-identity check and the
    // residual diagnostic.

    #[test]
    fn two_ranks_per_domain_match_serial_bitwise() {
        let (dd, atoms) = small_two_domain();
        let mut serial = DcScf::new(
            dd.clone(),
            SMALL_NORB,
            SMALL_ELECTRONS,
            atoms.clone(),
            SMALL_SEED,
        );
        let want = serial.converge(1e-5, 4);
        let got = run_distributed(
            &dd,
            SMALL_NORB,
            SMALL_ELECTRONS,
            &atoms,
            SMALL_SEED,
            2,
            1e-5,
            4,
        );
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.band_energy.to_bits(), g.band_energy.to_bits());
            assert_eq!(w.delta.to_bits(), g.delta.to_bits());
        }
    }

    #[test]
    fn residual_agrees_across_ranks() {
        let (dd, atoms) = small_two_domain();
        let res = World::run(4, |world| {
            let mut drv = DistributedDcScf::new(
                world,
                dd.clone(),
                SMALL_NORB,
                SMALL_ELECTRONS,
                atoms.clone(),
                SMALL_SEED,
            );
            drv.converge(1e-4, 6);
            drv.max_residual()
        });
        for r in &res {
            assert_eq!(r.to_bits(), res[0].to_bits(), "residual must replicate");
        }
        assert!(res[0] < 1.0, "residual after six iterations: {}", res[0]);
    }
}
