//! # mlmd-dcmesh — Divide-and-Conquer Maxwell–Ehrenfest–Surface-Hopping
//!
//! The DC-MESH module of MLMD (paper Fig. 2): the first code to integrate
//! Ehrenfest dynamics (attosecond light-electron coupling), surface
//! hopping (femtosecond electron-atom coupling), and Maxwell's equations
//! in one divide-and-conquer framework.
//!
//! * [`domain`] — spatial DC decomposition: mutually-exclusive cores with
//!   periodic buffer layers (Fig. 2a, Sec. V.A.1); the "recombine" step
//!   reads only core values.
//! * [`scf`] — global–local self-consistent field: local orbitals refined
//!   per domain against a *global* KS potential solved by multigrid
//!   (the GSLF/GSLD solver split of Sec. V.A.2).
//! * [`dist`] — the same SCF sharded across simulated-MPI ranks: one
//!   communicator per domain, orbital blocks split over ranks by
//!   [`mlmd_parallel::hier::Hierarchy::band_range`], recombine/restrict as
//!   real collectives. The serial [`scf::DcScf`] is the kept oracle; the
//!   distributed trajectory matches it bit-for-bit.
//! * [`ehrenfest`] — the N_QD-step inner loop of Eq. (2): split-operator
//!   QD steps under frozen Δv with the self-consistent time-reversible
//!   Hartree update of ref \[43\].
//! * [`shadow`] — shadow dynamics (Sec. V.A.3): GPU-resident wave
//!   functions, CPU↔GPU handshake limited to Δv_loc (down) and
//!   Δf / n_exc / J (up), byte-accounted so tests can assert the
//!   O(occupations) transfer claim.
//! * [`mesh`] — the full MESH step driver: Maxwell field ↔ Ehrenfest
//!   electrons ↔ surface hopping ↔ QXMD atoms.
//! * [`metrics`] — per-kernel FLOP/time accounting (Tables IV–V rows).

pub mod dist;
pub mod domain;
pub mod ehrenfest;
pub mod fixture;
pub mod mesh;
pub mod metrics;
pub mod scf;
pub mod shadow;

pub use dist::DistributedDcScf;
pub use domain::{DomainDecomposition, DomainSpec};
pub use mesh::{MeshConfig, MeshDriver, MeshDriverBuilder};
pub use shadow::ShadowDomain;
