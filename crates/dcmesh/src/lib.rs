//! # mlmd-dcmesh — Divide-and-Conquer Maxwell–Ehrenfest–Surface-Hopping
//!
//! The DC-MESH module of MLMD (paper Fig. 2): the first code to integrate
//! Ehrenfest dynamics (attosecond light-electron coupling), surface
//! hopping (femtosecond electron-atom coupling), and Maxwell's equations
//! in one divide-and-conquer framework.
//!
//! * [`domain`] — spatial DC decomposition: mutually-exclusive cores with
//!   periodic buffer layers (Fig. 2a, Sec. V.A.1); the "recombine" step
//!   reads only core values.
//! * [`scf`] — global–local self-consistent field: local orbitals refined
//!   per domain against a *global* KS potential solved by multigrid
//!   (the GSLF/GSLD solver split of Sec. V.A.2).
//! * [`ehrenfest`] — the N_QD-step inner loop of Eq. (2): split-operator
//!   QD steps under frozen Δv with the self-consistent time-reversible
//!   Hartree update of ref \[43\], plus the band-sharded
//!   [`ehrenfest::propagate_columns`]/[`ehrenfest::fold_inner_loop`]
//!   kernel pair the distributed driver runs it through.
//! * [`shadow`] — shadow dynamics (Sec. V.A.3): GPU-resident wave
//!   functions, CPU↔GPU handshake limited to Δv_loc (down) and
//!   Δf / n_exc / J (up), byte-accounted so tests can assert the
//!   O(occupations) transfer claim.
//! * [`mesh`] — the full MESH step driver: Maxwell field ↔ Ehrenfest
//!   electrons ↔ surface hopping ↔ QXMD atoms, with per-step
//!   topological-charge accumulation of the QM patch.
//! * [`checkpoint`] — ground-state checkpointing and warm starts: the
//!   converged pre-descent panel as a first-class, FNV-keyed artifact
//!   ([`checkpoint::GroundState`]) that can be cached in-process
//!   ([`checkpoint::GroundStateCache`]) or saved to a versioned,
//!   digest-protected binary file, so one descent serves every driver,
//!   rank, and sweep amplitude with the same configuration.
//! * [`dist`] / [`dist_mesh`] — the SCF and the MESH step driver sharded
//!   across simulated-MPI ranks (see below).
//! * [`fixture`] — the canonical laptop-scale problems every
//!   oracle-comparison surface builds (SCF two-domain fixture, MESH
//!   driver fixture).
//! * [`metrics`] — per-kernel FLOP/time accounting (Tables IV–V rows).
//!
//! # Distributed vs. serial oracle
//!
//! Both rank-parallel drivers follow one discipline, and both keep their
//! serial counterpart alive *as the oracle*:
//!
//! | distributed driver | serial oracle | pinned by |
//! |---|---|---|
//! | [`dist::DistributedDcScf`] | [`scf::DcScf`] | `tests/dc_dist.rs` |
//! | [`dist_mesh::DistributedMeshDriver`] | [`mesh::MeshDriver`] | `tests/mesh_dist.rs` |
//!
//! Each runs inside [`mlmd_parallel::comm::World::run`] with one
//! communicator per domain ([`mlmd_parallel::hier::Hierarchy::build`]).
//! Work that reads and writes a single orbital column — SCF descent and
//! subspace-Hamiltonian columns; MESH Ehrenfest propagation, current
//! terms, excitation terms, band energies — is sharded by
//! [`mlmd_parallel::hier::Hierarchy::band_range`] and recombined with
//! `allgather_vec` in band order. Orbital- and atom-coupling steps —
//! Gram–Schmidt, Rayleigh–Ritz, density mixing and the multigrid solve on
//! the SCF side; NACs, the hopping master equation, velocity Verlet, the
//! shadow handshake, and the per-step topological charge on the MESH
//! side — run redundantly on replicated inputs. World-level reductions
//! (the SCF density recombine and band-energy total; the MESH boundary
//! E/J exchange) carry exactly one non-zero contribution per domain, so
//! the left-fold over ranks reproduces the serial domain-loop order.
//!
//! Because the serial drivers are refactored into the *same kernel
//! functions* the distributed drivers call ([`scf::run_scf_loop`],
//! [`scf::descend_columns`], `mesh`'s step kernels), no float sum is ever
//! reordered and the distributed trajectories match the serial oracles
//! **bit-for-bit** at 1, 2, and 4 ranks per domain — no tolerances
//! anywhere in the comparison suites.

pub mod checkpoint;
pub mod dist;
pub mod dist_mesh;
pub mod domain;
pub mod ehrenfest;
pub mod fixture;
pub mod mesh;
pub mod metrics;
pub mod scf;
pub mod shadow;

pub use checkpoint::{GroundState, GroundStateCache, WarmStart, WarmStartPolicy};
pub use dist::DistributedDcScf;
pub use dist_mesh::{DistributedMeshDriver, MeshExchange};
pub use domain::{DomainDecomposition, DomainSpec};
pub use mesh::{MeshConfig, MeshDriver, MeshDriverBuilder};
pub use shadow::ShadowDomain;
