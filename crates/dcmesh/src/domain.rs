//! Spatial divide-and-conquer decomposition (paper Fig. 2a, Sec. V.A.1).
//!
//! The global grid Ω is split into mutually-exclusive *cores* Ω_α; each
//! domain extends its core by a periodic *buffer* layer in every
//! direction, on which the local KS orbitals live. Global fields
//! (potential, density) are exchanged by restriction (global → domain,
//! including buffer) and accumulation (domain core → global — the
//! "recombine" of DCR, which discards buffer values).
//!
//! With buffer = core/2 per direction, each domain grid holds
//! (1 + 2·½)³ = 8× more points than its core — the accounting the paper
//! uses to size the 15.36M-electron run.

use mlmd_numerics::grid::Grid3;

/// Decomposition parameters.
#[derive(Clone, Copy, Debug)]
pub struct DomainSpec {
    /// The global grid.
    pub global: Grid3,
    /// Number of domains per axis.
    pub n_dom: (usize, usize, usize),
    /// Buffer thickness in grid points (each side, each axis).
    pub buffer: usize,
}

/// One spatial domain: core placement plus its buffered local grid.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Domain index (dx, dy, dz).
    pub index: (usize, usize, usize),
    /// Global coordinates of the first core point.
    pub core_origin: (usize, usize, usize),
    /// Core extent per axis.
    pub core_shape: (usize, usize, usize),
    /// Buffer thickness.
    pub buffer: usize,
    /// The local (core + 2·buffer) grid the orbitals live on.
    pub grid: Grid3,
}

impl Domain {
    /// Global (i, j, k) of a local point (periodic wrap).
    #[inline]
    pub fn local_to_global(
        &self,
        global: &Grid3,
        li: usize,
        lj: usize,
        lk: usize,
    ) -> (usize, usize, usize) {
        let gi = (self.core_origin.0 + global.nx + li - self.buffer) % global.nx;
        let gj = (self.core_origin.1 + global.ny + lj - self.buffer) % global.ny;
        let gk = (self.core_origin.2 + global.nz + lk - self.buffer) % global.nz;
        (gi, gj, gk)
    }

    /// Is local point (li, lj, lk) inside the core?
    #[inline]
    pub fn is_core(&self, li: usize, lj: usize, lk: usize) -> bool {
        li >= self.buffer
            && li < self.buffer + self.core_shape.0
            && lj >= self.buffer
            && lj < self.buffer + self.core_shape.1
            && lk >= self.buffer
            && lk < self.buffer + self.core_shape.2
    }

    /// Restrict a global field to this domain's local grid (with buffer).
    pub fn restrict(&self, global: &Grid3, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), global.len());
        let mut out = vec![0.0; self.grid.len()];
        for lk in 0..self.grid.nz {
            for lj in 0..self.grid.ny {
                for li in 0..self.grid.nx {
                    let (gi, gj, gk) = self.local_to_global(global, li, lj, lk);
                    out[self.grid.idx(li, lj, lk)] = field[global.idx(gi, gj, gk)];
                }
            }
        }
        out
    }

    /// Accumulate this domain's *core* values into a global field
    /// (the DCR recombine step; buffer values are discarded).
    pub fn accumulate_core(&self, global: &Grid3, local: &[f64], out: &mut [f64]) {
        assert_eq!(local.len(), self.grid.len());
        assert_eq!(out.len(), global.len());
        for lk in 0..self.grid.nz {
            for lj in 0..self.grid.ny {
                for li in 0..self.grid.nx {
                    if !self.is_core(li, lj, lk) {
                        continue;
                    }
                    let (gi, gj, gk) = self.local_to_global(global, li, lj, lk);
                    out[global.idx(gi, gj, gk)] += local[self.grid.idx(li, lj, lk)];
                }
            }
        }
    }
}

/// The full set of domains.
#[derive(Clone, Debug)]
pub struct DomainDecomposition {
    pub spec: DomainSpec,
    pub domains: Vec<Domain>,
}

impl DomainDecomposition {
    /// Build; global dims must divide evenly by the domain counts.
    pub fn new(spec: DomainSpec) -> Self {
        let g = spec.global;
        let (dx, dy, dz) = spec.n_dom;
        assert!(dx > 0 && dy > 0 && dz > 0);
        assert_eq!(g.nx % dx, 0, "nx must divide by domain count");
        assert_eq!(g.ny % dy, 0, "ny must divide by domain count");
        assert_eq!(g.nz % dz, 0, "nz must divide by domain count");
        let core = (g.nx / dx, g.ny / dy, g.nz / dz);
        let b = spec.buffer;
        assert!(
            2 * b < g.nx && 2 * b < g.ny && 2 * b < g.nz,
            "buffer too thick for the global grid"
        );
        let mut domains = Vec::with_capacity(dx * dy * dz);
        for kz in 0..dz {
            for ky in 0..dy {
                for kx in 0..dx {
                    let local = Grid3::new(core.0 + 2 * b, core.1 + 2 * b, core.2 + 2 * b, g.h);
                    domains.push(Domain {
                        index: (kx, ky, kz),
                        core_origin: (kx * core.0, ky * core.1, kz * core.2),
                        core_shape: core,
                        buffer: b,
                        grid: local,
                    });
                }
            }
        }
        Self { spec, domains }
    }

    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Total local points across domains / global points — the paper's
    /// overlap factor (8 for buffer = core/2).
    pub fn overlap_factor(&self) -> f64 {
        let local: usize = self.domains.iter().map(|d| d.grid.len()).sum();
        local as f64 / self.spec.global.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DomainSpec {
        DomainSpec {
            global: Grid3::new(16, 16, 16, 0.5),
            n_dom: (2, 2, 2),
            buffer: 4, // half the core length (8/2)
        }
    }

    #[test]
    fn paper_overlap_factor_of_eight() {
        let dd = DomainDecomposition::new(spec());
        assert_eq!(dd.len(), 8);
        assert!((dd.overlap_factor() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cores_partition_global_grid() {
        let dd = DomainDecomposition::new(spec());
        let g = dd.spec.global;
        let mut covered = vec![0u8; g.len()];
        for d in &dd.domains {
            for lk in 0..d.grid.nz {
                for lj in 0..d.grid.ny {
                    for li in 0..d.grid.nx {
                        if d.is_core(li, lj, lk) {
                            let (gi, gj, gk) = d.local_to_global(&g, li, lj, lk);
                            covered[g.idx(gi, gj, gk)] += 1;
                        }
                    }
                }
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "cores must tile the global grid exactly once"
        );
    }

    #[test]
    fn restrict_accumulate_round_trip() {
        let dd = DomainDecomposition::new(spec());
        let g = dd.spec.global;
        let field: Vec<f64> = (0..g.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut rebuilt = vec![0.0; g.len()];
        for d in &dd.domains {
            let local = d.restrict(&g, &field);
            d.accumulate_core(&g, &local, &mut rebuilt);
        }
        for (a, b) in field.iter().zip(&rebuilt) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn buffer_sees_periodic_neighbours() {
        let dd = DomainDecomposition::new(spec());
        let g = dd.spec.global;
        // Mark one global point; a neighbouring domain's buffer must see it.
        let mut field = vec![0.0; g.len()];
        field[g.idx(0, 0, 0)] = 1.0;
        // Domain (1,0,0) core starts at x=8; its buffer reaches x=4..8 and
        // wraps to x=12..16 and beyond: local x index for global x=0 is
        // core_origin=8 → local = 0 − 8 + 4 = −4 → via wrap 16−4=12? Check
        // by scanning.
        let d = &dd.domains[1];
        let local = d.restrict(&g, &field);
        let hits = local.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(
            hits, 1,
            "global corner must appear exactly once in the buffered view"
        );
    }

    #[test]
    fn zero_buffer_means_no_overlap() {
        let dd = DomainDecomposition::new(DomainSpec {
            global: Grid3::new(12, 12, 12, 1.0),
            n_dom: (3, 2, 2),
            buffer: 0,
        });
        assert!((dd.overlap_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn uneven_split_rejected() {
        DomainDecomposition::new(DomainSpec {
            global: Grid3::new(10, 10, 10, 1.0),
            n_dom: (3, 1, 1),
            buffer: 1,
        });
    }
}
