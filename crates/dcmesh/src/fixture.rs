//! The canonical laptop-scale DC fixture: a 12×12×12 global grid split
//! into two domains along x, with one Gaussian ion well per domain core.
//!
//! Every surface that compares the distributed SCF against the serial
//! oracle — the `scf`/`dist` unit tests, the root `dc_dist` integration
//! suite, the `dc_scaling` bench group, and the `distributed_scf`
//! example — builds exactly this problem, so a fixture change cannot
//! silently change what the oracle comparisons mean.

use crate::domain::{DomainDecomposition, DomainSpec};
use mlmd_lfd::potential::AtomSite;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;

/// Orbitals per domain.
pub const SMALL_NORB: usize = 2;
/// Electrons per domain.
pub const SMALL_ELECTRONS: f64 = 2.0;
/// RNG seed for the initial orbital panels.
pub const SMALL_SEED: u64 = 42;

/// Build the two-domain decomposition and its atoms.
pub fn small_two_domain() -> (DomainDecomposition, Vec<AtomSite>) {
    let global = Grid3::new(12, 12, 12, 0.6);
    let dd = DomainDecomposition::new(DomainSpec {
        global,
        n_dom: (2, 1, 1),
        buffer: 3,
    });
    let atoms = vec![
        AtomSite {
            pos: Vec3::new(1.8, 3.6, 3.6),
            z_eff: 4.0,
            sigma: 0.9,
        },
        AtomSite {
            pos: Vec3::new(5.4, 3.6, 3.6),
            z_eff: 4.0,
            sigma: 0.9,
        },
    ];
    (dd, atoms)
}

/// The serial oracle on the canonical fixture.
pub fn small_serial_scf() -> crate::scf::DcScf {
    let (dd, atoms) = small_two_domain();
    crate::scf::DcScf::new(dd, SMALL_NORB, SMALL_ELECTRONS, atoms, SMALL_SEED)
}
