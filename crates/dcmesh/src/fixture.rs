//! The canonical laptop-scale DC fixture: a 12×12×12 global grid split
//! into two domains along x, with one Gaussian ion well per domain core.
//!
//! Every surface that compares the distributed SCF against the serial
//! oracle — the `scf`/`dist` unit tests, the root `dc_dist` integration
//! suite, the `dc_scaling` bench group, and the `distributed_scf`
//! example — builds exactly this problem, so a fixture change cannot
//! silently change what the oracle comparisons mean.

use crate::domain::{DomainDecomposition, DomainSpec};
use mlmd_lfd::potential::AtomSite;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;

/// Orbitals per domain.
pub const SMALL_NORB: usize = 2;
/// Electrons per domain.
pub const SMALL_ELECTRONS: f64 = 2.0;
/// RNG seed for the initial orbital panels.
pub const SMALL_SEED: u64 = 42;

/// Build the two-domain decomposition and its atoms.
pub fn small_two_domain() -> (DomainDecomposition, Vec<AtomSite>) {
    let global = Grid3::new(12, 12, 12, 0.6);
    let dd = DomainDecomposition::new(DomainSpec {
        global,
        n_dom: (2, 1, 1),
        buffer: 3,
    });
    let atoms = vec![
        AtomSite {
            pos: Vec3::new(1.8, 3.6, 3.6),
            z_eff: 4.0,
            sigma: 0.9,
        },
        AtomSite {
            pos: Vec3::new(5.4, 3.6, 3.6),
            z_eff: 4.0,
            sigma: 0.9,
        },
    ];
    (dd, atoms)
}

/// The serial oracle on the canonical fixture.
pub fn small_serial_scf() -> crate::scf::DcScf {
    let (dd, atoms) = small_two_domain();
    crate::scf::DcScf::new(dd, SMALL_NORB, SMALL_ELECTRONS, atoms, SMALL_SEED)
}

/// The canonical laptop-scale MESH fixture: an 8³ grid with an 8-state
/// panel (2 occupied + 6 virtual excitation targets), a 3×3×3 PbTiO3
/// patch started at the *coupled* ferroelectric minimum (so the dark run
/// is force-free), one tracked site, and a resonant pulse of amplitude
/// `e0`.
///
/// Every surface that compares the distributed MESH driver against the
/// serial oracle — the `mesh`/`dist_mesh` unit tests, the root
/// `mesh_dist` integration suite, the `mesh_scaling` bench group, and the
/// `distributed_mesh` example — builds exactly this driver, mirroring
/// what [`small_two_domain`] does for the SCF comparisons.
pub fn small_mesh_driver(e0: f64) -> crate::mesh::MeshDriver {
    small_mesh_builder(e0).build()
}

/// The canonical MESH fixture as a *builder*, so callers can pick the
/// ground-state source before building: the distributed driver hands the
/// builder to every rank and lets the domain root resolve the descent
/// once ([`crate::dist_mesh::DistributedMeshDriver::new`]), and the
/// warm-start suites attach caches or checkpoint files to it. Note the
/// pulse amplitude `e0` does not enter the ground-state config hash, so
/// every amplitude built from this fixture shares one cached descent.
pub fn small_mesh_builder(e0: f64) -> crate::mesh::MeshDriverBuilder {
    use crate::ehrenfest::EhrenfestConfig;
    use crate::mesh::{MeshConfig, MeshDriverBuilder};
    use mlmd_lfd::occupation::Occupations;
    use mlmd_lfd::wavefunction::WaveFunctions;
    use mlmd_maxwell::source::GaussianPulse;
    use mlmd_qxmd::ferro::{FerroModel, FerroParams};
    use mlmd_qxmd::perovskite::PerovskiteLattice;

    let grid = Grid3::new(8, 8, 8, 0.5);
    let wf = WaveFunctions::plane_waves(grid, 8);
    let occ = Occupations::aufbau(8, 4.0);
    let p = FerroParams::pbtio3();
    let u_star = ((3.0 * p.j_nn - p.a2) / (2.0 * p.a4)).sqrt();
    let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
    let ferro = FerroModel::new(&lat, p);
    MeshDriverBuilder::new(wf, occ, lat.system.clone(), ferro)
        .config(MeshConfig {
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 30,
                self_consistent: false,
            },
            exc_per_cell_scale: 30.0,
            ..Default::default()
        })
        .pulse(GaussianPulse::new(e0, 0.8, 4.0, 2.0))
        .track_site(
            0,
            AtomSite {
                pos: Vec3::new(2.0, 2.0, 2.0),
                z_eff: 1.0,
                sigma: 0.8,
            },
        )
}
