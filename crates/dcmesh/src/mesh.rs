//! The MESH driver: Maxwell ↔ Ehrenfest ↔ Surface-Hopping ↔ QXMD,
//! integrated across time scales (paper Fig. 1, Eq. (2)).
//!
//! One MD step (Δt_MD ~ 100 as) of the driver:
//!
//! 1. **LFD (GPU)** — N_QD Ehrenfest steps under the laser field, on the
//!    shadow domain's device-resident wave functions;
//! 2. **excitation measurement** — promotion out of the initial adiabatic
//!    manifold, `n_exc = Σ_s f_s (1 − |⟨ψ_s(0)|ψ_s(t)⟩|²)`;
//! 3. **surface hopping (CPU)** — NACs from the wave-function change
//!    across the MD step update the occupations `f_s` (master-equation
//!    FSSH, `Û_SH` of Eq. (2));
//! 4. **QXMD (CPU)** — the excitation fraction reshapes the ferroelectric
//!    energy landscape (XS forces) and velocity Verlet advances the atoms;
//! 5. **shadow handshake** — the ionic-motion-induced Δv_loc goes back to
//!    the device (O(Ngrid)), closing the loop.

use crate::ehrenfest::EhrenfestConfig;
use crate::scf::band_energies;
use crate::shadow::ShadowDomain;
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::potential::{ionic_potential, AtomSite};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::source::GaussianPulse;
use mlmd_maxwell::units;
use mlmd_numerics::vec3::Vec3;
use mlmd_parallel::device::TransferLedger;
use mlmd_qxmd::atoms::AtomsSystem;
use mlmd_qxmd::ferro::FerroModel;
use mlmd_qxmd::hopping::SurfaceHopping;
use mlmd_qxmd::integrator::{ForceField, VelocityVerlet};
use mlmd_qxmd::nac::NacMatrix;
use std::sync::Arc;

/// Driver settings.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// MD time step (fs).
    pub dt_md_fs: f64,
    /// Inner Ehrenfest loop.
    pub ehrenfest: EhrenfestConfig,
    /// Surface-hopping temperature (K) and rate scale.
    pub sh_temperature: f64,
    pub sh_rate: f64,
    /// Scaling from `n_exc` to the per-cell excitation fraction fed to
    /// the ferroelectric model.
    pub exc_per_cell_scale: f64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            dt_md_fs: 0.1,
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 50,
                self_consistent: false,
            },
            sh_temperature: 300.0,
            sh_rate: 10.0,
            exc_per_cell_scale: 1.0,
        }
    }
}

/// Per-MD-step record.
#[derive(Clone, Debug)]
pub struct MeshStepRecord {
    pub time_fs: f64,
    pub n_exc: f64,
    pub absorbed_energy: f64,
    pub mean_polarization: Vec3,
    pub occupations: Vec<f64>,
    pub atom_potential_energy: f64,
}

/// Builder for [`MeshDriver`]: names the eight construction inputs and
/// defaults the ones that rarely change (config, tracked sites, transfer
/// ledger, polarization axis). This is the construction seam the
/// `mlmd-core` engine layer exposes — pipeline code and tests assemble
/// probe drivers through it instead of a hidden escape hatch.
pub struct MeshDriverBuilder {
    config: MeshConfig,
    wf: WaveFunctions,
    occupations: Occupations,
    atoms: AtomsSystem,
    ferro: FerroModel,
    pulse: GaussianPulse,
    tracked_sites: Vec<(usize, AtomSite)>,
    ledger: Arc<TransferLedger>,
    polarization_axis: Vec3,
}

impl MeshDriverBuilder {
    /// Start from the four mandatory physical inputs: the orbital panel,
    /// its occupations, the QM-region atoms, and their force model. The
    /// pulse defaults to darkness (`E₀ = 0`).
    pub fn new(
        wf: WaveFunctions,
        occupations: Occupations,
        atoms: AtomsSystem,
        ferro: FerroModel,
    ) -> Self {
        Self {
            config: MeshConfig::default(),
            wf,
            occupations,
            atoms,
            ferro,
            pulse: GaussianPulse::new(0.0, 1.0, 4.0, 2.0),
            tracked_sites: Vec::new(),
            ledger: Arc::new(TransferLedger::new()),
            polarization_axis: Vec3::EZ,
        }
    }

    pub fn config(mut self, config: MeshConfig) -> Self {
        self.config = config;
        self
    }

    pub fn pulse(mut self, pulse: GaussianPulse) -> Self {
        self.pulse = pulse;
        self
    }

    /// Track QXMD cell `cell` with the LFD site `site` (the shadow
    /// handshake: the cell's Ti off-centering moves the site).
    pub fn track_site(mut self, cell: usize, site: AtomSite) -> Self {
        self.tracked_sites.push((cell, site));
        self
    }

    /// Account host↔device traffic on a shared ledger.
    pub fn ledger(mut self, ledger: Arc<TransferLedger>) -> Self {
        self.ledger = ledger;
        self
    }

    pub fn polarization_axis(mut self, axis: Vec3) -> Self {
        self.polarization_axis = axis;
        self
    }

    pub fn build(self) -> MeshDriver {
        let mut driver = MeshDriver::new(
            self.config,
            self.wf,
            self.occupations,
            self.atoms,
            self.ferro,
            self.pulse,
            self.tracked_sites,
            self.ledger,
        );
        driver.polarization_axis = self.polarization_axis;
        driver
    }
}

/// The integrated MESH driver for one DC domain coupled to a QXMD
/// supercell.
pub struct MeshDriver {
    pub config: MeshConfig,
    pub shadow: ShadowDomain,
    pub atoms: AtomsSystem,
    pub ferro: FerroModel,
    pub pulse: GaussianPulse,
    pub polarization_axis: Vec3,
    /// Reference orbital panel (t = 0) for excitation projection.
    psi0: WaveFunctions,
    /// Which reference states were occupied at t = 0 (the projection
    /// target: promotion *out of this subset* is excitation, even into
    /// the panel's own virtual states).
    occupied0: Vec<bool>,
    /// The LFD atom sites tracking selected QXMD degrees of freedom:
    /// (cell index, base site). The Ti displacement of that cell moves the
    /// site, producing the Δv_loc of the shadow handshake.
    tracked_sites: Vec<(usize, AtomSite)>,
    last_vloc: Vec<f64>,
    time_fs: f64,
    hopping: SurfaceHopping,
}

impl MeshDriver {
    /// Assemble a driver. `tracked_sites` maps QXMD cells into the LFD
    /// box; `vloc0` must be the potential the shadow domain was
    /// initialized with.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: MeshConfig,
        mut wf: WaveFunctions,
        occupations: Occupations,
        atoms: AtomsSystem,
        ferro: FerroModel,
        pulse: GaussianPulse,
        tracked_sites: Vec<(usize, AtomSite)>,
        ledger: Arc<TransferLedger>,
    ) -> Self {
        let vloc0 = Self::assemble_vloc(&wf, &tracked_sites, &ferro, &atoms);
        // Relax the initial orbitals into adiabatic eigenstates of the
        // initial potential, so the excitation projection measures genuine
        // light-induced promotion rather than basis mismatch.
        let grid = wf.grid;
        crate::scf::refine_orbitals(&grid, &vloc0, &mut wf, 0.1, 60);
        crate::scf::subspace_rotate(&grid, &vloc0, &mut wf);
        let psi0 = wf.clone();
        let occupied0: Vec<bool> = (0..occupations.len())
            .map(|s| occupations.f(s) > 0.0)
            .collect();
        let shadow = ShadowDomain::new(wf, occupations, &vloc0, ledger);
        Self {
            config,
            shadow,
            atoms,
            ferro,
            pulse,
            polarization_axis: Vec3::EZ,
            psi0,
            occupied0,
            tracked_sites,
            last_vloc: vloc0,
            time_fs: 0.0,
            hopping: SurfaceHopping::new(config.sh_temperature, config.sh_rate),
        }
    }

    /// Ionic potential of the tracked sites displaced by their cells'
    /// current Ti off-centering (Å → bohr).
    fn assemble_vloc(
        wf: &WaveFunctions,
        tracked: &[(usize, AtomSite)],
        ferro: &FerroModel,
        atoms: &AtomsSystem,
    ) -> Vec<f64> {
        let u = ferro.displacement_field(atoms);
        let sites: Vec<AtomSite> = tracked
            .iter()
            .map(|(cell, base)| {
                let d = u[*cell] * (1.0 / units::BOHR_ANGSTROM);
                AtomSite {
                    pos: base.pos + d,
                    ..*base
                }
            })
            .collect();
        ionic_potential(&wf.grid, &sites)
    }

    pub fn time_fs(&self) -> f64 {
        self.time_fs
    }

    /// Excitation out of the initially *occupied* subspace:
    /// `n_exc = Σ_{s occupied} f_s (1 − Σ_{s' occupied} |⟨ψ_{s'}(0)|ψ_s(t)⟩|²)`.
    ///
    /// Projecting onto the occupied span (not orbital-by-orbital) makes
    /// the measure invariant under mixing *within* the occupied manifold;
    /// promotion into the panel's virtual states — the resolved excitation
    /// targets — and leakage beyond the panel both count.
    fn excitation_projection(&self, wf: &WaveFunctions) -> f64 {
        let mut n = 0.0;
        for s in 0..wf.norb {
            if !self.occupied0[s] {
                continue;
            }
            let f = self.shadow.occupations.f(s);
            if f == 0.0 {
                continue;
            }
            let mut in_span = 0.0;
            for sp in 0..self.psi0.norb {
                if self.occupied0[sp] {
                    in_span += self.psi0.overlap(sp, wf, s).norm_sqr();
                }
            }
            n += f * (1.0 - in_span.min(1.0));
        }
        n
    }

    /// Advance one full MESH MD step.
    pub fn step(&mut self) -> MeshStepRecord {
        let cfg = self.config;
        // --- 1. LFD inner loop under the laser (device side) ---
        let t0_au = units::fs_to_au(self.time_fs);
        let pulse = self.pulse;
        let pol = self.polarization_axis;
        let psi_before = self.shadow.download_wavefunctions_unmetered();
        let (_, inner) =
            self.shadow
                .run_md_step(move |t| pol * pulse.field(t), t0_au, cfg.ehrenfest);
        let psi_after = self.shadow.download_wavefunctions_unmetered();
        // --- 2. excitation measurement ---
        let n_exc = self.excitation_projection(&psi_after);
        // --- 3. surface hopping on the occupations ---
        let dt_md_au = units::fs_to_au(cfg.dt_md_fs);
        let nac = NacMatrix::from_overlaps(
            &psi_before.psi,
            &psi_after.psi,
            psi_after.grid.dv(),
            dt_md_au,
        );
        let eps = band_energies(&psi_after.grid, &self.last_vloc, &psi_after);
        let mut f: Vec<f64> = self.shadow.occupations.as_slice().to_vec();
        self.hopping.step(&mut f, &eps, &nac, dt_md_au);
        self.shadow.set_occupations(&f);
        // --- 4. QXMD with excitation-reshaped forces ---
        let n_cells = self.ferro.cell_count();
        let x = (n_exc * cfg.exc_per_cell_scale / n_cells as f64).clamp(0.0, 1.0);
        self.ferro.set_uniform_excitation(x);
        let vv = VelocityVerlet::new(cfg.dt_md_fs);
        self.ferro.compute(&mut self.atoms);
        let pe = vv.step(&mut self.atoms, &self.ferro);
        // --- 5. shadow handshake: Δv_loc from the moved atoms ---
        let template = WaveFunctions::zeros(psi_after.grid, psi_after.norb);
        let v_new = Self::assemble_vloc(&template, &self.tracked_sites, &self.ferro, &self.atoms);
        let delta_v: Vec<f64> = v_new
            .iter()
            .zip(&self.last_vloc)
            .map(|(a, b)| a - b)
            .collect();
        self.shadow.push_delta_v(&delta_v);
        self.last_vloc = v_new;
        self.time_fs += cfg.dt_md_fs;
        // Record.
        let u = self.ferro.displacement_field(&self.atoms);
        let mean_p = u.iter().copied().sum::<Vec3>() / u.len().max(1) as f64;
        MeshStepRecord {
            time_fs: self.time_fs,
            n_exc,
            absorbed_energy: inner.absorbed_energy,
            mean_polarization: mean_p,
            occupations: f,
            atom_potential_energy: pe,
        }
    }

    /// Run `n` MD steps, returning the trajectory of records.
    pub fn run(&mut self, n: usize) -> Vec<MeshStepRecord> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::grid::Grid3;
    use mlmd_qxmd::ferro::FerroParams;
    use mlmd_qxmd::perovskite::PerovskiteLattice;

    fn build_driver(e0: f64) -> MeshDriver {
        let grid = Grid3::new(8, 8, 8, 0.5);
        // 8-state panel with 2 occupied + 6 virtual: the virtual states
        // are resolved excitation targets, and the low occupied states
        // converge well in the pre-run descent.
        let wf = WaveFunctions::plane_waves(grid, 8);
        let occ = Occupations::aufbau(8, 4.0);
        let p = FerroParams::pbtio3();
        // Start at the *coupled* minimum so the dark run is force-free and
        // the excitation baseline stays small.
        let u_star = ((3.0 * p.j_nn - p.a2) / (2.0 * p.a4)).sqrt();
        let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
        let ferro = FerroModel::new(&lat, p);
        // Resonant drive (box level spacing ≈ 1.2 Ha on this grid).
        let pulse = GaussianPulse::new(e0, 0.8, 4.0, 2.0);
        let site = AtomSite {
            pos: Vec3::new(2.0, 2.0, 2.0),
            z_eff: 1.0,
            sigma: 0.8,
        };
        let cfg = MeshConfig {
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 30,
                self_consistent: false,
            },
            exc_per_cell_scale: 30.0,
            ..Default::default()
        };
        MeshDriver::new(
            cfg,
            wf,
            occ,
            lat.system.clone(),
            ferro,
            pulse,
            vec![(0, site)],
            Arc::new(TransferLedger::new()),
        )
    }

    #[test]
    fn builder_matches_direct_construction() {
        let mut direct = build_driver(0.05);
        let grid = Grid3::new(8, 8, 8, 0.5);
        let p = FerroParams::pbtio3();
        let u_star = ((3.0 * p.j_nn - p.a2) / (2.0 * p.a4)).sqrt();
        let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
        let mut built = MeshDriverBuilder::new(
            WaveFunctions::plane_waves(grid, 8),
            Occupations::aufbau(8, 4.0),
            lat.system.clone(),
            FerroModel::new(&lat, p),
        )
        .config(MeshConfig {
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 30,
                self_consistent: false,
            },
            exc_per_cell_scale: 30.0,
            ..Default::default()
        })
        .pulse(GaussianPulse::new(0.05, 0.8, 4.0, 2.0))
        .track_site(
            0,
            AtomSite {
                pos: Vec3::new(2.0, 2.0, 2.0),
                z_eff: 1.0,
                sigma: 0.8,
            },
        )
        .build();
        let rd = direct.run(3);
        let rb = built.run(3);
        for (a, b) in rd.iter().zip(&rb) {
            assert_eq!(
                a.n_exc.to_bits(),
                b.n_exc.to_bits(),
                "builder-made driver must be bit-identical to direct construction"
            );
        }
    }

    #[test]
    fn driver_advances_time_and_stays_finite() {
        let mut d = build_driver(0.02);
        let records = d.run(4);
        assert_eq!(records.len(), 4);
        assert!((d.time_fs() - 0.4).abs() < 1e-12);
        for r in &records {
            assert!(r.n_exc.is_finite() && r.n_exc >= 0.0);
            assert!(r.mean_polarization.norm().is_finite());
            assert!(r.occupations.iter().all(|f| (0.0..=2.0).contains(f)));
        }
    }

    #[test]
    fn stronger_pulse_excites_more() {
        // Dark vs lit: the pulse must dominate the residual
        // eigenstate-imperfection noise by a clear factor.
        let mut dark = build_driver(0.0);
        let mut lit = build_driver(0.1);
        let rd = dark.run(5);
        let rl = lit.run(5);
        let nd = rd.last().unwrap().n_exc;
        let nl = rl.last().unwrap().n_exc;
        assert!(
            nl > nd + 0.02,
            "pulse must excite well above the dark baseline: {nl} vs {nd}"
        );
    }

    #[test]
    fn excitation_suppresses_polarization_dynamics() {
        // With heavy excitation the double well flattens: polarization
        // decays toward zero faster than in the unexcited run.
        let mut dark = build_driver(0.0);
        let mut lit = build_driver(0.08);
        let rd = dark.run(8);
        let rl = lit.run(8);
        let pd = rd.last().unwrap().mean_polarization.z;
        let pl = rl.last().unwrap().mean_polarization.z;
        assert!(
            pl <= pd + 1e-9,
            "excited lattice must depolarize at least as fast: {pl} vs {pd}"
        );
    }

    #[test]
    fn shadow_invariant_holds_through_full_mesh_loop() {
        let mut d = build_driver(0.03);
        let ledger = d.shadow.ledger.clone();
        ledger.reset();
        let psi_bytes = d.shadow.psi_bytes();
        d.run(3);
        // No wave-function-sized transfer may occur inside the loop.
        let per_step = ledger.total_bytes() / 3;
        assert!(
            per_step < psi_bytes,
            "per-step link traffic {per_step} must stay below ψ bytes {psi_bytes}"
        );
    }

    #[test]
    fn occupations_respond_to_dynamics() {
        let mut d = build_driver(0.08);
        let before: f64 = d.shadow.occupations.as_slice().iter().sum();
        let records = d.run(6);
        let after: f64 = records.last().unwrap().occupations.iter().sum();
        // Total occupation conserved by the hopping master equation.
        assert!((before - after).abs() < 1e-9);
    }
}
