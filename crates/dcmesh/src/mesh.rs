//! The MESH driver: Maxwell ↔ Ehrenfest ↔ Surface-Hopping ↔ QXMD,
//! integrated across time scales (paper Fig. 1, Eq. (2)).
//!
//! One MD step (Δt_MD ~ 100 as) of the driver:
//!
//! 1. **LFD (GPU)** — N_QD Ehrenfest steps under the laser field, on the
//!    shadow domain's device-resident wave functions;
//! 2. **excitation measurement** — promotion out of the initial adiabatic
//!    manifold, `n_exc = Σ_s f_s (1 − |⟨ψ_s(0)|ψ_s(t)⟩|²)`;
//! 3. **surface hopping (CPU)** — NACs from the wave-function change
//!    across the MD step update the occupations `f_s` (master-equation
//!    FSSH, `Û_SH` of Eq. (2));
//! 4. **QXMD (CPU)** — the excitation fraction reshapes the ferroelectric
//!    energy landscape (XS forces) and velocity Verlet advances the atoms;
//! 5. **shadow handshake** — the ionic-motion-induced Δv_loc goes back to
//!    the device (O(Ngrid)), closing the loop.

use crate::checkpoint::{self, DescentMeta, GroundState, WarmStart};
use crate::ehrenfest::EhrenfestConfig;
use crate::scf::band_energies;
use crate::shadow::ShadowDomain;
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::potential::{ionic_potential, AtomSite};
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::source::{Drive, GaussianPulse};
use mlmd_maxwell::units;
use mlmd_numerics::grid::Grid3;
use mlmd_numerics::vec3::Vec3;
use mlmd_parallel::device::TransferLedger;
use mlmd_qxmd::atoms::AtomsSystem;
use mlmd_qxmd::ferro::FerroModel;
use mlmd_qxmd::hopping::SurfaceHopping;
use mlmd_qxmd::integrator::{ForceField, VelocityVerlet};
use mlmd_qxmd::nac::NacMatrix;
use mlmd_topo::polarization::PolarizationField;
use mlmd_topo::switching::TextureReport;
use std::sync::Arc;

/// Driver settings.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// MD time step (fs).
    pub dt_md_fs: f64,
    /// Inner Ehrenfest loop.
    pub ehrenfest: EhrenfestConfig,
    /// Surface-hopping temperature (K) and rate scale.
    pub sh_temperature: f64,
    pub sh_rate: f64,
    /// Scaling from `n_exc` to the per-cell excitation fraction fed to
    /// the ferroelectric model.
    pub exc_per_cell_scale: f64,
    /// Steepest-descent damping η of the ground-state pre-descent that
    /// relaxes the initial panel into adiabatic eigenstates. Participates
    /// in the checkpoint config hash ([`crate::checkpoint::ground_state_key`]).
    pub descent_eta: f64,
    /// Sweep count of the ground-state pre-descent. Participates in the
    /// checkpoint config hash.
    pub descent_steps: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            dt_md_fs: 0.1,
            ehrenfest: EhrenfestConfig {
                dt_qd: 0.05,
                n_qd: 50,
                self_consistent: false,
            },
            sh_temperature: 300.0,
            sh_rate: 10.0,
            exc_per_cell_scale: 1.0,
            descent_eta: 0.1,
            descent_steps: 60,
        }
    }
}

/// Per-MD-step record.
#[derive(Clone, Debug)]
pub struct MeshStepRecord {
    pub time_fs: f64,
    pub n_exc: f64,
    pub absorbed_energy: f64,
    pub mean_polarization: Vec3,
    pub occupations: Vec<f64>,
    pub atom_potential_energy: f64,
    /// Mean topological charge per z-layer of the QM patch's polar
    /// texture after the step (the Û_SH → QXMD → topology accumulation of
    /// the MESH loop).
    pub topological_charge: f64,
}

/// Builder for [`MeshDriver`]: names the eight construction inputs and
/// defaults the ones that rarely change (config, tracked sites, transfer
/// ledger, polarization axis). This is the construction seam the
/// `mlmd-core` engine layer exposes — pipeline code and tests assemble
/// probe drivers through it instead of a hidden escape hatch.
///
/// # Example
///
/// Assemble a dark (no-pulse) driver from the four mandatory physical
/// inputs and advance it one MESH MD step:
///
/// ```
/// use mlmd_dcmesh::mesh::MeshDriverBuilder;
/// use mlmd_lfd::occupation::Occupations;
/// use mlmd_lfd::wavefunction::WaveFunctions;
/// use mlmd_numerics::grid::Grid3;
/// use mlmd_numerics::vec3::Vec3;
/// use mlmd_qxmd::ferro::{FerroModel, FerroParams};
/// use mlmd_qxmd::perovskite::PerovskiteLattice;
///
/// let grid = Grid3::new(8, 8, 8, 0.5);
/// let lat = PerovskiteLattice::uniform(2, 2, 2, Vec3::new(0.0, 0.0, 0.3));
/// let ferro = FerroModel::new(&lat, FerroParams::pbtio3());
/// let mut driver = MeshDriverBuilder::new(
///     WaveFunctions::plane_waves(grid, 2),
///     Occupations::aufbau(2, 2.0),
///     lat.system.clone(),
///     ferro,
/// )
/// .build();
/// let record = driver.step();
/// assert!(record.n_exc.is_finite());
/// assert!(driver.time_fs() > 0.0);
/// ```
pub struct MeshDriverBuilder {
    config: MeshConfig,
    wf: WaveFunctions,
    occupations: Occupations,
    atoms: AtomsSystem,
    ferro: FerroModel,
    drive: Drive,
    tracked_sites: Vec<(usize, AtomSite)>,
    ledger: Arc<TransferLedger>,
    polarization_axis: Vec3,
    warm_start: WarmStart,
    nn_term: Option<Arc<dyn ForceField + Send + Sync>>,
}

impl MeshDriverBuilder {
    /// Start from the four mandatory physical inputs: the orbital panel,
    /// its occupations, the QM-region atoms, and their force model. The
    /// pulse defaults to darkness (`E₀ = 0`).
    pub fn new(
        wf: WaveFunctions,
        occupations: Occupations,
        atoms: AtomsSystem,
        ferro: FerroModel,
    ) -> Self {
        Self {
            config: MeshConfig::default(),
            wf,
            occupations,
            atoms,
            ferro,
            drive: Drive::Gaussian(GaussianPulse::new(0.0, 1.0, 4.0, 2.0)),
            tracked_sites: Vec::new(),
            ledger: Arc::new(TransferLedger::new()),
            polarization_axis: Vec3::EZ,
            warm_start: WarmStart::Fresh,
            nn_term: None,
        }
    }

    /// Add a neural-network force term to the QXMD stage: the term's
    /// forces are accumulated on top of the ferroelectric model inside
    /// every atomic advance of the MD stage (e.g. an
    /// `mlmd_nnqmd::NnForceField`, or a shared `mlmd_nnqmd::ForceBatch`
    /// so replicated distributed ranks fold their redundant evaluations
    /// into one inference call per step). `None` — the default — is
    /// bit-identical to the pre-existing ferro-only stage.
    pub fn nn_term(mut self, term: Arc<dyn ForceField + Send + Sync>) -> Self {
        self.nn_term = Some(term);
        self
    }

    pub fn config(mut self, config: MeshConfig) -> Self {
        self.config = config;
        self
    }

    pub fn pulse(mut self, pulse: GaussianPulse) -> Self {
        self.drive = Drive::Gaussian(pulse);
        self
    }

    /// Drive the domain with any [`Drive`] shape (CW, chirp, train, …);
    /// [`Self::pulse`] is the Gaussian special case. The drive is an
    /// execution input, not a ground-state input — it is deliberately
    /// excluded from [`Self::config_key`], so switching drive shapes
    /// reuses the same warm-start checkpoint.
    pub fn drive(mut self, drive: impl Into<Drive>) -> Self {
        self.drive = drive.into();
        self
    }

    /// Track QXMD cell `cell` with the LFD site `site` (the shadow
    /// handshake: the cell's Ti off-centering moves the site).
    pub fn track_site(mut self, cell: usize, site: AtomSite) -> Self {
        self.tracked_sites.push((cell, site));
        self
    }

    /// Account host↔device traffic on a shared ledger.
    pub fn ledger(mut self, ledger: Arc<TransferLedger>) -> Self {
        self.ledger = ledger;
        self
    }

    pub fn polarization_axis(mut self, axis: Vec3) -> Self {
        self.polarization_axis = axis;
        self
    }

    /// Where to get the converged ground state from: `Fresh` (always
    /// descend — the default, and the serial oracle's behavior), an
    /// in-memory [`crate::checkpoint::GroundStateCache`], or a checkpoint
    /// file. Warm sources are bit-identical to the cold path: the cached
    /// panel was produced by exactly the descent `build` would run, and
    /// [`Self::config_key`] pins every input that enters it.
    pub fn warm_start(mut self, warm_start: WarmStart) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// The FNV config hash of this builder's ground-state problem: grid,
    /// orbital count, descent parameters, occupations, initial panel, and
    /// the initial potential samples (which capture the ferro-patch
    /// geometry and tracked sites). Cheap relative to the descent — no
    /// orbital refinement runs.
    pub fn config_key(&self) -> u64 {
        let grid = self.wf.grid;
        let vloc0 = assemble_vloc(&grid, &self.tracked_sites, &self.ferro, &self.atoms);
        checkpoint::ground_state_key(
            &grid,
            self.wf.panel_digest(),
            self.occupations.as_slice(),
            &vloc0,
            self.config.descent_eta,
            self.config.descent_steps,
        )
    }

    /// Run the ground-state descent fresh from this builder's inputs (the
    /// cold path), regardless of the warm-start source.
    pub fn ground_state(&self) -> GroundState {
        compute_ground_state(
            &self.config,
            self.wf.clone(),
            &self.occupations,
            &self.tracked_sites,
            &self.ferro,
            &self.atoms,
        )
    }

    /// Resolve the converged ground state through the warm-start source:
    /// fresh descent, cache lookup (computing and caching on a miss), or
    /// checkpoint file (hard error on a missing file, foreign key, wrong
    /// version, or corrupt payload — never a silent fresh descent).
    pub fn resolve_ground_state(&self) -> GroundState {
        match &self.warm_start {
            WarmStart::Fresh => self.ground_state(),
            WarmStart::InMemory(cache) => {
                cache.get_or_compute(self.config_key(), || self.ground_state())
            }
            WarmStart::File(path) => checkpoint::load_for_key(path, self.config_key())
                .unwrap_or_else(|e| {
                    panic!("warm start from checkpoint {} failed: {e}", path.display())
                }),
        }
    }

    /// Build the driver from an already-converged ground state. The
    /// state's config hash must match this builder's
    /// ([`Self::config_key`]) — seeding a driver with a foreign ground
    /// state would silently break the bit-identity discipline.
    pub fn build_with(self, gs: GroundState) -> MeshDriver {
        let expected = self.config_key();
        assert_eq!(
            gs.key, expected,
            "ground state key {:#018x} does not match this builder's config \
             hash {expected:#018x}: grid/orbital-count/descent/geometry differ",
            gs.key
        );
        let mut driver = MeshDriver::from_ground_state(
            self.config,
            gs,
            self.occupations,
            self.atoms,
            self.ferro,
            self.drive,
            self.tracked_sites,
            self.ledger,
        );
        driver.polarization_axis = self.polarization_axis;
        driver.nn_term = self.nn_term;
        driver
    }

    pub fn build(self) -> MeshDriver {
        let gs = self.resolve_ground_state();
        self.build_with(gs)
    }
}

/// The integrated MESH driver for one DC domain coupled to a QXMD
/// supercell.
///
/// Fields the distributed driver (`crate::dist_mesh`) replicates per rank
/// and advances through the shared kernel functions below are
/// `pub(crate)`; everything else is public API.
pub struct MeshDriver {
    pub config: MeshConfig,
    pub shadow: ShadowDomain,
    pub atoms: AtomsSystem,
    pub ferro: FerroModel,
    pub drive: Drive,
    pub polarization_axis: Vec3,
    /// Optional neural-network force term added to the ferroelectric
    /// model in the QXMD stage (see [`MeshDriverBuilder::nn_term`]).
    pub nn_term: Option<Arc<dyn ForceField + Send + Sync>>,
    /// Reference orbital panel (t = 0) for excitation projection.
    pub(crate) psi0: WaveFunctions,
    /// Which reference states were occupied at t = 0 (the projection
    /// target: promotion *out of this subset* is excitation, even into
    /// the panel's own virtual states).
    pub(crate) occupied0: Vec<bool>,
    /// The LFD atom sites tracking selected QXMD degrees of freedom:
    /// (cell index, base site). The Ti displacement of that cell moves the
    /// site, producing the Δv_loc of the shadow handshake.
    pub(crate) tracked_sites: Vec<(usize, AtomSite)>,
    pub(crate) last_vloc: Vec<f64>,
    pub(crate) time_fs: f64,
    pub(crate) hopping: SurfaceHopping,
    /// Band energies ε_s of the last step's post-propagation panel (the
    /// surface-hopping inputs; empty before the first step).
    pub(crate) last_eps: Vec<f64>,
}

impl MeshDriver {
    /// Assemble a driver. `tracked_sites` maps QXMD cells into the LFD
    /// box; `vloc0` must be the potential the shadow domain was
    /// initialized with.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: MeshConfig,
        wf: WaveFunctions,
        occupations: Occupations,
        atoms: AtomsSystem,
        ferro: FerroModel,
        drive: impl Into<Drive>,
        tracked_sites: Vec<(usize, AtomSite)>,
        ledger: Arc<TransferLedger>,
    ) -> Self {
        let gs = compute_ground_state(&config, wf, &occupations, &tracked_sites, &ferro, &atoms);
        Self::from_ground_state(
            config,
            gs,
            occupations,
            atoms,
            ferro,
            drive,
            tracked_sites,
            ledger,
        )
    }

    /// Assemble a driver from an already-converged ground state (the warm
    /// path). [`Self::new`] is exactly `compute_ground_state` followed by
    /// this constructor, which is what makes a warm-started driver
    /// bit-identical to a cold-started one.
    #[allow(clippy::too_many_arguments)]
    pub fn from_ground_state(
        config: MeshConfig,
        gs: GroundState,
        occupations: Occupations,
        atoms: AtomsSystem,
        ferro: FerroModel,
        drive: impl Into<Drive>,
        tracked_sites: Vec<(usize, AtomSite)>,
        ledger: Arc<TransferLedger>,
    ) -> Self {
        let GroundState { panel, vloc0, .. } = gs;
        let psi0 = panel.clone();
        let occupied0: Vec<bool> = (0..occupations.len())
            .map(|s| occupations.f(s) > 0.0)
            .collect();
        let shadow = ShadowDomain::new(panel, occupations, &vloc0, ledger);
        Self {
            config,
            shadow,
            atoms,
            ferro,
            drive: drive.into(),
            polarization_axis: Vec3::EZ,
            nn_term: None,
            psi0,
            occupied0,
            tracked_sites,
            last_vloc: vloc0,
            time_fs: 0.0,
            hopping: SurfaceHopping::new(config.sh_temperature, config.sh_rate),
            last_eps: Vec::new(),
        }
    }

    pub fn time_fs(&self) -> f64 {
        self.time_fs
    }

    /// Band energies of the last step's post-propagation panel — the
    /// surface-hopping inputs (empty before the first step). The
    /// distributed-oracle suite pins these bit-for-bit across rank counts.
    pub fn band_energies(&self) -> &[f64] {
        &self.last_eps
    }

    /// Topological charge of the QM patch's current polar texture (mean
    /// over z-layers).
    pub fn topological_charge(&self) -> f64 {
        patch_topological_charge(&self.ferro, &self.atoms)
    }

    /// Advance one full MESH MD step.
    ///
    /// The body is a sequence of the per-domain kernel functions below —
    /// the exact functions the distributed driver
    /// (`crate::dist_mesh::DistributedMeshDriver`) calls, which is what
    /// makes the serial driver its bit-for-bit oracle (the same seam
    /// [`crate::scf::run_scf_loop`] provides for the SCF drivers).
    pub fn step(&mut self) -> MeshStepRecord {
        let cfg = self.config;
        // --- 1. LFD inner loop under the laser (device side) ---
        let t0_au = units::fs_to_au(self.time_fs);
        let drive = self.drive;
        let pol = self.polarization_axis;
        let psi_before = self.shadow.download_wavefunctions_unmetered();
        let (_, inner) =
            self.shadow
                .run_md_step(move |t| pol * drive.field(t), t0_au, cfg.ehrenfest);
        let psi_after = self.shadow.download_wavefunctions_unmetered();
        // --- 2. excitation measurement (fold of the per-state kernel) ---
        let exc_terms: Vec<f64> = (0..psi_after.norb)
            .map(|s| {
                excitation_state_term(
                    &self.psi0,
                    &self.occupied0,
                    &self.shadow.occupations,
                    &psi_after,
                    s,
                )
            })
            .collect();
        let n_exc = fold_excitation(&exc_terms, &self.occupied0, &self.shadow.occupations);
        // --- 3. surface hopping on the occupations ---
        let dt_md_au = units::fs_to_au(cfg.dt_md_fs);
        let nac = NacMatrix::from_overlaps(
            &psi_before.psi,
            &psi_after.psi,
            psi_after.grid.dv(),
            dt_md_au,
        );
        let eps = band_energies(&psi_after.grid, &self.last_vloc, &psi_after);
        let f = hop_occupations(
            &self.hopping,
            &self.shadow.occupations,
            &eps,
            &nac,
            dt_md_au,
        );
        self.shadow.set_occupations(&f);
        self.last_eps = eps;
        // --- 4. QXMD with excitation-reshaped forces ---
        let pe = advance_atoms(
            &cfg,
            &mut self.ferro,
            &mut self.atoms,
            n_exc,
            self.nn_term.as_deref(),
        );
        // --- 5. shadow handshake: Δv_loc from the moved atoms ---
        self.last_vloc = shadow_handshake(
            &mut self.shadow,
            &psi_after.grid,
            &self.tracked_sites,
            &self.ferro,
            &self.atoms,
            &self.last_vloc,
        );
        self.time_fs += cfg.dt_md_fs;
        make_record(
            self.time_fs,
            n_exc,
            inner.absorbed_energy,
            &self.ferro,
            &self.atoms,
            f,
            pe,
        )
    }

    /// Run `n` MD steps, returning the trajectory of records.
    pub fn run(&mut self, n: usize) -> Vec<MeshStepRecord> {
        (0..n).map(|_| self.step()).collect()
    }
}

// ----------------------------------------------------------------------
// Per-domain MESH step kernels — shared by the serial [`MeshDriver`] and
// the distributed `crate::dist_mesh::DistributedMeshDriver`, exactly as
// `run_scf_loop`/`descend_columns` are shared by the SCF drivers. Each
// kernel either reads/writes a single orbital column (shardable by band
// range, bit-identically) or runs redundantly on replicated inputs.
// ----------------------------------------------------------------------

/// Run the ground-state pre-descent: relax the initial orbitals into
/// adiabatic eigenstates of the initial potential, so the excitation
/// projection measures genuine light-induced promotion rather than basis
/// mismatch. The returned [`GroundState`] is keyed by the FNV config
/// hash over the *inputs* (initial panel, not the converged one), which
/// is what lets a cache or checkpoint answer "is this the descent I
/// would run?" without running it.
pub(crate) fn compute_ground_state(
    config: &MeshConfig,
    mut wf: WaveFunctions,
    occupations: &Occupations,
    tracked_sites: &[(usize, AtomSite)],
    ferro: &FerroModel,
    atoms: &AtomsSystem,
) -> GroundState {
    let grid = wf.grid;
    let vloc0 = assemble_vloc(&grid, tracked_sites, ferro, atoms);
    let key = checkpoint::ground_state_key(
        &grid,
        wf.panel_digest(),
        occupations.as_slice(),
        &vloc0,
        config.descent_eta,
        config.descent_steps,
    );
    crate::scf::refine_orbitals(
        &grid,
        &vloc0,
        &mut wf,
        config.descent_eta,
        config.descent_steps,
    );
    crate::scf::subspace_rotate(&grid, &vloc0, &mut wf);
    GroundState {
        key,
        panel: wf,
        occupations: occupations.as_slice().to_vec(),
        vloc0,
        meta: DescentMeta {
            eta: config.descent_eta,
            steps: config.descent_steps as u64,
        },
    }
}

/// Ionic potential of the tracked sites displaced by their cells'
/// current Ti off-centering (Å → bohr).
pub(crate) fn assemble_vloc(
    grid: &Grid3,
    tracked: &[(usize, AtomSite)],
    ferro: &FerroModel,
    atoms: &AtomsSystem,
) -> Vec<f64> {
    let u = ferro.displacement_field(atoms);
    let sites: Vec<AtomSite> = tracked
        .iter()
        .map(|(cell, base)| {
            let d = u[*cell] * (1.0 / units::BOHR_ANGSTROM);
            AtomSite {
                pos: base.pos + d,
                ..*base
            }
        })
        .collect();
    ionic_potential(grid, &sites)
}

/// One state's contribution to the excitation count:
/// `f_s (1 − Σ_{s' occupied} |⟨ψ_{s'}(0)|ψ_s(t)⟩|²)` for an initially
/// occupied state `s`, `0` otherwise. Reads only column `s` of the
/// current panel, so the band tier shards this kernel over ranks.
pub(crate) fn excitation_state_term(
    psi0: &WaveFunctions,
    occupied0: &[bool],
    occ: &Occupations,
    wf: &WaveFunctions,
    s: usize,
) -> f64 {
    if !occupied0[s] {
        return 0.0;
    }
    let f = occ.f(s);
    if f == 0.0 {
        return 0.0;
    }
    let mut in_span = 0.0;
    for (sp, &occ0) in occupied0.iter().enumerate().take(psi0.norb) {
        if occ0 {
            in_span += psi0.overlap(sp, wf, s).norm_sqr();
        }
    }
    f * (1.0 - in_span.min(1.0))
}

/// Fold the gathered per-state excitation terms in band order, skipping
/// exactly the states the monolithic projection skips. Projecting onto
/// the occupied *span* (inside [`excitation_state_term`]) makes the
/// measure invariant under mixing within the occupied manifold;
/// promotion into the panel's virtual states and leakage beyond the
/// panel both count.
pub(crate) fn fold_excitation(terms: &[f64], occupied0: &[bool], occ: &Occupations) -> f64 {
    let mut n = 0.0;
    for (s, &term) in terms.iter().enumerate() {
        if !occupied0[s] || occ.f(s) == 0.0 {
            continue;
        }
        n += term;
    }
    n
}

/// Surface hopping on the occupations (the `Û_SH` of Eq. (2)): one
/// explicit-Euler master-equation step against the current occupations.
/// Runs redundantly on replicated inputs in the distributed driver.
pub(crate) fn hop_occupations(
    hopping: &SurfaceHopping,
    occ: &Occupations,
    eps: &[f64],
    nac: &NacMatrix,
    dt_md_au: f64,
) -> Vec<f64> {
    let mut f: Vec<f64> = occ.as_slice().to_vec();
    hopping.step(&mut f, eps, nac, dt_md_au);
    f
}

/// QXMD stage: the excitation fraction reshapes the ferroelectric energy
/// landscape (XS forces) and velocity Verlet advances the atoms. Returns
/// the potential energy. Runs redundantly in the distributed driver.
///
/// With `nn: Some(term)` the network term's forces are accumulated on
/// top of the ferroelectric model in every force evaluation of the step;
/// with `None` the stage is the exact pre-existing floating-point
/// program (pinned by the serial/distributed bit-identity tests).
pub(crate) fn advance_atoms(
    cfg: &MeshConfig,
    ferro: &mut FerroModel,
    atoms: &mut AtomsSystem,
    n_exc: f64,
    nn: Option<&(dyn ForceField + Send + Sync)>,
) -> f64 {
    let n_cells = ferro.cell_count();
    let x = (n_exc * cfg.exc_per_cell_scale / n_cells as f64).clamp(0.0, 1.0);
    ferro.set_uniform_excitation(x);
    let vv = VelocityVerlet::new(cfg.dt_md_fs);
    match nn {
        None => {
            ferro.compute(atoms);
            vv.step(atoms, ferro)
        }
        Some(nn) => {
            let combined = FerroPlusNetwork { ferro, nn };
            combined.compute(atoms);
            vv.step(atoms, &combined)
        }
    }
}

/// The ferroelectric model plus a borrowed network term, summed for one
/// QXMD stage.
struct FerroPlusNetwork<'a> {
    ferro: &'a FerroModel,
    nn: &'a (dyn ForceField + Send + Sync),
}

impl ForceField for FerroPlusNetwork<'_> {
    fn accumulate(&self, sys: &mut AtomsSystem) -> f64 {
        self.ferro.accumulate(sys) + self.nn.accumulate(sys)
    }
}

/// Shadow handshake: ship the ionic-motion-induced Δv_loc back to the
/// device and return the new v_loc. Runs redundantly in the distributed
/// driver (every rank's device replica receives the same increment).
pub(crate) fn shadow_handshake(
    shadow: &mut ShadowDomain,
    grid: &Grid3,
    tracked: &[(usize, AtomSite)],
    ferro: &FerroModel,
    atoms: &AtomsSystem,
    last_vloc: &[f64],
) -> Vec<f64> {
    let v_new = assemble_vloc(grid, tracked, ferro, atoms);
    let delta_v: Vec<f64> = v_new.iter().zip(last_vloc).map(|(a, b)| a - b).collect();
    shadow.push_delta_v(&delta_v);
    v_new
}

/// Topological charge of a displacement field on the ferro model's
/// supercell (mean over z-layers) — the one definition both the per-step
/// record and [`MeshDriver::topological_charge`] go through.
fn charge_of_displacements(ferro: &FerroModel, u: Vec<Vec3>) -> f64 {
    let (nx, ny, nz) = ferro.n_cells();
    let field = PolarizationField::new(nx, ny, nz, u);
    TextureReport::analyze(&field).mean_charge
}

/// Topological charge of the QM patch (mean over z-layers of the polar
/// texture the ferro model binds to).
pub(crate) fn patch_topological_charge(ferro: &FerroModel, atoms: &AtomsSystem) -> f64 {
    charge_of_displacements(ferro, ferro.displacement_field(atoms))
}

/// Assemble the per-step record from the post-step state. Runs
/// redundantly in the distributed driver.
pub(crate) fn make_record(
    time_fs: f64,
    n_exc: f64,
    absorbed_energy: f64,
    ferro: &FerroModel,
    atoms: &AtomsSystem,
    occupations: Vec<f64>,
    atom_potential_energy: f64,
) -> MeshStepRecord {
    let u = ferro.displacement_field(atoms);
    let mean_p = u.iter().copied().sum::<Vec3>() / u.len().max(1) as f64;
    let topological_charge = charge_of_displacements(ferro, u);
    MeshStepRecord {
        time_fs,
        n_exc,
        absorbed_energy,
        mean_polarization: mean_p,
        occupations,
        atom_potential_energy,
        topological_charge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::grid::Grid3;
    use mlmd_qxmd::ferro::FerroParams;
    use mlmd_qxmd::perovskite::PerovskiteLattice;

    /// The canonical MESH fixture (8³ grid, 8-state panel, 3×3×3 patch at
    /// the coupled minimum, resonant pulse) — shared with the `mesh_dist`
    /// integration suite, the `mesh_scaling` bench, and the
    /// `distributed_mesh` example.
    fn build_driver(e0: f64) -> MeshDriver {
        crate::fixture::small_mesh_driver(e0)
    }

    #[test]
    fn builder_matches_direct_construction() {
        // The fixture goes through `MeshDriverBuilder`; a driver assembled
        // with the raw constructor from the same inputs must be
        // bit-identical.
        let mut built = build_driver(0.05);
        let grid = Grid3::new(8, 8, 8, 0.5);
        let p = FerroParams::pbtio3();
        let u_star = ((3.0 * p.j_nn - p.a2) / (2.0 * p.a4)).sqrt();
        let lat = PerovskiteLattice::uniform(3, 3, 3, Vec3::new(0.0, 0.0, u_star));
        let mut direct = MeshDriver::new(
            MeshConfig {
                ehrenfest: EhrenfestConfig {
                    dt_qd: 0.05,
                    n_qd: 30,
                    self_consistent: false,
                },
                exc_per_cell_scale: 30.0,
                ..Default::default()
            },
            WaveFunctions::plane_waves(grid, 8),
            Occupations::aufbau(8, 4.0),
            lat.system.clone(),
            FerroModel::new(&lat, p),
            GaussianPulse::new(0.05, 0.8, 4.0, 2.0),
            vec![(
                0,
                AtomSite {
                    pos: Vec3::new(2.0, 2.0, 2.0),
                    z_eff: 1.0,
                    sigma: 0.8,
                },
            )],
            Arc::new(TransferLedger::new()),
        );
        let rd = direct.run(3);
        let rb = built.run(3);
        for (a, b) in rd.iter().zip(&rb) {
            assert_eq!(
                a.n_exc.to_bits(),
                b.n_exc.to_bits(),
                "builder-made driver must be bit-identical to direct construction"
            );
        }
    }

    #[test]
    fn driver_advances_time_and_stays_finite() {
        let mut d = build_driver(0.02);
        let records = d.run(4);
        assert_eq!(records.len(), 4);
        assert!((d.time_fs() - 0.4).abs() < 1e-12);
        for r in &records {
            assert!(r.n_exc.is_finite() && r.n_exc >= 0.0);
            assert!(r.mean_polarization.norm().is_finite());
            assert!(r.occupations.iter().all(|f| (0.0..=2.0).contains(f)));
        }
    }

    #[test]
    fn stronger_pulse_excites_more() {
        // Dark vs lit: the pulse must dominate the residual
        // eigenstate-imperfection noise by a clear factor.
        let mut dark = build_driver(0.0);
        let mut lit = build_driver(0.1);
        let rd = dark.run(5);
        let rl = lit.run(5);
        let nd = rd.last().unwrap().n_exc;
        let nl = rl.last().unwrap().n_exc;
        assert!(
            nl > nd + 0.02,
            "pulse must excite well above the dark baseline: {nl} vs {nd}"
        );
    }

    #[test]
    fn excitation_suppresses_polarization_dynamics() {
        // With heavy excitation the double well flattens: polarization
        // decays toward zero faster than in the unexcited run.
        let mut dark = build_driver(0.0);
        let mut lit = build_driver(0.08);
        let rd = dark.run(8);
        let rl = lit.run(8);
        let pd = rd.last().unwrap().mean_polarization.z;
        let pl = rl.last().unwrap().mean_polarization.z;
        assert!(
            pl <= pd + 1e-9,
            "excited lattice must depolarize at least as fast: {pl} vs {pd}"
        );
    }

    #[test]
    fn shadow_invariant_holds_through_full_mesh_loop() {
        let mut d = build_driver(0.03);
        let ledger = d.shadow.ledger.clone();
        ledger.reset();
        let psi_bytes = d.shadow.psi_bytes();
        d.run(3);
        // No wave-function-sized transfer may occur inside the loop.
        let per_step = ledger.total_bytes() / 3;
        assert!(
            per_step < psi_bytes,
            "per-step link traffic {per_step} must stay below ψ bytes {psi_bytes}"
        );
    }

    #[test]
    fn occupations_respond_to_dynamics() {
        let mut d = build_driver(0.08);
        let before: f64 = d.shadow.occupations.as_slice().iter().sum();
        let records = d.run(6);
        let after: f64 = records.last().unwrap().occupations.iter().sum();
        // Total occupation conserved by the hopping master equation.
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn nn_term_contributes_forces_to_the_qxmd_stage() {
        use mlmd_nnqmd::{AllegroLite, ModelConfig as NnConfig, NnForceField};

        let model = AllegroLite::new(
            NnConfig {
                hidden: 6,
                k_max: 4,
                rcut: 3.5,
            },
            17,
        );
        let mut plain = crate::fixture::small_mesh_driver(0.05);
        let mut hybrid = crate::fixture::small_mesh_builder(0.05)
            .nn_term(Arc::new(NnForceField::with_batches(model, 1)))
            .build();
        let rp = plain.run(2);
        let rh = hybrid.run(2);
        // The network term shifts the potential energy surface: the QXMD
        // stage must see it in both the energy and the trajectory it
        // produces (the fixture's dark ferro stage alone is force-free at
        // the coupled minimum, so any motion here is the nn term's).
        assert_ne!(
            rp[0].atom_potential_energy.to_bits(),
            rh[0].atom_potential_energy.to_bits(),
            "nn term must change the reported potential energy"
        );
        let moved = plain
            .atoms
            .positions
            .iter()
            .zip(&hybrid.atoms.positions)
            .any(|(a, b)| (*a - *b).norm() > 1e-12);
        assert!(moved, "nn forces must perturb the atomic trajectory");
        for r in &rh {
            assert!(
                r.atom_potential_energy.is_finite(),
                "hybrid stage must stay finite"
            );
        }
    }

    #[test]
    fn omitting_the_nn_term_is_bit_identical_to_the_plain_builder() {
        // `nn_term` defaults to `None`; a builder that never touches it and
        // one that does not exist yet in older call sites must agree —
        // i.e. the seam is invisible unless opted into.
        let ra = crate::fixture::small_mesh_builder(0.05).build().run(3);
        let rb = crate::fixture::small_mesh_driver(0.05).run(3);
        for (a, b) in ra.iter().zip(&rb) {
            assert_eq!(a.n_exc.to_bits(), b.n_exc.to_bits());
            assert_eq!(
                a.atom_potential_energy.to_bits(),
                b.atom_potential_energy.to_bits()
            );
        }
    }
}
