//! Ground-state checkpointing and warm-start sources.
//!
//! The converged pre-descent eigenstate panel of a MESH domain (the
//! `refine_orbitals` + `subspace_rotate` relaxation in
//! [`crate::mesh::MeshDriver`] construction) is a pure function of the
//! grid, the initial panel, the occupations, the descent parameters, and
//! the initial potential `v_loc⁰` — and it is by far the most expensive
//! part of driver construction. This module makes that work reusable:
//!
//! * [`GroundState`] — the converged panel plus the inputs a driver
//!   needs to resume from it (occupations, `v_loc⁰`, descent metadata),
//!   keyed by an FNV config hash ([`ground_state_key`]);
//! * [`GroundStateCache`] — a thread-safe in-memory map from config key
//!   to ground state, with a process-wide instance
//!   ([`GroundStateCache::global`]) so `RunPlan` batches and
//!   `pump_probe_sweep` amplitudes share one descent per config
//!   (N amplitudes = 1 descent);
//! * [`WarmStart`] — the source a builder resolves its ground state
//!   from: `Fresh` (always descend), `InMemory` (a cache), or `File` (a
//!   checkpoint on disk);
//! * the **checkpoint format** — a versioned, self-describing binary
//!   frame ([`encode_checkpoint`]/[`decode_checkpoint`],
//!   [`save_checkpoint`]/[`load_checkpoint`]): magic, format version,
//!   config hash, length-prefixed payload, and a trailing FNV digest
//!   over the payload bytes. A wrong magic/version/key is a hard,
//!   diagnosable [`CheckpointError`]; a corrupted or truncated payload
//!   is caught by the digest before any field is trusted.
//!
//! The warm path is bit-identical to the cold path by construction: a
//! cached or checkpointed panel was produced by exactly the descent the
//! cold path would run on the same inputs, and the config key pins every
//! input that enters that descent (the ferro-patch geometry and tracked
//! sites are captured through the `v_loc⁰` samples). Quantities that do
//! *not* affect the ground state — the pulse, the MD time step, the
//! surface-hopping parameters — are deliberately excluded, which is what
//! lets every amplitude of a pump–probe sweep share one key.

use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::codec::{fnv1a_bytes, ByteReader, ByteWriter, CodecError, Fnv64};
use mlmd_numerics::grid::Grid3;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// First 8 bytes of every checkpoint: `b"MLMDGSCP"` as a little-endian
/// u64 ("MLMD ground-state checkpoint").
pub const CHECKPOINT_MAGIC: u64 = u64::from_le_bytes(*b"MLMDGSCP");
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Domain separator folded first into every MESH ground-state key.
const MESH_KEY_SALT: u64 = u64::from_le_bytes(*b"mesh-gs\0");
/// Domain separator folded first into every DC-SCF domain key.
const SCF_KEY_SALT: u64 = u64::from_le_bytes(*b"dcscf-gs");

/// Descent parameters the checkpointed panel was converged with.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DescentMeta {
    /// Steepest-descent damping η.
    pub eta: f64,
    /// Descent sweep count.
    pub steps: u64,
}

/// A converged ground state: the relaxed orbital panel plus everything a
/// driver needs to resume from it, keyed by the FNV config hash of the
/// inputs that produced it.
#[derive(Clone, Debug)]
pub struct GroundState {
    /// Config hash of the producing inputs (see [`ground_state_key`]).
    pub key: u64,
    /// The converged orbital panel.
    pub panel: WaveFunctions,
    /// Occupations `f_s` the panel was converged with.
    pub occupations: Vec<f64>,
    /// Initial local potential `v_loc⁰` the descent ran against.
    pub vloc0: Vec<f64>,
    /// Descent parameters used.
    pub meta: DescentMeta,
}

/// FNV config hash identifying a MESH ground-state problem: grid shape
/// and spacing, orbital count, descent parameters, occupations, the
/// initial panel, and the `v_loc⁰` samples (which encode the ferro-patch
/// geometry and tracked sites). Everything that enters the pre-descent —
/// and nothing that doesn't.
pub fn ground_state_key(
    grid: &Grid3,
    initial_panel_digest: u64,
    occupations: &[f64],
    vloc0: &[f64],
    eta: f64,
    steps: usize,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(MESH_KEY_SALT);
    h.write_u64(grid.nx as u64);
    h.write_u64(grid.ny as u64);
    h.write_u64(grid.nz as u64);
    h.write_f64(grid.h);
    h.write_f64(eta);
    h.write_u64(steps as u64);
    h.write_u64(occupations.len() as u64);
    for &f in occupations {
        h.write_f64(f);
    }
    h.write_u64(initial_panel_digest);
    h.write_u64(vloc0.len() as u64);
    for &v in vloc0 {
        h.write_f64(v);
    }
    h.finish()
}

/// FNV config hash identifying one DC-SCF domain's initial-panel
/// problem: the domain grid, orbital count, electron count, and the RNG
/// seed of the serial initial guess (`seed + domain_index`).
pub fn scf_domain_key(grid: &Grid3, norb: usize, electrons: f64, seed: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(SCF_KEY_SALT);
    h.write_u64(grid.nx as u64);
    h.write_u64(grid.ny as u64);
    h.write_u64(grid.nz as u64);
    h.write_f64(grid.h);
    h.write_u64(norb as u64);
    h.write_f64(electrons);
    h.write_u64(seed);
    h.finish()
}

/// One key's slot: either a finished ground state, or a marker that some
/// thread is currently computing it (with the rendezvous the waiters
/// block on).
enum Slot {
    Ready(GroundState),
    InFlight(Arc<InFlight>),
}

/// Rendezvous for concurrent `get_or_compute` callers on the same key:
/// the first caller computes, the rest wait here.
struct InFlight {
    state: Mutex<FlightState>,
    done: Condvar,
}

enum FlightState {
    Pending,
    Done(GroundState),
    /// The computing closure panicked; waiters re-enter the loop and one
    /// of them becomes the new computer.
    Failed,
}

impl InFlight {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock().expect("in-flight slot poisoned") = state;
        self.done.notify_all();
    }
}

/// Panic guard armed while `compute` runs: if the closure unwinds, the
/// in-flight slot is removed from the map and its waiters released with
/// `Failed` (so they retry instead of hanging forever on a descent that
/// will never finish).
struct FlightGuard<'a> {
    cache: &'a GroundStateCache,
    key: u64,
    flight: Arc<InFlight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut map = self.cache.inner.map.lock().expect("cache poisoned");
        if matches!(map.get(&self.key), Some(Slot::InFlight(f)) if Arc::ptr_eq(f, &self.flight)) {
            map.remove(&self.key);
        }
        drop(map);
        self.flight.resolve(FlightState::Failed);
    }
}

struct CacheInner {
    map: Mutex<HashMap<u64, Slot>>,
    computes: AtomicU64,
}

/// A thread-safe in-memory map from config key to converged ground
/// state. Cloning shares the underlying store (it is a handle, not a
/// copy).
#[derive(Clone)]
pub struct GroundStateCache {
    inner: Arc<CacheInner>,
}

impl GroundStateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(CacheInner {
                map: Mutex::new(HashMap::new()),
                computes: AtomicU64::new(0),
            }),
        }
    }

    /// The process-wide cache: every handle returned here shares one
    /// store, so `RunPlan` batches, `pump_probe_sweep` amplitudes, and
    /// repeated pipeline constructions in one process all reuse the same
    /// converged ground states.
    pub fn global() -> Self {
        static GLOBAL: OnceLock<GroundStateCache> = OnceLock::new();
        GLOBAL.get_or_init(GroundStateCache::new).clone()
    }

    /// Look up a *finished* ground state by config key (an in-flight
    /// computation is not visible here).
    pub fn get(&self, key: u64) -> Option<GroundState> {
        match self.inner.map.lock().expect("cache poisoned").get(&key) {
            Some(Slot::Ready(gs)) => Some(gs.clone()),
            _ => None,
        }
    }

    /// Insert a ground state under its own key.
    pub fn insert(&self, gs: GroundState) {
        self.inner
            .map
            .lock()
            .expect("cache poisoned")
            .insert(gs.key, Slot::Ready(gs));
    }

    /// Return the cached ground state for `key`, computing and caching
    /// it on a miss. `compute` runs outside the lock, and concurrent
    /// callers on the same key are serialized through an in-flight
    /// guard: exactly one caller runs the descent, the rest block until
    /// it publishes (no thundering herd — `computes()` counts one per
    /// key no matter how many threads race). If the computing closure
    /// panics, the waiters are released and one of them retries.
    pub fn get_or_compute(&self, key: u64, compute: impl FnOnce() -> GroundState) -> GroundState {
        let flight = loop {
            // One lock round decides this caller's role: hit, waiter, or
            // computer (installing the in-flight marker atomically).
            let waited = {
                let mut map = self.inner.map.lock().expect("cache poisoned");
                match map.get(&key) {
                    Some(Slot::Ready(gs)) => return gs.clone(),
                    Some(Slot::InFlight(f)) => Arc::clone(f),
                    None => {
                        let f = Arc::new(InFlight::new());
                        map.insert(key, Slot::InFlight(Arc::clone(&f)));
                        break f;
                    }
                }
            };
            let mut state = waited.state.lock().expect("in-flight slot poisoned");
            while matches!(*state, FlightState::Pending) {
                state = waited.done.wait(state).expect("in-flight slot poisoned");
            }
            match &*state {
                FlightState::Done(gs) => return gs.clone(),
                // Computer panicked: retry (this caller may become the
                // new computer on the next loop round).
                FlightState::Failed => continue,
                FlightState::Pending => unreachable!("loop exits only on Done/Failed"),
            }
        };
        let mut guard = FlightGuard {
            cache: self,
            key,
            flight: Arc::clone(&flight),
            armed: true,
        };
        let gs = compute();
        assert_eq!(
            gs.key, key,
            "cache key {key:#018x} does not match the computed ground state's key {:#018x}",
            gs.key
        );
        self.inner.computes.fetch_add(1, Ordering::Relaxed);
        {
            let mut map = self.inner.map.lock().expect("cache poisoned");
            map.insert(key, Slot::Ready(gs.clone()));
        }
        guard.armed = false;
        flight.resolve(FlightState::Done(gs.clone()));
        gs
    }

    /// Number of cached (finished) ground states.
    pub fn len(&self) -> usize {
        self.inner
            .map
            .lock()
            .expect("cache poisoned")
            .values()
            .filter(|slot| matches!(slot, Slot::Ready(_)))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many ground states this cache has had to compute (misses that
    /// ran the descent) — the counter the "N amplitudes = 1 descent"
    /// claim is pinned with.
    pub fn computes(&self) -> u64 {
        self.inner.computes.load(Ordering::Relaxed)
    }
}

impl Default for GroundStateCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GroundStateCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroundStateCache")
            .field("len", &self.len())
            .field("computes", &self.computes())
            .finish()
    }
}

/// Where a driver builder gets its converged ground state from.
#[derive(Clone, Debug, Default)]
pub enum WarmStart {
    /// Always run the descent from the initial panel (the cold path —
    /// the serial oracle's behavior).
    #[default]
    Fresh,
    /// Reuse (or populate) an in-memory cache keyed by config hash.
    InMemory(GroundStateCache),
    /// Load a checkpoint file; a missing file, wrong version, or key
    /// mismatch is a hard error, never a silent fresh descent.
    File(PathBuf),
}

/// The `Copy` policy form of [`WarmStart`] that rides inside
/// `PipelineConfig` (which is `Copy`, so it cannot hold a cache handle
/// or a path): `ProcessCache` resolves to
/// `WarmStart::InMemory(GroundStateCache::global())` at build time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WarmStartPolicy {
    /// Descend fresh on every construction.
    Fresh,
    /// Share converged ground states process-wide by config hash.
    #[default]
    ProcessCache,
}

impl WarmStartPolicy {
    /// Resolve the policy to a concrete source.
    pub fn to_warm_start(self) -> WarmStart {
        match self {
            WarmStartPolicy::Fresh => WarmStart::Fresh,
            WarmStartPolicy::ProcessCache => WarmStart::InMemory(GroundStateCache::global()),
        }
    }
}

/// Why a checkpoint could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// The file does not start with [`CHECKPOINT_MAGIC`].
    BadMagic {
        found: u64,
    },
    /// The format version is not [`CHECKPOINT_VERSION`].
    VersionMismatch {
        found: u32,
        expected: u32,
    },
    /// The checkpoint's config hash is not the one the loading
    /// configuration computed — it was written for a different problem.
    KeyMismatch {
        found: u64,
        expected: u64,
    },
    /// The frame ended before the declared payload + digest.
    Truncated {
        needed: usize,
        remaining: usize,
    },
    /// The trailing digest does not match the payload bytes (corruption).
    DigestMismatch {
        found: u64,
        expected: u64,
    },
    /// The payload parsed but its fields are inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { found } => write!(
                f,
                "not a ground-state checkpoint: magic {found:#018x}, \
                 expected {CHECKPOINT_MAGIC:#018x}"
            ),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} unsupported (this build reads \
                 version {expected}); re-save the checkpoint with this build"
            ),
            CheckpointError::KeyMismatch { found, expected } => write!(
                f,
                "checkpoint config hash {found:#018x} does not match this \
                 configuration's hash {expected:#018x}: the checkpoint was written \
                 for a different grid/orbital-count/descent/geometry"
            ),
            CheckpointError::Truncated { needed, remaining } => write!(
                f,
                "checkpoint truncated: needed {needed} more bytes, {remaining} remaining"
            ),
            CheckpointError::DigestMismatch { found, expected } => write!(
                f,
                "checkpoint payload digest {found:#018x} != stored {expected:#018x}: \
                 payload corrupted"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { needed, remaining } => {
                CheckpointError::Truncated { needed, remaining }
            }
            // Codec-level framing errors carry no location payload; map
            // them onto the matching checkpoint variants with a zeroed
            // "found" word (the codec already rejected the frame).
            CodecError::BadMagic => CheckpointError::BadMagic { found: 0 },
            CodecError::BadDigest => CheckpointError::DigestMismatch {
                found: 0,
                expected: 0,
            },
        }
    }
}

/// The self-describing prefix of a checkpoint, readable without
/// deserializing the panel — what `scripts/ckpt_header.sh` prints.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointHeader {
    pub version: u32,
    pub config_hash: u64,
    pub payload_len: u64,
    pub meta: DescentMeta,
    /// Panel shape: (nx, ny, nz), grid spacing, orbital count.
    pub grid: (u64, u64, u64),
    pub grid_h: f64,
    pub norb: u64,
}

/// Encode a ground state into the versioned checkpoint frame:
/// magic, version, config hash, payload length, payload (descent meta,
/// panel, occupations, `v_loc⁰`), trailing FNV digest over the payload
/// bytes.
pub fn encode_checkpoint(gs: &GroundState) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.put_f64(gs.meta.eta);
    payload.put_u64(gs.meta.steps);
    gs.panel.encode(&mut payload);
    payload.put_u64(gs.occupations.len() as u64);
    for &f in &gs.occupations {
        payload.put_f64(f);
    }
    payload.put_u64(gs.vloc0.len() as u64);
    for &v in &gs.vloc0 {
        payload.put_f64(v);
    }
    let payload = payload.into_bytes();
    let mut frame = ByteWriter::new();
    frame.put_u64(CHECKPOINT_MAGIC);
    frame.put_u32(CHECKPOINT_VERSION);
    frame.put_u64(gs.key);
    frame.put_u64(payload.len() as u64);
    frame.put_bytes(&payload);
    frame.put_u64(fnv1a_bytes(&payload));
    frame.into_bytes()
}

/// Validate magic/version and return (config hash, payload bytes) with
/// the digest already checked.
fn checked_payload(bytes: &[u8]) -> Result<(u64, &[u8]), CheckpointError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take_u64()?;
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic { found: magic });
    }
    let version = r.take_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let key = r.take_u64()?;
    let payload_len = r.take_u64()? as usize;
    let payload = r.take_bytes(payload_len)?;
    let stored_digest = r.take_u64()?;
    let found = fnv1a_bytes(payload);
    if found != stored_digest {
        return Err(CheckpointError::DigestMismatch {
            found,
            expected: stored_digest,
        });
    }
    Ok((key, payload))
}

/// Decode a checkpoint frame produced by [`encode_checkpoint`],
/// validating magic, version, and the trailing payload digest.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<GroundState, CheckpointError> {
    let (key, payload) = checked_payload(bytes)?;
    let mut r = ByteReader::new(payload);
    let eta = r.take_f64()?;
    let steps = r.take_u64()?;
    let panel = WaveFunctions::decode(&mut r)?;
    let n_occ = r.take_u64()? as usize;
    let mut occupations = Vec::with_capacity(n_occ);
    for _ in 0..n_occ {
        occupations.push(r.take_f64()?);
    }
    if occupations.len() != panel.norb {
        return Err(CheckpointError::Malformed(
            "occupation count does not match the panel's orbital count",
        ));
    }
    let n_vloc = r.take_u64()? as usize;
    let mut vloc0 = Vec::with_capacity(n_vloc);
    for _ in 0..n_vloc {
        vloc0.push(r.take_f64()?);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Malformed("trailing bytes after payload"));
    }
    Ok(GroundState {
        key,
        panel,
        occupations,
        vloc0,
        meta: DescentMeta { eta, steps },
    })
}

/// Read only the self-describing prefix (version, config hash, descent
/// meta, panel shape) — the digest over the full payload is still
/// verified first, so a header is never reported from a corrupt file.
pub fn read_header(path: &Path) -> Result<CheckpointHeader, CheckpointError> {
    let bytes = std::fs::read(path)?;
    let mut r = ByteReader::new(&bytes);
    let _ = r.take_u64()?; // magic, re-validated below
    let version = r.take_u32()?;
    let (config_hash, payload) = checked_payload(&bytes)?;
    let mut p = ByteReader::new(payload);
    let eta = p.take_f64()?;
    let steps = p.take_u64()?;
    let nx = p.take_u64()?;
    let ny = p.take_u64()?;
    let nz = p.take_u64()?;
    let grid_h = p.take_f64()?;
    let norb = p.take_u64()?;
    Ok(CheckpointHeader {
        version,
        config_hash,
        payload_len: payload.len() as u64,
        meta: DescentMeta { eta, steps },
        grid: (nx, ny, nz),
        grid_h,
        norb,
    })
}

/// Write `gs` as a checkpoint file.
pub fn save_checkpoint(gs: &GroundState, path: &Path) -> Result<(), CheckpointError> {
    std::fs::write(path, encode_checkpoint(gs))?;
    Ok(())
}

/// Load a checkpoint file (magic, version, and digest validated).
pub fn load_checkpoint(path: &Path) -> Result<GroundState, CheckpointError> {
    decode_checkpoint(&std::fs::read(path)?)
}

/// Load a checkpoint file and require its config hash to be `expected` —
/// the loading path every warm start goes through, so a checkpoint can
/// never silently seed a different problem.
pub fn load_for_key(path: &Path, expected: u64) -> Result<GroundState, CheckpointError> {
    let gs = load_checkpoint(path)?;
    if gs.key != expected {
        return Err(CheckpointError::KeyMismatch {
            found: gs.key,
            expected,
        });
    }
    Ok(gs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_gs(seed: u64) -> GroundState {
        let grid = Grid3::new(4, 4, 4, 0.5);
        let panel = WaveFunctions::random(grid, 3, seed);
        let occupations = vec![2.0, 1.0, 0.0];
        let vloc0: Vec<f64> = (0..grid.len()).map(|i| -1.0 / (1.0 + i as f64)).collect();
        let key = ground_state_key(&grid, panel.panel_digest(), &occupations, &vloc0, 0.1, 60);
        GroundState {
            key,
            panel,
            occupations,
            vloc0,
            meta: DescentMeta {
                eta: 0.1,
                steps: 60,
            },
        }
    }

    #[test]
    fn checkpoint_round_trip_is_bit_identical() {
        let gs = sample_gs(7);
        let bytes = encode_checkpoint(&gs);
        let back = decode_checkpoint(&bytes).expect("round trip");
        assert_eq!(back.key, gs.key);
        assert_eq!(back.meta, gs.meta);
        assert_eq!(back.panel.panel_digest(), gs.panel.panel_digest());
        let occ_bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(occ_bits(&back.occupations), occ_bits(&gs.occupations));
        assert_eq!(occ_bits(&back.vloc0), occ_bits(&gs.vloc0));
    }

    #[test]
    fn bad_magic_and_version_are_hard_errors() {
        let gs = sample_gs(1);
        let mut bytes = encode_checkpoint(&gs);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xff;
        assert!(matches!(
            decode_checkpoint(&wrong_magic),
            Err(CheckpointError::BadMagic { .. })
        ));
        // Bump the version field (bytes 8..12).
        bytes[8] = bytes[8].wrapping_add(1);
        match decode_checkpoint(&bytes) {
            Err(CheckpointError::VersionMismatch { found, expected }) => {
                assert_eq!(expected, CHECKPOINT_VERSION);
                assert_ne!(found, expected);
            }
            other => panic!("want VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_digest() {
        let gs = sample_gs(2);
        let mut bytes = encode_checkpoint(&gs);
        // Flip one bit in the middle of the payload region.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(CheckpointError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let gs = sample_gs(3);
        let bytes = encode_checkpoint(&gs);
        for cut in [bytes.len() - 1, bytes.len() / 2, 10] {
            assert!(
                matches!(
                    decode_checkpoint(&bytes[..cut]),
                    Err(CheckpointError::Truncated { .. })
                ),
                "cut at {cut} must be Truncated"
            );
        }
    }

    #[test]
    fn cache_computes_once_per_key() {
        let cache = GroundStateCache::new();
        let gs = sample_gs(4);
        let key = gs.key;
        let first = cache.get_or_compute(key, || gs.clone());
        let second = cache.get_or_compute(key, || panic!("must hit the cache"));
        assert_eq!(cache.computes(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(first.panel.panel_digest(), second.panel.panel_digest());
    }

    #[test]
    fn concurrent_callers_compute_exactly_once() {
        // Thundering-herd regression: N threads race get_or_compute on
        // one key with a slow compute. The in-flight guard must let
        // exactly one descent run; before the fix every racer that
        // missed ran its own.
        let cache = GroundStateCache::new();
        let gs = sample_gs(8);
        let key = gs.key;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let gs = gs.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute(key, move || {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        gs
                    })
                })
            })
            .collect();
        let digests: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("racer panicked").panel.panel_digest())
            .collect();
        assert_eq!(cache.computes(), 1, "exactly one descent per key");
        assert_eq!(cache.len(), 1);
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn failed_compute_releases_waiters_and_allows_retry() {
        let cache = GroundStateCache::new();
        let gs = sample_gs(9);
        let key = gs.key;
        // First computer panics; the slot must be cleaned up…
        let panicker = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                cache.get_or_compute(key, || panic!("descent diverged"));
            })
        };
        assert!(panicker.join().is_err());
        assert_eq!(cache.computes(), 0);
        assert_eq!(cache.len(), 0);
        // …so a later caller computes fresh instead of hanging.
        let back = cache.get_or_compute(key, || gs.clone());
        assert_eq!(back.panel.panel_digest(), gs.panel.panel_digest());
        assert_eq!(cache.computes(), 1);
    }

    #[test]
    fn keys_separate_problems_and_salt_domains() {
        let grid = Grid3::new(4, 4, 4, 0.5);
        let a = WaveFunctions::random(grid, 2, 1);
        let occ = [2.0, 0.0];
        let v = vec![0.0; grid.len()];
        let base = ground_state_key(&grid, a.panel_digest(), &occ, &v, 0.1, 60);
        // Each descent parameter participates in the hash.
        assert_ne!(
            base,
            ground_state_key(&grid, a.panel_digest(), &occ, &v, 0.2, 60)
        );
        assert_ne!(
            base,
            ground_state_key(&grid, a.panel_digest(), &occ, &v, 0.1, 61)
        );
        // The SCF key space cannot collide with the MESH key space by
        // construction (different leading salt).
        assert_ne!(base, scf_domain_key(&grid, 2, 2.0, 42));
    }

    #[test]
    fn header_reads_shape_without_decoding_panel() {
        let gs = sample_gs(5);
        let dir = std::env::temp_dir().join("mlmd_ckpt_header_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gs.ckpt");
        save_checkpoint(&gs, &path).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(h.version, CHECKPOINT_VERSION);
        assert_eq!(h.config_hash, gs.key);
        assert_eq!(h.grid, (4, 4, 4));
        assert_eq!(h.norb, 3);
        assert_eq!(h.meta, gs.meta);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_for_key_rejects_foreign_checkpoints() {
        let gs = sample_gs(6);
        let dir = std::env::temp_dir().join("mlmd_ckpt_key_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gs.ckpt");
        save_checkpoint(&gs, &path).unwrap();
        assert!(load_for_key(&path, gs.key).is_ok());
        match load_for_key(&path, gs.key ^ 1) {
            Err(CheckpointError::KeyMismatch { found, expected }) => {
                assert_eq!(found, gs.key);
                assert_eq!(expected, gs.key ^ 1);
            }
            other => panic!("want KeyMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
