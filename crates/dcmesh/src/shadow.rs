//! Shadow dynamics — the CPU↔GPU minimal-information handshake
//! (paper Sec. V.A.3, Fig. 2b).
//!
//! "To minimize data transfer between CPU and GPU, we adopt a shadow
//! dynamics approach, in which a GPU-resident proxy is solved to capture
//! effective action of LFD on QXMD through electronic occupation numbers
//! f_s ∈ \[0,1\], which are negligible compared to the large memory
//! footprint of KS wave functions represented on many spatial grid
//! points."
//!
//! [`ShadowDomain`] owns the GPU-resident wave-function state (a
//! [`DeviceBuffer`]) and funnels *all* CPU↔GPU traffic through two calls:
//!
//! * [`ShadowDomain::push_delta_v`] — QXMD → LFD: the change in local
//!   potential since the last MD step (H2D, `Ngrid` doubles);
//! * [`ShadowDomain::run_md_step`] — N_QD device-side QD steps (zero
//!   transfer), then LFD → QXMD: `Δf`, `n_exc`, and `J` (D2H, `Norb + 4`
//!   doubles).
//!
//! The transfer ledger makes the amortization claim a unit-testable
//! inequality: per MD step, bytes moved ≪ wave-function bytes, and
//! wave-function bytes move exactly once (at initialization).

use crate::ehrenfest::{run_inner_loop, EhrenfestConfig, EhrenfestResult};
use mlmd_lfd::occupation::Occupations;
use mlmd_lfd::propagator::QdStep;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_numerics::complex::c64;
use mlmd_numerics::vec3::Vec3;
use mlmd_parallel::buffer::DeviceBuffer;
use mlmd_parallel::device::TransferLedger;
use std::sync::Arc;

/// Per-domain shadow-coupled LFD state.
pub struct ShadowDomain {
    /// GPU-resident wave functions (flattened complex panel).
    device_psi: DeviceBuffer<c64>,
    /// GPU-resident frozen potential.
    device_v: DeviceBuffer<f64>,
    /// Host-side template (grid/norb bookkeeping; data lives on device).
    wf_shape: WaveFunctions,
    pub occupations: Occupations,
    pub qd: QdStep,
    pub ledger: Arc<TransferLedger>,
    /// Vector potential carried across MD steps.
    pub a: Vec3,
}

/// What comes back up the link each MD step (the D2H payload).
#[derive(Clone, Debug)]
pub struct ShadowReport {
    pub delta_f: Vec<f64>,
    pub n_exc: f64,
    pub current: Vec3,
    pub absorbed_energy: f64,
}

impl ShadowDomain {
    /// Initialize: uploads the wave functions and potential once
    /// (`enter data map(to)` — the only O(Ngrid·Norb) transfer ever).
    pub fn new(
        wf: WaveFunctions,
        occupations: Occupations,
        vloc: &[f64],
        ledger: Arc<TransferLedger>,
    ) -> Self {
        let qd = QdStep::new(wf.grid);
        let device_psi = DeviceBuffer::from_host(wf.psi.as_slice(), Arc::clone(&ledger));
        let device_v = DeviceBuffer::from_host(vloc, Arc::clone(&ledger));
        Self {
            device_psi,
            device_v,
            wf_shape: WaveFunctions::zeros(wf.grid, wf.norb),
            occupations,
            qd,
            ledger,
            a: Vec3::ZERO,
        }
    }

    /// Wave-function footprint (bytes) — the quantity shadow dynamics
    /// keeps off the link.
    pub fn psi_bytes(&self) -> u64 {
        self.device_psi.bytes()
    }

    /// QXMD → LFD: ship the potential change (H2D of `Ngrid` doubles).
    pub fn push_delta_v(&mut self, delta_v: &[f64]) {
        assert_eq!(delta_v.len(), self.device_v.len());
        // Apply increment device-side after a minimal H2D of the delta.
        // (Modeled as an upload of the delta array.)
        let mut merged = self.device_v.device_slice().to_vec();
        for (m, d) in merged.iter_mut().zip(delta_v) {
            *m += d;
        }
        self.device_v.upload(&merged);
    }

    /// Run one MD step's worth of device-side QD dynamics and return the
    /// small-payload report (D2H of `Norb + 4` doubles, modeled).
    pub fn run_md_step(
        &mut self,
        field: impl Fn(f64) -> Vec3,
        t0: f64,
        cfg: EhrenfestConfig,
    ) -> (ShadowReport, EhrenfestResult) {
        // Device-side compute: operate directly on the device buffers
        // (no ledger traffic — this is `use_device_ptr` territory).
        let mut wf = WaveFunctions::zeros(self.wf_shape.grid, self.wf_shape.norb);
        wf.psi
            .as_mut_slice()
            .copy_from_slice(self.device_psi.device_slice());
        let vloc = self.device_v.device_slice().to_vec();
        let result = run_inner_loop(
            &self.qd,
            &mut wf,
            &self.occupations,
            &vloc,
            self.a,
            field,
            t0,
            cfg,
        );
        self.a = result.a_final;
        self.device_psi
            .device_slice_mut()
            .copy_from_slice(wf.psi.as_slice());
        // The report payload crosses the link: Δf (Norb) + n_exc + J (4).
        self.record_report_payload();
        let j_mean = if result.current_trace.is_empty() {
            0.0
        } else {
            result.current_trace.iter().sum::<f64>() / result.current_trace.len() as f64
        };
        let report = ShadowReport {
            delta_f: self.occupations.delta_f(),
            n_exc: self.occupations.n_exc(),
            current: Vec3::new(j_mean, 0.0, 0.0),
            absorbed_energy: result.absorbed_energy,
        };
        (report, result)
    }

    /// Update occupations from surface hopping (host side computes the
    /// hopping; the new f_s are part of the next step's device inputs but
    /// are O(Norb) — accounted as an upload).
    pub fn set_occupations(&mut self, f: &[f64]) {
        self.ledger.record_h2d(std::mem::size_of_val(f) as u64);
        self.occupations = Occupations::new(f.to_vec());
    }

    /// Read back the full wave functions (big D2H — only for analysis /
    /// checkpointing, never in the MD loop).
    pub fn download_wavefunctions(&self) -> WaveFunctions {
        let data = self.device_psi.download();
        let mut wf = WaveFunctions::zeros(self.wf_shape.grid, self.wf_shape.norb);
        wf.psi.as_mut_slice().copy_from_slice(&data);
        wf
    }

    /// Device-side view of the wave functions for computations that run
    /// *on* the GPU in the paper (NAC overlaps, excitation projections,
    /// band energies) — no link traffic, like `use_device_ptr`.
    pub fn download_wavefunctions_unmetered(&self) -> WaveFunctions {
        let mut wf = WaveFunctions::zeros(self.wf_shape.grid, self.wf_shape.norb);
        wf.psi
            .as_mut_slice()
            .copy_from_slice(self.device_psi.device_slice());
        wf
    }

    /// Device-side overwrite of the wave functions — the write half of
    /// `use_device_ptr`, used by the distributed MESH driver to install
    /// the allgathered panel after a band-sharded inner loop (device-side
    /// compute, no link traffic).
    pub fn upload_wavefunctions_unmetered(&mut self, wf: &WaveFunctions) {
        assert_eq!(wf.grid, self.wf_shape.grid, "panel grid mismatch");
        assert_eq!(wf.norb, self.wf_shape.norb, "panel width mismatch");
        self.device_psi
            .device_slice_mut()
            .copy_from_slice(wf.psi.as_slice());
    }

    /// Device-side view of the frozen potential the inner loop actually
    /// propagates under (the incrementally-updated `device_v`, which is
    /// deliberately *not* bit-identical to a freshly assembled v_loc —
    /// it accumulates the pushed Δv's exactly as the serial loop does).
    pub fn device_potential_unmetered(&self) -> Vec<f64> {
        self.device_v.device_slice().to_vec()
    }

    /// Ledger-account the per-MD-step D2H report payload
    /// (`Norb + 4` doubles) without running the inner loop — the
    /// distributed driver moves the same small report up the link after
    /// its sharded propagation.
    pub fn record_report_payload(&self) {
        let payload_len = self.occupations.len() + 4;
        self.ledger
            .record_d2h((payload_len * std::mem::size_of::<f64>()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlmd_numerics::grid::Grid3;

    fn setup() -> (ShadowDomain, Arc<TransferLedger>) {
        let grid = Grid3::new(8, 8, 8, 0.5);
        let wf = WaveFunctions::plane_waves(grid, 4);
        let occ = Occupations::aufbau(4, 4.0);
        let vloc = vec![0.0; grid.len()];
        let ledger = Arc::new(TransferLedger::new());
        let dom = ShadowDomain::new(wf, occ, &vloc, Arc::clone(&ledger));
        (dom, ledger)
    }

    #[test]
    fn initialization_uploads_psi_once() {
        let (dom, ledger) = setup();
        let psi_bytes = dom.psi_bytes();
        // H2D at init = psi + vloc.
        let v_bytes = (8 * 8 * 8 * 8) as u64;
        assert_eq!(ledger.h2d_bytes(), psi_bytes + v_bytes);
        assert_eq!(ledger.d2h_bytes(), 0);
    }

    #[test]
    fn md_step_traffic_is_small() {
        let (mut dom, ledger) = setup();
        ledger.reset(); // discard the init upload
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 50,
            self_consistent: false,
        };
        let psi_bytes = dom.psi_bytes();
        for step in 0..3 {
            let dv = vec![1e-4; 8 * 8 * 8];
            dom.push_delta_v(&dv);
            let t0 = step as f64 * 50.0 * 0.05;
            dom.run_md_step(|_| Vec3::new(0.01, 0.0, 0.0), t0, cfg);
        }
        // The central shadow-dynamics claim: per-MD-step traffic is far
        // below the wave-function footprint (here Δv dominates: Ngrid
        // doubles vs Ngrid×Norb complexes = 8× more, ×N_QD if naive).
        let per_step = ledger.total_bytes() / 3;
        assert!(
            per_step < psi_bytes / 2,
            "per-step traffic {per_step} must be ≪ psi bytes {psi_bytes}"
        );
        // And the naive alternative (psi down+up every QD step) would be
        // 2 × 50 × psi_bytes per MD step — we must be orders below that.
        assert!(per_step < 2 * 50 * psi_bytes / 100);
    }

    #[test]
    fn qd_dynamics_runs_on_device_state() {
        let (mut dom, _ledger) = setup();
        let before = dom.download_wavefunctions();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 20,
            self_consistent: false,
        };
        dom.run_md_step(|_| Vec3::new(0.02, 0.0, 0.0), 0.0, cfg);
        let after = dom.download_wavefunctions();
        let diff = before.psi.max_abs_diff(&after.psi);
        assert!(diff > 1e-8, "device state must evolve, diff {diff}");
        assert!(after.norm_error() < 1e-9, "and stay unitary");
    }

    #[test]
    fn report_has_occupation_payload() {
        let (mut dom, _) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 5,
            self_consistent: false,
        };
        let (report, _) = dom.run_md_step(|_| Vec3::ZERO, 0.0, cfg);
        assert_eq!(report.delta_f.len(), 4);
        assert!(report.n_exc >= 0.0);
    }

    #[test]
    fn occupation_update_counts_small_upload() {
        let (mut dom, ledger) = setup();
        ledger.reset();
        dom.set_occupations(&[2.0, 1.5, 0.5, 0.0]);
        assert_eq!(ledger.h2d_bytes(), 32);
        assert!((dom.occupations.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn vector_potential_persists_across_md_steps() {
        let (mut dom, _) = setup();
        let cfg = EhrenfestConfig {
            dt_qd: 0.05,
            n_qd: 10,
            self_consistent: false,
        };
        dom.run_md_step(|_| Vec3::new(0.05, 0.0, 0.0), 0.0, cfg);
        let a1 = dom.a;
        dom.run_md_step(|_| Vec3::new(0.05, 0.0, 0.0), 0.5, cfg);
        let a2 = dom.a;
        assert!(
            a2.x.abs() > a1.x.abs(),
            "A keeps integrating: {a1:?} → {a2:?}"
        );
    }
}
