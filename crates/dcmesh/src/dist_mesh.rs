//! Rank-parallel MESH step driver — the Maxwell/Ehrenfest/hopping loop of
//! paper Eq. (2), run for real on simulated-MPI ranks (the sharding the
//! ROADMAP names as the seam the PR 4 engine layer plugs into).
//!
//! [`DistributedMeshDriver`] mirrors the [`crate::dist::DistributedDcScf`]
//! pattern: it runs inside [`World::run`], uses [`Hierarchy::build`] to
//! give each MESH domain (one laser-driven QM patch — e.g. the lit and
//! dark runs of a pump–probe pair) its own communicator, keeps the
//! domain's full driver state replicated on every rank of its group, and
//! advances it through the *same per-domain kernel functions* the serial
//! [`MeshDriver`] calls — with the column-local kernels sharded by
//! [`Hierarchy::band_range`]:
//!
//! * **Ehrenfest propagation** — each rank propagates its orbital block
//!   through all `N_QD` inner steps
//!   ([`crate::ehrenfest::propagate_columns`]; the potential is frozen
//!   between shadow handshakes, so the split-operator step is exactly
//!   column-local), then one [`Comm::allgather_vec`] of the sub-panels
//!   reassembles the full panel and another gathers the per-orbital
//!   current terms, which every rank folds identically into the current
//!   trace, absorbed energy, and final vector potential
//!   ([`crate::ehrenfest::fold_inner_loop`]);
//! * **excitation measurement** — per-state projection terms are sharded
//!   by band range, allgathered, and folded in band order
//!   ([`crate::mesh`]'s `excitation_state_term`/`fold_excitation`);
//! * **band energies** — sharded by band range and allgathered
//!   ([`crate::scf::band_energy_columns`]);
//! * **surface hopping, QXMD, shadow handshake, topological-charge
//!   accumulation** — orbital/atom-coupling steps, run redundantly on
//!   replicated inputs (NACs from the replicated before/after panels, the
//!   hopping master equation, velocity Verlet, Δv_loc assembly, and the
//!   patch-texture charge of the per-step record);
//! * **boundary E/J exchange** — after the inner loop, the domain roots
//!   publish their boundary macroscopic current `J` and Joule absorption
//!   to every rank with one [`Comm::allreduce_sum_vec`] over the world
//!   communicator (one non-zero slot per domain — the quantities a
//!   macroscopic Maxwell grid update consumes, paper Sec. V.B.5), exposed
//!   as [`MeshExchange`].
//!
//! # Bit-identity to the serial oracle
//!
//! The serial [`MeshDriver`] stays as the oracle, and the integration
//! suite (`tests/mesh_dist.rs`) pins this driver's trajectory — band
//! energies, per-step topological charges, and the mesh-trace FNV
//! digest — to it **bit-for-bit** at 1, 2, and 4 ranks per domain. No
//! tolerance is needed because no float sum is ever reordered: column
//! propagation, current terms, excitation terms, and band energies are
//! computed per orbital exactly as in the serial path and folded in band
//! order; the coupling steps run redundantly on replicated inputs; and
//! the E/J exchange adds zeros outside each domain's slot, never touching
//! the per-domain trajectory.
//!
//! The self-consistent Hartree variant of the inner loop couples the
//! orbitals every QD step, so for `EhrenfestConfig::self_consistent` the
//! driver falls back to redundant full-panel propagation (still inside
//! `World::run`, still bit-identical — just not band-sharded).

use crate::ehrenfest::{fold_inner_loop, propagate_columns, EhrenfestResult};
use crate::mesh::{self, MeshDriver, MeshDriverBuilder, MeshStepRecord};
use crate::scf;
use mlmd_lfd::wavefunction::WaveFunctions;
use mlmd_maxwell::units;
use mlmd_parallel::comm::{Comm, World};
use mlmd_parallel::hier::Hierarchy;
use mlmd_qxmd::nac::NacMatrix;

/// The per-step inter-domain field bookkeeping: every domain's boundary
/// current and Joule absorption, visible on every rank after the
/// world-level E/J exchange.
#[derive(Clone, Debug)]
pub struct MeshExchange {
    /// Mean boundary current J_x of each domain over the last MD step.
    pub domain_current: Vec<f64>,
    /// Joule absorption `−∫J·E dt` of each domain over the last MD step.
    pub domain_absorbed: Vec<f64>,
}

impl MeshExchange {
    /// Total absorbed energy across all domains (the global quantity the
    /// Sec. V.A.8 end-of-step gather reports).
    pub fn total_absorbed(&self) -> f64 {
        self.domain_absorbed.iter().sum()
    }
}

/// The rank-local state of the distributed MESH step driver.
///
/// Constructed on every rank of a [`World::run`] region; world size must
/// be a multiple of the domain count (the [`Hierarchy::build`] contract).
/// Each rank holds its domain's full [`MeshDriver`] replica (wave-function
/// panel, occupations, atoms, hopping state — replicated within the
/// domain group, never leaving it).
pub struct DistributedMeshDriver {
    hier: Hierarchy,
    inner: MeshDriver,
    last_exchange: Option<MeshExchange>,
}

impl DistributedMeshDriver {
    /// Initialize on one rank of an SPMD region. `make_domain` assembles
    /// the *builder* of the serial driver for a given domain index (called
    /// once per rank, with this rank's domain index).
    ///
    /// The expensive part of construction — the 60-sweep ground-state
    /// pre-descent — is **not** replicated per rank: the domain root
    /// resolves the converged ground state (through the builder's
    /// warm-start source, so a cache or checkpoint also short-circuits
    /// the root's descent) and broadcasts it over the domain
    /// communicator; every rank then assembles its replica from that one
    /// panel via [`MeshDriverBuilder::build_with`], which re-checks the
    /// config hash rank-locally — a divergent replica input is a hard
    /// error, never a silent mismatch. Broadcasting one value computed by
    /// the serial kernel sequence preserves the bit-identity discipline
    /// trivially: every replica starts from exactly the serial initial
    /// state.
    pub fn new(
        world: Comm,
        n_domains: usize,
        make_domain: impl FnOnce(usize) -> MeshDriverBuilder,
    ) -> Self {
        let hier = Hierarchy::build(world, n_domains);
        let builder = make_domain(hier.domain_index);
        let inner = if hier.domain.size() == 1 {
            builder.build()
        } else {
            let gs = if hier.domain.rank() == 0 {
                Some(builder.resolve_ground_state())
            } else {
                None
            };
            let gs = hier.domain.bcast(0, gs);
            builder.build_with(gs)
        };
        Self {
            hier,
            inner,
            last_exchange: None,
        }
    }

    /// The communicator hierarchy this rank participates in.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// This rank's domain replica of the serial driver.
    pub fn driver(&self) -> &MeshDriver {
        &self.inner
    }

    /// Band energies of the last step's post-propagation panel (identical
    /// on every rank of the domain group; empty before the first step).
    pub fn band_energies(&self) -> &[f64] {
        self.inner.band_energies()
    }

    /// Topological charge of this domain's QM patch.
    pub fn topological_charge(&self) -> f64 {
        self.inner.topological_charge()
    }

    /// The last step's inter-domain E/J exchange (`None` before the first
    /// step). Identical on every rank of the world.
    pub fn last_exchange(&self) -> Option<&MeshExchange> {
        self.last_exchange.as_ref()
    }

    pub fn time_fs(&self) -> f64 {
        self.inner.time_fs()
    }

    /// Band-sharded Ehrenfest inner loop: propagate this rank's orbital
    /// block, allgather the sub-panels and current terms through the
    /// domain communicator, install the reassembled panel device-side,
    /// and fold the gathered terms into the serial inner-loop result.
    /// `psi` is the caller's device-side view of the pre-step panel.
    fn sharded_inner_loop(
        &mut self,
        psi: &WaveFunctions,
        field: impl Fn(f64) -> mlmd_numerics::vec3::Vec3 + Copy,
        t0_au: f64,
    ) -> EhrenfestResult {
        let cfg = self.inner.config.ehrenfest;
        let norb = psi.norb;
        let ngrid = psi.ngrid();
        let cols = self.hier.band_range(norb);
        let frozen_v = self.inner.shadow.device_potential_unmetered();
        let a0 = self.inner.shadow.a;
        let mut sub = WaveFunctions::zeros(psi.grid, cols.len());
        sub.psi
            .as_mut_slice()
            .copy_from_slice(&psi.psi.as_slice()[cols.start * ngrid..cols.end * ngrid]);
        let my_terms = propagate_columns(
            &self.inner.shadow.qd,
            &mut sub,
            &self.inner.shadow.occupations,
            cols.start,
            &frozen_v,
            a0,
            field,
            t0_au,
            cfg,
        );
        // Sub-panels are contiguous column blocks in domain-rank order, so
        // the concatenation *is* the column-major panel; same for the
        // owned-column-major current terms.
        let flat = self.hier.domain.allgather_vec(sub.psi.as_slice().to_vec());
        let all_terms = self.hier.domain.allgather_vec(my_terms);
        debug_assert_eq!(flat.len(), ngrid * norb);
        let mut psi_new = WaveFunctions::zeros(psi.grid, norb);
        psi_new.psi.as_mut_slice().copy_from_slice(&flat);
        self.inner.shadow.upload_wavefunctions_unmetered(&psi_new);
        let result = fold_inner_loop(
            &all_terms,
            norb,
            &self.inner.shadow.occupations,
            &psi.grid,
            a0,
            field,
            t0_au,
            cfg,
        );
        self.inner.shadow.a = result.a_final;
        // The same small report payload crosses the link as in the serial
        // shadow handshake (Δf + n_exc + J — the shadow-dynamics claim
        // holds per replica too).
        self.inner.shadow.record_report_payload();
        result
    }

    /// Advance one full MESH MD step, collectively over the world.
    ///
    /// The body is the serial [`MeshDriver::step`] kernel sequence with
    /// the column-local kernels sharded by band range and the coupling
    /// kernels run redundantly — plus the world-level boundary E/J
    /// exchange at the end of the step.
    pub fn step(&mut self) -> MeshStepRecord {
        let cfg = self.inner.config;
        // --- 1. LFD inner loop under the laser, band-sharded ---
        let t0_au = units::fs_to_au(self.inner.time_fs());
        let drive = self.inner.drive;
        let pol = self.inner.polarization_axis;
        let field = move |t: f64| pol * drive.field(t);
        let psi_before = self.inner.shadow.download_wavefunctions_unmetered();
        let norb = psi_before.norb;
        let inner_res = if cfg.ehrenfest.self_consistent || self.hier.domain.size() == 1 {
            // Single-rank domains take the monolithic path; the
            // self-consistent Hartree update couples the orbitals every QD
            // step, so it propagates the full panel redundantly too.
            let (_, res) = self.inner.shadow.run_md_step(field, t0_au, cfg.ehrenfest);
            res
        } else {
            self.sharded_inner_loop(&psi_before, field, t0_au)
        };
        let psi_after = self.inner.shadow.download_wavefunctions_unmetered();
        // --- 2. excitation measurement: per-state terms sharded, folded
        //        in band order on every rank ---
        let cols = self.hier.band_range(norb);
        let my_exc: Vec<f64> = cols
            .clone()
            .map(|s| {
                mesh::excitation_state_term(
                    &self.inner.psi0,
                    &self.inner.occupied0,
                    &self.inner.shadow.occupations,
                    &psi_after,
                    s,
                )
            })
            .collect();
        let exc_terms = if self.hier.domain.size() == 1 {
            my_exc
        } else {
            self.hier.domain.allgather_vec(my_exc)
        };
        let n_exc = mesh::fold_excitation(
            &exc_terms,
            &self.inner.occupied0,
            &self.inner.shadow.occupations,
        );
        // --- 3. surface hopping: NACs redundant on the replicated
        //        panels, band energies sharded, master equation redundant ---
        let dt_md_au = units::fs_to_au(cfg.dt_md_fs);
        let nac = NacMatrix::from_overlaps(
            &psi_before.psi,
            &psi_after.psi,
            psi_after.grid.dv(),
            dt_md_au,
        );
        let my_eps =
            scf::band_energy_columns(&psi_after.grid, &self.inner.last_vloc, &psi_after, cols);
        let eps = if self.hier.domain.size() == 1 {
            my_eps
        } else {
            self.hier.domain.allgather_vec(my_eps)
        };
        let f = mesh::hop_occupations(
            &self.inner.hopping,
            &self.inner.shadow.occupations,
            &eps,
            &nac,
            dt_md_au,
        );
        self.inner.shadow.set_occupations(&f);
        self.inner.last_eps = eps;
        // --- 4. QXMD with excitation-reshaped forces (redundant) ---
        let pe = mesh::advance_atoms(
            &cfg,
            &mut self.inner.ferro,
            &mut self.inner.atoms,
            n_exc,
            self.inner.nn_term.as_deref(),
        );
        // --- 5. shadow handshake (redundant; every replica's device
        //        receives the same Δv_loc) ---
        self.inner.last_vloc = mesh::shadow_handshake(
            &mut self.inner.shadow,
            &psi_after.grid,
            &self.inner.tracked_sites,
            &self.inner.ferro,
            &self.inner.atoms,
            &self.inner.last_vloc,
        );
        self.inner.time_fs += cfg.dt_md_fs;
        let record = mesh::make_record(
            self.inner.time_fs,
            n_exc,
            inner_res.absorbed_energy,
            &self.inner.ferro,
            &self.inner.atoms,
            f,
            pe,
        );
        // --- 6. boundary E/J exchange across domains: one non-zero slot
        //        per domain, so no per-domain value is ever re-summed ---
        let nd = self.hier.n_domains;
        let mut contrib = vec![0.0; 2 * nd];
        if self.hier.domain.rank() == 0 {
            let j_mean = if inner_res.current_trace.is_empty() {
                0.0
            } else {
                inner_res.current_trace.iter().sum::<f64>() / inner_res.current_trace.len() as f64
            };
            contrib[2 * self.hier.domain_index] = j_mean;
            contrib[2 * self.hier.domain_index + 1] = inner_res.absorbed_energy;
        }
        let table = self.hier.world.allreduce_sum_vec(contrib);
        self.last_exchange = Some(MeshExchange {
            domain_current: table.iter().step_by(2).copied().collect(),
            domain_absorbed: table.iter().skip(1).step_by(2).copied().collect(),
        });
        record
    }

    /// Run `n` MD steps, returning the trajectory of records (identical on
    /// every rank of a domain group).
    pub fn run(&mut self, n: usize) -> Vec<MeshStepRecord> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Convenience oracle harness: run the distributed driver on
/// `ranks_per_domain × n_domains` ranks for `n_steps` MD steps and return
/// each domain root's trajectory, in domain order — the exact shape the
/// integration suite and benches compare against serial
/// [`MeshDriver::run`] calls.
pub fn run_distributed_mesh<F>(
    n_domains: usize,
    ranks_per_domain: usize,
    n_steps: usize,
    make_domain: F,
) -> Vec<Vec<MeshStepRecord>>
where
    F: Fn(usize) -> MeshDriverBuilder + Sync,
{
    let results = World::run(n_domains * ranks_per_domain, |world| {
        let mut drv = DistributedMeshDriver::new(world, n_domains, &make_domain);
        drv.run(n_steps)
    });
    results.into_iter().step_by(ranks_per_domain).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::{small_mesh_builder, small_mesh_driver};

    // The full oracle comparison (1/2/4 ranks per domain, lit/dark
    // two-domain worlds, band-energy and topological-charge pins, fabric
    // reclamation) lives in `tests/mesh_dist.rs`; these crate-local tests
    // keep a fast standalone bit-identity check and the exchange shape.

    fn records_equal(a: &[MeshStepRecord], b: &[MeshStepRecord]) {
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(ra.time_fs.to_bits(), rb.time_fs.to_bits());
            assert_eq!(ra.n_exc.to_bits(), rb.n_exc.to_bits());
            assert_eq!(
                ra.absorbed_energy.to_bits(),
                rb.absorbed_energy.to_bits(),
                "absorbed energy must be exact"
            );
            assert_eq!(
                ra.atom_potential_energy.to_bits(),
                rb.atom_potential_energy.to_bits()
            );
            assert_eq!(
                ra.topological_charge.to_bits(),
                rb.topological_charge.to_bits()
            );
            for (fa, fb) in ra.occupations.iter().zip(&rb.occupations) {
                assert_eq!(fa.to_bits(), fb.to_bits());
            }
        }
    }

    #[test]
    fn two_ranks_per_domain_match_serial_bitwise() {
        let want = small_mesh_driver(0.05).run(2);
        let got = run_distributed_mesh(1, 2, 2, |_| small_mesh_builder(0.05));
        records_equal(&want, &got[0]);
    }

    #[test]
    fn nn_term_survives_the_serial_distributed_oracle() {
        use mlmd_nnqmd::{AllegroLite, ModelConfig as NnConfig, NnForceField};
        use std::sync::Arc;

        let cfg = NnConfig {
            hidden: 6,
            k_max: 4,
            rcut: 3.5,
        };
        let mut serial = small_mesh_builder(0.05)
            .nn_term(Arc::new(NnForceField::with_batches(
                AllegroLite::new(cfg, 17),
                1,
            )))
            .build();
        let want = serial.run(2);
        let got = run_distributed_mesh(1, 2, 2, |_| {
            small_mesh_builder(0.05).nn_term(Arc::new(NnForceField::with_batches(
                AllegroLite::new(cfg, 17),
                1,
            )))
        });
        records_equal(&want, &got[0]);
    }

    #[test]
    fn force_batch_folds_redundant_domain_inference() {
        use mlmd_nnqmd::{AllegroLite, ForceBatch, ModelConfig as NnConfig};
        use std::sync::Arc;

        // Two identical lit domains, one rank each, sharing ONE ForceBatch
        // rendezvous sized to the world: every MD step, each rank's QXMD
        // stage issues two force requests (the explicit pre-compute and the
        // one inside velocity Verlet), and the byte-identical requests from
        // the mirrored domains must collapse to a single inference per
        // round — "one inference call serves all DC domains".
        let cfg = NnConfig {
            hidden: 6,
            k_max: 4,
            rcut: 3.5,
        };
        let n_steps = 2usize;
        let batch = Arc::new(ForceBatch::new(AllegroLite::new(cfg, 17), 1, 2));
        let shared = batch.clone();
        let out = World::run(2, move |world| {
            let term = shared.clone();
            let mut drv = DistributedMeshDriver::new(world, 2, move |_| {
                small_mesh_builder(0.05).nn_term(term.clone())
            });
            drv.run(n_steps)
        });
        // Mirrored domains stay bit-identical, so every rendezvous round
        // deduplicates the two rank requests down to one evaluation.
        records_equal(&out[0], &out[1]);
        let rounds = 2 * n_steps as u64;
        assert_eq!(batch.rounds(), rounds, "two force evaluations per step");
        assert_eq!(
            batch.unique_evaluations(),
            rounds,
            "identical domains must dedup to one inference per round"
        );
        assert_eq!(
            batch.requests_served(),
            2 * rounds,
            "both ranks are served from each shared round"
        );
    }

    #[test]
    fn exchange_reports_one_slot_per_domain() {
        let out = World::run(2, |world| {
            let mut drv = DistributedMeshDriver::new(world, 2, |d| {
                small_mesh_builder(if d == 0 { 0.05 } else { 0.0 })
            });
            drv.step();
            let ex = drv.last_exchange().expect("exchange after a step").clone();
            (drv.hierarchy().domain_index, ex)
        });
        // Every rank sees the same global table.
        for (_, ex) in &out {
            assert_eq!(ex.domain_current.len(), 2);
            assert_eq!(ex.domain_absorbed.len(), 2);
            assert_eq!(ex.domain_absorbed[0], out[0].1.domain_absorbed[0]);
        }
        // The lit domain absorbs; the exchange total matches the slots.
        let ex = &out[0].1;
        assert!(ex.domain_absorbed[0] != 0.0, "lit domain must absorb");
        assert_eq!(
            ex.total_absorbed(),
            ex.domain_absorbed[0] + ex.domain_absorbed[1]
        );
    }
}
